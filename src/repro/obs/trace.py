"""Chrome/Perfetto ``trace_event`` export of simulator timelines.

The mapping follows how production GPU profilers lay traces out, so a file
written here reads like a Kineto/nsys capture in ``ui.perfetto.dev``:

* **rank → process** (``pid``), named with its 4D mesh coordinates when a
  :class:`repro.parallel.mesh.DeviceMesh` is supplied;
* **stream → thread** (``tid``), with ``compute`` pinned to tid 0 so it
  sorts first, like the default CUDA stream;
* **event kind → category** (``cat``): ``compute``, ``comm``,
  ``exposed_comm``; zero-duration ``marker`` events (failure and replan
  markers from :mod:`repro.resilience.run`) become instant events
  (``ph: "i"``), which Perfetto renders as vertical ticks;
* **collective group → flow events**: each collective instance gets one
  flow id, drawn from the earliest-joining participant to every other
  member, which renders as the Figure 8 "who waited for whom" arrows.

Timestamps are microseconds (the format's unit); the simulator's seconds
are scaled by 1e6.  ``validate_trace`` is a minimal, dependency-free
schema checker for the subset of the format we emit, used by tests and
available to callers who post-process traces.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.parallel.mesh import DeviceMesh
from repro.sim.engine import Simulator, TraceEvent

#: Microseconds per simulator second.
_US = 1e6

#: Metadata event names we emit (a subset of the format's "M" phase).
_METADATA_NAMES = ("process_name", "process_sort_index", "thread_name",
                   "thread_sort_index")


def _stream_tids(events: Sequence[TraceEvent]) -> Dict[Tuple[int, str], int]:
    """Stable (rank, stream) -> tid mapping; ``compute`` is always tid 0."""
    tids: Dict[Tuple[int, str], int] = {}
    per_rank_streams: Dict[int, List[str]] = {}
    for e in events:
        streams = per_rank_streams.setdefault(e.rank, [])
        if e.stream not in streams:
            streams.append(e.stream)
    for rank, streams in per_rank_streams.items():
        ordered = sorted(streams, key=lambda s: (s != "compute", s))
        for tid, stream in enumerate(ordered):
            tids[(rank, stream)] = tid
    return tids


def _process_name(rank: int, mesh: Optional["DeviceMesh"]) -> str:
    if mesh is None:
        return f"rank {rank}"
    c = mesh.coord_of(rank)
    return f"rank {rank} (dp{c.dp} pp{c.pp} cp{c.cp} tp{c.tp})"


def _metadata_events(
    events: Sequence[TraceEvent],
    tids: Dict[Tuple[int, str], int],
    mesh: Optional["DeviceMesh"],
) -> List[dict]:
    out: List[dict] = []
    for rank in sorted({e.rank for e in events}):
        out.append({
            "name": "process_name", "ph": "M", "pid": rank, "tid": 0,
            "args": {"name": _process_name(rank, mesh)},
        })
        out.append({
            "name": "process_sort_index", "ph": "M", "pid": rank, "tid": 0,
            "args": {"sort_index": rank},
        })
    for (rank, stream), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        out.append({
            "name": "thread_name", "ph": "M", "pid": rank, "tid": tid,
            "args": {"name": stream},
        })
        out.append({
            "name": "thread_sort_index", "ph": "M", "pid": rank, "tid": tid,
            "args": {"sort_index": tid},
        })
    return out


def _flow_events(
    events: Sequence[TraceEvent],
    tids: Dict[Tuple[int, str], int],
) -> List[dict]:
    """One flow per collective instance, from earliest joiner to the rest.

    Events of one instance share (name, end, group) — the invariant the
    trace-analysis blame pass relies on too.
    """
    instances: Dict[Tuple[str, float, Tuple[int, ...]], List[TraceEvent]] = {}
    for e in events:
        if e.group:
            instances.setdefault((e.name, e.end, e.group), []).append(e)
    out: List[dict] = []
    for flow_id, (key, members) in enumerate(sorted(
            instances.items(), key=lambda kv: (kv[0][1], kv[0][0]))):
        if len(members) < 2:
            continue
        members = sorted(members, key=lambda m: (m.start, m.rank))
        head, rest = members[0], members[1:]
        common = {"cat": "collective", "name": key[0], "id": flow_id}
        out.append({
            **common, "ph": "s", "pid": head.rank,
            "tid": tids[(head.rank, head.stream)], "ts": head.start * _US,
        })
        for m in rest:
            out.append({
                **common, "ph": "f", "bp": "e", "pid": m.rank,
                "tid": tids[(m.rank, m.stream)], "ts": m.start * _US,
            })
    return out


def trace_event_dicts(
    sim: Simulator,
    mesh: Optional["DeviceMesh"] = None,
) -> List[dict]:
    """Full ``traceEvents`` list: metadata, duration, and flow events."""
    events = sim.events
    tids = _stream_tids(events)
    rows = _metadata_events(events, tids, mesh)
    for e in events:
        row = {
            "name": e.name,
            "cat": e.kind,
            "ph": "X",
            "ts": e.start * _US,
            "dur": e.duration * _US,
            "pid": e.rank,
            "tid": tids[(e.rank, e.stream)],
            "args": {"stream": e.stream},
        }
        if e.kind == "marker":
            # Markers are points in time, not spans: instant events,
            # scoped to their thread so they draw on the right track.
            del row["dur"]
            row["ph"] = "i"
            row["s"] = "t"
        if e.group:
            row["args"]["group"] = list(e.group)
        if e.tags:
            # Fault injection tags perturbed events "faulted"; surfacing
            # the tags in args makes them searchable in the Perfetto UI.
            row["args"]["tags"] = list(e.tags)
        rows.append(row)
    rows.extend(_flow_events(events, tids))
    return rows


def critical_path_annotations(
    events: Sequence[TraceEvent],
    entries: Sequence,
    rank_map: Optional[Dict[int, int]] = None,
) -> List[dict]:
    """Flow + instant rows marking a critical path in the Perfetto UI.

    Args:
        events: The exported timeline's events (post-remap if the trace
            is remapped) — used to recover (rank, stream) -> tid.
        entries: Chronological path entries from
            :func:`repro.analysis.critical_path.extract_critical_path`
            (duck-typed: ``rank``/``stream``/``start``/``end``).
        rank_map: Applied to entry ranks when the entries are still in
            executor rank space but ``events`` are remapped.

    Returns rows to pass as ``extra_events`` to
    :func:`export_chrome_trace`: one flow chain (``cat``
    ``"critical_path"``, string id ``"critical-path"`` so it can never
    collide with the integer collective flow ids) threading every path
    op, plus an instant event at the makespan-defining op's end.
    """
    tids = _stream_tids(events)
    rank_map = rank_map or {}
    rows: List[dict] = []
    n = len(entries)
    common = {"cat": "critical_path", "name": "critical-path",
              "id": "critical-path"}
    for i, entry in enumerate(entries):
        rank = rank_map.get(entry.rank, entry.rank)
        tid = tids.get((rank, entry.stream), 0)
        if n < 2:
            break
        if i == 0:
            row = {**common, "ph": "s", "pid": rank, "tid": tid,
                   "ts": entry.start * _US}
        elif i == n - 1:
            row = {**common, "ph": "f", "bp": "e", "pid": rank, "tid": tid,
                   "ts": entry.start * _US}
        else:
            row = {**common, "ph": "t", "pid": rank, "tid": tid,
                   "ts": entry.start * _US}
        rows.append(row)
    if entries:
        last = entries[-1]
        rank = rank_map.get(last.rank, last.rank)
        rows.append({
            "name": "critical-path:makespan", "cat": "critical_path",
            "ph": "i", "s": "t", "pid": rank,
            "tid": tids.get((rank, last.stream), 0), "ts": last.end * _US,
        })
    return rows


def export_chrome_trace(
    sim: Simulator,
    path_or_file: Union[str, IO[str]],
    mesh: Optional["DeviceMesh"] = None,
    extra_metadata: Optional[dict] = None,
    extra_events: Optional[List[dict]] = None,
) -> dict:
    """Write a timeline as a ``trace_event`` JSON object file.

    Args:
        sim: Recorded timeline.
        path_or_file: Destination path or open text file.
        mesh: Names each pid with its 4D coordinates when given.
        extra_metadata: Merged into the file's ``otherData`` section
            (e.g. the parallel config the trace came from).
        extra_events: Extra rows appended to ``traceEvents`` (e.g.
            :func:`critical_path_annotations`).

    Returns the written object (JSON-serializable dict).
    """
    obj = {
        "traceEvents": trace_event_dicts(sim, mesh) + list(extra_events or ()),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs.trace",
            "time_unit": "us",
            **(extra_metadata or {}),
        },
    }
    if hasattr(path_or_file, "write"):
        json.dump(obj, path_or_file)  # type: ignore[arg-type]
    else:
        with open(path_or_file, "w", encoding="utf-8") as f:  # type: ignore[arg-type]
            json.dump(obj, f)
    return obj


def remap_ranks(sim: Simulator, rank_map: Dict[int, int]) -> Simulator:
    """Rewrite event ranks (and collective groups) through ``rank_map``.

    The pipeline executor simulates PP ranks 0..pp-1; remapping through
    :func:`repro.obs.metrics.pp_rank_map` before export names each trace
    process with its true 4D mesh coordinates.
    """
    out = Simulator()
    for e in sim.events:
        out.record(e.replace(
            rank=rank_map.get(e.rank, e.rank),
            group=tuple(rank_map.get(r, r) for r in e.group),
        ))
    return out


def merge_timelines(
    phases: Iterable[Tuple[str, Simulator]],
) -> Simulator:
    """Concatenate timelines end to end into one trace.

    Each phase's events are shifted past the previous phase's makespan and
    renamed ``<label>/<name>`` — how the multi-phase pre-training
    progression (``repro phases --trace``) lands in one Perfetto file.
    """
    merged = Simulator()
    offset = 0.0
    for label, sim in phases:
        for e in sim.events:
            merged.record(e.replace(
                name=f"{label}/{e.name}" if label else e.name,
                start=e.start + offset,
                end=e.end + offset,
            ))
        offset += sim.makespan()
    return merged


# ----------------------------------------------------------------------
# Minimal schema validation (no external dependency)
# ----------------------------------------------------------------------

def validate_trace(obj: object) -> List[str]:
    """Check an object against the ``trace_event`` JSON format subset we
    emit.  Returns a list of problems; an empty list means valid.

    Accepts both the JSON-object form (``{"traceEvents": [...]}``) and the
    bare JSON-array form the format also allows.
    """
    problems: List[str] = []
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(obj, list):
        events = obj
    else:
        return [f"trace must be a dict or list, got {type(obj).__name__}"]

    flows: Dict[Tuple[object, object], List[str]] = {}
    for i, e in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"{where}: missing 'ph'")
            continue
        if not isinstance(e.get("name"), str):
            problems.append(f"{where}: missing 'name'")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), (int, str)):
                problems.append(f"{where}: missing '{key}'")
        if ph == "M":
            if e.get("name") not in _METADATA_NAMES:
                problems.append(
                    f"{where}: unknown metadata event {e.get('name')!r}")
            if not isinstance(e.get("args"), dict):
                problems.append(f"{where}: metadata event without 'args'")
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: 'X' event needs non-negative 'dur'")
        elif ph == "i":
            if e.get("s") not in (None, "t", "p", "g"):
                problems.append(
                    f"{where}: instant event scope must be 't'|'p'|'g'")
            if "dur" in e:
                problems.append(
                    f"{where}: instant event must not carry 'dur'")
        elif ph in ("s", "t", "f"):
            if not isinstance(e.get("id"), (int, str)):
                problems.append(f"{where}: flow event needs 'id'")
            else:
                flows.setdefault((e.get("cat"), e["id"]), []).append(ph)
        else:
            problems.append(f"{where}: unsupported phase {ph!r}")
    # Flow chains (collective arrows, critical-path threading) must be
    # well-formed per (cat, id): exactly one start, at least one finish,
    # and no step/finish before the start.
    for (cat, flow_id), phases in flows.items():
        label = f"flow (cat={cat!r}, id={flow_id!r})"
        if phases[0] != "s":
            problems.append(
                f"{label}: first phase is {phases[0]!r}, expected 's'")
        elif phases.count("s") != 1:
            problems.append(
                f"{label}: has {phases.count('s')} 's' events, expected 1")
        elif "f" not in phases:
            problems.append(f"{label}: never finishes (no 'f' event)")
    return problems


def assert_valid_trace(obj: object) -> None:
    """Raise ``ValueError`` listing every problem if the trace is invalid."""
    problems = validate_trace(obj)
    if problems:
        raise ValueError(
            "invalid trace_event JSON:\n" + "\n".join(problems))
