"""Step-metrics registry: counters, gauges, histograms, structured events.

The registry is the common sink the simulation paths report into — the
pipeline executor (ops, exposed P2P waits), the CP all-gather path
(collective counts and bytes), the FSDP emulator (collective counts,
resident bytes), and the slow-rank debugger (localisation decisions as
structured events).  Samples are labeled; the conventional label for
per-device series is ``rank``, which is what the mesh aggregation below
groups on.

Aggregation follows the paper's 4D structure: given a
:class:`repro.parallel.mesh.DeviceMesh`, any rank-labeled metric can be
rolled up per (dp, pp, cp, tp) group index — e.g. busy seconds per
pipeline stage, or exposed-comm seconds per DP group — which is exactly
the view the Section 6.1 top-down search walks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.parallel.config import ParallelConfig
from repro.parallel.mesh import DIM_ORDER, DeviceMesh, MeshCoord
from repro.sim.engine import Simulator

LabelSet = Tuple[Tuple[str, str], ...]


def pp_rank_map(parallel: ParallelConfig) -> Dict[int, int]:
    """Executor PP rank -> global mesh rank at (tp, cp, dp) = 0.

    The pipeline executor simulates one pipeline's ranks 0..pp-1; this maps
    them onto the full 4D mesh so mesh aggregation sees global ranks.
    """
    mesh = DeviceMesh(parallel)
    return {
        ppr: mesh.rank_of(MeshCoord(tp=0, cp=0, pp=ppr, dp=0))
        for ppr in range(parallel.pp)
    }


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class _Metric:
    """Shared shape of one named metric family."""

    name: str
    kind: str
    unit: str
    description: str

    def sample_rows(self) -> List[dict]:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class Counter(_Metric):
    """Monotonically increasing sum per label set."""

    values: Dict[LabelSet, float] = field(default_factory=dict)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _labelset(labels)
        self.values[key] = self.values.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        return self.values.get(_labelset(labels), 0.0)

    def sample_rows(self) -> List[dict]:
        return [
            {"labels": dict(k), "value": v}
            for k, v in sorted(self.values.items())
        ]


@dataclass
class Gauge(_Metric):
    """Last-written value per label set (with a max-tracking helper)."""

    values: Dict[LabelSet, float] = field(default_factory=dict)

    def set(self, value: float, **labels: object) -> None:
        self.values[_labelset(labels)] = float(value)

    def set_max(self, value: float, **labels: object) -> None:
        """Keep the running maximum — peak-memory style gauges."""
        key = _labelset(labels)
        self.values[key] = max(self.values.get(key, -math.inf), float(value))

    def value(self, **labels: object) -> float:
        key = _labelset(labels)
        if key not in self.values:
            raise KeyError(f"gauge {self.name!r} has no sample for {key}")
        return self.values[key]

    def sample_rows(self) -> List[dict]:
        return [
            {"labels": dict(k), "value": v}
            for k, v in sorted(self.values.items())
        ]


@dataclass
class HistogramSummary:
    """Streaming summary of one label set's observations."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)


@dataclass
class Histogram(_Metric):
    """Count/sum/min/max summary per label set."""

    values: Dict[LabelSet, HistogramSummary] = field(default_factory=dict)

    def observe(self, value: float, **labels: object) -> None:
        key = _labelset(labels)
        if key not in self.values:
            self.values[key] = HistogramSummary()
        self.values[key].observe(float(value))

    def summary(self, **labels: object) -> HistogramSummary:
        key = _labelset(labels)
        if key not in self.values:
            raise KeyError(f"histogram {self.name!r} has no sample for {key}")
        return self.values[key]

    def sample_rows(self) -> List[dict]:
        return [
            {
                "labels": dict(k),
                "count": s.count,
                "sum": s.total,
                "min": s.min,
                "max": s.max,
                "mean": s.mean,
            }
            for k, s in sorted(self.values.items())
        ]


_REDUCERS: Dict[str, Callable[[List[float]], float]] = {
    "sum": sum,
    "max": max,
    "min": min,
    "mean": lambda xs: sum(xs) / len(xs),
}


class MetricsRegistry:
    """Named metric families plus an ordered structured-event log."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self.events: List[dict] = []

    # -- family constructors (get-or-create) ---------------------------

    def _get_or_create(self, cls, kind: str, name: str, unit: str,
                       description: str) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name=name, kind=kind, unit=unit, description=description)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, unit: str = "",
                description: str = "") -> Counter:
        return self._get_or_create(Counter, "counter", name, unit, description)

    def gauge(self, name: str, unit: str = "",
              description: str = "") -> Gauge:
        return self._get_or_create(Gauge, "gauge", name, unit, description)

    def histogram(self, name: str, unit: str = "",
                  description: str = "") -> Histogram:
        return self._get_or_create(Histogram, "histogram", name, unit,
                                   description)

    # -- structured events ---------------------------------------------

    def event(self, name: str, **fields: object) -> dict:
        """Append one structured event (e.g. a slow-rank decision)."""
        row = {"event": name, **fields}
        self.events.append(row)
        return row

    # -- inspection -----------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> _Metric:
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """JSON-able dump of every family, samples sorted by labels."""
        return {
            "metrics": {
                name: {
                    "kind": m.kind,
                    "unit": m.unit,
                    "description": m.description,
                    "samples": m.sample_rows(),
                }
                for name, m in sorted(self._metrics.items())
            },
            "events": list(self.events),
        }

    # -- mesh aggregation -----------------------------------------------

    def aggregate_by_coord(
        self,
        name: str,
        mesh: DeviceMesh,
        dim: str,
        reduce: str = "sum",
    ) -> Dict[int, float]:
        """Roll a rank-labeled counter/gauge up per ``dim`` group index.

        Every sample must carry a ``rank`` label; a sample's value lands in
        the bucket of its rank's ``dim`` coordinate.  ``reduce`` is one of
        ``sum``/``max``/``min``/``mean``.
        """
        if dim not in DIM_ORDER:
            raise ValueError(f"unknown dim {dim!r}; expected one of {DIM_ORDER}")
        reducer = _REDUCERS.get(reduce)
        if reducer is None:
            raise ValueError(
                f"unknown reduce {reduce!r}; expected one of {sorted(_REDUCERS)}"
            )
        metric = self._metrics[name]
        if not isinstance(metric, (Counter, Gauge)):
            raise TypeError(f"cannot aggregate {metric.kind} {name!r}")
        buckets: Dict[int, List[float]] = {}
        for labels, value in metric.values.items():
            rank = dict(labels).get("rank")
            if rank is None:
                raise ValueError(
                    f"metric {name!r} sample {labels} has no 'rank' label"
                )
            idx = getattr(mesh.coord_of(int(rank)), dim)
            buckets.setdefault(idx, []).append(value)
        return {idx: reducer(vals) for idx, vals in sorted(buckets.items())}

    def mesh_aggregates(
        self,
        name: str,
        mesh: DeviceMesh,
        reduce: str = "sum",
    ) -> Dict[str, Dict[int, float]]:
        """``aggregate_by_coord`` over all four dims at once."""
        return {
            dim: self.aggregate_by_coord(name, mesh, dim, reduce)
            for dim in DIM_ORDER
        }


def record_simulator_metrics(
    sim: Simulator,
    registry: Optional[MetricsRegistry] = None,
    rank_map: Optional[Dict[int, int]] = None,
) -> MetricsRegistry:
    """Distill a recorded timeline into per-rank step metrics.

    Writes, labeled by (mapped) rank:

    * ``sim.busy_seconds`` — compute-kind time on the compute stream;
    * ``sim.idle_seconds`` — makespan minus compute-stream occupancy (the
      PP bubble numerator);
    * ``sim.comm_seconds`` — synchronising-collective span time;
    * ``sim.exposed_comm_seconds`` — exposed communication (P2P waits,
      unhidden collectives);
    * ``sim.bubble_ratio`` — idle over busy, the paper's PP bubble metric.

    ``rank_map`` translates simulator-local ranks (e.g. PP ranks in the
    step executor) to global mesh ranks before labeling.
    """
    registry = registry or MetricsRegistry()
    rank_map = rank_map or {}
    makespan = sim.makespan()
    busy = registry.gauge("sim.busy_seconds", unit="s",
                          description="compute-stream busy time per rank")
    idle = registry.gauge("sim.idle_seconds", unit="s",
                          description="makespan minus compute-stream occupancy")
    comm = registry.gauge("sim.comm_seconds", unit="s",
                          description="collective span time per rank")
    exposed = registry.gauge(
        "sim.exposed_comm_seconds", unit="s",
        description="exposed communication time per rank")
    bubble = registry.gauge(
        "sim.bubble_ratio", unit="ratio",
        description="idle over busy on the compute stream")
    ranks = sorted({e.rank for e in sim.events})
    for rank in ranks:
        label = rank_map.get(rank, rank)
        busy_s = sum(
            e.duration
            for e in sim.events_for(rank, stream="compute", kind="compute"))
        occupied_s = sim.busy_time(rank, "compute")  # any kind on the stream
        comm_s = sum(
            e.duration for e in sim.events_for(rank, kind="comm"))
        exposed_s = sum(
            e.duration for e in sim.events_for(rank, kind="exposed_comm"))
        busy.set(busy_s, rank=label)
        idle.set(makespan - occupied_s, rank=label)
        comm.set(comm_s, rank=label)
        exposed.set(exposed_s, rank=label)
        bubble.set((makespan - occupied_s) / busy_s if busy_s > 0 else 0.0,
                   rank=label)
    return registry


def record_critical_path_metrics(
    report,
    registry: Optional[MetricsRegistry] = None,
    rank_map: Optional[Dict[int, int]] = None,
) -> MetricsRegistry:
    """Distill a critical-path report into planner-citable gauges.

    ``report`` is duck-typed (``entries`` with ``stream``/``kind``/
    ``rank``/``duration``, plus ``makespan_seconds``) so this module does
    not import :mod:`repro.analysis`.  Writes:

    * ``critical_path.makespan_seconds`` — the step time the path tiles;
    * ``critical_path.seconds`` — path time per stream;
    * ``critical_path.share`` — path share of the makespan per stream
      (the "how compute-bound is this config" number);
    * ``critical_path.ops`` — path op count per kind;
    * ``critical_path.rank_seconds`` — path time per (mapped) rank, the
      per-pipeline-stage view of where the step is bound.
    """
    registry = registry or MetricsRegistry()
    rank_map = rank_map or {}
    makespan = registry.gauge(
        "critical_path.makespan_seconds", unit="s",
        description="step makespan tiled by the critical path")
    seconds = registry.gauge(
        "critical_path.seconds", unit="s",
        description="critical-path time per stream")
    share = registry.gauge(
        "critical_path.share", unit="ratio",
        description="critical-path share of the makespan per stream")
    ops = registry.counter(
        "critical_path.ops", unit="ops",
        description="critical-path op count per kind")
    rank_seconds = registry.gauge(
        "critical_path.rank_seconds", unit="s",
        description="critical-path time per rank")
    by_stream: Dict[str, float] = {}
    by_rank: Dict[int, float] = {}
    for entry in report.entries:
        by_stream[entry.stream] = (
            by_stream.get(entry.stream, 0.0) + entry.duration)
        mapped = rank_map.get(entry.rank, entry.rank)
        by_rank[mapped] = by_rank.get(mapped, 0.0) + entry.duration
        ops.inc(1, kind=entry.kind)
    total = report.makespan_seconds
    makespan.set(total)
    for stream, value in sorted(by_stream.items()):
        seconds.set(value, stream=stream)
        share.set(value / total if total > 0 else 0.0, stream=stream)
    for rank, value in sorted(by_rank.items()):
        rank_seconds.set(value, rank=rank)
    return registry


def _merged_intervals(spans) -> List[Tuple[float, float]]:
    """Merge possibly-overlapping (start, end) spans into disjoint ones."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def record_comm_overlap_metrics(
    sim: Simulator,
    registry: Optional[MetricsRegistry] = None,
    rank_map: Optional[Dict[int, int]] = None,
) -> MetricsRegistry:
    """Per-stream overlapped-vs-exposed communication accounting.

    For every rank and comm stream, splits each ``comm``-kind event's span
    into the part covered by that rank's compute events (overlapped — the
    Section 7.3.1 goal state) and the remainder (exposed on the timeline,
    even if nothing explicitly waited on it).  Writes, labeled by (mapped)
    rank and stream:

    * ``comm.total_seconds`` — comm-event span time;
    * ``comm.overlapped_seconds`` — the part hidden under compute;
    * ``comm.exposed_seconds`` — the part outside any compute event.
    """
    registry = registry or MetricsRegistry()
    rank_map = rank_map or {}
    total = registry.gauge(
        "comm.total_seconds", unit="s",
        description="comm time per rank and stream")
    overlapped = registry.gauge(
        "comm.overlapped_seconds", unit="s",
        description="comm time hidden under compute, per rank and stream")
    exposed = registry.gauge(
        "comm.exposed_seconds", unit="s",
        description="comm time outside any compute event, per rank/stream")
    for rank in sorted({e.rank for e in sim.events}):
        compute = _merged_intervals(
            (e.start, e.end) for e in sim.events_for(rank, kind="compute"))
        by_stream: Dict[str, Tuple[float, float]] = {}
        for event in sim.events_for(rank, kind="comm"):
            hidden = sum(
                max(0.0, min(event.end, ce) - max(event.start, cs))
                for cs, ce in compute
            )
            tot_s, ov_s = by_stream.get(event.stream, (0.0, 0.0))
            by_stream[event.stream] = (tot_s + event.duration, ov_s + hidden)
        label = rank_map.get(rank, rank)
        for stream, (tot_s, ov_s) in sorted(by_stream.items()):
            total.set(tot_s, rank=label, stream=stream)
            overlapped.set(ov_s, rank=label, stream=stream)
            exposed.set(tot_s - ov_s, rank=label, stream=stream)
    return registry
