"""Machine-readable run reports with a stable schema.

Every builder returns a plain JSON-able dict whose first key is
``"schema"`` — a ``repro.<what>/v<N>`` tag that only changes when a field
is renamed or removed (adding fields is backwards-compatible).  These are
the payloads behind the CLI ``--json`` flags and the format future
regression tracking in ``benchmarks/`` diffs against.

The step report folds in the metrics-registry view: per-rank busy/idle/
exposed-comm seconds and bubble ratios, rolled up per (dp, pp, ep, cp,
tp) group index through the :class:`repro.parallel.mesh.DeviceMesh` — the
pipeline executor's ranks are PP ranks, mapped onto the mesh's pp axis at
(tp, cp, dp) = 0.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.faults.goodput import GoodputReport
    from repro.resilience.run import RunResult
    from repro.verify.fuzz import FaultFuzzResult, FuzzResult
    from repro.verify.oracles import OracleResult

import numpy as np

from repro.cp.imbalance import FleetImbalanceReport
from repro.debug.trace_analysis import SlowRankReport
from repro.obs.metrics import (
    MetricsRegistry,
    pp_rank_map,
    record_simulator_metrics,
)
from repro.parallel.config import JobConfig, ParallelConfig
from repro.parallel.mesh import DIM_ORDER, DeviceMesh
from repro.parallel.planner import Plan
from repro.train.phases import PhaseReport
from repro.train.step import StepReport

#: Bumped when any report's existing fields change shape or meaning.
#: v2: step busy became compute-only (comm reported separately per kind),
#: and step time became the executed timeline's makespan.
SCHEMA_VERSION = 2


def _schema(name: str) -> str:
    return f"repro.{name}/v{SCHEMA_VERSION}"


def _parallel_dict(parallel: ParallelConfig) -> dict:
    return {
        "tp": parallel.tp,
        "cp": parallel.cp,
        "ep": parallel.ep,
        "pp": parallel.pp,
        "dp": parallel.dp,
        "zero": parallel.zero.value,
        "world_size": parallel.world_size,
    }


def _job_dict(job: JobConfig) -> dict:
    return {
        "seq": job.seq,
        "gbs": job.gbs,
        "ngpu": job.ngpu,
        "mbs": job.mbs,
        "tokens_per_step": job.tokens_per_step,
    }


def plan_report(plan: Plan) -> dict:
    """The Section 5 planner outcome plus its reasoning trail."""
    return {
        "schema": _schema("plan"),
        "parallel": _parallel_dict(plan.parallel),
        "job": _job_dict(plan.job),
        "bs": plan.bs,
        "virtual_stages": plan.virtual_stages,
        "schedule": plan.schedule,
        "estimated_rank0_memory_gb": plan.estimated_rank0_memory_gb,
        "rationale": list(plan.rationale),
        "candidates": [dict(c) for c in plan.candidates],
    }


def step_group_metrics(
    rep: StepReport,
    parallel: ParallelConfig,
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Per-(dp, pp, ep, cp, tp)-group aggregates of a simulated step.

    Records the step's pipeline timeline into a registry (unless an
    already-populated one is handed in) and rolls busy/idle/exposed-comm
    seconds (sum) and bubble ratio (mean) up each mesh dimension.
    """
    if registry is None or "sim.busy_seconds" not in registry:
        registry = record_simulator_metrics(
            rep.run.sim, registry, rank_map=pp_rank_map(parallel))
    mesh = DeviceMesh(parallel)
    out: dict = {}
    for name, reduce in (
        ("sim.busy_seconds", "sum"),
        ("sim.idle_seconds", "sum"),
        ("sim.exposed_comm_seconds", "sum"),
        ("sim.bubble_ratio", "mean"),
    ):
        short = name.removeprefix("sim.")
        out[short] = {
            dim: {str(i): v for i, v in
                  registry.aggregate_by_coord(name, mesh, dim, reduce).items()}
            for dim in DIM_ORDER
        }
    return out


def step_report(
    rep: StepReport,
    parallel: ParallelConfig,
    job: JobConfig,
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """One simulated optimizer step: headline numbers, per-rank detail,
    and mesh-group metric aggregates."""
    return {
        "schema": _schema("step"),
        "parallel": _parallel_dict(parallel),
        "job": _job_dict(job),
        "schedule": rep.schedule,
        "step_seconds": rep.step_seconds,
        "pipeline_seconds": rep.pipeline_seconds,
        "exposed_fsdp_seconds": rep.exposed_fsdp_seconds,
        "optimizer_seconds": rep.optimizer_seconds,
        "tflops_per_gpu": rep.tflops_per_gpu,
        "mfu": rep.mfu,
        "tokens_per_second": rep.tokens_per_second,
        "model_flops": rep.model_flops,
        "mean_bubble_ratio": rep.mean_bubble_ratio,
        "bubble_ratios": list(rep.run.bubble_ratios),
        "per_rank_busy_seconds": list(rep.run.per_rank_busy),
        "per_rank_comm_seconds": [
            dict(sorted(d.items())) for d in (rep.run.per_rank_comm or ())
        ],
        "per_rank_peak_memory_gb": list(rep.per_rank_peak_memory_gb),
        "max_peak_memory_gb": rep.max_peak_memory_gb,
        "expert_imbalance": rep.expert_imbalance,
        "dropped_token_fraction": rep.dropped_token_fraction,
        "groups": step_group_metrics(rep, parallel, registry),
    }


def phases_report(reports: Sequence[PhaseReport]) -> dict:
    """The pre-training progression (Section 2.2 / Table 2)."""
    return {
        "schema": _schema("phases"),
        "phases": [
            {
                "name": r.phase.name,
                "job": _job_dict(r.phase.job),
                "mask_fraction": r.phase.mask_fraction,
                "attention_straggler": r.phase.attention_straggler,
                "parallel": _parallel_dict(r.plan.parallel),
                "schedule": r.plan.schedule,
                "tflops_per_gpu": r.tflops_per_gpu,
                "step_seconds": r.step_seconds,
                "bubble_ratio": r.bubble_ratio,
                "max_memory_gb": r.max_memory_gb,
            }
            for r in reports
        ],
    }


def _array_summary(a: np.ndarray) -> dict:
    return {
        "min": float(a.min()),
        "max": float(a.max()),
        "mean": float(a.mean()),
    }


def imbalance_report(rep: FleetImbalanceReport) -> dict:
    """Figure 14 fleet-imbalance statistics."""
    return {
        "schema": _schema("imbalance"),
        "n_gpus": int(rep.compute_seconds.size),
        "elapsed_seconds": rep.elapsed_seconds,
        "slowest_over_fastest_compute": rep.slowest_over_fastest_compute,
        "slowest_over_fastest_attention": rep.slowest_over_fastest_attention,
        "cp_exposed_fraction": rep.cp_exposed_fraction,
        "waiting_fraction_of_exposed": rep.waiting_fraction_of_exposed,
        "overlap_headroom": rep.overlap_headroom,
        "attention_seconds": _array_summary(rep.attention_seconds),
        "compute_seconds": _array_summary(rep.compute_seconds),
        "exposed_cp_seconds": _array_summary(rep.exposed_cp_seconds),
        "wait_seconds": _array_summary(rep.wait_seconds),
    }


def slow_rank_report(rep: SlowRankReport) -> dict:
    """The Section 6.1 top-down search outcome, decisions as structured
    events (one per narrowing level, in search order)."""
    return {
        "schema": _schema("slow_rank"),
        "slow_rank": rep.slow_rank,
        "attribution": rep.attribution,
        "compute_excess_seconds": rep.compute_excess_seconds,
        "decisions": [
            {
                "event": "slow_rank.decision",
                "dim": d.dim,
                "chosen_index": d.chosen_index,
                "blame_seconds": d.blame_seconds,
                "candidates_before": d.candidates_before,
                "candidates_after": d.candidates_after,
            }
            for d in rep.decisions
        ],
    }


def faults_report(gp: "GoodputReport", parallel: ParallelConfig,
                  job: JobConfig) -> dict:
    """Goodput and detection outcome of one fault-injected step (the
    Section 6.1 loop closed): effective throughput vs. the healthy
    baseline, per-stream exposed-comm delta, and whether the top-down
    search localised the injected fault."""

    def _step_dict(rep) -> dict:
        return {
            "step_seconds": rep.step_seconds,
            "tokens_per_second": rep.tokens_per_second,
            "tflops_per_gpu": rep.tflops_per_gpu,
            "mfu": rep.mfu,
            "exposed_fsdp_seconds": rep.exposed_fsdp_seconds,
        }

    return {
        "schema": _schema("faults"),
        "parallel": _parallel_dict(parallel),
        "job": _job_dict(job),
        "plan": gp.plan.describe(),
        "faults": gp.plan.to_dicts(),
        "injection": gp.injection.to_dict(),
        "healthy": _step_dict(gp.healthy),
        "faulted": _step_dict(gp.faulted),
        "goodput": {
            "fraction": gp.goodput_fraction,
            "step_time_inflation": gp.step_time_inflation,
        },
        "exposed_comm_delta_seconds": dict(
            sorted(gp.exposed_comm_delta_seconds.items())),
        "detection": (gp.detection.to_dict()
                      if gp.detection is not None else None),
    }


def resilience_report(result: "RunResult") -> dict:
    """Goodput-over-wallclock outcome of one multi-step resilient run.

    Schema ``repro.resilience/v2`` is pinned independently of the global
    :data:`SCHEMA_VERSION`: the resilience subsystem's golden
    (``tests/golden/resilience_run.json``) byte-compares this builder's
    output, so the tag only moves when *these* fields change shape — not
    when the step/plan reports evolve.  v2 added the failure taxonomy,
    tiered checkpointing (per-tier intervals, write counts, restore
    choices), and the detect–mitigate decision log; a legacy iid/
    fail-stop/remote-only config reproduces every v1 number exactly
    (pinned by ``tests/golden/resilience_run_v1.json``).
    """
    cfg = result.config
    return {
        "schema": "repro.resilience/v2",
        "parallel": _parallel_dict(result.initial_plan.parallel),
        "job": _job_dict(result.initial_plan.job),
        "config": {
            "steps": cfg.steps,
            "mtbf_seconds": cfg.mtbf_seconds,
            "seed": cfg.seed,
            "elastic": cfg.elastic,
            "replacement_seconds": cfg.replacement_seconds,
            "restart_overhead_seconds": cfg.restart_overhead_seconds,
            "node_loss_fraction": cfg.node_loss_fraction,
            "retry_fraction": cfg.retry_fraction,
            "retry_success_p": cfg.retry_success_p,
            "retry_policy": cfg.retry_policy.to_dict(),
            "taxonomy": cfg.effective_taxonomy.to_dict(),
            "mitigation": cfg.mitigation,
            "detector": cfg.detector.to_dict(),
        },
        "policy": dict(cfg.policy.to_dict(),
                       description=cfg.policy.describe()),
        "interval_steps": result.interval_steps,
        "tier_intervals": dict(sorted(result.tier_intervals.items())),
        "tier_writes": dict(sorted(result.tier_writes.items())),
        "ideal_step_seconds": result.ideal_step_seconds,
        "ideal_seconds": result.ideal_seconds,
        "elapsed_seconds": result.elapsed_seconds,
        "steps_completed": result.steps_completed,
        "completed": result.completed,
        "truncated_reason": result.truncated_reason,
        "goodput": {
            "fraction": result.goodput_fraction,
            "tokens_per_step": result.tokens_per_step,
            "achieved_tokens": result.achieved_tokens,
            "ideal_tokens": result.ideal_tokens,
            "tokens_per_second": result.tokens_per_second,
        },
        "buckets_seconds": dict(result.buckets),
        "counters": dict(result.counters),
        "failures": [dict(f) for f in result.failures],
        "segments": [dict(s) for s in result.segments],
        "restores": [dict(r) for r in result.restores],
        "mitigations": [dict(m) for m in result.mitigations],
    }


def survivability_report(model=None, cluster=None, ngpu: int = 0) -> dict:
    """The failure-domain × checkpoint-tier survivability matrix, plus —
    when a (model, cluster, ngpu) scenario is given — the per-tier
    write/read pricing that matrix trades against.

    Schema ``repro.survivability/v1``: pinned byte-stable by
    ``tests/golden/resilience_survivability.json``.
    """
    from repro.resilience.tiers import (
        survivability_matrix,
        tier_read_seconds,
        tier_write_seconds,
        TIER_NAMES,
    )

    out: dict = {
        "schema": "repro.survivability/v1",
        "survivability": survivability_matrix(),
    }
    if model is not None and cluster is not None and ngpu > 0:
        out["scenario"] = {
            "ngpu": ngpu,
            "tier_write_seconds": {
                tier: tier_write_seconds(tier, model, cluster, ngpu)
                for tier in TIER_NAMES},
            "tier_read_seconds": {
                tier: tier_read_seconds(tier, model, cluster, ngpu)
                for tier in TIER_NAMES},
        }
    return out


def analysis_report(
    parallel: Optional[ParallelConfig] = None,
    job: Optional[JobConfig] = None,
    critical_path=None,
    diff=None,
    ingest=None,
    top: int = 10,
    blame_threshold: float = 0.05,
) -> dict:
    """Trace-analytics outcome: critical path, run diff, or ingestion.

    Schema ``repro.analysis/v1`` is pinned independently of the global
    :data:`SCHEMA_VERSION` (same convention as ``repro.resilience/v1``):
    the analytics subsystem shipped against v1 and its golden
    (``tests/golden/analysis_step.json``) byte-compares this builder's
    output.  Sections are present only when their analysis ran:
    ``critical_path`` (a
    :class:`repro.analysis.critical_path.CriticalPathReport`), ``diff``
    (a :class:`repro.analysis.diff.TraceDiff`), and ``ingest`` (a
    :class:`repro.analysis.streaming.StreamingTraceAggregator`).
    """
    out: dict = {"schema": "repro.analysis/v1"}
    if parallel is not None:
        out["parallel"] = _parallel_dict(parallel)
    if job is not None:
        out["job"] = _job_dict(job)
    if critical_path is not None:
        out["critical_path"] = critical_path.to_dict(top=top)
    if diff is not None:
        out["diff"] = diff.to_dict(top=top, threshold=blame_threshold)
    if ingest is not None:
        out["ingest"] = ingest.to_dict()
    return out


def verify_report(
    fuzz: Optional["FuzzResult"],
    oracles: Sequence["OracleResult"] = (),
    step_invariants: Optional[dict] = None,
    fault_fuzz: Optional["FaultFuzzResult"] = None,
    engine_fuzz: Optional["EngineFuzzResult"] = None,
    resilience_fuzz=None,
) -> dict:
    """The verification subsystem's outcome (Section 6.2 methodology).

    ``ok`` aggregates the fuzz campaign (schedule-property,
    fault-randomizing, engine-differential, and/or resilience
    taxonomy-sampling), every oracle, and (when run) the step-graph
    timeline invariants; each fuzz failure carries its minimal shrunk
    reproducer, so re-running ``repro verify --seed <seed>`` (or
    building the shrunk config directly) reproduces the finding.  Any
    fuzz campaign may be omitted (None); its key is then absent.
    """
    oracle_dicts = [o.to_dict() for o in oracles]
    ok = all(o["ok"] for o in oracle_dicts)
    if fuzz is not None:
        ok = ok and fuzz.ok
    if fault_fuzz is not None:
        ok = ok and fault_fuzz.ok
    if engine_fuzz is not None:
        ok = ok and engine_fuzz.ok
    if resilience_fuzz is not None:
        ok = ok and resilience_fuzz.ok
    if step_invariants is not None:
        ok = ok and step_invariants.get("ok", False)
    out = {
        "schema": _schema("verify"),
        "ok": ok,
        "oracles": oracle_dicts,
    }
    if fuzz is not None:
        out["fuzz"] = fuzz.to_dict()
    if fault_fuzz is not None:
        out["fault_fuzz"] = fault_fuzz.to_dict()
    if engine_fuzz is not None:
        out["engine_fuzz"] = engine_fuzz.to_dict()
    if resilience_fuzz is not None:
        out["resilience_fuzz"] = resilience_fuzz.to_dict()
    if step_invariants is not None:
        out["step_invariants"] = step_invariants
    return out


def render_json(report: dict) -> str:
    """Canonical serialization: sorted keys, two-space indent."""
    return json.dumps(report, indent=2, sort_keys=True)
