"""Unified observability: trace export, metrics, and run reports.

Every simulation in this repository ultimately produces either a
:class:`repro.sim.engine.Simulator` timeline or a report dataclass.  This
package turns both into inspectable artifacts:

* :mod:`repro.obs.trace` — serialize a timeline to Chrome/Perfetto
  ``trace_event`` JSON, openable in ``ui.perfetto.dev`` (the Section 6.1
  debugging workflow starts from exactly such traces).
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry the
  pipeline executor, CP all-gather path, FSDP emulator, and slow-rank
  debugger report into, with aggregation across (dp, pp, cp, tp) mesh
  group indices.
* :mod:`repro.obs.report` — stable-schema JSON renderings of planner,
  step, phase, imbalance, and slow-rank results (the ``--json`` CLI
  surface and the hook point for regression tracking).

The report layer depends on :mod:`repro.train`, which itself reports into
the metrics layer — so ``repro.obs.report`` names are loaded lazily here
(PEP 562) to keep ``from repro.obs.metrics import ...`` cycle-free for
the instrumented modules.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    pp_rank_map,
    record_simulator_metrics,
)
from repro.obs.trace import (
    assert_valid_trace,
    export_chrome_trace,
    merge_timelines,
    remap_ranks,
    trace_event_dicts,
    validate_trace,
)

_REPORT_NAMES = (
    "SCHEMA_VERSION",
    "plan_report",
    "step_report",
    "step_group_metrics",
    "phases_report",
    "imbalance_report",
    "slow_rank_report",
    "resilience_report",
    "render_json",
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "pp_rank_map",
    "record_simulator_metrics",
    "assert_valid_trace",
    "export_chrome_trace",
    "merge_timelines",
    "remap_ranks",
    "trace_event_dicts",
    "validate_trace",
    *_REPORT_NAMES,
]


def __getattr__(name: str):
    if name in _REPORT_NAMES:
        from repro.obs import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
