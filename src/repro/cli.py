"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan``      — run the Section 5 planner for a model and phase.
* ``step``      — simulate one training step and report throughput/memory.
* ``phases``    — plan the full production pre-training progression.
* ``ordering``  — score all parallelism-dimension orderings (Section 5.2).
* ``imbalance`` — run the Figure 14 fleet-imbalance simulation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.hardware.cluster import grand_teton
from repro.model import config as model_config
from repro.model.config import TextModelConfig
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.parallel.ordering import PAPER_ORDER, rank_orderings
from repro.parallel.planner import plan_parallelism

MODELS = {
    "8b": model_config.LLAMA3_8B,
    "70b": model_config.LLAMA3_70B,
    "405b": model_config.LLAMA3_405B,
    "405b-26l": model_config.LLAMA3_405B_SCALED_26L,
    "405b-28l": model_config.LLAMA3_405B_SCALED_28L,
}


def _model(name: str) -> TextModelConfig:
    try:
        return MODELS[name]
    except KeyError:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(MODELS)}"
        )


def _add_job_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", default="405b", help="model preset")
    p.add_argument("--seq", type=int, default=8192, help="sequence length")
    p.add_argument("--gbs", type=int, default=2048,
                   help="global batch size (sequences)")
    p.add_argument("--ngpu", type=int, default=16384, help="GPU count")


def cmd_plan(args: argparse.Namespace) -> int:
    cluster = grand_teton(args.ngpu)
    job = JobConfig(seq=args.seq, gbs=args.gbs, ngpu=args.ngpu)
    plan = plan_parallelism(_model(args.model), job, cluster)
    print(plan.describe())
    return 0


def cmd_step(args: argparse.Namespace) -> int:
    from repro.train.step import simulate_step

    cluster = grand_teton(args.ngpu)
    job = JobConfig(seq=args.seq, gbs=args.gbs, ngpu=args.ngpu)
    model = _model(args.model)
    if args.tp * args.cp * args.pp * args.dp != args.ngpu:
        raise SystemExit("tp*cp*pp*dp must equal ngpu")
    par = ParallelConfig(tp=args.tp, cp=args.cp, pp=args.pp, dp=args.dp,
                         zero=ZeroStage(args.zero))
    rep = simulate_step(model, par, job, cluster,
                        schedule_kind=args.schedule)
    print(f"step time:      {rep.step_seconds:.3f} s")
    print(f"throughput:     {rep.tflops_per_gpu:.0f} TFLOPs/GPU")
    print(f"bubble ratio:   {rep.mean_bubble_ratio:.3f}")
    print(f"peak memory:    {rep.max_peak_memory_gb:.1f} GiB "
          f"(worst rank of {par.pp})")
    return 0


def cmd_phases(args: argparse.Namespace) -> int:
    from repro.train.phases import describe_pretraining, plan_pretraining

    cluster = grand_teton(args.ngpu)
    reports = plan_pretraining(_model(args.model), cluster)
    print(describe_pretraining(reports))
    return 0


def cmd_ordering(args: argparse.Namespace) -> int:
    cluster = grand_teton(args.ngpu)
    job = JobConfig(seq=args.seq, gbs=args.gbs, ngpu=args.ngpu)
    model = _model(args.model)
    par = ParallelConfig(tp=args.tp, cp=args.cp, pp=args.pp, dp=args.dp)
    scores = rank_orderings(model, par, job, cluster)
    for s in scores:
        marker = "  <- paper" if s.order == PAPER_ORDER else ""
        print(f"{'-'.join(s.order).upper():16s} "
              f"{s.exposed_seconds:8.2f} s exposed{marker}")
    return 0


def cmd_imbalance(args: argparse.Namespace) -> int:
    from repro.cp.imbalance import simulate_fleet_imbalance

    cluster = grand_teton(args.ngpu)
    rep = simulate_fleet_imbalance(
        cluster, seq=args.seq, cp=args.cp, n_dp_groups=args.dp,
        steps=args.steps, mean_doc_len=args.mean_doc,
        rng=np.random.default_rng(args.seed),
    )
    print(f"slowest/fastest compute:  "
          f"{rep.slowest_over_fastest_compute:.2f}x")
    print(f"CP exposed latency share: {rep.cp_exposed_fraction:.2%}")
    print(f"waiting share of exposed: "
          f"{rep.waiting_fraction_of_exposed:.2%}")
    print(f"overlap-CP headroom:      {rep.overlap_headroom:.2%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scaling Llama 3 Training with "
                    "Efficient Parallelism Strategies' (ISCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="derive 4D parallelism (Section 5)")
    _add_job_args(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("step", help="simulate one training step")
    _add_job_args(p)
    p.add_argument("--tp", type=int, default=8)
    p.add_argument("--cp", type=int, default=1)
    p.add_argument("--pp", type=int, default=16)
    p.add_argument("--dp", type=int, default=128)
    p.add_argument("--zero", type=int, default=2, choices=(1, 2, 3))
    p.add_argument("--schedule", default="flexible",
                   choices=("flexible", "1f1b", "afab"))
    p.set_defaults(func=cmd_step)

    p = sub.add_parser("phases", help="plan the pre-training phases")
    p.add_argument("--model", default="405b")
    p.add_argument("--ngpu", type=int, default=16384)
    p.set_defaults(func=cmd_phases)

    p = sub.add_parser("ordering",
                       help="score dimension orderings (Section 5.2)")
    _add_job_args(p)
    p.set_defaults(seq=131072, gbs=128)
    p.add_argument("--tp", type=int, default=8)
    p.add_argument("--cp", type=int, default=16)
    p.add_argument("--pp", type=int, default=16)
    p.add_argument("--dp", type=int, default=8)
    p.set_defaults(func=cmd_ordering)

    p = sub.add_parser("imbalance",
                       help="fleet document-mask imbalance (Figure 14)")
    p.add_argument("--ngpu", type=int, default=8192)
    p.add_argument("--seq", type=int, default=131072)
    p.add_argument("--cp", type=int, default=16)
    p.add_argument("--dp", type=int, default=32, help="DP groups simulated")
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--mean-doc", type=float, default=32768.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_imbalance)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
