"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan``      — run the Section 5 planner for a model and phase.
* ``step``      — simulate one training step and report throughput/memory.
* ``phases``    — plan the full production pre-training progression.
* ``ordering``  — score all parallelism-dimension orderings (Section 5.2).
* ``imbalance`` — run the Figure 14 fleet-imbalance simulation.
* ``trace``     — run a simulation and export its Perfetto timeline
  (``--out PATH`` or ``--stdout`` for piping into ``repro analyze``).
* ``analyze``   — trace analytics (see ``docs/analysis.md``): the
  critical path of a simulated step (with exact makespan tiling and
  per-op slack), run-vs-run diffing with regression blame
  (``--diff BASELINE`` or ``--fault SPEC``), or constant-memory
  streaming ingestion of a trace file (``--ingest PATH|-``).
* ``faults``    — inject a declarative fault plan into one step (or a
  named ``--preset``), report goodput vs. the healthy baseline, and
  score the Section 6.1 slow-rank localisation against the injected
  truth (see ``docs/faults.md``).
* ``verify``    — run the verification subsystem: differential oracles
  plus a seeded invariant fuzz over schedule configurations — or, with
  ``--faults``, a fault-randomizing fuzz of the localisation loop;
  exits 1 when any violation is found (see ``docs/verification.md``).
* ``run``       — simulate a multi-step run under a seeded failure
  process with a checkpoint/restart policy (``none``, ``fixed:N``, or
  Young/Daly-optimal) and report goodput over wall-clock
  (see ``docs/resilience.md``).
* ``schedules`` — list every registered pipeline schedule (the
  ``--schedule`` choices come from this registry; see
  ``docs/schedules.md``).

``--schedule KIND`` on ``step``/``trace``/``analyze``/``faults``/
``run``/``verify`` picks any registered pipeline schedule;
``plan --schedule`` additionally accepts ``all`` to sweep the schedule
as a cost-aware planning axis.

Observability surface (see ``docs/observability.md``):

* ``--json`` on ``plan``/``step``/``phases``/``imbalance``/``faults``/
  ``verify``/``run`` emits the stable-schema reports from
  :mod:`repro.obs.report` instead of text;
* ``--trace PATH`` on ``step``/``phases``/``faults``/``verify``/``run``
  writes the simulated timeline as Chrome ``trace_event`` JSON, openable
  in ``ui.perfetto.dev``;
* usage errors (unknown model or phase, inconsistent sizes) exit with
  code 2 and a one-line message on stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, NoReturn, Optional

import numpy as np

from repro.hardware.cluster import grand_teton
from repro.model import config as model_config
from repro.model.config import TextModelConfig
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.parallel.ordering import PAPER_ORDER, rank_orderings
from repro.parallel.planner import plan_parallelism
from repro.pp.registry import schedule_entries, schedule_kinds

MODELS = {
    "8b": model_config.LLAMA3_8B,
    "70b": model_config.LLAMA3_70B,
    "405b": model_config.LLAMA3_405B,
    "405b-26l": model_config.LLAMA3_405B_SCALED_26L,
    "405b-28l": model_config.LLAMA3_405B_SCALED_28L,
}


def _fail(message: str) -> NoReturn:
    """One-line usage error on stderr, exit code 2 (argparse convention)."""
    print(f"repro: error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _model(name: str) -> TextModelConfig:
    try:
        return MODELS[name]
    except KeyError:
        _fail(f"unknown model {name!r}; choose from {sorted(MODELS)}")


def _print_json(report: dict) -> None:
    from repro.obs.report import render_json

    print(render_json(report))


def _step_parallel(args: argparse.Namespace) -> ParallelConfig:
    ep = getattr(args, "ep", 1)
    world = args.tp * args.cp * ep * args.pp * args.dp
    if world != args.ngpu:
        _fail(
            f"tp*cp*ep*pp*dp = {world} must equal ngpu = {args.ngpu}"
        )
    return ParallelConfig(tp=args.tp, cp=args.cp, ep=ep, pp=args.pp,
                          dp=args.dp, zero=ZeroStage(args.zero))


def _moe_model(args: argparse.Namespace) -> TextModelConfig:
    """The job's model, switched to its MoE variant when ``--experts`` is
    given (``repro step --experts N --ep E`` is the MoE surface)."""
    model = _model(args.model)
    experts = getattr(args, "experts", None)
    if experts:
        try:
            model = model.moe_variant(experts, top_k=args.top_k)
        except ValueError as err:
            _fail(str(err))
    return model


def _add_job_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--model", default="405b", help="model preset")
    p.add_argument("--seq", type=int, default=8192, help="sequence length")
    p.add_argument("--gbs", type=int, default=2048,
                   help="global batch size (sequences)")
    p.add_argument("--ngpu", type=int, default=16384, help="GPU count")
    p.add_argument("--experts", type=int, default=None, metavar="N",
                   help="use the model's MoE variant with N experts per "
                        "FFN (enables --ep)")
    p.add_argument("--top-k", type=int, default=2,
                   help="experts each token routes to (with --experts)")


def _add_step_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--tp", type=int, default=8)
    p.add_argument("--cp", type=int, default=1)
    p.add_argument("--ep", type=int, default=1,
                   help="expert-parallel size (MoE models; must divide "
                        "the expert count)")
    p.add_argument("--pp", type=int, default=16)
    p.add_argument("--dp", type=int, default=128)
    p.add_argument("--zero", type=int, default=2, choices=(1, 2, 3))
    p.add_argument("--schedule", default="flexible",
                   choices=schedule_kinds(),
                   help="pipeline schedule kind (see `repro schedules`)")


def cmd_plan(args: argparse.Namespace) -> int:
    cluster = grand_teton(args.ngpu)
    job = JobConfig(seq=args.seq, gbs=args.gbs, ngpu=args.ngpu)
    plan = plan_parallelism(_moe_model(args), job, cluster,
                            cost_aware=args.cost_aware,
                            schedule_kind=args.schedule)
    if args.json:
        from repro.obs.report import plan_report

        _print_json(plan_report(plan))
        return 0
    print(plan.describe())
    if plan.candidates:
        print("candidates (simulated, best first):")
        for c in plan.candidates:
            kind = c.get("schedule_kind")
            suffix = f"  [{kind}]" if kind else ""
            ep = c.get("ep", 1)
            ep_col = f"ep={ep:<3d} " if ep > 1 else ""
            if c["feasible"]:
                print(f"  tp={c['tp']:<2d} pp={c['pp']:<3d} cp={c['cp']:<3d} "
                      f"{ep_col}dp={c['dp']:<4d} {c['tflops_per_gpu']:6.0f} "
                      f"TFLOPs/GPU{suffix}")
            else:
                print(f"  tp={c['tp']:<2d} pp={c['pp']:<3d} {ep_col}"
                      f"infeasible: {c['reason']}")
    return 0


def cmd_step(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.train.step import simulate_step

    cluster = grand_teton(args.ngpu)
    job = JobConfig(seq=args.seq, gbs=args.gbs, ngpu=args.ngpu)
    model = _moe_model(args)
    par = _step_parallel(args)
    metrics = MetricsRegistry()
    rep = simulate_step(model, par, job, cluster,
                        schedule_kind=args.schedule, metrics=metrics,
                        stage_preset=getattr(args, "stage_preset", None))
    if args.trace:
        _export_step_trace(rep, par, args.trace)
    if args.json:
        from repro.obs.report import step_report

        _print_json(step_report(rep, par, job, metrics))
        return 0
    print(f"step time:      {rep.step_seconds:.3f} s")
    print(f"throughput:     {rep.tflops_per_gpu:.0f} TFLOPs/GPU")
    print(f"MFU:            {rep.mfu:.1%}")
    print(f"tokens/s:       {rep.tokens_per_second:,.0f}")
    print(f"bubble ratio:   {rep.mean_bubble_ratio:.3f}")
    print(f"peak memory:    {rep.max_peak_memory_gb:.1f} GiB "
          f"(worst rank of {par.pp})")
    if isinstance(args.trace, str):
        print(f"trace written:  {args.trace} (open in ui.perfetto.dev)")
    return 0


def _export_step_trace(rep, par: ParallelConfig, path: str) -> None:
    from repro.obs.metrics import pp_rank_map
    from repro.obs.trace import export_chrome_trace, remap_ranks
    from repro.parallel.mesh import DeviceMesh

    sim = remap_ranks(rep.run.sim, pp_rank_map(par))
    export_chrome_trace(
        sim, path, mesh=DeviceMesh(par),
        extra_metadata={"parallel": par.describe()},
    )


def cmd_phases(args: argparse.Namespace) -> int:
    from repro.train.phases import (
        LLAMA3_405B_PHASES,
        describe_pretraining,
        phases_by_name,
        plan_pretraining,
    )

    cluster = grand_teton(args.ngpu)
    phases = LLAMA3_405B_PHASES
    if args.phase:
        try:
            phases = phases_by_name(args.phase)
        except KeyError as err:
            _fail(str(err.args[0]))
    reports = plan_pretraining(_model(args.model), cluster, phases=phases)
    if args.trace:
        from repro.obs.trace import export_chrome_trace, merge_timelines

        merged = merge_timelines(
            (r.phase.name, r.step.run.sim) for r in reports
        )
        export_chrome_trace(merged, args.trace)
    if args.json:
        from repro.obs.report import phases_report

        _print_json(phases_report(reports))
        return 0
    print(describe_pretraining(reports))
    if isinstance(args.trace, str):
        print(f"trace written: {args.trace} (open in ui.perfetto.dev)")
    return 0


def cmd_ordering(args: argparse.Namespace) -> int:
    cluster = grand_teton(args.ngpu)
    job = JobConfig(seq=args.seq, gbs=args.gbs, ngpu=args.ngpu)
    model = _moe_model(args)
    par = ParallelConfig(tp=args.tp, cp=args.cp, pp=args.pp, dp=args.dp)
    scores = rank_orderings(model, par, job, cluster)
    for s in scores:
        marker = "  <- paper" if s.order == PAPER_ORDER else ""
        print(f"{'-'.join(s.order).upper():16s} "
              f"{s.exposed_seconds:8.2f} s exposed{marker}")
    return 0


def cmd_imbalance(args: argparse.Namespace) -> int:
    from repro.cp.imbalance import simulate_fleet_imbalance

    cluster = grand_teton(args.ngpu)
    rep = simulate_fleet_imbalance(
        cluster, seq=args.seq, cp=args.cp, n_dp_groups=args.dp,
        steps=args.steps, mean_doc_len=args.mean_doc,
        rng=np.random.default_rng(args.seed),
    )
    if args.json:
        from repro.obs.report import imbalance_report

        _print_json(imbalance_report(rep))
        return 0
    print(f"slowest/fastest compute:  "
          f"{rep.slowest_over_fastest_compute:.2f}x")
    print(f"CP exposed latency share: {rep.cp_exposed_fraction:.2%}")
    print(f"waiting share of exposed: "
          f"{rep.waiting_fraction_of_exposed:.2%}")
    print(f"overlap-CP headroom:      {rep.overlap_headroom:.2%}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one simulation and export its timeline (``--cmd`` selects
    which): a training step, the phase progression, or the Figure 8
    synthetic 4D workload with an optional injected straggler.

    With ``--stdout`` the trace JSON is the only thing written to
    stdout (the human-readable summary moves to stderr), so the output
    pipes cleanly into ``repro analyze --ingest -``.
    """
    if args.stdout and args.out:
        _fail("--stdout and --out are mutually exclusive")
    if not args.stdout and not args.out:
        _fail("trace needs a destination: --out PATH or --stdout")
    if args.stdout:
        import contextlib

        dest = sys.stdout
        with contextlib.redirect_stdout(sys.stderr):
            return _run_trace(args, dest)
    return _run_trace(args, args.out)


def _run_trace(args: argparse.Namespace, out) -> int:
    if args.cmd == "step":
        args.trace, args.json = out, False
        return cmd_step(args)
    if args.cmd == "phases":
        args.trace, args.json, args.phase = out, False, None
        return cmd_phases(args)

    # --cmd workload: Section 6.1 end to end — run, export, localise.
    from repro.debug.trace_analysis import identify_slow_rank
    from repro.debug.workload import WorkloadSpec, run_synthetic_workload
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import export_chrome_trace
    from repro.parallel.mesh import DeviceMesh

    world = args.tp * args.cp * args.ep * args.pp * args.dp
    if world > 512:
        _fail(f"workload traces every rank; keep tp*cp*ep*pp*dp <= 512 "
              f"(got {world}) — e.g. --tp 4 --cp 2 --pp 1 --dp 1")
    mesh = DeviceMesh(ParallelConfig(tp=args.tp, cp=args.cp, ep=args.ep,
                                     pp=args.pp, dp=args.dp))
    slowdown = {}
    if args.slow_rank is not None:
        if not 0 <= args.slow_rank < mesh.world_size:
            _fail(f"--slow-rank {args.slow_rank} outside world "
                  f"[0, {mesh.world_size})")
        slowdown[args.slow_rank] = args.slowdown
    sim = run_synthetic_workload(mesh, WorkloadSpec(steps=args.steps),
                                 slowdown=slowdown)
    export_chrome_trace(sim, out, mesh=mesh)
    metrics = MetricsRegistry()
    report = identify_slow_rank(sim, mesh, metrics=metrics)
    print(report.describe())
    if isinstance(out, str):
        print(f"trace written: {out} (open in ui.perfetto.dev)")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Trace analytics: critical path of a simulated step, run-vs-run
    diff with regression blame, or streaming ingestion of a trace file
    (see ``docs/analysis.md``)."""
    from repro.analysis import (
        StreamingTraceAggregator,
        diff_traces,
        extract_critical_path,
        iter_trace_events,
    )
    from repro.obs.report import analysis_report

    if args.top < 1:
        _fail(f"--top must be >= 1 (got {args.top})")
    if not 0.0 < args.blame_threshold <= 1.0:
        _fail(f"--blame-threshold must be in (0, 1] "
              f"(got {args.blame_threshold})")

    if args.ingest is not None:
        for value, flag in ((args.diff, "--diff"), (args.fault, "--fault"),
                            (args.trace, "--trace"),
                            (args.critical_path, "--critical-path")):
            if value:
                _fail(f"--ingest cannot be combined with {flag} "
                      "(ingestion is single-pass and graph-free)")
        agg = StreamingTraceAggregator(top_k=args.top)
        try:
            source = sys.stdin if args.ingest == "-" else args.ingest
            agg.consume(iter_trace_events(source))
        except ValueError as err:
            _fail(str(err))
        if args.json:
            _print_json(analysis_report(ingest=agg, top=args.top))
            return 0
        summary = agg.to_dict()
        print(f"events:    {agg.n_events:,} across {agg.n_ranks} ranks")
        print(f"makespan:  {agg.makespan:.3f} s")
        for lane, s in summary["streams"].items():
            print(f"  {lane:<24s} {s['count']:>9,d} events  "
                  f"{s['total_seconds']:>12.3f} s total  "
                  f"mean {s['mean_seconds']:.6f} s")
        if summary["top_slowest"]:
            print(f"top {len(summary['top_slowest'])} slowest:")
            for row in summary["top_slowest"]:
                print(f"  {row['duration_seconds']:>10.6f} s  {row['name']} "
                      f"(rank {row['rank']}, {row['stream']}/{row['kind']})")
        return 0

    if args.diff and args.fault:
        _fail("--diff and --fault are mutually exclusive (a --fault run "
              "diffs against its own healthy baseline)")

    from repro.obs.metrics import (
        MetricsRegistry,
        pp_rank_map,
        record_critical_path_metrics,
    )
    from repro.train.step import simulate_step

    cluster = grand_teton(args.ngpu)
    job = JobConfig(seq=args.seq, gbs=args.gbs, ngpu=args.ngpu)
    model = _moe_model(args)
    par = _step_parallel(args)
    plan = None
    if args.fault:
        from repro.faults import FaultPlan, parse_fault_spec

        try:
            plan = FaultPlan(tuple(parse_fault_spec(s) for s in args.fault))
        except ValueError as err:
            _fail(str(err))
    metrics = MetricsRegistry()
    try:
        rep = simulate_step(model, par, job, cluster,
                            schedule_kind=args.schedule, metrics=metrics,
                            fault_plan=plan)
    except ValueError as err:
        _fail(str(err))
    cp = extract_critical_path(rep.execution.graph, rep.execution.events,
                               makespan=rep.step_seconds)
    record_critical_path_metrics(cp, metrics, rank_map=pp_rank_map(par))
    diff = None
    if args.diff:
        from repro.obs.trace import remap_ranks

        try:
            baseline = list(iter_trace_events(args.diff))
        except ValueError as err:
            _fail(str(err))
        # Exported traces carry global mesh ranks; remap the fresh run
        # into the same rank space before aligning.
        current = remap_ranks(rep.run.sim, pp_rank_map(par)).events
        diff = diff_traces(baseline, current)
    elif plan is not None:
        healthy = simulate_step(model, par, job, cluster,
                                schedule_kind=args.schedule)
        diff = diff_traces(healthy.run.sim.events, rep.run.sim.events)
    if args.trace:
        from repro.obs.trace import (
            critical_path_annotations,
            export_chrome_trace,
            remap_ranks,
        )
        from repro.parallel.mesh import DeviceMesh

        rank_map = pp_rank_map(par)
        out_sim = remap_ranks(rep.run.sim, rank_map)
        annotations = critical_path_annotations(
            out_sim.events, cp.entries, rank_map=rank_map)
        export_chrome_trace(
            out_sim, args.trace, mesh=DeviceMesh(par),
            extra_metadata={"parallel": par.describe()},
            extra_events=annotations)
    if args.json:
        _print_json(analysis_report(
            parallel=par, job=job, critical_path=cp, diff=diff,
            top=args.top, blame_threshold=args.blame_threshold))
        return 0
    print(f"step time:      {cp.makespan_seconds:.3f} s")
    print(f"critical path:  {cp.n_ops} ops, tiles the makespan "
          f"{'exactly' if cp.exact else 'INEXACTLY'}")
    for stream, share in sorted(cp.share_by_stream.items(),
                                key=lambda kv: (-kv[1], kv[0])):
        print(f"  {stream:<8s} {cp.seconds_by_stream[stream]:>10.3f} s  "
              f"({share:.1%} of step)")
    if args.critical_path:
        print("chain (chronological):")
        for e in cp.entries:
            print(f"  [{e.stream:<7s}] rank {e.rank:<3d} {e.name:<24s} "
                  f"{e.duration:>10.6f} s  (slack {e.slack:.2e}, "
                  f"via {e.via})")
    else:
        longest = sorted(cp.entries,
                         key=lambda e: (-e.duration, e.start))[:args.top]
        print(f"top {len(longest)} path ops by duration:")
        for e in longest:
            print(f"  {e.duration:>10.6f} s  {e.name} "
                  f"(rank {e.rank}, {e.stream})")
    if diff is not None:
        print(f"regression:     {diff.regression_seconds:+.3f} s "
              f"(baseline {diff.baseline_makespan:.3f} s -> "
              f"current {diff.current_makespan:.3f} s)")
        blamed = diff.blame(threshold=args.blame_threshold)
        if blamed:
            print(f"blame (buckets >= {args.blame_threshold:.0%} "
                  "of the regression):")
            for b in blamed:
                names = ", ".join(o.name for o in b.top_ops)
                print(f"  {b.kind}/{b.stream}: {b.delta_seconds:+.3f} s "
                      f"over {b.n_ops} ops ({b.n_faulted} tagged faulted) "
                      f"— worst: {names}")
        else:
            print("blame: no bucket above threshold")
        if abs(diff.exposed_wait_delta_seconds) > 1e-9:
            print(f"exposed waits:  "
                  f"{diff.exposed_wait_delta_seconds:+.3f} s "
                  "(downstream symptom, not bucketed)")
    if args.trace:
        print(f"trace written:  {args.trace} (open in ui.perfetto.dev)")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run one step healthy and under a fault plan, then report goodput
    and the localisation verdict."""
    from repro.faults import (
        FaultPlan,
        fault_preset,
        parse_fault_spec,
        run_goodput,
    )
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator

    cluster = grand_teton(args.ngpu)
    job = JobConfig(seq=args.seq, gbs=args.gbs, ngpu=args.ngpu)
    model = _moe_model(args)
    par = _step_parallel(args)
    if args.fault:
        try:
            faults = tuple(parse_fault_spec(s) for s in args.fault)
        except ValueError as err:
            _fail(str(err))
        plan = FaultPlan(faults)
    else:
        try:
            plan = fault_preset(args.preset, par.world_size)
        except ValueError as err:
            _fail(str(err))
    metrics = MetricsRegistry()
    faulted_sim = Simulator() if args.trace else None
    try:
        gp = run_goodput(
            model, par, job, cluster, plan=plan,
            schedule_kind=args.schedule, detect=not args.no_detect,
            metrics=metrics, faulted_sim=faulted_sim)
    except ValueError as err:
        _fail(str(err))
    if args.trace:
        _export_step_trace(gp.faulted, par, args.trace)
    if args.json:
        from repro.obs.report import faults_report

        _print_json(faults_report(gp, par, job))
        return 0
    print(f"fault plan:       {plan.describe()}")
    print(f"ops faulted:      {gp.injection.ops_faulted} "
          f"(+{gp.injection.extra_seconds:.3f} s priced)")
    print(f"step time:        {gp.healthy.step_seconds:.3f} s -> "
          f"{gp.faulted.step_seconds:.3f} s "
          f"(x{gp.step_time_inflation:.2f})")
    print(f"tokens/s:         {gp.healthy.tokens_per_second:,.0f} -> "
          f"{gp.faulted.tokens_per_second:,.0f}")
    print(f"MFU:              {gp.healthy.mfu:.1%} -> {gp.faulted.mfu:.1%}")
    print(f"goodput fraction: {gp.goodput_fraction:.1%}")
    delta = {k: v for k, v in gp.exposed_comm_delta_seconds.items()
             if abs(v) > 1e-9}
    if delta:
        parts = ", ".join(f"{k} {v:+.3f} s" for k, v in sorted(delta.items()))
        print(f"exposed comm:     {parts}")
    if gp.detection is not None:
        d = gp.detection
        verdict = ("exact hit" if d.exact_hit
                   else "miss" if d.scorable else "unscored")
        expected = d.expected_rank if d.expected_rank is not None else "-"
        print(f"detection:        rank {d.detected_rank} "
              f"({d.attribution}-bound), expected {expected} -> {verdict} "
              f"after {d.levels_descended} levels")
    if args.trace:
        print(f"trace written:    {args.trace} (open in ui.perfetto.dev)")
    return 0


def _parse_topology(spec: str) -> tuple:
    """Parse ``--topology``: ``NxM`` or ``nodes-per-rack=N,racks-per-pod=M``
    into ``(nodes_per_rack, racks_per_pod)``."""
    spec = spec.strip()
    if "=" not in spec:
        left, sep, right = spec.partition("x")
        try:
            if not sep:
                raise ValueError(spec)
            return int(left.strip()), int(right.strip())
        except ValueError:
            raise ValueError(
                f"bad topology {spec!r}; expected "
                "<nodes-per-rack>x<racks-per-pod> (e.g. 8x32)") from None
    fields = {"nodes-per-rack": None, "racks-per-pod": None}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        key, eq, value = part.partition("=")
        key = key.strip()
        if not eq or key not in fields:
            raise ValueError(
                f"bad topology field {part!r}; expected "
                f"{sorted(fields)} as key=value pairs")
        try:
            fields[key] = int(value.strip())
        except ValueError:
            raise ValueError(
                f"cannot parse topology value {part!r} as an integer"
            ) from None
    missing = [k for k, v in fields.items() if v is None]
    if missing:
        raise ValueError(f"topology {spec!r} is missing {missing}")
    return fields["nodes-per-rack"], fields["racks-per-pod"]


def cmd_run(args: argparse.Namespace) -> int:
    """Simulate a multi-step run under failures and report goodput."""
    from dataclasses import replace as dc_replace

    from repro.obs.metrics import MetricsRegistry
    from repro.resilience import (
        DetectorModel,
        RunConfig,
        parse_detector,
        parse_policy,
        parse_taxonomy,
        simulate_run,
    )

    cluster = grand_teton(args.ngpu)
    job = JobConfig(seq=args.seq, gbs=args.gbs, ngpu=args.ngpu)
    model = _moe_model(args)
    try:
        if args.topology is not None:
            nodes_per_rack, racks_per_pod = _parse_topology(args.topology)
            cluster = dc_replace(cluster, nodes_per_rack=nodes_per_rack,
                                 racks_per_pod=racks_per_pod)
        policy = parse_policy(args.policy)
        detector = (parse_detector(args.detector)
                    if args.detector is not None else DetectorModel())
        config = RunConfig(
            steps=args.steps,
            mtbf_seconds=args.mtbf,
            policy=policy,
            seed=args.seed,
            elastic=not args.wait_for_replacement,
            replacement_seconds=args.replacement,
            taxonomy=parse_taxonomy(args.taxonomy),
            mitigation=args.mitigation,
            detector=detector,
        )
    except ValueError as err:
        _fail(str(err))
    metrics = MetricsRegistry()
    try:
        result = simulate_run(model, job, cluster, config, metrics=metrics,
                              schedule_kind=args.schedule)
    except ValueError as err:
        _fail(str(err))
    if args.trace:
        from repro.obs.trace import export_chrome_trace

        export_chrome_trace(
            result.sim, args.trace,
            extra_metadata={"policy": policy.describe(),
                            "seed": config.seed})
    if args.json:
        from repro.obs.report import resilience_report

        _print_json(resilience_report(result))
        return 0
    c = result.counters
    interval = (f"every {result.interval_steps} steps"
                if result.interval_steps is not None else "never")
    status = ("completed" if result.completed
              else f"TRUNCATED: {result.truncated_reason}")
    print(f"policy:          {policy.describe()}")
    print(f"checkpoints:     {interval} "
          f"({c['checkpoints']} written, {c['restarts']} restarts)")
    print(f"steps committed: {result.steps_completed}/{config.steps} "
          f"({status})")
    print(f"elapsed:         {result.elapsed_seconds:,.1f} s "
          f"(ideal {result.ideal_seconds:,.1f} s)")
    print(f"goodput:         {result.goodput_fraction:.1%}  "
          f"({result.tokens_per_second:,.0f} tokens/s achieved)")
    print(f"failures:        {len(result.failures)} "
          f"(node loss {c['node_losses']}, "
          f"straggler {c['transient_stragglers']}, "
          f"retry ladders {c['retry_ladders']}, "
          f"retry exhaustions {c['retry_exhaustions']}; "
          f"{c['replans']} replans)")
    correlated = (c["rack_losses"] + c["pod_losses"] + c["gray_failures"]
                  + c["silent_corruptions"])
    if correlated:
        print(f"domains:         rack loss {c['rack_losses']}, "
              f"pod loss {c['pod_losses']}, gray {c['gray_failures']}, "
              f"corruption {c['silent_corruptions']} "
              f"({c['corruption_rollbacks']} rollbacks)")
    if any(result.tier_writes.values()):
        writes = ", ".join(f"{tier} {n}" for tier, n
                           in sorted(result.tier_writes.items()) if n)
        reads = ", ".join(
            f"{r['tier']}@step{r['step']}" for r in result.restores)
        print(f"tiers:           writes {writes}"
              + (f"; restores {reads}" if reads else ""))
    if config.mitigation == "detect" and (c["gray_detected"]
                                          or c["false_positives"]):
        print(f"mitigation:      {c['gray_detected']} detected -> "
              f"{c['evictions']} evicted, {c['gray_tolerated']} tolerated "
              f"({c['false_positives']} false alarms)")
    total = max(result.elapsed_seconds, 1e-12)
    for name, value in result.buckets.items():
        if value > 0:
            print(f"  {name:<11s} {value:>10,.1f} s  ({value / total:.1%})")
    if args.trace:
        print(f"trace written:   {args.trace} (open in ui.perfetto.dev)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Run the oracle battery, the seeded config fuzz, and the step-graph
    timeline invariants (Section 6.2's methodology as a regression gate).
    Exit 0 when every check passes, 1 when any violation is found."""
    from repro.obs.report import verify_report
    from repro.verify.fuzz import run_fuzz
    from repro.verify.oracles import run_default_oracles

    if args.fuzz < 1:
        _fail(f"--fuzz must be >= 1 (got {args.fuzz})")
    modes = [flag for flag in ("faults", "engine", "resilience")
             if getattr(args, flag)]
    if len(modes) > 1:
        _fail("--faults, --engine, and --resilience are mutually exclusive")
    oracles = [] if args.no_oracles else run_default_oracles(seed=args.seed)
    fuzz = fault_fuzz = engine_fuzz = resilience_fuzz = None
    if args.faults:
        from repro.verify.fuzz import run_fault_fuzz

        fault_fuzz = run_fault_fuzz(args.fuzz, seed=args.seed)
    elif args.engine:
        from repro.verify.engine_fuzz import EngineFuzzConfig, run_engine_fuzz

        engine_fuzz = run_engine_fuzz(
            EngineFuzzConfig(cases=args.fuzz, seed=args.seed))
    elif args.resilience:
        from repro.verify.resilience_fuzz import run_resilience_fuzz

        resilience_fuzz = run_resilience_fuzz(args.fuzz, seed=args.seed)
    else:
        kinds = (args.schedule,) if args.schedule else None
        fuzz = run_fuzz(args.fuzz, seed=args.seed, max_pp=args.max_pp,
                        max_nmb=args.max_nmb, kinds=kinds)
    step_inv = None if args.no_step_invariants else _step_invariants()
    report = verify_report(fuzz, oracles, step_invariants=step_inv,
                           fault_fuzz=fault_fuzz, engine_fuzz=engine_fuzz,
                           resilience_fuzz=resilience_fuzz)
    if args.trace:
        if fuzz is not None:
            _export_verify_trace(fuzz, args.trace)
        elif fault_fuzz is not None:
            _export_fault_fuzz_trace(fault_fuzz, args.trace)
        else:
            print("note: --trace has no effect with --engine or "
                  "--resilience (divergences are reported as shrunk "
                  "configurations, not timelines)", file=sys.stderr)
    if args.json:
        _print_json(report)
    else:
        for o in oracles:
            status = "ok" if o.ok else "FAIL"
            print(f"oracle {o.name:20s} {status}  {o.context}")
            for v in o.violations:
                print(f"  violation: {v.message}")
        if fuzz is not None:
            print(f"fuzz: {fuzz.cases} configs, seed {fuzz.seed}: "
                  f"{fuzz.failed_cases} failed")
            for f in fuzz.failures:
                print(f"  {f.config.describe()} shrinks to "
                      f"{f.shrunk.describe()}")
                for v in f.shrunk_report.violations:
                    print(f"    violation [{v.check}]: {v.message}")
        if fault_fuzz is not None:
            print(f"fault fuzz: {fault_fuzz.cases} scenarios, seed "
                  f"{fault_fuzz.seed}: {fault_fuzz.failed_cases} "
                  f"localisation misses")
            for f in fault_fuzz.failures:
                print(f"  {f.scenario.describe()} shrinks to "
                      f"{f.shrunk.describe()}")
                print(f"    detected rank {f.shrunk_score.detected_rank} "
                      f"({f.shrunk_score.attribution})")
        if engine_fuzz is not None:
            print(f"engine fuzz: {engine_fuzz.cases_run} submission "
                  f"sequences, seed {engine_fuzz.seed}: "
                  f"{engine_fuzz.failed_cases} diverged from reference")
            for f in engine_fuzz.failures:
                print("  " + f.describe().replace("\n", "\n  "))
        if resilience_fuzz is not None:
            print(f"resilience fuzz: {resilience_fuzz.cases} scenarios, "
                  f"seed {resilience_fuzz.seed}: "
                  f"{resilience_fuzz.failed_cases} invariant violations")
            for f in resilience_fuzz.failures:
                print(f"  {f.scenario.describe()} shrinks to "
                      f"{f.shrunk.describe()}")
                for v in f.shrunk_violations:
                    print(f"    violation [{v['check']}]: {v['message']}")
        if step_inv is not None:
            for mode in step_inv["modes"]:
                status = "ok" if mode["ok"] else "FAIL"
                print(f"step invariants [{mode['zero']}] {status}  "
                      f"({', '.join(mode['checks_run'])})")
                for v in mode["violations"]:
                    print(f"  violation [{v['check']}]: {v['message']}")
        if args.trace:
            print(f"trace written: {args.trace} (open in ui.perfetto.dev)")
    return 0 if report["ok"] else 1


def _step_invariants() -> dict:
    """Execute a small canonical step per ZeRO mode and check the
    FSDP/ordering invariants on the lowered timeline."""
    from repro.model.config import LLAMA3_8B
    from repro.pp.analysis import default_nc
    from repro.train.step import simulate_step
    from repro.verify.invariants import run_step_invariants

    job = JobConfig(seq=8192, gbs=8, ngpu=8)
    modes = []
    for zero in (ZeroStage.ZERO_1, ZeroStage.ZERO_2, ZeroStage.ZERO_3):
        par = ParallelConfig(tp=2, cp=1, pp=2, dp=2, zero=zero)
        rep = simulate_step(LLAMA3_8B, par, job, grand_teton(job.ngpu))
        nc = default_nc(par.pp, job.micro_batches(par))
        inv = run_step_invariants(rep.execution.graph, rep.execution.events,
                                  zero=zero, nc=nc)
        modes.append({"zero": zero.name.lower(), **inv.to_dict()})
    return {"ok": all(m["ok"] for m in modes), "modes": modes}


def _export_verify_trace(fuzz, path: str) -> None:
    """Export the timeline of the most useful fuzzed config: the first
    failure's minimal shrunk reproducer when there is one, else a fresh
    run of the first sampled config (a clean reference timeline)."""
    import numpy as np

    from repro.obs.trace import export_chrome_trace
    from repro.pp.layout import build_layout
    from repro.pp.registry import schedule_entry
    from repro.train.cost import StageCost
    from repro.train.executor import execute_pipeline
    from repro.verify.fuzz import sample_config

    if fuzz.failures:
        config = fuzz.failures[0].shrunk
    else:
        config = sample_config(np.random.default_rng(fuzz.seed))
    schedule = schedule_entry(config.kind).builder(config.shape)
    layout = build_layout(config.pp * config.v, config.pp, config.v)
    run = execute_pipeline(
        schedule, layout,
        lambda s: StageCost(1.0 * max(s.n_layers, 1), 0.0, 0.0),
        lambda s: StageCost(2.0 * max(s.n_layers, 1), 0.0, 0.0),
        p2p_seconds=0.25,
    )
    export_chrome_trace(
        run.sim, path,
        extra_metadata={"verify_config": config.describe(),
                        "seed": fuzz.seed})


def _export_fault_fuzz_trace(result, path: str) -> None:
    """Export the first shrunk localisation miss's faulted workload
    timeline — or, on a clean campaign, the first sampled scenario's."""
    import numpy as np

    from repro.debug.workload import run_synthetic_workload
    from repro.obs.trace import export_chrome_trace
    from repro.parallel.mesh import DeviceMesh
    from repro.verify.fuzz import FAULT_FUZZ_WORKLOAD, sample_fault_scenario

    if result.failures:
        scenario = result.failures[0].shrunk
    else:
        scenario = sample_fault_scenario(np.random.default_rng(result.seed))
    mesh = DeviceMesh(scenario.parallel)
    sim = run_synthetic_workload(mesh, spec=FAULT_FUZZ_WORKLOAD,
                                 faults=scenario.plan)
    export_chrome_trace(
        sim, path, mesh=mesh,
        extra_metadata={"fault_scenario": scenario.describe(),
                        "seed": result.seed})


def cmd_schedules(args: argparse.Namespace) -> int:
    """List every registered pipeline schedule with its registry
    metadata — the single source of the ``--schedule`` choices."""
    entries = schedule_entries()
    if args.names:
        for e in entries:
            print(e.kind)
        return 0
    if args.json:
        _print_json({
            "schema": "repro.schedules/v1",
            "schedules": [
                {"kind": e.kind, "family": e.family,
                 "split_backward": e.split_backward,
                 "aliases": list(e.aliases),
                 "description": e.description}
                for e in entries
            ],
        })
        return 0
    for e in entries:
        split = "split-backward" if e.split_backward else "fused-backward"
        print(f"{e.kind:<20s} family={e.family:<5s} {split}")
        print(f"  {e.description}")
        if e.aliases:
            print(f"  aliases: {', '.join(e.aliases)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scaling Llama 3 Training with "
                    "Efficient Parallelism Strategies' (ISCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="derive 4D parallelism (Section 5)")
    _add_job_args(p)
    p.add_argument("--cost-aware", action="store_true",
                   help="rank (tp, pp) candidates by simulated TFLOPs/GPU "
                        "instead of first-fit")
    p.add_argument("--schedule", default=None,
                   choices=schedule_kinds() + ("all",),
                   help="pin the cost-aware candidate simulation to one "
                        "registered schedule, or 'all' to sweep the "
                        "schedule as a planning axis (default: the "
                        "Section 3.1.3 family pick)")
    p.add_argument("--json", action="store_true",
                   help="emit the stable-schema JSON report")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("step", help="simulate one training step")
    _add_job_args(p)
    _add_step_parallel_args(p)
    p.add_argument("--stage-preset", default=None,
                   choices=("mixed-fleet", "vit-encoder"),
                   help="heterogeneous per-stage compute profile "
                        "(mixed H100/H200/B200 fleet or a ViT-style "
                        "front-loaded encoder)")
    p.add_argument("--json", action="store_true",
                   help="emit the stable-schema JSON report")
    p.add_argument("--trace", metavar="PATH",
                   help="write the timeline as Perfetto trace_event JSON")
    p.set_defaults(func=cmd_step)

    p = sub.add_parser("phases", help="plan the pre-training phases")
    p.add_argument("--model", default="405b")
    p.add_argument("--ngpu", type=int, default=16384)
    p.add_argument("--phase", action="append", metavar="NAME",
                   help="run only the named phase (repeatable)")
    p.add_argument("--json", action="store_true",
                   help="emit the stable-schema JSON report")
    p.add_argument("--trace", metavar="PATH",
                   help="write the merged per-phase timeline as "
                        "Perfetto trace_event JSON")
    p.set_defaults(func=cmd_phases)

    p = sub.add_parser("ordering",
                       help="score dimension orderings (Section 5.2)")
    _add_job_args(p)
    p.set_defaults(seq=131072, gbs=128)
    p.add_argument("--tp", type=int, default=8)
    p.add_argument("--cp", type=int, default=16)
    p.add_argument("--pp", type=int, default=16)
    p.add_argument("--dp", type=int, default=8)
    p.set_defaults(func=cmd_ordering)

    p = sub.add_parser("imbalance",
                       help="fleet document-mask imbalance (Figure 14)")
    p.add_argument("--ngpu", type=int, default=8192)
    p.add_argument("--seq", type=int, default=131072)
    p.add_argument("--cp", type=int, default=16)
    p.add_argument("--dp", type=int, default=32, help="DP groups simulated")
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--mean-doc", type=float, default=32768.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the stable-schema JSON report")
    p.set_defaults(func=cmd_imbalance)

    p = sub.add_parser(
        "trace",
        help="run a simulation and export its Perfetto timeline")
    p.add_argument("--cmd", default="step",
                   choices=("step", "phases", "workload"),
                   help="which simulation to trace")
    p.add_argument("--out", metavar="PATH",
                   help="output trace_event JSON path")
    p.add_argument("--stdout", action="store_true",
                   help="write the trace JSON to stdout (summary moves "
                        "to stderr) for piping into `repro analyze "
                        "--ingest -`")
    _add_job_args(p)
    _add_step_parallel_args(p)
    p.add_argument("--steps", type=int, default=3,
                   help="workload: training steps to simulate")
    p.add_argument("--slow-rank", type=int, default=None,
                   help="workload: rank to slow down (fault injection)")
    p.add_argument("--slowdown", type=float, default=0.5,
                   help="workload: extra seconds per compute op")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "analyze",
        help="trace analytics: critical path, run diff/blame, ingestion")
    _add_job_args(p)
    _add_step_parallel_args(p)
    p.add_argument("--critical-path", action="store_true",
                   help="print the full chronological critical-path "
                        "chain instead of the top-duration summary")
    p.add_argument("--diff", metavar="BASELINE",
                   help="diff the simulated step against a baseline "
                        "trace_event JSON file of the same config and "
                        "blame the regression")
    p.add_argument("--fault", action="append", metavar="SPEC",
                   help="inject a fault spec (repeatable, same grammar "
                        "as `repro faults`) and diff against the healthy "
                        "baseline")
    p.add_argument("--ingest", metavar="PATH",
                   help="stream-aggregate a trace_event JSON file in "
                        "constant memory ('-' reads stdin) instead of "
                        "simulating a step")
    p.add_argument("--top", type=int, default=10, metavar="K",
                   help="entries per ranked list (path ops, regressions, "
                        "slowest events)")
    p.add_argument("--blame-threshold", type=float, default=0.05,
                   metavar="FRACTION",
                   help="minimum share of the total regression a "
                        "(kind, stream) bucket must own to be blamed")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.analysis/v1 JSON report")
    p.add_argument("--trace", metavar="PATH",
                   help="write the step timeline with critical-path "
                        "flow/instant annotations as Perfetto "
                        "trace_event JSON")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "faults",
        help="inject faults into one step; report goodput + detection")
    _add_job_args(p)
    _add_step_parallel_args(p)
    # Small default shape: detection simulates every global rank, and the
    # 8-GPU (tp=2, cp=2, pp=2) mesh is the paper's running example scale.
    p.set_defaults(model="8b", seq=8192, gbs=8, ngpu=8,
                   tp=2, cp=2, pp=2, dp=1, zero=2)
    p.add_argument("--fault", action="append", metavar="SPEC",
                   help="fault spec, repeatable — e.g. "
                        "straggler:rank=6,extra=0.5  "
                        "link:dim=tp,group=0,scale=2.0  "
                        "hang:rank=2,seconds=5,timeout=2  "
                        "jitter:rank=1,period=2,extra=0.05  "
                        "retry:dim=dp,retries=2,extra=0.05 "
                        "(overrides --preset)")
    p.add_argument("--preset", default="straggler-default", metavar="NAME",
                   help="named fault scenario from repro.faults."
                        "FAULT_PRESETS, used when no --fault is given "
                        "(default: straggler-default — a 25%%-throttled "
                        "GPU on the second-to-last rank)")
    p.add_argument("--no-detect", action="store_true",
                   help="skip the Section 6.1 localisation pass")
    p.add_argument("--json", action="store_true",
                   help="emit the stable-schema JSON goodput report")
    p.add_argument("--trace", metavar="PATH",
                   help="write the faulted step timeline as Perfetto "
                        "trace_event JSON (faulted ops tagged)")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "run",
        help="simulate a multi-step run under failures; report goodput")
    _add_job_args(p)
    # Small default fleet: 4 nodes of the paper's 8b shape keeps the
    # per-policy comparison fast while still exercising node-level loss.
    p.set_defaults(model="8b", seq=8192, gbs=32, ngpu=32)
    p.add_argument("--steps", type=int, default=200,
                   help="optimizer steps the run must commit")
    p.add_argument("--mtbf", type=float, default=300.0, metavar="SECONDS",
                   help="fleet mean time between failures")
    p.add_argument("--policy", default="young-daly",
                   help="checkpoint policy: none | young-daly | "
                        "fixed:<steps> | tiered:auto | "
                        "tiered:<tier>=<interval>[,...] with tiers "
                        "peer/local/remote")
    p.add_argument("--taxonomy", default="iid",
                   help="failure taxonomy: iid | rack-correlated | "
                        "gray-heavy | production, or key=value overrides "
                        "(node/retry/rack/pod/gray/corruption fractions, "
                        "retry-p, gray-compute, gray-*-scale)")
    p.add_argument("--topology", default=None, metavar="SPEC",
                   help="failure topology as nodes-per-rack x racks-per-pod "
                        "(e.g. 8x32) or nodes-per-rack=N,racks-per-pod=M; "
                        "default: the cluster's stock topology")
    p.add_argument("--mitigation", default="tolerate",
                   choices=("tolerate", "detect"),
                   help="gray-failure strategy: run degraded forever, or "
                        "arm the Section 6.1 detect-mitigate loop "
                        "(evict-and-replan vs tolerate by projected cost)")
    p.add_argument("--detector", default=None, metavar="SPEC",
                   help="detector model as latency=<steps>,fn=<rate>,"
                        "fp=<rate> (default latency=2,fn=0.1,fp=0)")
    p.add_argument("--seed", type=int, default=0,
                   help="failure-process seed; same seed -> identical "
                        "failure sequence across policies")
    p.add_argument("--wait-for-replacement", action="store_true",
                   help="on permanent node loss, wait for a spare instead "
                        "of elastically replanning on the shrunken fleet")
    p.add_argument("--replacement", type=float, default=300.0,
                   metavar="SECONDS",
                   help="node replacement latency (with "
                        "--wait-for-replacement)")
    p.add_argument("--schedule", default=None, choices=schedule_kinds(),
                   help="pin every fleet segment to one registered "
                        "pipeline schedule (default: the planner's "
                        "family pick)")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.resilience/v1 JSON report")
    p.add_argument("--trace", metavar="PATH",
                   help="write the run timeline (steps, checkpoints, "
                        "retry ladders, failure markers) as Perfetto "
                        "trace_event JSON")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "verify",
        help="run invariant fuzz + differential oracles (exit 1 on "
             "violations)")
    p.add_argument("--fuzz", type=int, default=200, metavar="N",
                   help="number of schedule configs to fuzz")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed; a failure report plus this seed is a "
                        "complete reproduction recipe")
    p.add_argument("--max-pp", type=int, default=8,
                   help="largest pipeline degree sampled")
    p.add_argument("--max-nmb", type=int, default=16,
                   help="largest micro-batch count sampled")
    p.add_argument("--schedule", default=None, choices=schedule_kinds(),
                   help="fuzz only this registered schedule kind "
                        "(default: sample the kind per case from the "
                        "full registry)")
    p.add_argument("--faults", action="store_true",
                   help="fuzz the fault-localisation loop instead of "
                        "schedule configs (--fuzz counts scenarios)")
    p.add_argument("--engine", action="store_true",
                   help="fuzz the fast simulator engine against the frozen "
                        "reference engine instead of schedule configs "
                        "(--fuzz counts submission sequences; divergences "
                        "shrink to a minimal sequence)")
    p.add_argument("--resilience", action="store_true",
                   help="fuzz the resilient-run simulator over sampled "
                        "failure taxonomies and checkpoint policies "
                        "(--fuzz counts scenarios; checks accounting and "
                        "determinism invariants)")
    p.add_argument("--no-oracles", action="store_true",
                   help="skip the differential-oracle battery")
    p.add_argument("--no-step-invariants", action="store_true",
                   help="skip the step-graph FSDP timeline invariants")
    p.add_argument("--json", action="store_true",
                   help="emit the stable-schema JSON report")
    p.add_argument("--trace", metavar="PATH",
                   help="write the first shrunk failure's timeline (or a "
                        "clean reference timeline) as Perfetto JSON")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "schedules",
        help="list the registered pipeline schedules (--schedule choices)")
    p.add_argument("--names", action="store_true",
                   help="print one kind per line (for shell loops, e.g. "
                        "the CI schedule matrix)")
    p.add_argument("--json", action="store_true",
                   help="emit the repro.schedules/v1 JSON listing")
    p.set_defaults(func=cmd_schedules)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except OSError as err:
        # Unwritable --trace/--out path and the like: usage error, not a bug.
        print(f"repro: error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
