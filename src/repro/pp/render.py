"""ASCII rendering of pipeline schedules — Figure 2 as text.

Two views:

* :func:`render_program` — the per-rank op sequence (structure only), the
  compact form used in docstrings and reports.
* :func:`render_timeline` — an executed schedule on a character grid, one
  row per rank, proportional to simulated time: forward ops as the
  micro-batch digit, backwards as letters, idle as dots.  This is the
  textual analogue of the paper's Figure 2/3 timelines and makes exposed
  P2P bubbles visible at a glance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.pp.schedule import OpKind, PipelineSchedule

if TYPE_CHECKING:  # typing only — avoids a package import cycle
    from repro.train.executor import PipelineRun


def render_program(schedule: PipelineSchedule, ppr: int) -> str:
    """One rank's program as ``F0@s0 F1@s0 ... B0@s3`` tokens."""
    pp = schedule.pp
    return " ".join(
        f"{op.kind.value}{op.microbatch}@s{op.global_stage(pp)}"
        for op in schedule.program(ppr)
    )


def _mb_char(kind: OpKind, microbatch: int) -> str:
    """Digit for forwards, letter for backwards, cycling past 10/26."""
    if kind is OpKind.FORWARD:
        return str(microbatch % 10)
    return chr(ord("a") + microbatch % 26)


def render_timeline(run: "PipelineRun", width: int = 100) -> str:
    """An executed schedule as a time-proportional character grid.

    Each row is one pipeline rank; each column is ``makespan / width``
    seconds.  Cells show the micro-batch of the op occupying that instant
    (digits = forward, letters = backward) or ``.`` for idle — the PP
    bubbles of Figures 2 and 3.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if run.makespan <= 0:
        return ""
    scale = width / run.makespan
    rows: List[str] = []
    for ppr in range(run.pp):
        row = ["."] * width
        for event in run.sim.events_for(ppr, stream="compute"):
            # Event names look like "F:mb3:s5".
            try:
                kind_s, mb_s, _stage = event.name.split(":")
                kind = OpKind(kind_s)
                mb = int(mb_s.removeprefix("mb"))
            except (ValueError, KeyError):
                continue
            start = int(event.start * scale)
            end = max(int(event.end * scale), start + 1)
            ch = _mb_char(kind, mb)
            for i in range(start, min(end, width)):
                row[i] = ch
        rows.append(f"rank {ppr}: " + "".join(row))
    return "\n".join(rows)
