"""Gradient and activation memory lifetime under PP x FSDP ZeRO modes.

Reproduces the mechanics behind Figure 4:

* Interleaved schedules alternate virtual stages, so gradients must be
  **accumulated across executions of the same virtual stage** — a gradient
  buffer is born at a stage's first backward.
* **ZeRO-1** keeps the unsharded buffer until the end of the step and
  launches the reduce-scatter only on the last micro-batch (Figure 4a):
  more memory, minimal communication.
* **ZeRO-2** reduce-scatters at the end of each run of consecutive
  micro-batches of a virtual stage (Figure 4c), shrinking the buffer to
  its DP-sharded size in between: less memory, ``rounds``-times the
  reduce-scatter traffic — the congestion source Section 3.1.3 warns about.

The tracker walks one rank's program op by op and emits a step-function
timeline of gradient and activation bytes, so the Figure 4 benchmark can
print the curves and the planner's closed-form peak can be cross-checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.parallel.config import ZeroStage
from repro.pp.schedule import (
    ACTIVATION_FREEING_KINDS,
    GRAD_PRODUCING_KINDS,
    OpKind,
    PipelineSchedule,
)


@dataclass(frozen=True)
class MemorySample:
    """Memory state after one schedule op on one rank."""

    op_index: int
    op_label: str
    grad_bytes: float
    activation_bytes: float
    reduce_scatter_launched: bool

    @property
    def total(self) -> float:
        return self.grad_bytes + self.activation_bytes


@dataclass(frozen=True)
class MemoryTimeline:
    """Full per-op memory trajectory for one rank."""

    ppr: int
    zero: ZeroStage
    samples: Tuple[MemorySample, ...]
    reduce_scatter_count: int

    @property
    def peak_grad_bytes(self) -> float:
        return max((s.grad_bytes for s in self.samples), default=0.0)

    @property
    def peak_activation_bytes(self) -> float:
        return max((s.activation_bytes for s in self.samples), default=0.0)

    @property
    def peak_total_bytes(self) -> float:
        return max((s.total for s in self.samples), default=0.0)


def track_memory(
    schedule: PipelineSchedule,
    ppr: int,
    zero: ZeroStage,
    grad_bytes_per_stage: float = 1.0,
    act_bytes_per_microbatch: float = 1.0,
    shard_degree: int = 8,
    stage_weights: Optional[Dict[int, float]] = None,
) -> MemoryTimeline:
    """Walk one rank's program and record the memory trajectory.

    Args:
        schedule: Any pipeline schedule.
        ppr: The rank to track.
        zero: FSDP sharding mode (ZeRO-1 or ZeRO-2; ZeRO-3's gradient
            behaviour matches ZeRO-2).
        grad_bytes_per_stage: Unsharded gradient-buffer bytes of one
            virtual stage (scaled per stage by ``stage_weights``).
        act_bytes_per_microbatch: Activation bytes saved by one forward of
            one virtual stage (scaled per stage by ``stage_weights``).
        shard_degree: DP x CP group size; the resharded buffer is
            ``1/shard_degree`` of the unsharded one.
        stage_weights: Optional per-virtual-stage multiplier (e.g. layer
            counts from a :class:`~repro.pp.layout.PipelineLayout`),
            keyed by local virtual-stage index.
    """
    if shard_degree < 1:
        raise ValueError("shard_degree must be >= 1")
    shape = schedule.shape
    program = schedule.program(ppr)
    weights = stage_weights or {}

    # Precompute, per virtual stage, the index within the program of the
    # backward that ends each consecutive run of micro-batches (ZeRO-2's
    # reduce-scatter points) and of the final backward (ZeRO-1's single
    # reduce-scatter point).
    # Under split backward the weight gradient materialises at BW, so
    # grad-producing ops (B, or BW) drive reduce-scatter placement while
    # activation-freeing ops (B, or BI) drive the activation curve.
    bwd_positions: Dict[int, List[int]] = {vs: [] for vs in range(shape.v)}
    for idx, op in enumerate(program):
        if op.kind in GRAD_PRODUCING_KINDS:
            bwd_positions[op.virtual_stage].append(idx)
    rs_points: Dict[int, set] = {vs: set() for vs in range(shape.v)}
    for vs, positions in bwd_positions.items():
        if not positions:
            continue
        if zero is ZeroStage.ZERO_1:
            rs_points[vs].add(positions[-1])
        else:
            # End of each run of backwards of this stage uninterrupted by
            # another backward of the same stage: runs are delimited by
            # other ops in between only if a *different* stage's backward
            # intervenes.  Detect runs over the backward subsequence.
            bwd_seq = [i for i, op in enumerate(program)
                       if op.kind in GRAD_PRODUCING_KINDS]
            stage_of = {i: program[i].virtual_stage for i in bwd_seq}
            for j, idx in enumerate(bwd_seq):
                if stage_of[idx] != vs:
                    continue
                is_last_of_run = (
                    j + 1 >= len(bwd_seq) or stage_of[bwd_seq[j + 1]] != vs
                )
                if is_last_of_run:
                    rs_points[vs].add(idx)

    grad_state: Dict[int, str] = {}  # vs -> "unsharded" | "sharded"
    act_in_flight: Dict[int, int] = {vs: 0 for vs in range(shape.v)}
    samples: List[MemorySample] = []
    rs_count = 0

    def stage_scale(vs: int) -> float:
        return weights.get(vs, 1.0)

    def grad_total() -> float:
        total = 0.0
        for vs, state in grad_state.items():
            size = grad_bytes_per_stage * stage_scale(vs)
            total += size if state == "unsharded" else size / shard_degree
        return total

    def act_total() -> float:
        return sum(
            act_bytes_per_microbatch * stage_scale(vs) * count
            for vs, count in act_in_flight.items()
        )

    for idx, op in enumerate(program):
        launched_rs = False
        if op.kind is OpKind.FORWARD:
            act_in_flight[op.virtual_stage] += 1
        if op.kind in ACTIVATION_FREEING_KINDS:
            act_in_flight[op.virtual_stage] -= 1
            if act_in_flight[op.virtual_stage] < 0:
                raise ValueError(
                    f"rank {ppr}: backward without live forward at op {idx}"
                )
        if op.kind in GRAD_PRODUCING_KINDS:
            if grad_state.get(op.virtual_stage) != "unsharded":
                grad_state[op.virtual_stage] = "unsharded"
            if idx in rs_points[op.virtual_stage]:
                launched_rs = True
                rs_count += 1
                if zero is not ZeroStage.ZERO_1:
                    grad_state[op.virtual_stage] = "sharded"
        samples.append(
            MemorySample(
                op_index=idx,
                op_label=op.label(shape.pp),
                grad_bytes=grad_total(),
                activation_bytes=act_total(),
                reduce_scatter_launched=launched_rs,
            )
        )

    return MemoryTimeline(
        ppr=ppr, zero=zero, samples=tuple(samples),
        reduce_scatter_count=rs_count,
    )


def peak_in_flight_from_schedule(schedule: PipelineSchedule, ppr: int) -> int:
    """Peak simultaneous live forwards on one rank, counted exactly from
    the program — the event-level counterpart of
    :func:`repro.pp.analysis.peak_in_flight_microbatches`."""
    live = 0
    peak = 0
    for op in schedule.program(ppr):
        if op.kind is OpKind.FORWARD:
            live += 1
            peak = max(peak, live)
        elif op.kind in ACTIVATION_FREEING_KINDS:
            live -= 1
    return peak
