"""Multimodal pipeline sharding (Section 3.2): image-encoder placement and
self/cross-attention layer grouping.

Two decisions drive multimodal PP efficiency:

1. **Where the ViT encoder runs** (Figure 6).  Options:

   * ``WHOLE_MODEL_PP`` (Option 1) — encoder on the first PP rank, image
     tokens forwarded along with activations over P2P.
   * ``ENCODER_AS_PREPROCESS`` (Option 2) — encoder runs the whole batch
     on the first rank as a pre-processing stage, outputs broadcast to all
     stages.
   * ``ENCODER_REPLICATED`` (Option 3) — encoder replicated on every PP
     rank, each processing ``bs / pp`` of the batch in parallel, outputs
     all-gathered.  This is what shipped: it cut the encoder share of step
     latency from 33% to 8% after the 672 px resolution change.

2. **How self- and cross-attention layers group into virtual stages**
   (Section 3.2.2).  Wrapping ``n`` self + 1 cross per stage balances
   per-stage work but yields fewer stages (bigger ideal bubble); separate
   stages yield more stages but imbalanced work, and the pipeline beats to
   the slowest stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List

from repro.hardware.cluster import ClusterSpec
from repro.model.config import MultimodalConfig
from repro.model.flops import (
    multimodal_layer_step_flops,
    vision_step_flops,
)
from repro.pp.analysis import bubble_ratio
from repro.sim.collectives import all_gather_time, broadcast_time

#: Fraction of peak the encoder and text stacks sustain; ratios between
#: options are insensitive to this value.
_SUSTAINED_EFFICIENCY = 0.45


class EncoderSharding(Enum):
    WHOLE_MODEL_PP = 1       # Figure 6a
    ENCODER_AS_PREPROCESS = 2  # Figure 6b
    ENCODER_REPLICATED = 3   # Figure 6c


@dataclass(frozen=True)
class EncoderShardingResult:
    """Step-time decomposition for one encoder-sharding option."""

    option: EncoderSharding
    encoder_seconds: float
    text_seconds: float
    comm_seconds: float

    @property
    def step_seconds(self) -> float:
        return self.encoder_seconds + self.text_seconds + self.comm_seconds

    @property
    def encoder_ratio(self) -> float:
        """Encoder share of combined image+text step latency — the 33% vs
        8% metric of Section 3.2.1."""
        return self.encoder_seconds / self.step_seconds


def _sustained_flops(cluster: ClusterSpec) -> float:
    return cluster.gpu.peak_flops * _SUSTAINED_EFFICIENCY


def _text_stack_seconds(
    mm: MultimodalConfig, bs: int, pp: int, nmb: int, cluster: ClusterSpec
) -> float:
    """Pipeline time of the multimodal text stack (frozen self layers +
    trained cross layers), per DP group, with the ideal bubble applied."""
    per_layer = multimodal_layer_step_flops(mm)
    n_self = mm.text.n_layers
    n_cross = mm.n_cross_layers
    flops_per_sample = n_self * per_layer["self"] + n_cross * per_layer["cross"]
    compute = bs * flops_per_sample / _sustained_flops(cluster) / pp
    v = max(n_cross // pp, 1)
    return compute * (1.0 + bubble_ratio(pp, max(nmb, 1), v))


def evaluate_encoder_sharding(
    mm: MultimodalConfig,
    option: EncoderSharding,
    bs: int,
    pp: int,
    cluster: ClusterSpec,
    images_per_sample: int = 1,
) -> EncoderShardingResult:
    """Step-time decomposition of one sharding option for one DP group.

    The text-pipeline term is identical across options; what changes is
    whether the encoder's ``bs`` images run serially on one rank (Options
    1-2) or ``bs / pp`` per rank in parallel (Option 3), and which
    collective moves the image tokens.
    """
    if bs < 1 or pp < 1:
        raise ValueError("bs and pp must be >= 1")
    n_images = bs * images_per_sample
    per_image = vision_step_flops(mm.vision) / _sustained_flops(cluster)
    nmb = bs
    text_seconds = _text_stack_seconds(mm, bs, pp, nmb, cluster)

    image_token_bytes = (
        2.0 * n_images * mm.image_seq * mm.text.dim
    )  # BF16 encoder outputs
    pp_group = list(range(pp))  # representative contiguous ranks

    if option is EncoderSharding.WHOLE_MODEL_PP:
        # Encoder serial on rank 0; image tokens ride the existing P2P
        # chain, growing every stage hand-off.  We charge the extra P2P
        # as comm: (pp - 1) hops of the full image payload per step.
        encoder_seconds = n_images * per_image
        from repro.sim.collectives import p2p_time

        comm = (pp - 1) * p2p_time(cluster, 0, cluster.gpus_per_node,
                                   image_token_bytes / max(nmb, 1))
    elif option is EncoderSharding.ENCODER_AS_PREPROCESS:
        # Encoder serial on rank 0, then one broadcast of all image tokens
        # to the pp stages (Figure 6b).
        encoder_seconds = n_images * per_image
        comm = broadcast_time(cluster, pp_group, image_token_bytes).seconds
    elif option is EncoderSharding.ENCODER_REPLICATED:
        # Each rank encodes bs/pp of the batch in parallel, then the
        # outputs are all-gathered (Figure 6c).
        encoder_seconds = math.ceil(n_images / pp) * per_image
        comm = all_gather_time(cluster, pp_group, image_token_bytes).seconds
    else:
        raise ValueError(f"unknown option {option!r}")

    return EncoderShardingResult(
        option=option,
        encoder_seconds=encoder_seconds,
        text_seconds=text_seconds,
        comm_seconds=comm,
    )


class LayerGrouping(Enum):
    """Section 3.2.2's two placements of text-model layers into virtual
    stages."""

    WRAPPED = 1    # n self-attention layers + 1 cross-attention per stage
    SEPARATE = 2   # each stage holds either self layers or one cross layer


@dataclass(frozen=True)
class GroupingResult:
    """Pipeline-efficiency metrics for one layer-grouping choice."""

    grouping: LayerGrouping
    num_stages: int
    v: int
    stage_costs: List[float]
    ideal_bubble: float

    @property
    def imbalance(self) -> float:
        """Max over mean per-stage cost; 1.0 is perfectly balanced."""
        mean = sum(self.stage_costs) / len(self.stage_costs)
        return max(self.stage_costs) / mean if mean > 0 else 1.0

    @property
    def effective_step_cost(self) -> float:
        """Relative step cost: the pipeline beats to its slowest stage and
        pays the ideal bubble on top — ``max_stage * stages * (1 + bubble)``
        normalised by total work."""
        total = sum(self.stage_costs)
        slowest = max(self.stage_costs)
        return slowest * len(self.stage_costs) * (1 + self.ideal_bubble) / total


def compare_layer_grouping(
    mm: MultimodalConfig, pp: int, nmb: int
) -> List[GroupingResult]:
    """Evaluate both groupings; the paper adopts WRAPPED (Option 1) because
    its balance outweighs SEPARATE's smaller ideal bubble."""
    per_layer = multimodal_layer_step_flops(mm)
    n_cross = mm.n_cross_layers
    n = mm.self_per_cross

    wrapped_costs = [
        n * per_layer["self"] + per_layer["cross"] for _ in range(n_cross)
    ]
    v_wrapped = max(n_cross // pp, 1)
    wrapped = GroupingResult(
        grouping=LayerGrouping.WRAPPED,
        num_stages=n_cross,
        v=v_wrapped,
        stage_costs=wrapped_costs,
        ideal_bubble=bubble_ratio(pp, nmb, v_wrapped),
    )

    separate_costs = []
    for _ in range(n_cross):
        separate_costs.append(n * per_layer["self"])  # a block of self layers
        separate_costs.append(per_layer["cross"])     # one cross layer
    v_separate = max(len(separate_costs) // pp, 1)
    separate = GroupingResult(
        grouping=LayerGrouping.SEPARATE,
        num_stages=len(separate_costs),
        v=v_separate,
        stage_costs=separate_costs,
        ideal_bubble=bubble_ratio(pp, nmb, v_separate),
    )
    return [wrapped, separate]
