"""Pipeline parallelism: flexible schedules, balancing, gradient memory,
and multimodal sharding."""

from repro.pp.analysis import (
    ScheduleShape,
    validate_schedule_params,
    warmup_microbatches,
    peak_in_flight_microbatches,
    bubble_ratio,
    extra_warmup_vs_interleaved,
    default_nc,
    degenerates_to_afab,
)

from repro.pp.autotune import TuneCandidate, autotune_schedule, best_schedule
from repro.pp.render import render_program, render_timeline
from repro.pp.multimodal_schedule import (
    MultimodalPipelineResult,
    stage_costs,
    simulate_multimodal_pipeline,
    compare_groupings_event_level,
)

__all__ = [
    "render_program",
    "MultimodalPipelineResult",
    "stage_costs",
    "simulate_multimodal_pipeline",
    "compare_groupings_event_level",
    "render_timeline",
    "TuneCandidate",
    "autotune_schedule",
    "best_schedule",
    "ScheduleShape",
    "validate_schedule_params",
    "warmup_microbatches",
    "peak_in_flight_microbatches",
    "bubble_ratio",
    "extra_warmup_vs_interleaved",
    "default_nc",
    "degenerates_to_afab",
]
