"""Pipeline parallelism: flexible schedules, balancing, gradient memory,
and multimodal sharding."""

from repro.pp.analysis import (
    ScheduleShape,
    validate_schedule_params,
    warmup_microbatches,
    peak_in_flight_microbatches,
    bubble_ratio,
    extra_warmup_vs_interleaved,
    default_nc,
    degenerates_to_afab,
)

from repro.pp.autotune import TuneCandidate, autotune_schedule, best_schedule
from repro.pp.render import render_program, render_timeline
from repro.pp.multimodal_schedule import (
    MultimodalPipelineResult,
    stage_costs,
    simulate_multimodal_pipeline,
    compare_groupings_event_level,
)
from repro.pp.registry import (
    ScheduleBuilder,
    ScheduleEntry,
    entry_for_name,
    register_schedule,
    schedule_entries,
    schedule_entry,
    schedule_kinds,
)
from repro.pp.heterogeneity import (
    microbatch_scale_from_lengths,
    mixed_fleet_preset,
    mixed_gpu_stage_scale,
    stage_profile,
    vit_encoder_stage_scale,
)

# Importing the builder modules populates the registry; any import of
# the package (or a submodule) therefore sees the full schedule zoo.
from repro.pp import schedule as _schedule  # noqa: F401
from repro.pp import zoo as _zoo  # noqa: F401

__all__ = [
    "ScheduleBuilder",
    "ScheduleEntry",
    "entry_for_name",
    "register_schedule",
    "schedule_entries",
    "schedule_entry",
    "schedule_kinds",
    "microbatch_scale_from_lengths",
    "mixed_fleet_preset",
    "mixed_gpu_stage_scale",
    "stage_profile",
    "vit_encoder_stage_scale",
    "render_program",
    "MultimodalPipelineResult",
    "stage_costs",
    "simulate_multimodal_pipeline",
    "compare_groupings_event_level",
    "render_timeline",
    "TuneCandidate",
    "autotune_schedule",
    "best_schedule",
    "ScheduleShape",
    "validate_schedule_params",
    "warmup_microbatches",
    "peak_in_flight_microbatches",
    "bubble_ratio",
    "extra_warmup_vs_interleaved",
    "default_nc",
    "degenerates_to_afab",
]
