"""Closed-form pipeline-schedule math (Section 3.1.1).

These formulas are deliberately free of dependencies on the rest of the
library so both the Section 5 planner and the exact schedule generator can
use them; tests cross-check them against event-level simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


def validate_schedule_params(pp: int, v: int, nc: int, nmb: int) -> None:
    """Raise ValueError unless (pp, v, nc, nmb) describe a valid schedule."""
    if pp < 1:
        raise ValueError(f"pp must be >= 1; got pp={pp}")
    if v < 1:
        raise ValueError(f"v (virtual stages per rank) must be >= 1; got v={v}")
    if nmb < 1:
        raise ValueError(
            f"nmb (micro-batches per virtual stage) must be >= 1; got nmb={nmb}"
        )
    if not 1 <= nc <= nmb:
        raise ValueError(f"nc must be in [1, nmb]; got nc={nc}, nmb={nmb}")
    if nmb % nc != 0:
        raise ValueError(
            f"nmb ({nmb}) must be a multiple of nc ({nc}) so rounds are equal"
        )


def warmup_microbatches(pp: int, ppr: int, v: int, nc: int) -> int:
    """Warm-up micro-batch forwards before a rank's first backward.

    The paper's formula (Section 3.1.1): ``(v - 1) * nc + 2 * (pp - ppr - 1)``.
    Earlier ranks warm up deeper — the root of the PP memory imbalance that
    Section 3.1.2 addresses by removing a layer from the first stage.
    """
    if not 0 <= ppr < pp:
        raise ValueError(f"ppr must be in [0, pp); got ppr={ppr}, pp={pp}")
    if v < 1 or nc < 1:
        raise ValueError(f"v and nc must be >= 1; got v={v}, nc={nc}")
    return (v - 1) * nc + 2 * (pp - ppr - 1)


def peak_in_flight_microbatches(
    pp: int, ppr: int, v: int, nc: int, nmb: int, all_forward_all_backward: bool = False
) -> int:
    """Peak simultaneous micro-batches with live forward activations.

    For 1F1B-style schedules this is the warm-up depth plus the one
    micro-batch in steady state, capped at the total; for
    all-forward-all-backward every micro-batch of every virtual stage is
    in flight at once (Figure 4b).  ``nc < pp`` implies AFAB because the
    flexible schedule degenerates there (Section 3.1.1).
    """
    validate_schedule_params(pp, v, nc, nmb)
    tmb = nmb * v
    if all_forward_all_backward or degenerates_to_afab(pp, nc):
        return tmb
    return min(warmup_microbatches(pp, ppr, v, nc) + 1, tmb)


def warmup_forward_ops(pp: int, ppr: int, v: int, nc: int, nmb: int) -> int:
    """Forward ops a rank executes before its first backward in the
    flexible (non-degenerate) schedule.

    This is the Section 3.1.1 warm-up depth plus the one forward whose
    backward immediately follows in steady state, capped at the rank's
    total op count per direction.  The schedule generator builds from this
    value; :mod:`repro.verify.invariants` re-derives the same quantity from
    the raw :func:`warmup_microbatches` formula so a bug in either copy
    shows up as a warm-up-depth violation.
    """
    validate_schedule_params(pp, v, nc, nmb)
    return min(warmup_microbatches(pp, ppr, v, nc) + 1, nmb * v)


def bubble_ratio(pp: int, nmb: int, v: int) -> float:
    """Ideal PP bubble ratio (idle / compute) = (pp - 1) / (nmb * v).

    This is the Section 3.1.1 formula; it ignores exposed P2P and workload
    imbalance, which the event-level simulator adds back.
    """
    if pp < 1 or nmb < 1 or v < 1:
        raise ValueError("pp, nmb, v must be >= 1")
    return (pp - 1) / float(nmb * v)


def extra_warmup_vs_interleaved(pp: int, v: int, nc: int) -> int:
    """Extra in-flight warm-up micro-batches of flexible PP over the
    original interleaved 1F1B (which fixes nc = pp).

    When ``nc > pp`` the flexible schedule inserts ``nc - pp`` extra
    micro-batches per virtual stage into warm-up to hide P2P (Figure 3),
    costing ``(nc - pp) * (v - 1)`` additional in-flight micro-batches
    (Section 3.1.1).  When ``nc <= pp`` there is no extra memory.
    """
    if pp < 1 or v < 1 or nc < 1:
        raise ValueError("pp, v, nc must be >= 1")
    return max(nc - pp, 0) * (v - 1)


def default_nc(pp: int, nmb: int) -> int:
    """Largest valid ``nc`` (divisor of nmb) not exceeding ``pp``.

    The original interleaved 1F1B fixes ``nc = pp``; when nmb is not a
    multiple of pp, flexible PP picks the largest round size that still
    divides nmb evenly.
    """
    if pp < 1 or nmb < 1:
        raise ValueError("pp and nmb must be >= 1")
    for candidate in range(min(pp, nmb), 0, -1):
        if nmb % candidate == 0:
            return candidate
    return 1


def degenerates_to_afab(pp: int, nc: int) -> bool:
    """Whether nc < pp, which degenerates flexible PP into
    all-forward-all-backward (Section 3.1.1)."""
    return nc < pp


def _coerce_scale(
    name: str, raw: Optional[Sequence[float]], expected_len: int
) -> Optional[Tuple[float, ...]]:
    """Normalise a compute-scale profile to a tuple of positive floats."""
    if raw is None:
        return None
    scale = tuple(float(x) for x in raw)
    if len(scale) != expected_len:
        raise ValueError(
            f"{name} must have {expected_len} entries; got {len(scale)}"
        )
    for i, x in enumerate(scale):
        if not x > 0.0:
            raise ValueError(f"{name}[{i}] must be > 0; got {x}")
    return scale


@dataclass(frozen=True)
class ScheduleShape:
    """Static description of a flexible-PP run: sizes only, no timing.

    The optional compute-scale profiles describe *heterogeneous* pipelines
    (ROADMAP item 4): ``stage_compute_scale[s]`` multiplies the compute
    time of global stage ``s`` (mixed H100/H200/B200 racks, or a ViT
    encoder occupying the first stages — see
    :mod:`repro.pp.heterogeneity`), and ``microbatch_compute_scale[mb]``
    multiplies micro-batch ``mb`` (DIP-style variable-length multimodal
    batches).  ``None`` (the default) means a uniform pipeline and is
    bitwise-identical to the pre-heterogeneity behaviour.
    """

    pp: int
    v: int
    nc: int
    nmb: int
    stage_compute_scale: Optional[Tuple[float, ...]] = None
    microbatch_compute_scale: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        validate_schedule_params(self.pp, self.v, self.nc, self.nmb)
        object.__setattr__(
            self,
            "stage_compute_scale",
            _coerce_scale(
                "stage_compute_scale",
                self.stage_compute_scale,
                self.pp * self.v,
            ),
        )
        object.__setattr__(
            self,
            "microbatch_compute_scale",
            _coerce_scale(
                "microbatch_compute_scale",
                self.microbatch_compute_scale,
                self.nmb,
            ),
        )

    @property
    def is_heterogeneous(self) -> bool:
        """True when any non-trivial compute-scale profile is attached."""
        return (
            self.stage_compute_scale is not None
            or self.microbatch_compute_scale is not None
        )

    def compute_scale(self, global_stage: int, microbatch: int) -> float:
        """Combined compute multiplier for one (stage, micro-batch) op."""
        scale = 1.0
        if self.stage_compute_scale is not None:
            scale *= self.stage_compute_scale[global_stage]
        if self.microbatch_compute_scale is not None:
            scale *= self.microbatch_compute_scale[microbatch]
        return scale

    @property
    def tmb(self) -> int:
        """Total micro-batch executions per rank (= nmb * v)."""
        return self.nmb * self.v

    @property
    def rounds(self) -> int:
        """Rounds of nc consecutive micro-batches per virtual stage."""
        return self.nmb // self.nc

    @property
    def ideal_bubble_ratio(self) -> float:
        return bubble_ratio(self.pp, self.nmb, self.v)

    def warmup(self, ppr: int) -> int:
        return warmup_microbatches(self.pp, ppr, self.v, self.nc)

    def peak_in_flight(self, ppr: int, all_forward_all_backward: bool = False) -> int:
        return peak_in_flight_microbatches(
            self.pp, ppr, self.v, self.nc, self.nmb, all_forward_all_backward
        )
