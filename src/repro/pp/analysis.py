"""Closed-form pipeline-schedule math (Section 3.1.1).

These formulas are deliberately free of dependencies on the rest of the
library so both the Section 5 planner and the exact schedule generator can
use them; tests cross-check them against event-level simulation.
"""

from __future__ import annotations

from dataclasses import dataclass


def validate_schedule_params(pp: int, v: int, nc: int, nmb: int) -> None:
    """Raise ValueError unless (pp, v, nc, nmb) describe a valid schedule."""
    if pp < 1:
        raise ValueError("pp must be >= 1")
    if v < 1:
        raise ValueError("v (virtual stages per rank) must be >= 1")
    if nmb < 1:
        raise ValueError("nmb (micro-batches per virtual stage) must be >= 1")
    if not 1 <= nc <= nmb:
        raise ValueError(f"nc must be in [1, nmb]; got nc={nc}, nmb={nmb}")
    if nmb % nc != 0:
        raise ValueError(
            f"nmb ({nmb}) must be a multiple of nc ({nc}) so rounds are equal"
        )


def warmup_microbatches(pp: int, ppr: int, v: int, nc: int) -> int:
    """Warm-up micro-batch forwards before a rank's first backward.

    The paper's formula (Section 3.1.1): ``(v - 1) * nc + 2 * (pp - ppr - 1)``.
    Earlier ranks warm up deeper — the root of the PP memory imbalance that
    Section 3.1.2 addresses by removing a layer from the first stage.
    """
    if not 0 <= ppr < pp:
        raise ValueError(f"ppr must be in [0, pp); got ppr={ppr}, pp={pp}")
    if v < 1 or nc < 1:
        raise ValueError("v and nc must be >= 1")
    return (v - 1) * nc + 2 * (pp - ppr - 1)


def peak_in_flight_microbatches(
    pp: int, ppr: int, v: int, nc: int, nmb: int, all_forward_all_backward: bool = False
) -> int:
    """Peak simultaneous micro-batches with live forward activations.

    For 1F1B-style schedules this is the warm-up depth plus the one
    micro-batch in steady state, capped at the total; for
    all-forward-all-backward every micro-batch of every virtual stage is
    in flight at once (Figure 4b).  ``nc < pp`` implies AFAB because the
    flexible schedule degenerates there (Section 3.1.1).
    """
    validate_schedule_params(pp, v, nc, nmb)
    tmb = nmb * v
    if all_forward_all_backward or degenerates_to_afab(pp, nc):
        return tmb
    return min(warmup_microbatches(pp, ppr, v, nc) + 1, tmb)


def warmup_forward_ops(pp: int, ppr: int, v: int, nc: int, nmb: int) -> int:
    """Forward ops a rank executes before its first backward in the
    flexible (non-degenerate) schedule.

    This is the Section 3.1.1 warm-up depth plus the one forward whose
    backward immediately follows in steady state, capped at the rank's
    total op count per direction.  The schedule generator builds from this
    value; :mod:`repro.verify.invariants` re-derives the same quantity from
    the raw :func:`warmup_microbatches` formula so a bug in either copy
    shows up as a warm-up-depth violation.
    """
    validate_schedule_params(pp, v, nc, nmb)
    return min(warmup_microbatches(pp, ppr, v, nc) + 1, nmb * v)


def bubble_ratio(pp: int, nmb: int, v: int) -> float:
    """Ideal PP bubble ratio (idle / compute) = (pp - 1) / (nmb * v).

    This is the Section 3.1.1 formula; it ignores exposed P2P and workload
    imbalance, which the event-level simulator adds back.
    """
    if pp < 1 or nmb < 1 or v < 1:
        raise ValueError("pp, nmb, v must be >= 1")
    return (pp - 1) / float(nmb * v)


def extra_warmup_vs_interleaved(pp: int, v: int, nc: int) -> int:
    """Extra in-flight warm-up micro-batches of flexible PP over the
    original interleaved 1F1B (which fixes nc = pp).

    When ``nc > pp`` the flexible schedule inserts ``nc - pp`` extra
    micro-batches per virtual stage into warm-up to hide P2P (Figure 3),
    costing ``(nc - pp) * (v - 1)`` additional in-flight micro-batches
    (Section 3.1.1).  When ``nc <= pp`` there is no extra memory.
    """
    if pp < 1 or v < 1 or nc < 1:
        raise ValueError("pp, v, nc must be >= 1")
    return max(nc - pp, 0) * (v - 1)


def default_nc(pp: int, nmb: int) -> int:
    """Largest valid ``nc`` (divisor of nmb) not exceeding ``pp``.

    The original interleaved 1F1B fixes ``nc = pp``; when nmb is not a
    multiple of pp, flexible PP picks the largest round size that still
    divides nmb evenly.
    """
    if pp < 1 or nmb < 1:
        raise ValueError("pp and nmb must be >= 1")
    for candidate in range(min(pp, nmb), 0, -1):
        if nmb % candidate == 0:
            return candidate
    return 1


def degenerates_to_afab(pp: int, nc: int) -> bool:
    """Whether nc < pp, which degenerates flexible PP into
    all-forward-all-backward (Section 3.1.1)."""
    return nc < pp


@dataclass(frozen=True)
class ScheduleShape:
    """Static description of a flexible-PP run: sizes only, no timing."""

    pp: int
    v: int
    nc: int
    nmb: int

    def __post_init__(self) -> None:
        validate_schedule_params(self.pp, self.v, self.nc, self.nmb)

    @property
    def tmb(self) -> int:
        """Total micro-batch executions per rank (= nmb * v)."""
        return self.nmb * self.v

    @property
    def rounds(self) -> int:
        """Rounds of nc consecutive micro-batches per virtual stage."""
        return self.nmb // self.nc

    @property
    def ideal_bubble_ratio(self) -> float:
        return bubble_ratio(self.pp, self.nmb, self.v)

    def warmup(self, ppr: int) -> int:
        return warmup_microbatches(self.pp, ppr, self.v, self.nc)

    def peak_in_flight(self, ppr: int, all_forward_all_backward: bool = False) -> int:
        return peak_in_flight_microbatches(
            self.pp, ppr, self.v, self.nc, self.nmb, all_forward_all_backward
        )
