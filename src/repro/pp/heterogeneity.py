"""Sources for heterogeneous per-stage / per-micro-batch compute profiles.

A :class:`~repro.pp.analysis.ScheduleShape` carries optional
``stage_compute_scale`` and ``microbatch_compute_scale`` tuples; this
module builds them from the two scenarios ROADMAP item 4 names:

* **Mixed GPU fleets** — pipeline ranks populated by different parts
  (H100 / H200 / B200, from :mod:`repro.hardware`): a stage on a faster
  part gets a compute multiplier < 1 relative to the reference part.
* **Multimodal encoder stages** — a ViT encoder occupying the leading
  pipeline stages runs cheaper FLOPs than the language stages behind it
  ("Heterogeneous Parallelism for Multimodal LLM Training", arxiv
  2605.27678; same modelling as
  :func:`repro.pp.multimodal_schedule.stage_costs`).
* **Variable-length micro-batches** — DIP-style (arxiv 2504.14145)
  per-micro-batch multipliers derived from token counts.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.hardware.gpu import B200, GpuSpec, H100_HBM3, H200, relative_compute_scale

#: Named parts a mixed-fleet profile may reference on the CLI.
GPU_PARTS: Dict[str, GpuSpec] = {
    "h100": H100_HBM3,
    "h200": H200,
    "b200": B200,
}


def mixed_gpu_stage_scale(
    rank_gpus: Sequence[GpuSpec],
    v: int,
    reference: GpuSpec = H100_HBM3,
) -> Tuple[float, ...]:
    """Per-global-stage compute scale for a pipeline over mixed parts.

    ``rank_gpus[ppr]`` is the part hosting pipeline rank ``ppr``; with
    ``v`` virtual stages per rank, global stage ``s`` lives on rank
    ``s % pp`` (the Figure 2 interleaving), so its scale is that rank's
    part relative to ``reference``.
    """
    pp = len(rank_gpus)
    if pp < 1:
        raise ValueError("rank_gpus must name at least one part")
    if v < 1:
        raise ValueError(f"v must be >= 1; got v={v}")
    per_rank = [relative_compute_scale(gpu, reference) for gpu in rank_gpus]
    return tuple(per_rank[s % pp] for s in range(pp * v))


def mixed_fleet_preset(pp: int, v: int) -> Tuple[float, ...]:
    """A concrete mixed H100/H200/B200 fleet: parts assigned to ranks
    round-robin, scaled relative to H100 — the simplest shape of the
    "heterogeneous rack generations" scenario."""
    parts = [H100_HBM3, H200, B200]
    return mixed_gpu_stage_scale(
        [parts[ppr % len(parts)] for ppr in range(pp)], v
    )


def vit_encoder_stage_scale(
    pp: int,
    v: int,
    encoder_stages: int = 1,
    encoder_scale: float = 0.55,
) -> Tuple[float, ...]:
    """Per-global-stage scale for a ViT-encoder-headed pipeline.

    The first ``encoder_stages`` global stages hold the vision encoder,
    whose per-stage FLOPs are lighter than a language stage's (the
    multimodal sharding study models the encoder at roughly half a
    language stage; 0.55 matches its defaults).  Remaining stages are
    uniform language stages at scale 1.0.
    """
    n_stages = pp * v
    if not 0 <= encoder_stages <= n_stages:
        raise ValueError(
            f"encoder_stages must be in [0, {n_stages}]; got {encoder_stages}"
        )
    if not encoder_scale > 0.0:
        raise ValueError(f"encoder_scale must be > 0; got {encoder_scale}")
    return tuple(
        encoder_scale if s < encoder_stages else 1.0 for s in range(n_stages)
    )


def microbatch_scale_from_lengths(lengths: Sequence[int]) -> Tuple[float, ...]:
    """DIP-style per-micro-batch multipliers from token counts.

    Each micro-batch's compute scales with its token count relative to
    the batch mean, so the mean multiplier is 1.0 and total compute is
    conserved versus the uniform schedule.
    """
    if not lengths:
        raise ValueError("lengths must name at least one micro-batch")
    for i, n in enumerate(lengths):
        if n <= 0:
            raise ValueError(f"lengths[{i}] must be > 0; got {n}")
    mean = sum(lengths) / float(len(lengths))
    return tuple(n / mean for n in lengths)


#: Named stage-profile presets usable anywhere a profile is accepted.
STAGE_PRESETS = {
    "mixed-fleet": mixed_fleet_preset,
    "vit-encoder": vit_encoder_stage_scale,
}


def stage_profile(preset: str, pp: int, v: int) -> Tuple[float, ...]:
    """Resolve a named stage-profile preset for a (pp, v) pipeline."""
    try:
        fn = STAGE_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown stage profile {preset!r}; "
            f"options: {', '.join(sorted(STAGE_PRESETS))}"
        ) from None
    return fn(pp, v)
