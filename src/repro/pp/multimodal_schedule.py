"""Event-level simulation of the multimodal pipeline (Section 3.2.2).

:mod:`repro.pp.multimodal` scores the self/cross layer groupings with a
closed-form slowest-stage model; this module builds the actual
heterogeneous per-stage costs — frozen self-attention layers with cheap
backwards, heavy cross-attention layers — and executes a real pipeline
schedule on the simulator, so the imbalance penalty emerges from event
timing rather than a formula.  The tests cross-check the two models agree
on the winner (WRAPPED).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from repro.hardware.cluster import ClusterSpec
from repro.model.config import MultimodalConfig
from repro.model.flops import (
    cross_attention_forward_flops,
    layer_backward_flops,
    self_attention_forward_flops,
)
from repro.pp.analysis import ScheduleShape, default_nc
from repro.pp.layout import build_layout_from_counts
from repro.pp.multimodal import LayerGrouping, _SUSTAINED_EFFICIENCY
from repro.pp.schedule import build_flexible_schedule

if TYPE_CHECKING:  # typing only — avoids a package import cycle
    from repro.train.executor import PipelineRun


@dataclass(frozen=True)
class MultimodalPipelineResult:
    """Executed multimodal pipeline metrics for one grouping."""

    grouping: LayerGrouping
    run: "PipelineRun"
    num_stages: int

    @property
    def makespan(self) -> float:
        return self.run.makespan

    @property
    def bubble_ratio(self) -> float:
        return self.run.mean_bubble_ratio

    @property
    def relative_throughput(self) -> float:
        """Useful work per wall-clock second (total busy / makespan /
        pp) — comparable across groupings because total work is equal."""
        return sum(self.run.per_rank_busy) / self.run.makespan / self.run.pp


def stage_costs(
    mm: MultimodalConfig,
    grouping: LayerGrouping,
    cluster: ClusterSpec,
) -> Tuple[List[float], List[float]]:
    """(forward, backward) seconds per global stage for one grouping.

    Frozen self-attention layers skip weight gradients (backward ~= 1x
    forward for the GEMMs); trained cross-attention layers pay the full
    2x — the imbalance driver of Section 3.2.2.
    """
    rate = cluster.gpu.peak_flops * _SUSTAINED_EFFICIENCY
    self_fwd = self_attention_forward_flops(mm) / rate
    self_bwd = layer_backward_flops(mm.text, mm.text_seq, frozen=True) / rate
    cross_fwd = cross_attention_forward_flops(mm) / rate
    cross_bwd = 2.0 * cross_fwd
    n = mm.self_per_cross

    if grouping is LayerGrouping.WRAPPED:
        fwd = [n * self_fwd + cross_fwd] * mm.n_cross_layers
        bwd = [n * self_bwd + cross_bwd] * mm.n_cross_layers
    elif grouping is LayerGrouping.SEPARATE:
        fwd, bwd = [], []
        for _ in range(mm.n_cross_layers):
            fwd += [n * self_fwd, cross_fwd]
            bwd += [n * self_bwd, cross_bwd]
    else:
        raise ValueError(f"unknown grouping {grouping!r}")
    return fwd, bwd


def simulate_multimodal_pipeline(
    mm: MultimodalConfig,
    grouping: LayerGrouping,
    pp: int,
    nmb: int,
    cluster: ClusterSpec,
    p2p_seconds: float = 50e-6,
) -> MultimodalPipelineResult:
    """Execute one grouping's pipeline and return measured metrics."""
    from repro.train.cost import StageCost
    from repro.train.executor import execute_pipeline

    fwd, bwd = stage_costs(mm, grouping, cluster)
    num_stages = len(fwd)
    if num_stages % pp != 0:
        raise ValueError(
            f"{num_stages} stages not divisible by pp={pp}"
        )
    v = num_stages // pp
    shape = ScheduleShape(pp=pp, v=v, nc=default_nc(pp, nmb), nmb=nmb)
    schedule = build_flexible_schedule(shape)
    # One "layer" per stage so layout bookkeeping lines up.
    layout = build_layout_from_counts([1] * num_stages, pp, v)

    run = execute_pipeline(
        schedule, layout,
        lambda stage: StageCost(fwd[stage.stage], 0.0, 0.0),
        lambda stage: StageCost(bwd[stage.stage], 0.0, 0.0),
        p2p_seconds=p2p_seconds,
    )
    return MultimodalPipelineResult(
        grouping=grouping, run=run, num_stages=num_stages,
    )


def compare_groupings_event_level(
    mm: MultimodalConfig,
    pp: int,
    nmb: int,
    cluster: ClusterSpec,
) -> List[MultimodalPipelineResult]:
    """Both groupings, executed; same order as
    :func:`repro.pp.multimodal.compare_layer_grouping`."""
    return [
        simulate_multimodal_pipeline(mm, g, pp, nmb, cluster)
        for g in (LayerGrouping.WRAPPED, LayerGrouping.SEPARATE)
    ]
