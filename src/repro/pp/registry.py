"""Pluggable registry of pipeline-schedule builders (ROADMAP item 4).

The schedule stack used to dispatch on a hard-coded string in
:func:`repro.pp.schedule.build_schedule`.  This module turns the builder
set into an open registry so new schedules (GPipe, non-interleaved 1F1B,
zero-bubble, DIP-style dynamic, ...) plug in without touching the
dispatcher, the fuzzer, the planner, or the CLI — each of those asks the
registry instead.

A registered entry carries, besides the builder itself, the metadata the
rest of the stack needs to treat schedules generically:

* ``family`` — ``"1f1b"`` or ``"afab"``; drives the Section 3.1.3
  ZeRO-pairing invariant and AFAB classification.
* ``split_backward`` — whether programs use the BACKWARD_INPUT /
  BACKWARD_WEIGHT op kinds instead of a monolithic BACKWARD.
* ``supports(shape)`` — ``None`` if the shape is buildable, else a
  human-readable reason (drives fuzz sampling and CLI errors).
* ``constrain(shape)`` — coerce an arbitrary fuzz shape into the nearest
  shape this kind supports.
* ``expected_warmup(shape, ppr)`` — the analytically expected number of
  leading forwards on rank ``ppr``, re-derived independently of the
  builder so the warm-up-depth invariant stays a real cross-check.
* ``aliases`` — extra ``PipelineSchedule.name`` strings this entry's
  builder may emit (e.g. the flexible builder emits ``1f1b-interleaved``
  and ``flexible-degenerate-afab``), so a built schedule maps back to
  its entry by name.

Registration happens at import time in :mod:`repro.pp.schedule` (the
three paper builders) and :mod:`repro.pp.zoo` (the four zoo builders);
``repro.pp.__init__`` imports both, so any import of the package sees
the full registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Protocol, Tuple

from repro.pp.analysis import ScheduleShape

if TYPE_CHECKING:  # pragma: no cover - import cycle with repro.pp.schedule
    from repro.pp.schedule import PipelineSchedule


class ScheduleBuilder(Protocol):
    """A schedule builder: shape in, validated :class:`PipelineSchedule` out."""

    def __call__(self, shape: ScheduleShape) -> "PipelineSchedule": ...


@dataclass(frozen=True)
class ScheduleEntry:
    """One registered schedule kind plus the metadata the stack needs."""

    kind: str
    builder: ScheduleBuilder
    description: str
    family: str
    split_backward: bool = False
    aliases: Tuple[str, ...] = ()
    supports: Optional[Callable[[ScheduleShape], Optional[str]]] = None
    constrain: Optional[Callable[[ScheduleShape], ScheduleShape]] = None
    expected_warmup: Optional[Callable[[ScheduleShape, int], int]] = field(
        default=None
    )

    def names(self) -> Tuple[str, ...]:
        """All ``PipelineSchedule.name`` values this entry may produce."""
        return (self.kind,) + self.aliases

    def unsupported_reason(self, shape: ScheduleShape) -> Optional[str]:
        """Why ``shape`` cannot be built under this kind (None = fine)."""
        if self.supports is None:
            return None
        return self.supports(shape)


#: kind -> entry, in registration order (drives CLI choices + fuzz draw).
_REGISTRY: Dict[str, ScheduleEntry] = {}


def register_schedule(
    kind: str,
    *,
    description: str,
    family: str,
    split_backward: bool = False,
    aliases: Tuple[str, ...] = (),
    supports: Optional[Callable[[ScheduleShape], Optional[str]]] = None,
    constrain: Optional[Callable[[ScheduleShape], ScheduleShape]] = None,
    expected_warmup: Optional[Callable[[ScheduleShape, int], int]] = None,
) -> Callable[[ScheduleBuilder], ScheduleBuilder]:
    """Class the decorated builder under ``kind``; returns it unchanged.

    Returning the function unmodified is load-bearing: the three paper
    builders must keep producing bitwise-identical programs after the
    registry migration (pinned by ``tests/golden/schedules_prerefactor``).
    """
    if family not in ("1f1b", "afab"):
        raise ValueError(f"unknown schedule family {family!r}")

    def deco(builder: ScheduleBuilder) -> ScheduleBuilder:
        if kind in _REGISTRY:
            raise ValueError(f"schedule kind {kind!r} already registered")
        _REGISTRY[kind] = ScheduleEntry(
            kind=kind,
            builder=builder,
            description=description,
            family=family,
            split_backward=split_backward,
            aliases=aliases,
            supports=supports,
            constrain=constrain,
            expected_warmup=expected_warmup,
        )
        return builder

    return deco


def schedule_entry(kind: str) -> ScheduleEntry:
    """The entry registered under ``kind``; raises the dispatcher's
    historical error text for unknown kinds."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValueError(f"unknown schedule kind {kind!r}") from None


def schedule_kinds() -> Tuple[str, ...]:
    """All registered kinds, in registration order."""
    return tuple(_REGISTRY)


def schedule_entries() -> Tuple[ScheduleEntry, ...]:
    """All registered entries, in registration order."""
    return tuple(_REGISTRY.values())


def entry_for_name(name: str) -> Optional[ScheduleEntry]:
    """Map a built ``PipelineSchedule.name`` back to its registry entry.

    Names may be shared (``build_interleaved_1f1b`` delegates to the
    flexible builder, so both kinds emit ``1f1b-interleaved``); the
    first-registered claimant wins, which is safe because sharing
    implies identical family/warm-up structure.
    """
    for entry in _REGISTRY.values():
        if name in entry.names():
            return entry
    return None
