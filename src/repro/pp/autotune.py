"""Schedule auto-tuning: search (schedule kind, nc, v) under a memory
budget.

The paper tunes these by hand per phase (Sections 3.1 and 7.1); this
module automates the search the way a framework would: enumerate valid
round sizes ``nc`` (divisors of nmb), virtual-stage counts ``v``, and
schedule kinds, simulate each, drop configurations that exceed the memory
budget, and rank the rest by achieved TFLOPs.  The ablation benchmark uses
it to show the design space around the paper's choices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig

if TYPE_CHECKING:  # imported lazily to avoid a package import cycle
    from repro.parallel.config import JobConfig, ParallelConfig


@dataclass(frozen=True)
class TuneCandidate:
    """One evaluated schedule configuration."""

    schedule_kind: str
    nc: int
    v: int
    tflops_per_gpu: float
    max_memory_gb: float
    bubble_ratio: float
    fits: bool

    def describe(self) -> str:
        tag = "" if self.fits else "  [over budget]"
        return (
            f"{self.schedule_kind:8s} nc={self.nc:<3d} v={self.v:<2d} "
            f"{self.tflops_per_gpu:5.0f} TFLOPs  "
            f"{self.max_memory_gb:5.1f} GiB  "
            f"bubble {self.bubble_ratio:.3f}{tag}"
        )


def _divisors(n: int) -> List[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def autotune_schedule(
    model: TextModelConfig,
    parallel: "ParallelConfig",
    job: "JobConfig",
    cluster: ClusterSpec,
    memory_budget_gb: float = 72.0,
    v_candidates: Optional[Sequence[int]] = None,
    nc_candidates: Optional[Sequence[int]] = None,
    recompute: bool = False,
    congestion: float = 1.0,
) -> List[TuneCandidate]:
    """Evaluate the schedule design space; best feasible first.

    Returns every evaluated candidate (feasible ones sorted to the front
    by TFLOPs, then infeasible ones), so benchmarks can show the whole
    trade-off surface rather than just the winner.
    """
    from repro.train.step import simulate_step

    nmb = job.micro_batches(parallel)
    layers_per_rank = max(math.ceil(model.n_layers / parallel.pp), 1)
    if v_candidates is None:
        v_candidates = sorted({
            v for v in (1, 2, layers_per_rank // 2, layers_per_rank)
            if v >= 1
        })
    if nc_candidates is None:
        nc_candidates = _divisors(nmb)

    seen = set()
    candidates: List[TuneCandidate] = []
    for v in v_candidates:
        for kind in ("flexible", "afab"):
            for nc in nc_candidates:
                key = (kind, nc, v)
                if key in seen:
                    continue
                seen.add(key)
                try:
                    rep = simulate_step(
                        model, parallel, job, cluster,
                        schedule_kind=kind, nc=nc, v=v,
                        recompute=recompute, congestion=congestion,
                    )
                except (ValueError, RuntimeError):
                    continue
                candidates.append(
                    TuneCandidate(
                        schedule_kind=kind,
                        nc=nc,
                        v=v,
                        tflops_per_gpu=rep.tflops_per_gpu,
                        max_memory_gb=rep.max_peak_memory_gb,
                        bubble_ratio=rep.mean_bubble_ratio,
                        fits=rep.max_peak_memory_gb <= memory_budget_gb,
                    )
                )
    return sorted(
        candidates,
        key=lambda c: (not c.fits, -c.tflops_per_gpu),
    )


def best_schedule(
    model: TextModelConfig,
    parallel: "ParallelConfig",
    job: "JobConfig",
    cluster: ClusterSpec,
    memory_budget_gb: float = 72.0,
    **kwargs,
) -> TuneCandidate:
    """The best feasible configuration, or raise if nothing fits."""
    results = autotune_schedule(
        model, parallel, job, cluster, memory_budget_gb, **kwargs
    )
    feasible = [c for c in results if c.fits]
    if not feasible:
        raise ValueError(
            f"no schedule fits in {memory_budget_gb} GiB; best infeasible: "
            f"{results[0].describe() if results else 'none evaluated'}"
        )
    return feasible[0]
