"""Layer placement across pipeline stages, including the balanced co-design.

Global stages are ordered end-to-end: stage ``s`` holds a contiguous block
of model layers, with the input embedding attached to stage 0 and the output
head to the last stage.  Llama 3's 128K vocabulary makes both modules heavy
(Section 7.1.2), so uniform layer sharding leaves the first rank short of
memory and the last rank long on compute.

The paper's fix is model co-design: train 126 layers instead of 128 so the
first and last stages carry one layer less (Section 3.1.2).  Here that falls
out naturally: :func:`build_layout` distributes any layer count over the
stages, giving remainder layers to middle stages first, so 126 layers over
128 stages leaves stage 0 with only the embedding and the last stage with
only the head — the "shorter first and last model chunks" of Section 7.3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class StageAssignment:
    """What one global pipeline stage hosts."""

    stage: int
    layers: Tuple[int, ...]
    has_embedding: bool = False
    has_output_head: bool = False

    @property
    def n_layers(self) -> int:
        return len(self.layers)


@dataclass(frozen=True)
class PipelineLayout:
    """Assignment of model layers (and embedding/head) to global stages."""

    pp: int
    v: int
    stages: Tuple[StageAssignment, ...]

    @property
    def num_stages(self) -> int:
        return self.pp * self.v

    @property
    def n_layers(self) -> int:
        return sum(s.n_layers for s in self.stages)

    def stage(self, global_stage: int) -> StageAssignment:
        return self.stages[global_stage]

    def rank_of_stage(self, global_stage: int) -> int:
        """Pipeline rank hosting a global stage (interleaved placement)."""
        return global_stage % self.pp

    def stages_of_rank(self, ppr: int) -> List[StageAssignment]:
        """The v stages hosted by one rank, in virtual-stage order."""
        if not 0 <= ppr < self.pp:
            raise ValueError(f"ppr {ppr} out of range")
        return [self.stages[vs * self.pp + ppr] for vs in range(self.v)]

    def layers_on_rank(self, ppr: int) -> int:
        return sum(s.n_layers for s in self.stages_of_rank(ppr))

    def global_stage(self, ppr: int, virtual_stage: int) -> int:
        if not 0 <= virtual_stage < self.v:
            raise ValueError(f"virtual stage {virtual_stage} out of range")
        return virtual_stage * self.pp + ppr


def build_layout(n_layers: int, pp: int, v: int) -> PipelineLayout:
    """Distribute ``n_layers`` over ``pp * v`` stages.

    Layers are assigned contiguously in stage order; when the count does
    not divide evenly, the *middle* stages receive the extra layers so the
    embedding-bearing first stage and head-bearing last stage stay light.
    A 126-layer model over 128 stages therefore puts zero transformer
    layers on the first and last stages — the paper's balanced placement.
    """
    if n_layers < 0:
        raise ValueError("n_layers must be non-negative")
    if pp < 1 or v < 1:
        raise ValueError("pp and v must be >= 1")
    num_stages = pp * v
    base, rem = divmod(n_layers, num_stages)
    counts = [base] * num_stages
    # Stages sorted by distance from the ends, farthest (most central)
    # first; ties broken toward earlier stages for determinism.
    by_centrality = sorted(
        range(num_stages), key=lambda s: (-min(s, num_stages - 1 - s), s)
    )
    for s in by_centrality[:rem]:
        counts[s] += 1
    stages = []
    next_layer = 0
    for s, count in enumerate(counts):
        stages.append(
            StageAssignment(
                stage=s,
                layers=tuple(range(next_layer, next_layer + count)),
                has_embedding=(s == 0),
                has_output_head=(s == num_stages - 1),
            )
        )
        next_layer += count
    return PipelineLayout(pp=pp, v=v, stages=tuple(stages))


def build_layout_from_counts(
    counts: Sequence[int], pp: int, v: int
) -> PipelineLayout:
    """Explicit per-stage layer counts (for custom placements and tests)."""
    if len(counts) != pp * v:
        raise ValueError(
            f"need {pp * v} stage counts, got {len(counts)}"
        )
    if any(c < 0 for c in counts):
        raise ValueError("stage layer counts must be non-negative")
    stages = []
    next_layer = 0
    for s, count in enumerate(counts):
        stages.append(
            StageAssignment(
                stage=s,
                layers=tuple(range(next_layer, next_layer + count)),
                has_embedding=(s == 0),
                has_output_head=(s == pp * v - 1),
            )
        )
        next_layer += count
    return PipelineLayout(pp=pp, v=v, stages=tuple(stages))
