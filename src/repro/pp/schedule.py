"""Pipeline schedule generation: interleaved 1F1B, all-forward-all-backward,
and the paper's flexible schedule (Section 3.1.1).

A schedule is, per pipeline rank, an ordered list of :class:`PipelineOp`
(forward or backward of one micro-batch on one virtual stage).  Model layers
are placed on virtual stages in the interleaved pattern of Figure 2: global
stage ``s`` lives on rank ``s % pp`` as virtual stage ``s // pp``, so rank 0
hosts stages 0 and pp, rank 1 hosts 1 and pp + 1, and so on.

The flexible schedule is the interleaved 1F1B construction generalised to
any round size ``nc`` in ``[1, nmb]``:

* ``nc == pp`` recovers the original interleaved 1F1B (which requires the
  batch to be a multiple of pp);
* ``nc > pp`` inserts ``nc - pp`` extra micro-batches per virtual stage into
  warm-up, hiding exposed P2P at the cost of ``(nc - pp) * (v - 1)`` extra
  in-flight micro-batches (Figure 3);
* ``nc < pp`` degenerates into all-forward-all-backward (Figure 4b), because
  the warm-up depth reaches the whole batch.

Schedules generated here are *structures*; timing comes from executing them
on the simulator (:mod:`repro.train.executor`), and the executor doubles as
a deadlock checker.

Builders register themselves with :mod:`repro.pp.registry`;
:func:`build_schedule` dispatches through it.  The zoo of additional
schedules (GPipe, non-interleaved 1F1B, zero-bubble, DIP) lives in
:mod:`repro.pp.zoo`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Tuple

from repro.pp.analysis import ScheduleShape, warmup_forward_ops
from repro.pp.registry import register_schedule, schedule_entry


class OpKind(Enum):
    FORWARD = "F"
    BACKWARD = "B"
    #: Zero-bubble split backward: d(loss)/d(input), the half on the
    #: inter-stage critical path (sends the upstream activation grad).
    BACKWARD_INPUT = "BI"
    #: Zero-bubble split backward: d(loss)/d(weights), rank-local filler
    #: work that can be deferred into bubbles.
    BACKWARD_WEIGHT = "BW"


#: Kinds that consume (and free) a saved forward activation when they run.
ACTIVATION_FREEING_KINDS = frozenset({OpKind.BACKWARD, OpKind.BACKWARD_INPUT})
#: Kinds whose completion makes a stage's weight gradient available.
GRAD_PRODUCING_KINDS = frozenset({OpKind.BACKWARD, OpKind.BACKWARD_WEIGHT})
#: The split-backward pair used by zero-bubble-style schedules.
SPLIT_BACKWARD_KINDS = frozenset({OpKind.BACKWARD_INPUT, OpKind.BACKWARD_WEIGHT})


@dataclass(frozen=True)
class PipelineOp:
    """One unit of pipeline work: fwd or bwd of one micro-batch on one
    virtual stage of one rank.

    Attributes:
        kind: FORWARD or BACKWARD.
        ppr: Pipeline rank executing the op.
        virtual_stage: Local virtual-stage index on that rank, in [0, v).
        microbatch: Micro-batch id, in [0, nmb).
    """

    kind: OpKind
    ppr: int
    virtual_stage: int
    microbatch: int

    def global_stage(self, pp: int) -> int:
        """Position of this op's stage in the end-to-end layer order."""
        return self.virtual_stage * pp + self.ppr

    def label(self, pp: int) -> str:
        return (
            f"{self.kind.value}:mb{self.microbatch}:"
            f"s{self.global_stage(pp)}"
        )


@dataclass(frozen=True)
class PipelineSchedule:
    """A complete schedule: one ordered program per pipeline rank."""

    name: str
    shape: ScheduleShape
    programs: Tuple[Tuple[PipelineOp, ...], ...]

    @property
    def pp(self) -> int:
        return self.shape.pp

    def program(self, ppr: int) -> Tuple[PipelineOp, ...]:
        return self.programs[ppr]

    def ops(self) -> Iterator[PipelineOp]:
        for prog in self.programs:
            yield from prog

    @property
    def uses_split_backward(self) -> bool:
        """True when programs split backward into BI + BW ops."""
        return any(
            op.kind in SPLIT_BACKWARD_KINDS for op in self.ops()
        )

    def validate(self) -> None:
        """Check structural invariants: every (stage, micro-batch) appears
        exactly once per direction, a micro-batch's backward (or its
        BI -> BW split pair) follows its forward in rank order, and
        program lengths are 2 * tmb (3 * tmb under split backward)."""
        shape = self.shape
        split = self.uses_split_backward
        bwd_kinds: Tuple[OpKind, ...] = (
            (OpKind.BACKWARD_INPUT, OpKind.BACKWARD_WEIGHT)
            if split
            else (OpKind.BACKWARD,)
        )
        ops_per_unit = 1 + len(bwd_kinds)
        for ppr, prog in enumerate(self.programs):
            if len(prog) != ops_per_unit * shape.tmb:
                raise ValueError(
                    f"rank {ppr}: program has {len(prog)} ops, expected "
                    f"{ops_per_unit * shape.tmb}"
                )
            seen = {}
            for idx, op in enumerate(prog):
                if op.ppr != ppr:
                    raise ValueError(f"rank {ppr} holds op for rank {op.ppr}")
                if not 0 <= op.virtual_stage < shape.v:
                    raise ValueError(f"bad virtual stage {op.virtual_stage}")
                if not 0 <= op.microbatch < shape.nmb:
                    raise ValueError(f"bad microbatch {op.microbatch}")
                if op.kind is not OpKind.FORWARD and op.kind not in bwd_kinds:
                    raise ValueError(
                        f"rank {ppr}: op kind {op.kind.name} mixes split "
                        f"and monolithic backward in one schedule"
                    )
                key = (op.kind, op.virtual_stage, op.microbatch)
                if key in seen:
                    raise ValueError(f"duplicate op {key} on rank {ppr}")
                seen[key] = idx
            for vs in range(shape.v):
                for mb in range(shape.nmb):
                    fwd = seen.get((OpKind.FORWARD, vs, mb))
                    if fwd is None:
                        raise ValueError(
                            f"rank {ppr} missing fwd/bwd for vs={vs} mb={mb}"
                        )
                    prev = fwd
                    for kind in bwd_kinds:
                        pos = seen.get((kind, vs, mb))
                        if pos is None:
                            raise ValueError(
                                f"rank {ppr} missing fwd/bwd for "
                                f"vs={vs} mb={mb}"
                            )
                        if pos < prev:
                            raise ValueError(
                                f"rank {ppr}: backward before forward for "
                                f"vs={vs} mb={mb}"
                            )
                        prev = pos


def _forward_sequence(shape: ScheduleShape) -> List[Tuple[int, int]]:
    """Order of (virtual_stage, microbatch) forwards on every rank.

    Rounds of ``nc`` consecutive micro-batches sweep the virtual stages in
    ascending order (Figure 2: stage 0 runs micro-batches 0..nc-1, then
    stage 1 runs 0..nc-1, ...).
    """
    seq = []
    for rnd in range(shape.rounds):
        for vs in range(shape.v):
            for k in range(shape.nc):
                seq.append((vs, rnd * shape.nc + k))
    return seq


def _backward_sequence(shape: ScheduleShape) -> List[Tuple[int, int]]:
    """Order of (virtual_stage, microbatch) backwards: same round structure
    with virtual stages swept in *descending* order (gradients flow from the
    last stage back)."""
    seq = []
    for rnd in range(shape.rounds):
        for vs in reversed(range(shape.v)):
            for k in range(shape.nc):
                seq.append((vs, rnd * shape.nc + k))
    return seq


@register_schedule(
    "flexible",
    description="Section 3.1.1 flexible schedule: interleaved 1F1B "
    "generalised to any round size nc; degenerates to AFAB when nc < pp",
    family="1f1b",
    aliases=("1f1b-interleaved", "flexible-degenerate-afab"),
)
def build_flexible_schedule(shape: ScheduleShape) -> PipelineSchedule:
    """The paper's flexible PP schedule for arbitrary nc and nmb.

    Each rank runs ``w`` warm-up forwards (``w`` from the Section 3.1.1
    formula, capped at the total), then alternates one-forward-one-backward,
    then drains the remaining backwards.

    When ``nc < pp`` the 1F1B hand-off invariant between adjacent ranks no
    longer holds (late ranks would start backwards that early ranks cannot
    yet serve), so — exactly as Section 3.1.1 describes — the schedule
    *degenerates into all-forward-all-backward*: all virtual-stage forwards
    run before any backward.
    """
    if shape.nc < shape.pp:
        afab = build_afab_schedule(shape)
        return PipelineSchedule(
            name="flexible-degenerate-afab",
            shape=shape,
            programs=afab.programs,
        )
    fwd_seq = _forward_sequence(shape)
    bwd_seq = _backward_sequence(shape)
    programs = []
    for ppr in range(shape.pp):
        w = warmup_forward_ops(shape.pp, ppr, shape.v, shape.nc, shape.nmb)
        prog: List[PipelineOp] = []
        for vs, mb in fwd_seq[:w]:
            prog.append(PipelineOp(OpKind.FORWARD, ppr, vs, mb))
        steady = shape.tmb - w
        for i in range(steady):
            vs_b, mb_b = bwd_seq[i]
            prog.append(PipelineOp(OpKind.BACKWARD, ppr, vs_b, mb_b))
            vs_f, mb_f = fwd_seq[w + i]
            prog.append(PipelineOp(OpKind.FORWARD, ppr, vs_f, mb_f))
        for vs, mb in bwd_seq[steady:]:
            prog.append(PipelineOp(OpKind.BACKWARD, ppr, vs, mb))
        programs.append(tuple(prog))
    name = "flexible" if shape.nc != shape.pp else "1f1b-interleaved"
    schedule = PipelineSchedule(name=name, shape=shape,
                                programs=tuple(programs))
    schedule.validate()
    return schedule


def build_interleaved_1f1b(
    pp: int,
    v: int,
    nmb: int,
    *,
    stage_compute_scale: Optional[Tuple[float, ...]] = None,
    microbatch_compute_scale: Optional[Tuple[float, ...]] = None,
) -> PipelineSchedule:
    """The original interleaved 1F1B (Figure 2): fixes nc = pp, so nmb must
    be a multiple of pp — the constraint flexible PP removes."""
    if nmb % pp != 0:
        raise ValueError(
            f"interleaved 1F1B requires nmb ({nmb}) to be a multiple of "
            f"pp ({pp}); use the flexible schedule otherwise"
        )
    return build_flexible_schedule(
        ScheduleShape(
            pp=pp,
            v=v,
            nc=pp,
            nmb=nmb,
            stage_compute_scale=stage_compute_scale,
            microbatch_compute_scale=microbatch_compute_scale,
        )
    )


def _1f1b_supports(shape: ScheduleShape) -> Optional[str]:
    if shape.nmb % shape.pp != 0:
        return (
            f"interleaved 1F1B requires nmb ({shape.nmb}) to be a "
            f"multiple of pp ({shape.pp})"
        )
    return None


def _1f1b_constrain(shape: ScheduleShape) -> ScheduleShape:
    nmb = max(shape.pp, shape.nmb - shape.nmb % shape.pp)
    return ScheduleShape(pp=shape.pp, v=shape.v, nc=shape.pp, nmb=nmb)


@register_schedule(
    "1f1b",
    description="original interleaved 1F1B (Figure 2): nc fixed to pp, "
    "nmb must divide by pp",
    family="1f1b",
    aliases=("1f1b-interleaved",),
    supports=_1f1b_supports,
    constrain=_1f1b_constrain,
)
def _build_interleaved_1f1b_from_shape(shape: ScheduleShape) -> PipelineSchedule:
    """Registry adapter: kind "1f1b" ignores ``shape.nc`` (nc = pp)."""
    return build_interleaved_1f1b(
        shape.pp,
        shape.v,
        shape.nmb,
        stage_compute_scale=shape.stage_compute_scale,
        microbatch_compute_scale=shape.microbatch_compute_scale,
    )


@register_schedule(
    "afab",
    description="all-forward-all-backward (Figure 4b): every forward of "
    "every virtual stage runs before any backward",
    family="afab",
)
def build_afab_schedule(shape: ScheduleShape) -> PipelineSchedule:
    """All-forward-all-backward (GPipe-style, Figure 4b): every forward of
    every virtual stage runs before any backward."""
    fwd_seq = _forward_sequence(shape)
    bwd_seq = _backward_sequence(shape)
    programs = []
    for ppr in range(shape.pp):
        prog = [PipelineOp(OpKind.FORWARD, ppr, vs, mb) for vs, mb in fwd_seq]
        prog += [PipelineOp(OpKind.BACKWARD, ppr, vs, mb) for vs, mb in bwd_seq]
        programs.append(tuple(prog))
    schedule = PipelineSchedule(name="afab", shape=shape,
                                programs=tuple(programs))
    schedule.validate()
    return schedule


def build_schedule(shape: ScheduleShape, kind: str = "flexible") -> PipelineSchedule:
    """Build ``shape`` under the registered schedule ``kind``.

    Dispatches through :mod:`repro.pp.registry`;
    :func:`repro.pp.registry.schedule_kinds` (or ``repro schedules`` on
    the CLI) lists the options.  Unknown kinds raise ``ValueError``.
    """
    return schedule_entry(kind).builder(shape)
