"""Schedule zoo: registry entries beyond the paper's three builders.

ROADMAP item 4 grounds these in three PAPERS.md entries: GPipe and
non-interleaved 1F1B are the classical baselines the paper's flexible
schedule generalises; the zero-bubble schedule splits backward into
input-grad (BI) and weight-grad (BW) halves in the style of ZB-H1 so
weight-grad work fills drain bubbles; the DIP-style dynamic schedule
(arxiv 2504.14145) reorders micro-batches heavy-first inside each round
when per-micro-batch compute multipliers are attached to the shape
(variable-length multimodal batches).

Every builder returns a validated :class:`PipelineSchedule` and is
registered with :mod:`repro.pp.registry`, which makes it visible to
``build_schedule``, the verify fuzzer, the cost-aware planner, and the
CLI without further wiring.
"""

from __future__ import annotations

from typing import List, Optional

from repro.pp.analysis import ScheduleShape
from repro.pp.registry import register_schedule
from repro.pp.schedule import (
    OpKind,
    PipelineOp,
    PipelineSchedule,
    build_flexible_schedule,
)


def _require_v1(kind: str):
    def supports(shape: ScheduleShape) -> Optional[str]:
        if shape.v != 1:
            return (
                f"{kind} has no virtual-stage interleaving; requires "
                f"v == 1 (got v={shape.v})"
            )
        return None

    return supports


def _constrain_v1(shape: ScheduleShape) -> ScheduleShape:
    return ScheduleShape(pp=shape.pp, v=1, nc=shape.nc, nmb=shape.nmb)


def _classic_warmup(shape: ScheduleShape, ppr: int) -> int:
    """Leading forwards on rank ``ppr`` of a classic (v=1) 1F1B pipeline:
    the pp - ppr in-flight slots down to the last stage, capped at nmb."""
    return min(shape.pp - ppr, shape.nmb)


@register_schedule(
    "gpipe",
    description="classic GPipe (v=1): all forwards in batch order, then "
    "backwards drained LIFO to match the activation stack",
    family="afab",
    supports=_require_v1("gpipe"),
    constrain=_constrain_v1,
)
def build_gpipe_schedule(shape: ScheduleShape) -> PipelineSchedule:
    """GPipe differs from :func:`build_afab_schedule` in backward order:
    AFAB drains backwards in forward (round) order, GPipe drains them
    last-in-first-out, releasing the deepest activation first."""
    reason = _require_v1("gpipe")(shape)
    if reason is not None:
        raise ValueError(reason)
    programs = []
    for ppr in range(shape.pp):
        prog = [
            PipelineOp(OpKind.FORWARD, ppr, 0, mb) for mb in range(shape.nmb)
        ]
        prog += [
            PipelineOp(OpKind.BACKWARD, ppr, 0, mb)
            for mb in reversed(range(shape.nmb))
        ]
        programs.append(tuple(prog))
    schedule = PipelineSchedule(
        name="gpipe", shape=shape, programs=tuple(programs)
    )
    schedule.validate()
    return schedule


@register_schedule(
    "1f1b-noninterleaved",
    description="classic non-interleaved 1F1B (v=1): min(pp - rank, nmb) "
    "warm-up forwards, then strict one-forward-one-backward",
    family="1f1b",
    supports=_require_v1("1f1b-noninterleaved"),
    constrain=_constrain_v1,
    expected_warmup=_classic_warmup,
)
def build_1f1b_noninterleaved(shape: ScheduleShape) -> PipelineSchedule:
    """The PipeDream-flush schedule the paper's Figure 2 interleaves."""
    reason = _require_v1("1f1b-noninterleaved")(shape)
    if reason is not None:
        raise ValueError(reason)
    programs = []
    for ppr in range(shape.pp):
        w = _classic_warmup(shape, ppr)
        prog: List[PipelineOp] = [
            PipelineOp(OpKind.FORWARD, ppr, 0, mb) for mb in range(w)
        ]
        for i in range(shape.nmb - w):
            prog.append(PipelineOp(OpKind.BACKWARD, ppr, 0, i))
            prog.append(PipelineOp(OpKind.FORWARD, ppr, 0, w + i))
        for mb in range(shape.nmb - w, shape.nmb):
            prog.append(PipelineOp(OpKind.BACKWARD, ppr, 0, mb))
        programs.append(tuple(prog))
    schedule = PipelineSchedule(
        name="1f1b-noninterleaved", shape=shape, programs=tuple(programs)
    )
    schedule.validate()
    return schedule


@register_schedule(
    "zero-bubble",
    description="zero-bubble-style split backward (v=1): BI on the "
    "critical path, BW deferred into drain bubbles (ZB-H1)",
    family="1f1b",
    split_backward=True,
    supports=_require_v1("zero-bubble"),
    constrain=_constrain_v1,
    expected_warmup=_classic_warmup,
)
def build_zero_bubble_schedule(shape: ScheduleShape) -> PipelineSchedule:
    """ZB-H1-style schedule: 1F1B with backward split into BI + BW.

    Only the input-grad half (BI) sits on the inter-stage critical path;
    the weight-grad half (BW) is pure rank-local work, so the drain
    phase interleaves deferred BWs where 1F1B idles.  Per rank:

    * warm-up: ``w = min(pp - ppr, nmb)`` forwards;
    * steady: alternate ``BI(i)``, ``F(w + i)``;
    * drain: alternate the remaining ``BI``s with the deferred ``BW``s,
      then flush the rest of the ``BW``s.
    """
    reason = _require_v1("zero-bubble")(shape)
    if reason is not None:
        raise ValueError(reason)
    programs = []
    for ppr in range(shape.pp):
        w = _classic_warmup(shape, ppr)
        prog: List[PipelineOp] = [
            PipelineOp(OpKind.FORWARD, ppr, 0, mb) for mb in range(w)
        ]
        for i in range(shape.nmb - w):
            prog.append(PipelineOp(OpKind.BACKWARD_INPUT, ppr, 0, i))
            prog.append(PipelineOp(OpKind.FORWARD, ppr, 0, w + i))
        for j in range(w):
            prog.append(
                PipelineOp(OpKind.BACKWARD_INPUT, ppr, 0, shape.nmb - w + j)
            )
            prog.append(PipelineOp(OpKind.BACKWARD_WEIGHT, ppr, 0, j))
        for mb in range(w, shape.nmb):
            prog.append(PipelineOp(OpKind.BACKWARD_WEIGHT, ppr, 0, mb))
        programs.append(tuple(prog))
    schedule = PipelineSchedule(
        name="zero-bubble", shape=shape, programs=tuple(programs)
    )
    schedule.validate()
    return schedule


def microbatch_permutation(shape: ScheduleShape) -> List[int]:
    """DIP's slot assignment: within each round, heavy micro-batches
    first (ties by index), using ``shape.microbatch_compute_scale``.
    Uniform shapes map to the identity."""
    scale = shape.microbatch_compute_scale
    if scale is None:
        return list(range(shape.nmb))
    perm: List[int] = []
    for rnd in range(shape.rounds):
        block = list(range(rnd * shape.nc, (rnd + 1) * shape.nc))
        block.sort(key=lambda mb: (-scale[mb], mb))
        perm.extend(block)
    return perm


@register_schedule(
    "dip",
    description="DIP-style dynamic schedule (arxiv 2504.14145): flexible "
    "structure with heavy micro-batches scheduled first in each round",
    family="1f1b",
    aliases=("dip-degenerate-afab",),
)
def build_dip_schedule(shape: ScheduleShape) -> PipelineSchedule:
    """Relabel the flexible schedule's micro-batch slots heavy-first.

    The permutation is identical on every rank, so the dependency
    structure (and therefore deadlock-freedom and every structural
    invariant) is exactly the flexible schedule's; only which
    micro-batch occupies which slot changes.  With no per-micro-batch
    profile attached this is the flexible schedule under another name.
    """
    base = build_flexible_schedule(shape)
    perm = microbatch_permutation(shape)
    programs = tuple(
        tuple(
            PipelineOp(op.kind, op.ppr, op.virtual_stage, perm[op.microbatch])
            for op in prog
        )
        for prog in base.programs
    )
    name = (
        "dip-degenerate-afab"
        if base.name == "flexible-degenerate-afab"
        else "dip"
    )
    schedule = PipelineSchedule(name=name, shape=shape, programs=programs)
    schedule.validate()
    return schedule
