"""Lowering: from (schedule, layout, costs) to a typed step graph.

The step graph is the IR between schedule *structure* and timeline
*execution* (see ``docs/step_graph.md``).  Lowering turns every pipeline
op into a small chain of typed :class:`StepOp`s — TP all-gather, CP KV
all-gather, the MoE token-dispatch all-to-all (EP ranks only), the
compute kernel, the combine all-to-all, TP reduce-scatter, and an
asynchronous P2P send toward the consuming stage — each individually
priced, plus (for a full step) FSDP parameter all-gathers, gradient
reduce-scatters, and the optimizer.  Ops carry explicit dependency edges
by uid; the interpreter in :mod:`repro.train.executor` replays them onto
dedicated simulator streams (``compute``, ``tp``, ``cp``, ``ep``,
``p2p``, ``fsdp``, ``opt``), so communication/computation overlap — or
its failure — is an *outcome* of the timeline rather than an assumption
baked into scalar arithmetic.

Two lowerings are provided:

* :func:`lower_pipeline` — just the pipeline region (what
  ``execute_pipeline`` runs): per-op chains and P2P sends.
* :func:`lower_step` — a whole optimizer step (what ``simulate_step``
  runs): the pipeline region plus FSDP parameter all-gathers queued from
  t=0 on the ``fsdp`` stream (prefetch; the stream serializes them, so
  only the first is exposed when compute is long enough — Section
  7.3.1), per-stage gradient reduce-scatters after each stage's last
  backward, and the optimizer once every reduce-scatter on the rank has
  finished.

Simplifications, stated so they can be revisited: prefetch depth is
unbounded (all parameter all-gathers are enqueued up front; real FSDP
caps in-flight gathers to bound memory), and under ZeRO-3 one all-gather
per (stage, round) covers both the forward and the backward of that
round's micro-batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.parallel.config import ZeroStage
from repro.pp.layout import PipelineLayout, StageAssignment
from repro.pp.schedule import (
    GRAD_PRODUCING_KINDS,
    OpKind,
    PipelineOp,
    PipelineSchedule,
)
from repro.train.cost import StageCost, split_backward_cost

CostFn = Callable[[StageAssignment], StageCost]


class StepOpKind(Enum):
    """Typed op categories; each maps to one simulator stream."""

    COMPUTE = "compute"
    TP_ALLGATHER = "tp_allgather"
    TP_REDUCESCATTER = "tp_reducescatter"
    CP_COMM = "cp_comm"
    MOE_DISPATCH = "moe_dispatch"
    MOE_COMBINE = "moe_combine"
    P2P_SEND = "p2p_send"
    FSDP_ALLGATHER = "fsdp_allgather"
    FSDP_REDUCESCATTER = "fsdp_reducescatter"
    OPTIMIZER = "optimizer"


#: Stream each op kind executes on.
STREAM_OF_KIND: Dict[StepOpKind, str] = {
    StepOpKind.COMPUTE: "compute",
    StepOpKind.TP_ALLGATHER: "tp",
    StepOpKind.TP_REDUCESCATTER: "tp",
    StepOpKind.CP_COMM: "cp",
    StepOpKind.MOE_DISPATCH: "ep",
    StepOpKind.MOE_COMBINE: "ep",
    StepOpKind.P2P_SEND: "p2p",
    StepOpKind.FSDP_ALLGATHER: "fsdp",
    StepOpKind.FSDP_REDUCESCATTER: "fsdp",
    StepOpKind.OPTIMIZER: "opt",
}

#: Op kinds that belong to the pipeline region of a step timeline.
PIPELINE_KINDS = frozenset({
    StepOpKind.COMPUTE,
    StepOpKind.TP_ALLGATHER,
    StepOpKind.TP_REDUCESCATTER,
    StepOpKind.CP_COMM,
    StepOpKind.MOE_DISPATCH,
    StepOpKind.MOE_COMBINE,
    StepOpKind.P2P_SEND,
})


@dataclass(frozen=True)
class StepOp:
    """One typed op in a rank's program.

    Attributes:
        uid: Graph-wide unique id; ``deps`` reference these.
        kind: Typed category (also fixes the stream).
        rank: Pipeline rank executing the op.
        stream: Simulator stream the op occupies.
        duration: Priced execution time in seconds.
        name: Trace event name.
        deps: uids that must have executed before this op starts.
        pipeline_op: The schedule op a COMPUTE lowers, for timeline
            verification and per-op metrics.
        wait_name: When set, the interpreter records an ``exposed_comm``
            wait event of this name for any gap between the rank being
            ready and this op's cross-rank input arriving.
    """

    uid: int
    kind: StepOpKind
    rank: int
    stream: str
    duration: float
    name: str
    deps: Tuple[int, ...] = ()
    pipeline_op: Optional[PipelineOp] = None
    wait_name: Optional[str] = None


@dataclass(frozen=True)
class StepGraph:
    """Per-rank programs of typed ops with cross-rank dependency edges."""

    programs: Tuple[Tuple[StepOp, ...], ...]

    @property
    def pp(self) -> int:
        return len(self.programs)

    def ops(self) -> Iterator[StepOp]:
        for prog in self.programs:
            yield from prog

    def by_uid(self) -> Dict[int, StepOp]:
        return {op.uid: op for op in self.ops()}


@dataclass
class _OpRec:
    """Mutable op record during lowering; frozen into StepOp at the end."""

    kind: StepOpKind
    rank: int
    duration: float
    name: str
    deps: List["_OpRec"] = field(default_factory=list)
    pipeline_op: Optional[PipelineOp] = None
    wait_name: Optional[str] = None
    uid: int = -1


def _freeze(programs: List[List[_OpRec]]) -> StepGraph:
    uid = 0
    for prog in programs:
        for rec in prog:
            rec.uid = uid
            uid += 1
    return StepGraph(programs=tuple(
        tuple(
            StepOp(
                uid=rec.uid,
                kind=rec.kind,
                rank=rec.rank,
                stream=STREAM_OF_KIND[rec.kind],
                duration=rec.duration,
                name=rec.name,
                deps=tuple(d.uid for d in rec.deps),
                pipeline_op=rec.pipeline_op,
                wait_name=rec.wait_name,
            )
            for rec in prog
        )
        for prog in programs
    ))


@dataclass
class _Chains:
    """Intermediate chain bookkeeping shared by the two lowerings."""

    programs: List[List[_OpRec]]
    head: Dict[PipelineOp, _OpRec]
    compute: Dict[PipelineOp, _OpRec]


def _producer_key(
    op: PipelineOp, stage: int, last_stage: int
) -> Optional[Tuple[OpKind, int]]:
    """(kind, stage) whose output this op consumes cross-rank, if any.

    Forwards consume the previous stage's forward activation; backwards
    (monolithic B, or the input-grad half BI under split backward)
    consume the next stage's gradient of the same kind.  The weight-grad
    half BW is rank-local — it reads only the stage's own saved
    activations and the already-received gradient, so it has no
    cross-rank producer.
    """
    if op.kind is OpKind.FORWARD:
        return (OpKind.FORWARD, stage - 1) if stage > 0 else None
    if op.kind is OpKind.BACKWARD_WEIGHT:
        return None
    return (op.kind, stage + 1) if stage < last_stage else None


def _lower_chains(
    schedule: PipelineSchedule,
    layout: PipelineLayout,
    forward_cost: CostFn,
    backward_cost: CostFn,
    p2p_seconds: float,
    backward_input_cost: Optional[CostFn] = None,
    backward_weight_cost: Optional[CostFn] = None,
) -> _Chains:
    """Lower every pipeline op into its per-stream chain plus P2P sends.

    The chain ``tp:ag -> cp:kv -> ep:dispatch -> compute -> ep:combine
    -> tp:rs`` serializes through dependency edges (the EP links appear
    only for MoE stage costs), so its end-to-end span equals the sum of
    its piece durations — the same total the pre-graph executor folded
    into one event — while each piece occupies its own stream.  The send
    depends on the chain tail (the sequence-parallel reduce-scatter
    completes the activation before it can ship) and never blocks the
    producer's next op.
    """
    if layout.pp != schedule.pp or layout.v != schedule.shape.v:
        raise ValueError("layout and schedule disagree on pp or v")
    pp = schedule.pp
    last_stage = layout.num_stages - 1
    shape = schedule.shape
    hetero = shape.is_heterogeneous
    split = schedule.uses_split_backward

    fwd_cost: Dict[int, StageCost] = {}
    bwd_cost: Dict[int, StageCost] = {}
    bi_cost: Dict[int, StageCost] = {}
    bw_cost: Dict[int, StageCost] = {}
    for s in range(layout.num_stages):
        fwd_cost[s] = forward_cost(layout.stage(s))
        bwd_cost[s] = backward_cost(layout.stage(s))
        if split:
            # Explicit BI/BW pricing when the caller supplies it (the
            # CostModel's memoized halves); otherwise the exact-sum split
            # of the monolithic backward.
            if backward_input_cost is not None:
                bi_cost[s] = backward_input_cost(layout.stage(s))
            if backward_weight_cost is not None:
                bw_cost[s] = backward_weight_cost(layout.stage(s))
            if backward_input_cost is None or backward_weight_cost is None:
                bi, bw = split_backward_cost(bwd_cost[s])
                bi_cost.setdefault(s, bi)
                bw_cost.setdefault(s, bw)

    programs: List[List[_OpRec]] = [[] for _ in range(pp)]
    head: Dict[PipelineOp, _OpRec] = {}
    compute: Dict[PipelineOp, _OpRec] = {}
    sends: Dict[Tuple[OpKind, int, int], _OpRec] = {}

    kind_cost = {
        OpKind.FORWARD: fwd_cost,
        OpKind.BACKWARD: bwd_cost,
        OpKind.BACKWARD_INPUT: bi_cost,
        OpKind.BACKWARD_WEIGHT: bw_cost,
    }
    for ppr in range(pp):
        prev_tail: Optional[_OpRec] = None
        for op in schedule.program(ppr):
            stage = op.global_stage(pp)
            cost = kind_cost[op.kind][stage]
            compute_seconds = cost.compute_seconds
            if hetero:
                # Heterogeneous stages/micro-batches scale the compute
                # kernel only; comm volume is unchanged by FLOPs mix.
                compute_seconds *= shape.compute_scale(stage, op.microbatch)
            label = op.label(pp)
            chain: List[_OpRec] = []
            if cost.tp_comm_seconds > 0:
                chain.append(_OpRec(
                    StepOpKind.TP_ALLGATHER, ppr,
                    cost.tp_comm_seconds / 2, f"tp:ag:{label}"))
            if cost.cp_comm_seconds > 0:
                chain.append(_OpRec(
                    StepOpKind.CP_COMM, ppr,
                    cost.cp_comm_seconds, f"cp:kv:{label}"))
            if cost.ep_comm_seconds > 0:
                chain.append(_OpRec(
                    StepOpKind.MOE_DISPATCH, ppr,
                    cost.ep_comm_seconds / 2, f"ep:dispatch:{label}"))
            comp = _OpRec(StepOpKind.COMPUTE, ppr, compute_seconds,
                          label, pipeline_op=op)
            chain.append(comp)
            if cost.ep_comm_seconds > 0:
                chain.append(_OpRec(
                    StepOpKind.MOE_COMBINE, ppr,
                    cost.ep_comm_seconds / 2, f"ep:combine:{label}"))
            if cost.tp_comm_seconds > 0:
                chain.append(_OpRec(
                    StepOpKind.TP_REDUCESCATTER, ppr,
                    cost.tp_comm_seconds / 2, f"tp:rs:{label}"))
            for prev, cur in zip(chain, chain[1:]):
                cur.deps.append(prev)
            if prev_tail is not None:
                chain[0].deps.append(prev_tail)
            if _producer_key(op, stage, last_stage) is not None:
                chain[0].wait_name = f"p2p:wait:{label}"
            head[op] = chain[0]
            compute[op] = comp
            prev_tail = chain[-1]
            programs[ppr].extend(chain)
            # Does anyone consume this op's output cross-rank?  Forward
            # activations flow down, B/BI gradients flow up, and BW
            # weight gradients never leave the rank.
            if op.kind is OpKind.FORWARD:
                consumer_exists = stage < last_stage
            elif op.kind is OpKind.BACKWARD_WEIGHT:
                consumer_exists = False
            else:
                consumer_exists = stage > 0
            if consumer_exists:
                send = _OpRec(StepOpKind.P2P_SEND, ppr, p2p_seconds,
                              f"p2p:send:{label}", deps=[prev_tail])
                sends[(op.kind, stage, op.microbatch)] = send
                programs[ppr].append(send)

    # Second sweep: wire each consumer's chain head to its producer's send
    # (the producing rank may appear later in rank order).
    for ppr in range(pp):
        for op in schedule.program(ppr):
            key = _producer_key(op, op.global_stage(pp), last_stage)
            if key is None:
                continue
            send = sends.get((key[0], key[1], op.microbatch))
            if send is None:
                raise ValueError(
                    f"op {op.label(pp)} consumes "
                    f"{key[0].value}:mb{op.microbatch}:s{key[1]} "
                    "which no rank produces")
            head[op].deps.append(send)

    return _Chains(programs=programs, head=head, compute=compute)


def lower_pipeline(
    schedule: PipelineSchedule,
    layout: PipelineLayout,
    forward_cost: CostFn,
    backward_cost: CostFn,
    p2p_seconds: float,
    *,
    backward_input_cost: Optional[CostFn] = None,
    backward_weight_cost: Optional[CostFn] = None,
) -> StepGraph:
    """Lower a schedule's pipeline region (no FSDP/optimizer ops).

    Split-backward schedules price BI/BW ops from the optional cost
    callables, defaulting to the exact-sum split of ``backward_cost``.
    """
    return _freeze(_lower_chains(
        schedule, layout, forward_cost, backward_cost, p2p_seconds,
        backward_input_cost=backward_input_cost,
        backward_weight_cost=backward_weight_cost,
    ).programs)


def lower_step(
    schedule: PipelineSchedule,
    layout: PipelineLayout,
    forward_cost: CostFn,
    backward_cost: CostFn,
    p2p_seconds: float,
    *,
    zero: ZeroStage,
    fsdp_allgather_cost: Callable[[StageAssignment], float],
    fsdp_reduce_scatter_cost: Callable[[StageAssignment], float],
    optimizer_cost: Callable[[int], float],
    backward_input_cost: Optional[CostFn] = None,
    backward_weight_cost: Optional[CostFn] = None,
) -> StepGraph:
    """Lower one full optimizer step onto the graph.

    Beyond the pipeline chains, each rank's program gains:

    * **FSDP parameter all-gathers** on the ``fsdp`` stream, enqueued at
      the front of the program in first-use order — one per hosted stage
      (ZeRO-1/2: parameters stay gathered all step) or one per
      (stage, round) (ZeRO-3: re-gathered every round of ``nc``
      micro-batches).  The first compute of each stage (or round) depends
      on its gather, so only gathers the stream cannot prefetch in time
      show up as exposed head time (Section 7.3.1).
    * **Gradient reduce-scatters**, one per hosted stage, each depending
      on the stage's last backward — they drain on the ``fsdp`` stream
      under whatever pipeline work remains, and only the final one's tail
      is exposed.
    * **The optimizer**, depending on every reduce-scatter of the rank.

    Args:
        zero: ZeRO mode; fixes the all-gather cadence.
        fsdp_allgather_cost: Stage -> one parameter all-gather in seconds.
        fsdp_reduce_scatter_cost: Stage -> one gradient reduce-scatter.
        optimizer_cost: Pipeline rank -> optimizer step in seconds.
    """
    chains = _lower_chains(
        schedule, layout, forward_cost, backward_cost, p2p_seconds,
        backward_input_cost=backward_input_cost,
        backward_weight_cost=backward_weight_cost)
    pp = schedule.pp
    nc = schedule.shape.nc
    per_round = zero is ZeroStage.ZERO_3

    for ppr in range(pp):
        prog = schedule.program(ppr)

        # Parameter all-gathers, in order of each key's first use.
        first_use: Dict[Tuple[int, Optional[int]], PipelineOp] = {}
        for op in prog:
            key = (op.global_stage(pp),
                   op.microbatch // nc if per_round else None)
            first_use.setdefault(key, op)
        ag_recs: List[_OpRec] = []
        for (stage, rnd), op in first_use.items():
            name = (f"fsdp:ag:s{stage}:r{rnd}" if rnd is not None
                    else f"fsdp:ag:s{stage}")
            ag = _OpRec(StepOpKind.FSDP_ALLGATHER, ppr,
                        fsdp_allgather_cost(layout.stage(stage)), name)
            ag_recs.append(ag)
            chains.compute[op].deps.append(ag)
        chains.programs[ppr] = ag_recs + chains.programs[ppr]

        # Gradient reduce-scatters after each stage's last backward,
        # ordered by that backward's program position (the interpreter
        # walks each program in order, so an earlier-listed reduce-scatter
        # must not wait on a later backward).
        # Under split backward the weight gradient is only complete once
        # the BW half has run, so BW (not BI) gates the reduce-scatter.
        last_backward: Dict[int, Tuple[int, PipelineOp]] = {}
        for idx, op in enumerate(prog):
            if op.kind in GRAD_PRODUCING_KINDS:
                last_backward[op.global_stage(pp)] = (idx, op)
        rs_recs = [
            _OpRec(StepOpKind.FSDP_REDUCESCATTER, ppr,
                   fsdp_reduce_scatter_cost(layout.stage(stage)),
                   f"fsdp:rs:s{stage}", deps=[chains.compute[op]])
            for stage, (_, op) in sorted(
                last_backward.items(), key=lambda kv: kv[1][0])
        ]
        chains.programs[ppr].extend(rs_recs)

        chains.programs[ppr].append(_OpRec(
            StepOpKind.OPTIMIZER, ppr, optimizer_cost(ppr), "optimizer",
            deps=list(rs_recs)))

    return _freeze(chains.programs)
