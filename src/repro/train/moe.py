"""MoE token-routing math: capacity, load imbalance, and drop accounting.

Expert layers route each token to its ``top_k`` experts, but every expert
processes at most a fixed *capacity* of tokens per micro-batch —
``capacity_factor`` times its share of a perfectly balanced load.  Tokens
routed past a full expert are dropped (they skip the FFN and ride the
residual connection).  Two consequences matter for the simulator:

* **Compute/traffic shaping** — a *hot* expert (one that real routers
  over-select early in training) saturates its capacity buffer, so the
  rank hosting it does up to ``capacity_factor`` times the balanced work
  while its all-to-all peers wait.  This is the per-stage-heterogeneity
  shape the :class:`repro.faults.HotExpert` fault injects.
* **Quality accounting** — the dropped-token fraction is a training
  quality signal, reported on :class:`repro.train.step.StepReport`.

The load model is deliberately one-parameter: the hottest expert receives
``imbalance`` times the balanced per-expert load and the remaining
experts split the rest evenly.  ``imbalance = 1.0`` is a perfect router.
"""

from __future__ import annotations

import math

from repro.model.config import TextModelConfig


def balanced_tokens_per_expert(
    tokens: int, n_experts: int, top_k: int
) -> float:
    """Tokens each expert receives from ``tokens`` inputs under a
    perfectly balanced router (each token counted ``top_k`` times)."""
    if tokens < 0 or n_experts < 1 or top_k < 1:
        raise ValueError("tokens >= 0, n_experts >= 1, top_k >= 1 required")
    return tokens * top_k / n_experts


def expert_capacity(
    tokens: int, n_experts: int, top_k: int, capacity_factor: float
) -> int:
    """Per-expert token buffer: ``ceil(capacity_factor * balanced)``."""
    if capacity_factor <= 0:
        raise ValueError("capacity_factor must be positive")
    balanced = balanced_tokens_per_expert(tokens, n_experts, top_k)
    return math.ceil(capacity_factor * balanced)


def dropped_token_fraction(
    n_experts: int,
    capacity_factor: float,
    imbalance: float = 1.0,
) -> float:
    """Fraction of routed token slots dropped at the given imbalance.

    The hottest expert draws ``imbalance`` times the balanced load
    (clipped to all tokens when ``imbalance > n_experts``); the rest of
    the load spreads evenly over the other experts.  Anything past an
    expert's ``capacity_factor`` buffer is dropped.
    """
    if n_experts < 1:
        raise ValueError("n_experts must be >= 1")
    if capacity_factor <= 0:
        raise ValueError("capacity_factor must be positive")
    if imbalance < 1.0:
        raise ValueError("imbalance must be >= 1.0 (1.0 = balanced)")
    cap = capacity_factor / n_experts     # capacity as a load fraction
    hot = min(imbalance / n_experts, 1.0)
    dropped = max(0.0, hot - cap)
    if n_experts > 1:
        cold = (1.0 - hot) / (n_experts - 1)
        dropped += (n_experts - 1) * max(0.0, cold - cap)
    return min(dropped, 1.0)


def hot_expert_compute_scale(
    n_experts: int,
    capacity_factor: float,
    imbalance: float,
) -> float:
    """Work multiplier for the rank hosting the hottest expert, relative
    to the balanced load.

    The capacity buffer clips the hot expert's realised work at
    ``capacity_factor`` times balanced, so the scale saturates there —
    past that point a hotter router drops more tokens instead of doing
    more work (see :func:`dropped_token_fraction`).
    """
    if imbalance < 1.0:
        raise ValueError("imbalance must be >= 1.0")
    load = min(imbalance / n_experts, 1.0) * n_experts
    return min(load, capacity_factor)


def dispatch_bytes_per_rank(
    model: TextModelConfig, tokens: int, tp: int = 1
) -> float:
    """Bytes one EP rank contributes to the dispatch all-to-all.

    Each of the rank's ``tokens`` activations is replicated to its
    ``top_k`` experts in BF16; sequence parallelism splits the payload
    over the ``tp`` ranks sharing the sequence.  The combine all-to-all
    moves the same volume back.
    """
    if not model.is_moe:
        return 0.0
    if tokens < 0 or tp < 1:
        raise ValueError("tokens >= 0 and tp >= 1 required")
    return 2.0 * tokens * model.top_k * model.dim / tp
