"""Multi-phase pre-training planning (Section 2.2's flexibility story).

Llama 3 pre-training runs several phases with different hyperparameters —
GPU count, global batch size, and sequence length all *change between
phases* — which is exactly why the PP schedule must accept arbitrary batch
sizes and why CP slots in for the long-context phase.  This module chains
the Section 5 planner across a phase list and reports the resulting
configurations and simulated throughput, reproducing the production
progression: ramping batch/GPU counts in short context, then 4D
parallelism for long context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from typing import TYPE_CHECKING

from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig
from repro.parallel.config import JobConfig

if TYPE_CHECKING:  # typing only — avoids a package import cycle
    from repro.obs.metrics import MetricsRegistry
    from repro.parallel.planner import Plan
    from repro.train.step import StepReport


@dataclass(frozen=True)
class TrainingPhase:
    """One pre-training phase.

    Attributes:
        name: Human-readable phase name.
        job: GPU count / batch / sequence hyperparameters.
        mask_fraction: Attention mask density (0.5 causal; lower for
            document-heavy long-context corpora).
        attention_straggler: Document-mask straggler factor (Section
            7.3.2) applied during simulation.
    """

    name: str
    job: JobConfig
    mask_fraction: float = 0.5
    attention_straggler: float = 1.0


#: The Llama 3 405B production progression (Section 2.2 / Table 2): batch
#: and cluster ramp during short-context, then the long-context phase
#: keeps the 16M-token budget while sequence length grows 16x.
LLAMA3_405B_PHASES: Tuple[TrainingPhase, ...] = (
    TrainingPhase("short-context ramp-up",
                  JobConfig(seq=8192, gbs=1024, ngpu=8192)),
    TrainingPhase("short-context main",
                  JobConfig(seq=8192, gbs=2048, ngpu=16384)),
    TrainingPhase("long-context",
                  JobConfig(seq=131072, gbs=128, ngpu=16384),
                  attention_straggler=1.44),
)


@dataclass(frozen=True)
class PhaseReport:
    """Planner + simulation outcome for one phase."""

    phase: TrainingPhase
    plan: "Plan"
    tflops_per_gpu: float
    step_seconds: float
    bubble_ratio: float
    max_memory_gb: float
    #: Full step simulation (carries the pipeline timeline for tracing).
    step: "StepReport" = None  # type: ignore[assignment]


def phases_by_name(
    names: List[str],
    phases: Tuple[TrainingPhase, ...] = LLAMA3_405B_PHASES,
) -> Tuple[TrainingPhase, ...]:
    """Select phases by name, preserving the progression's order.

    Raises ``KeyError`` naming the offender and the valid choices when a
    requested phase does not exist.
    """
    known = {p.name: p for p in phases}
    selected = []
    for name in names:
        if name not in known:
            raise KeyError(
                f"unknown phase {name!r}; choose from {sorted(known)}"
            )
        selected.append(known[name])
    return tuple(selected)


def plan_pretraining(
    model: TextModelConfig,
    cluster: ClusterSpec,
    phases: Tuple[TrainingPhase, ...] = LLAMA3_405B_PHASES,
    metrics: "MetricsRegistry" = None,
) -> List[PhaseReport]:
    """Plan and simulate every phase in order.

    Each phase gets its own parallelism configuration from the planner —
    the point being that nothing but hyperparameters changes between
    phases; the flexible schedule and CP absorb the rest.  Each phase's
    pipeline timeline is kept on its report (``.step.run.sim``) so the
    whole progression can be exported as one merged trace; ``metrics``
    (if given) accumulates every phase's executor counters.
    """
    from repro.parallel.planner import plan_parallelism
    from repro.train.step import simulate_step

    reports = []
    for phase in phases:
        plan = plan_parallelism(model, phase.job, cluster)
        rep = simulate_step(
            model, plan.parallel, phase.job, cluster,
            schedule_kind="flexible", v=plan.virtual_stages,
            mask_fraction=phase.mask_fraction,
            attention_straggler=phase.attention_straggler,
            metrics=metrics,
        )
        reports.append(
            PhaseReport(
                phase=phase,
                plan=plan,
                tflops_per_gpu=rep.tflops_per_gpu,
                step_seconds=rep.step_seconds,
                bubble_ratio=rep.mean_bubble_ratio,
                max_memory_gb=rep.max_peak_memory_gb,
                step=rep,
            )
        )
    return reports


def describe_pretraining(reports: List[PhaseReport]) -> str:
    """Multi-line summary table of a phase plan."""
    lines = []
    for r in reports:
        p = r.plan.parallel
        lines.append(
            f"{r.phase.name:24s} seq={r.phase.job.seq:<7d} "
            f"gbs={r.phase.job.gbs:<5d} ngpu={r.phase.job.ngpu:<6d} "
            f"-> tp{p.tp}/cp{p.cp}/pp{p.pp}/dp{p.dp} "
            f"({r.plan.schedule}), {r.tflops_per_gpu:.0f} TFLOPs/GPU, "
            f"{r.max_memory_gb:.0f} GiB"
        )
    return "\n".join(lines)
