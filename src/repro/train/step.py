"""End-to-end training-step simulation: the Section 7.3 numbers.

Lowers one optimizer step — pipeline schedule, per-op TP/CP/P2P
communication, FSDP parameter all-gathers and gradient reduce-scatters,
and the optimizer — onto a single step graph
(:mod:`repro.train.lowering`) and interprets it on one simulator
timeline.  The step time *is* the timeline's makespan: FSDP overlap (only
the first parameter all-gather and the last gradient reduce-scatter
exposed, Section 7.3.1) emerges from the ``fsdp`` stream racing the
``compute`` stream rather than being asserted as scalar add-ons.  The
report carries achieved TFLOPs/GPU, MFU, tokens/s, measured bubble
ratios, and per-rank peak memory — the quantities behind Figures 9 and 10
and the 400/380 TFLOPs headline results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from repro.faults.inject import InjectionReport
    from repro.faults.models import FaultPlan

from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig
from repro.model.flops import expert_params, layer_params, model_step_flops
from repro.model.memory import (
    BF16_BYTES,
    FP32_BYTES,
    GIB,
    activation_bytes_per_layer,
    embedding_bytes,
    output_head_bytes,
    optimizer_state_bytes_per_param,
)
from repro.obs.metrics import (
    MetricsRegistry,
    pp_rank_map,
    record_simulator_metrics,
)
from repro.parallel.config import JobConfig, ParallelConfig
from repro.pp.analysis import ScheduleShape, default_nc
from repro.pp.grad_memory import track_memory
from repro.pp.heterogeneity import stage_profile as _stage_profile
from repro.pp.layout import PipelineLayout, build_layout
from repro.pp.registry import schedule_entry
from repro.pp.schedule import build_schedule
from repro.sim.engine import Simulator
from repro.train.cost import CostModel
from repro.train.executor import (
    GraphExecution,
    PipelineRun,
    execute_graph,
    summarize_pipeline_execution,
)
from repro.train.lowering import StepOpKind, lower_step


@dataclass(frozen=True)
class StepReport:
    """One simulated optimizer step."""

    run: PipelineRun
    step_seconds: float
    pipeline_seconds: float
    exposed_fsdp_seconds: float
    optimizer_seconds: float
    model_flops: float
    ngpu: int
    per_rank_peak_memory_gb: Tuple[float, ...]
    #: Per-GPU peak FLOPs of the simulated hardware (MFU denominator).
    peak_flops: float = 0.0
    #: Tokens consumed by this step across the job.
    tokens_per_step: int = 0
    #: The interpreted step graph (events by uid), for timeline
    #: verification (:func:`repro.verify.invariants.run_step_invariants`).
    execution: Optional[GraphExecution] = None
    #: What fault injection rewrote, when the step ran under a fault plan
    #: (:func:`repro.faults.inject.apply_fault_plan`); None when healthy.
    fault_injection: Optional["InjectionReport"] = None
    #: Name of the pipeline schedule the step ran under (the built
    #: :attr:`~repro.pp.schedule.PipelineSchedule.name`, which may differ
    #: from the requested kind when a 1F1B-family schedule degenerates).
    schedule: str = ""
    #: Hot-expert routing imbalance the step ran under: 1.0 for a
    #: balanced router (and always for dense models); the injected
    #: :class:`repro.faults.HotExpert` imbalance otherwise.
    expert_imbalance: float = 1.0
    #: Fraction of routed token slots dropped at that imbalance under
    #: the model's ``capacity_factor`` (0.0 for dense models) — the MoE
    #: training-quality signal next to the throughput numbers.
    dropped_token_fraction: float = 0.0

    @property
    def tflops_per_gpu(self) -> float:
        """Achieved hardware TFLOPs per GPU over the full step."""
        return self.model_flops / self.ngpu / self.step_seconds / 1e12

    @property
    def mfu(self) -> float:
        """Model FLOPs utilization: achieved over peak hardware FLOPs."""
        if self.peak_flops <= 0:
            return 0.0
        return self.tflops_per_gpu * 1e12 / self.peak_flops

    @property
    def tokens_per_second(self) -> float:
        """Training throughput in tokens/s across the whole job."""
        return self.tokens_per_step / self.step_seconds

    @property
    def mean_bubble_ratio(self) -> float:
        return self.run.mean_bubble_ratio

    @property
    def max_peak_memory_gb(self) -> float:
        return max(self.per_rank_peak_memory_gb)


def _layer_params_on_rank(
    model: TextModelConfig, parallel: ParallelConfig
) -> float:
    """Per-layer parameters one rank stores: the dense slice over TP plus
    this rank's ``n_experts / ep`` experts (each also TP-sharded) — the
    slice :func:`repro.model.flops.expert_params` defines."""
    dense = layer_params(model) - expert_params(model)
    return (dense + expert_params(model) / parallel.ep) / parallel.tp


def _rank_base_memory(
    model: TextModelConfig,
    parallel: ParallelConfig,
    layout: PipelineLayout,
    ppr: int,
) -> float:
    """Static bytes on one rank: BF16 params, sharded optimizer state, and
    embedding/head weights+grads.  Gradient and activation bytes are
    tracked dynamically by the schedule walker."""
    tp = parallel.tp
    layers = layout.layers_on_rank(ppr)
    params = layers * _layer_params_on_rank(model, parallel)
    base = BF16_BYTES * params
    base += optimizer_state_bytes_per_param() * params / parallel.grad_shard_degree
    stages = layout.stages_of_rank(ppr)
    if any(s.has_embedding for s in stages):
        base += embedding_bytes(model, tp) * 3  # BF16 weights + FP32 grads
    if any(s.has_output_head for s in stages):
        base += output_head_bytes(model, tp) * 3
    return base


def simulate_step(
    model: TextModelConfig,
    parallel: ParallelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    schedule_kind: str = "flexible",
    nc: Optional[int] = None,
    v: Optional[int] = None,
    layout: Optional[PipelineLayout] = None,
    recompute: bool = False,
    congestion: float = 1.0,
    mask_fraction: float = 0.5,
    attention_straggler: float = 1.0,
    sim: Optional[Simulator] = None,
    metrics: Optional[MetricsRegistry] = None,
    fault_plan: Optional["FaultPlan"] = None,
    stage_compute_scale: Optional[Sequence[float]] = None,
    microbatch_compute_scale: Optional[Sequence[float]] = None,
    stage_preset: Optional[str] = None,
) -> StepReport:
    """Simulate one optimizer step and report throughput and memory.

    Args:
        model: Architecture (its layer count determines the layout).
        parallel: 5D sizes and ZeRO mode.
        job: Phase hyperparameters.
        cluster: Hardware.
        schedule_kind: Any registered schedule kind
            (:func:`repro.pp.registry.schedule_kinds`); split-backward
            kinds are priced via the cost model's BI/BW split.
        nc: Round size (default: largest divisor of nmb <= pp).
        v: Virtual stages per rank (default: one layer per stage).
        layout: Explicit layer placement (default from model/pp/v).
        recompute: Activation checkpointing: False, True (full: only each
            layer's input survives), or "selective" (attention internals
            and FFN hidden recomputed; projections' inputs kept).
        congestion: Bandwidth-division factor for network interference.
        mask_fraction: Attention mask density (0.5 = causal).
        attention_straggler: Slowest-over-mean attention ratio from
            document-mask imbalance (Section 7.3.2's 1.44x at 131K).
        sim: Simulator to record the step timeline into (a fresh one by
            default) — hand one in to export a trace afterwards.
        metrics: Registry the interpreter and this function report step
            metrics into (per-rank busy/idle/exposed seconds, bubble
            ratios, exposed FSDP/optimizer gauges, peak memory).
        fault_plan: Declarative faults (:class:`repro.faults.FaultPlan`)
            applied to the lowered graph before execution — the step-graph
            half of the Section 6.1 fault-injection loop.  Perturbed ops
            are tagged ``"faulted"`` in the trace and summarized in
            :attr:`StepReport.fault_injection`.
        stage_compute_scale: Per-global-stage compute multipliers
            (length ``pp * v``) for heterogeneous stages — mixed GPU
            fleets or modality-imbalanced encoder stages.
        microbatch_compute_scale: Per-micro-batch compute multipliers
            (length ``nmb``) — variable-length micro-batches.
        stage_preset: Named stage profile from
            :data:`repro.pp.heterogeneity.STAGE_PRESETS`
            (``"mixed-fleet"``, ``"vit-encoder"``); mutually exclusive
            with an explicit ``stage_compute_scale``.

    The reported decomposition is exact on the timeline:
    ``step_seconds = pipeline_seconds + exposed_fsdp_seconds +
    optimizer_seconds``, where ``exposed_fsdp_seconds`` is the head the
    first parameter all-gather delays the pipeline by plus the tail the
    last gradient reduce-scatter runs past it, and ``optimizer_seconds``
    is the remaining tail to the full makespan.
    """
    pp = parallel.pp
    nmb = job.micro_batches(parallel)
    if v is None:
        v = max(math.ceil(model.n_layers / pp), 1)
        # Kinds with a fixed interleaving (e.g. the v=1 zoo schedules)
        # coerce the *default* v; an explicit v stays the caller's call.
        entry = schedule_entry(schedule_kind)
        if entry.constrain is not None:
            v = entry.constrain(
                ScheduleShape(pp=pp, v=v, nc=default_nc(pp, nmb),
                              nmb=nmb)).v
    if layout is None:
        layout = build_layout(model.n_layers, pp, v)
    if nc is None:
        nc = default_nc(pp, nmb)
    if stage_preset is not None:
        if stage_compute_scale is not None:
            raise ValueError(
                "pass stage_preset or stage_compute_scale, not both")
        stage_compute_scale = _stage_profile(stage_preset, pp, v)
    shape = ScheduleShape(
        pp=pp, v=v, nc=nc, nmb=nmb,
        stage_compute_scale=(
            tuple(stage_compute_scale) if stage_compute_scale else None),
        microbatch_compute_scale=(
            tuple(microbatch_compute_scale)
            if microbatch_compute_scale else None),
    )
    schedule = build_schedule(shape, schedule_kind)

    cost = CostModel(model, parallel, job, cluster,
                     recompute=recompute, congestion=congestion,
                     attention_straggler=attention_straggler,
                     mask_fraction=mask_fraction)

    def stage_params(stage) -> float:
        return stage.n_layers * _layer_params_on_rank(model, parallel)

    graph = lower_step(
        schedule, layout,
        cost.forward_seconds, cost.backward_seconds,
        p2p_seconds=cost.p2p_seconds(),
        backward_input_cost=cost.backward_input_seconds,
        backward_weight_cost=cost.backward_weight_seconds,
        zero=parallel.zero,
        fsdp_allgather_cost=lambda s: cost.fsdp_allgather_seconds(
            stage_params(s)),
        fsdp_reduce_scatter_cost=lambda s: cost.fsdp_reduce_scatter_seconds(
            stage_params(s)),
        optimizer_cost=lambda ppr: cost.optimizer_seconds(
            layout.layers_on_rank(ppr)
            * _layer_params_on_rank(model, parallel)),
    )
    injection: Optional["InjectionReport"] = None
    op_tags = None
    if fault_plan is not None and len(fault_plan):
        # Imported lazily: repro.faults imports this module for goodput.
        from repro.faults.inject import apply_fault_plan
        from repro.parallel.mesh import DeviceMesh

        graph, injection = apply_fault_plan(
            graph, fault_plan, DeviceMesh(parallel))
        op_tags = injection.tags_by_uid
    execution = execute_graph(graph, sim=sim, metrics=metrics,
                              op_tags=op_tags)
    run = summarize_pipeline_execution(execution, schedule,
                                       cost.p2p_seconds())

    # Exact timeline decomposition: the pipeline region spans
    # [start_time, pipeline_end]; the head before it (first exposed FSDP
    # all-gather) plus the reduce-scatter tail past it are the exposed
    # FSDP seconds; whatever remains to the full makespan is optimizer.
    pipeline_end = run.makespan
    step_seconds = max(
        (e.end for e in execution.events.values()), default=0.0)
    rs_end = max(
        (e.end for e in execution.events_of_kind(
            StepOpKind.FSDP_REDUCESCATTER)),
        default=pipeline_end)
    rs_tail = max(rs_end - pipeline_end, 0.0)
    exposed_fsdp = run.start_time + rs_tail
    optimizer = step_seconds - pipeline_end - rs_tail
    pipeline_seconds = pipeline_end - run.start_time

    # Per-rank peak memory: static base + schedule-tracked dynamic peak.
    act = activation_bytes_per_layer(
        model, seq=job.seq, mbs=job.mbs, tp=parallel.tp, cp=parallel.cp
    )
    if recompute == "selective":
        act_per_layer = act.attn_inputs + act.qkv + act.ffn_inputs
    elif recompute:
        act_per_layer = BF16_BYTES * (job.seq * job.mbs / parallel.cp
                                      / parallel.tp) * model.dim
    else:
        act_per_layer = act.total
    grad_per_layer = FP32_BYTES * _layer_params_on_rank(model, parallel)
    peaks: List[float] = []
    for ppr in range(pp):
        weights = {
            vs: float(stage.n_layers)
            for vs, stage in enumerate(layout.stages_of_rank(ppr))
        }
        timeline = track_memory(
            schedule, ppr, parallel.zero,
            grad_bytes_per_stage=grad_per_layer,
            act_bytes_per_microbatch=act_per_layer,
            shard_degree=parallel.grad_shard_degree,
            stage_weights=weights,
        )
        peaks.append(
            (_rank_base_memory(model, parallel, layout, ppr)
             + timeline.peak_total_bytes) / GIB
        )

    # Useful model FLOPs only: recomputation work does not count toward
    # achieved TFLOPs (the paper's metric improves 17.5% when recompute is
    # turned off, so it is an MFU-style numerator).
    flops = model_step_flops(
        model,
        tokens_per_step=job.tokens_per_step,
        seq=job.seq,
        mask_fraction=mask_fraction,
        recompute=False,
    )

    # MoE routing accounting: the worst injected HotExpert imbalance
    # (1.0 when the router is healthy) sets the dropped-token fraction
    # under the model's capacity factor.
    expert_imbalance = 1.0
    dropped = 0.0
    if model.is_moe:
        if fault_plan is not None:
            expert_imbalance = max(
                [expert_imbalance]
                + [f.imbalance for f in fault_plan
                   if getattr(f, "kind_label", "") == "hot_expert"])
        from repro.train.moe import dropped_token_fraction
        dropped = dropped_token_fraction(
            model.n_experts, model.capacity_factor, expert_imbalance)

    if metrics is not None:
        rank_map = pp_rank_map(parallel)
        record_simulator_metrics(run.sim, metrics, rank_map=rank_map)
        step_gauges = metrics.gauge(
            "step.seconds", unit="s",
            description="step-time components, by part")
        step_gauges.set(step_seconds, part="total")
        step_gauges.set(pipeline_seconds, part="pipeline")
        step_gauges.set(exposed_fsdp, part="exposed_fsdp")
        step_gauges.set(optimizer, part="optimizer")
        peak_mem = metrics.gauge(
            "step.peak_memory_gb", unit="GiB",
            description="per-rank peak memory over the step")
        for ppr, gb in enumerate(peaks):
            peak_mem.set_max(gb, rank=rank_map[ppr])

    return StepReport(
        run=run,
        step_seconds=step_seconds,
        pipeline_seconds=pipeline_seconds,
        exposed_fsdp_seconds=exposed_fsdp,
        optimizer_seconds=optimizer,
        model_flops=flops,
        ngpu=job.ngpu,
        per_rank_peak_memory_gb=tuple(peaks),
        peak_flops=cluster.gpu.peak_flops,
        tokens_per_step=job.tokens_per_step,
        execution=execution,
        fault_injection=injection,
        schedule=schedule.name,
        expert_imbalance=expert_imbalance,
        dropped_token_fraction=dropped,
    )
