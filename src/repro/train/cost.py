"""Per-operation cost model for one GPU rank under 5D parallelism.

Times one pipeline-stage forward/backward for one micro-batch, composing:

* TP-sharded GEMMs (QKV/out projections, SwiGLU FFN) via the roofline GEMM
  model — column-parallel layers shard the output dim, row-parallel layers
  the inner dim, as in Megatron-LM;
* for MoE models, the per-expert FFN GEMMs of this rank's
  ``n_experts / ep`` experts (each sized by the capacity-clipped balanced
  token load) plus the router projection, and the dispatch/combine
  all-to-all over the EP group — exposed, like the TP collectives;
* the flash-attention kernel (heads sharded by TP, sequence sharded by CP,
  full key range after the CP all-gather);
* TP collectives — with sequence parallelism, an all-gather and a
  reduce-scatter around each of the attention and FFN blocks, *fully
  exposed* (Section 5.2);
* CP collectives — the KV all-gather in forward and KV-gradient
  reduce-scatter in backward, once per layer, exposed;
* embedding and vocabulary-head work on the first/last stages — the
  128K-vocab modules that motivate balanced PP (Section 7.1.2).

Backward is 2x the forward GEMM/attention compute (weight + input grads),
plus one extra forward when activation recomputation is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cp.perf import AttentionShape, attention_kernel_time
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu import gemm_time
from repro.model.config import TextModelConfig
from repro.parallel.config import JobConfig, ParallelConfig
from repro.pp.layout import StageAssignment
from repro.sim.collectives import (
    all_gather_time,
    all_to_all_time,
    p2p_time,
    reduce_scatter_time,
)
from repro.train.moe import dispatch_bytes_per_rank


@dataclass(frozen=True)
class StageCost:
    """Timing of one stage's work for one micro-batch.

    ``ep_comm_seconds`` (the MoE dispatch + combine all-to-all) defaults
    to 0.0 so dense call sites — including positional constructions —
    are untouched.
    """

    compute_seconds: float
    tp_comm_seconds: float
    cp_comm_seconds: float
    ep_comm_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (self.compute_seconds + self.tp_comm_seconds
                + self.cp_comm_seconds + self.ep_comm_seconds)


def split_backward_cost(backward: StageCost) -> "tuple[StageCost, StageCost]":
    """Split a monolithic backward into (input-grad, weight-grad) halves.

    Zero-bubble schedules run dgrad (BI) on the critical path and defer
    wgrad (BW) into bubbles.  The split is exact by construction: the
    wgrad half takes ``compute / 2`` and the dgrad half the remainder
    (``c - c/2 == c/2`` bitwise in binary floating point, so
    BI + BW == B to the last ulp), and all TP/CP/EP communication rides
    on the dgrad half, whose output feeds the upstream P2P send.
    """
    wgrad_compute = backward.compute_seconds / 2.0
    bi = StageCost(
        compute_seconds=backward.compute_seconds - wgrad_compute,
        tp_comm_seconds=backward.tp_comm_seconds,
        cp_comm_seconds=backward.cp_comm_seconds,
        ep_comm_seconds=backward.ep_comm_seconds,
    )
    bw = StageCost(
        compute_seconds=wgrad_compute,
        tp_comm_seconds=0.0,
        cp_comm_seconds=0.0,
    )
    return bi, bw


class CostModel:
    """Times pipeline ops for a (model, parallel, job, cluster) tuple."""

    def __init__(
        self,
        model: TextModelConfig,
        parallel: ParallelConfig,
        job: JobConfig,
        cluster: ClusterSpec,
        recompute: bool = False,
        congestion: float = 1.0,
        attention_straggler: float = 1.0,
        mask_fraction: float = 0.5,
    ) -> None:
        if parallel.tp > cluster.gpus_per_node:
            raise ValueError("tp beyond the node size puts TP on the slow fabric")
        if attention_straggler < 1.0:
            raise ValueError("attention_straggler must be >= 1.0")
        if parallel.ep > 1 and not model.is_moe:
            raise ValueError("ep > 1 needs an MoE model (n_experts > 0)")
        if model.is_moe and model.n_experts % parallel.ep != 0:
            raise ValueError(
                f"ep={parallel.ep} must divide n_experts={model.n_experts}")
        self.model = model
        self.parallel = parallel
        self.job = job
        self.cluster = cluster
        self.recompute = recompute
        self.congestion = congestion
        #: Slowest-over-mean attention-time ratio across the CP/DP fleet;
        #: document masks make this > 1 (1.44x measured in Section 7.3.2),
        #: and synchronous training runs at the slowest rank's pace.
        self.attention_straggler = attention_straggler
        if not 0.0 < mask_fraction <= 1.0:
            raise ValueError("mask_fraction must be in (0, 1]")
        #: Attention mask density: 0.5 for causal, less for document masks.
        self.mask_fraction = mask_fraction
        #: Tokens processed per rank per micro-batch (CP shards the sequence).
        self.tokens = job.seq * job.mbs // parallel.cp
        self._tp_group = list(range(parallel.tp))
        # A representative CP group: ranks at stride tp.
        self._cp_group = [i * parallel.tp for i in range(parallel.cp)]
        # A representative EP group: ranks at stride tp * cp (the EP axis
        # sits between CP and PP in the [TP, CP, EP, PP, DP] order).
        self._ep_group = [
            i * parallel.tp * parallel.cp for i in range(parallel.ep)
        ]
        # Memo table for the per-(op, mesh) kernels below.  Every public
        # cost method is a pure function of the constructor arguments, and
        # the step-graph lowering calls the layer/stage kernels once per
        # (stage, microbatch, virtual stage) — thousands of identical
        # evaluations on paper-scale schedules — so each distinct
        # (method, args) pair is priced exactly once per model instance.
        self._memo: dict = {}

    def _memoized(self, key, compute):
        out = self._memo.get(key)
        if out is None:
            out = self._memo[key] = compute()
        return out

    # ------------------------------------------------------------------
    # Layer-level pieces
    # ------------------------------------------------------------------

    def layer_gemm_seconds(self) -> float:
        """TP-sharded GEMM time of one transformer layer's forward."""
        return self._memoized("layer_gemm", self._layer_gemm_seconds)

    def _layer_gemm_seconds(self) -> float:
        m = self.tokens
        d, f = self.model.dim, self.model.ffn_hidden
        tp = self.parallel.tp
        gpu = self.cluster.gpu
        qkv = gemm_time(gpu, m, (d + 2 * self.model.kv_dim) // tp, d)
        out = gemm_time(gpu, m, d, d // tp)
        if self.model.is_moe:
            ffn = self._moe_expert_ffn_seconds()
        else:
            ffn = 2 * gemm_time(gpu, m, f // tp, d) \
                + gemm_time(gpu, m, d, f // tp)
        return qkv + out + ffn

    def _moe_expert_ffn_seconds(self) -> float:
        """Expert-FFN time for this rank's ``n_experts / ep`` experts.

        Each expert runs the same three TP-sharded SwiGLU GEMMs as a
        dense FFN, but over its own token buffer: after the dispatch
        all-to-all, a local expert holds the capacity-clipped balanced
        share of tokens from *every* EP peer —
        ``tokens * ep * top_k * capacity_factor / n_experts``.  Per-rank
        expert FLOPs are thus EP-invariant (``experts_per_rank`` shrinks
        as ``m_expert`` grows), but the GEMM *shape* is not: low EP means
        many small GEMMs paying the launch overhead and the low-``m``
        efficiency falloff repeatedly, high EP means few fat ones — the
        reason spreading experts across EP ranks beats slicing them
        thinner with TP once the expert count grows (the EP-vs-TP flip
        the planner sweep pins).  The router is one dense
        ``tokens x n_experts`` GEMM on the rank's own tokens.
        """
        model, p = self.model, self.parallel
        d, f = model.dim, model.ffn_hidden
        gpu = self.cluster.gpu
        experts_per_rank = model.n_experts // p.ep
        m_expert = max(
            int(self.tokens * p.ep * model.top_k * model.capacity_factor
                / model.n_experts),
            1,
        )
        per_expert = (
            2 * gemm_time(gpu, m_expert, f // p.tp, d)
            + gemm_time(gpu, m_expert, d, f // p.tp)
        )
        router = gemm_time(gpu, self.tokens, model.n_experts, d)
        return experts_per_rank * per_expert + router

    def layer_elementwise_seconds(self) -> float:
        """Memory-bound elementwise work per layer: RMSNorms, RoPE,
        residual adds, SiLU and the gated product — roughly 20 full passes
        over the token activations plus 4 over the FFN hidden.  These ops
        never reach tensor cores, so they cap sustained TFLOPs well below
        GEMM peak (the Section 8.1 "lightweight kernels" concern)."""
        return self._memoized("layer_elementwise",
                              self._layer_elementwise_seconds)

    def _layer_elementwise_seconds(self) -> float:
        d = self.model.dim
        f = self.model.ffn_hidden
        tp = self.parallel.tp
        act_passes = 20.0 * self.tokens * d / tp
        ffn_passes = 4.0 * self.tokens * f / tp
        bytes_moved = 2.0 * (act_passes + ffn_passes)
        launches = 10 * self.cluster.gpu.kernel_launch_us * 1e-6
        return bytes_moved / self.cluster.gpu.hbm_bandwidth + launches

    def attention_shape(self) -> AttentionShape:
        tp = self.parallel.tp
        return AttentionShape(
            heads=max(self.model.n_heads // tp, 1),
            kv_heads=max(self.model.n_kv_heads // tp, 1),
            head_dim=self.model.head_dim,
        )

    def layer_attention_seconds(self, mask_fraction: Optional[float] = None) -> float:
        """Flash-attention kernel time for one layer, one micro-batch.

        The rank computes its ``tokens`` query rows against the full
        ``seq``-length key range (post CP all-gather), at the causal (or
        document-averaged) mask density.
        """
        if mask_fraction is None:
            mask_fraction = self.mask_fraction
        return self._memoized(
            ("layer_attention", mask_fraction),
            lambda: self._layer_attention_seconds(mask_fraction))

    def _layer_attention_seconds(self, mask_fraction: float) -> float:
        rows = self.tokens * 1  # per micro-batch
        full_seq = self.job.seq * self.job.mbs
        area = int(mask_fraction * rows * full_seq)
        base = attention_kernel_time(
            self.cluster.gpu, rows, max(area, 1), self.attention_shape(),
            kv_len=full_seq,
        )
        return base * self.attention_straggler

    def layer_tp_comm_seconds(self) -> float:
        """Per-layer exposed TP communication: AG + RS around attention and
        the same around the FFN (4 collectives, Section 5.2)."""
        return self._memoized("layer_tp_comm", self._layer_tp_comm_seconds)

    def _layer_tp_comm_seconds(self) -> float:
        if self.parallel.tp == 1:
            return 0.0
        act_bytes = 2.0 * self.tokens * self.model.dim
        ag = all_gather_time(self.cluster, self._tp_group, act_bytes,
                             self.congestion)
        rs = reduce_scatter_time(self.cluster, self._tp_group, act_bytes,
                                 self.congestion)
        return 2 * (ag.seconds + rs.seconds)

    def layer_ep_comm_seconds(self) -> float:
        """Per-layer exposed EP communication: the token dispatch
        all-to-all before the expert FFNs plus the combine all-to-all
        after them — zero for dense models or ``ep == 1`` (experts
        rank-local, no token exchange)."""
        return self._memoized("layer_ep_comm", self._layer_ep_comm_seconds)

    def _layer_ep_comm_seconds(self) -> float:
        if not self.model.is_moe or self.parallel.ep == 1:
            return 0.0
        payload = dispatch_bytes_per_rank(
            self.model, self.tokens, self.parallel.tp
        )
        cost = all_to_all_time(
            self.cluster, self._ep_group, payload, self.congestion
        )
        return 2 * cost.seconds  # dispatch + combine

    def layer_cp_comm_seconds(self) -> float:
        """Per-layer exposed CP communication: the KV all-gather (forward)
        or KV-grad reduce-scatter (backward) — same ring cost."""
        return self._memoized("layer_cp_comm", self._layer_cp_comm_seconds)

    def _layer_cp_comm_seconds(self) -> float:
        if self.parallel.cp == 1:
            return 0.0
        kv_bytes = (
            2.0 * self.job.seq * self.job.mbs
            * max(self.model.kv_dim // self.parallel.tp, self.model.head_dim)
            * 2
        )
        return all_gather_time(
            self.cluster, self._cp_group, kv_bytes, self.congestion
        ).seconds

    # ------------------------------------------------------------------
    # Stage-level costs
    # ------------------------------------------------------------------

    def _embedding_seconds(self) -> float:
        """Embedding lookup: memory-bound gather of token vectors."""
        bytes_moved = 2.0 * self.tokens * self.model.dim * 2
        return bytes_moved / self.cluster.gpu.hbm_bandwidth \
            + self.cluster.gpu.kernel_launch_us * 1e-6

    def _head_seconds(self) -> float:
        """Vocabulary projection GEMM (column-parallel over TP)."""
        return gemm_time(
            self.cluster.gpu, self.tokens,
            self.model.vocab_size // self.parallel.tp, self.model.dim,
        )

    def forward_seconds(self, stage: StageAssignment) -> StageCost:
        """Forward of one stage for one micro-batch."""
        return self._memoized(("fwd", stage),
                              lambda: self._forward_seconds(stage))

    def _forward_seconds(self, stage: StageAssignment) -> StageCost:
        n = stage.n_layers
        compute = n * (self.layer_gemm_seconds()
                       + self.layer_attention_seconds()
                       + self.layer_elementwise_seconds())
        if stage.has_embedding:
            compute += self._embedding_seconds()
        if stage.has_output_head:
            compute += self._head_seconds()
        return StageCost(
            compute_seconds=compute,
            tp_comm_seconds=n * self.layer_tp_comm_seconds()
            + (self.layer_tp_comm_seconds() / 2 if stage.has_output_head else 0.0),
            cp_comm_seconds=n * self.layer_cp_comm_seconds(),
            ep_comm_seconds=n * self.layer_ep_comm_seconds(),
        )

    def backward_seconds(self, stage: StageAssignment) -> StageCost:
        """Backward of one stage for one micro-batch: 2x forward compute,
        plus a recomputed forward when activation checkpointing is on.

        ``recompute`` accepts True (full recomputation: +1 forward),
        ``"selective"`` (recompute only the attention and SwiGLU
        activations — roughly the attention kernel plus the elementwise
        work, the production-style middle ground), or False.
        """
        return self._memoized(("bwd", stage),
                              lambda: self._backward_seconds(stage))

    def _backward_seconds(self, stage: StageAssignment) -> StageCost:
        fwd = self.forward_seconds(stage)
        if self.recompute == "selective":
            extra = stage.n_layers * (
                self.layer_attention_seconds()
                + self.layer_elementwise_seconds()
            )
            return StageCost(
                compute_seconds=2.0 * fwd.compute_seconds + extra,
                tp_comm_seconds=fwd.tp_comm_seconds,
                cp_comm_seconds=fwd.cp_comm_seconds,
                ep_comm_seconds=fwd.ep_comm_seconds,
            )
        factor = 3.0 if self.recompute else 2.0
        return StageCost(
            compute_seconds=factor * fwd.compute_seconds,
            tp_comm_seconds=(factor - 1.0) * fwd.tp_comm_seconds,
            cp_comm_seconds=fwd.cp_comm_seconds,
            ep_comm_seconds=(factor - 1.0) * fwd.ep_comm_seconds,
        )

    def backward_input_seconds(self, stage: StageAssignment) -> StageCost:
        """The input-grad (BI) half of a split backward (zero-bubble
        schedules): half the backward compute, plus all of its TP/CP
        communication — dgrad feeds the upstream send, so the comms sit
        on this, the critical, half."""
        return self._memoized(
            ("bwd_input", stage),
            lambda: split_backward_cost(self.backward_seconds(stage))[0],
        )

    def backward_weight_seconds(self, stage: StageAssignment) -> StageCost:
        """The weight-grad (BW) half of a split backward: the remaining
        compute, communication-free and rank-local, deferrable into
        pipeline bubbles."""
        return self._memoized(
            ("bwd_weight", stage),
            lambda: split_backward_cost(self.backward_seconds(stage))[1],
        )

    # ------------------------------------------------------------------
    # Inter-stage and step-level communication
    # ------------------------------------------------------------------

    def p2p_seconds(self) -> float:
        """Activation hand-off between consecutive PP stages.

        With sequence parallelism the activation is sequence-sharded
        across TP ranks, so each rank sends only its ``1 / tp`` slice.
        PP ranks sit at stride ``tp * cp * ep`` in the rank order, so
        consecutive stages are on different nodes whenever
        ``tp * cp * ep >= gpus_per_node`` — the common case, making PP
        traffic inter-node (RoCE).
        """
        return self._memoized("p2p", self._p2p_seconds)

    def _p2p_seconds(self) -> float:
        stride = self.parallel.tp * self.parallel.cp * self.parallel.ep
        dst = min(stride, self.cluster.num_gpus - 1)
        act_bytes = 2.0 * self.tokens * self.model.dim / self.parallel.tp
        return p2p_time(self.cluster, 0, dst, act_bytes, self.congestion)

    def fsdp_allgather_seconds(self, params_on_rank: float) -> float:
        """One FSDP parameter all-gather for this rank's shard (only the
        first is exposed; the rest overlap with compute, Section 7.3.1)."""
        def compute() -> float:
            group = self._dp_cp_group()
            if len(group) == 1:
                return 0.0
            bytes_total = 2.0 * params_on_rank
            return all_gather_time(self.cluster, group, bytes_total,
                                   self.congestion).seconds
        return self._memoized(("fsdp_ag", params_on_rank), compute)

    def fsdp_reduce_scatter_seconds(self, params_on_rank: float) -> float:
        """One gradient reduce-scatter (FP32 wire, Section 6.2)."""
        def compute() -> float:
            group = self._dp_cp_group()
            if len(group) == 1:
                return 0.0
            bytes_total = 4.0 * params_on_rank
            return reduce_scatter_time(self.cluster, group, bytes_total,
                                       self.congestion).seconds
        return self._memoized(("fsdp_rs", params_on_rank), compute)

    def optimizer_seconds(self, params_on_rank: float) -> float:
        """Sharded Adam step: memory-bound over master + moments."""
        shard = params_on_rank / self.parallel.grad_shard_degree
        bytes_moved = shard * (4 * 4 + 2 * 4)  # read m, v, master, grad; write
        return bytes_moved / self.cluster.gpu.hbm_bandwidth

    def _dp_cp_group(self) -> list:
        """The DP x CP process group of global rank 0 under the
        [TP, CP, EP, PP, DP] mesh ordering — the group FSDP
        parameter/gradient collectives run over (Section 4, Integration).
        EP ranks hold disjoint experts, so EP does not widen this group."""
        tp, cp, ep, pp, dp = (self.parallel.tp, self.parallel.cp,
                              self.parallel.ep, self.parallel.pp,
                              self.parallel.dp)
        dp_stride = tp * cp * ep * pp
        ranks = sorted(
            d * dp_stride + c * tp for d in range(dp) for c in range(cp)
        )
        return ranks if len(ranks) > 1 else [0]
