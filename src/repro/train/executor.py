"""Graph interpreter: replays a lowered step graph onto the simulator.

:func:`execute_graph` walks every rank's program of typed
:class:`~repro.train.lowering.StepOp`s with a ready-list, releasing each
op when all of its dependency uids have executed, and runs it on its
dedicated (rank, stream) pair — ``compute``, ``tp``, ``cp``, ``ep``,
``p2p``, ``fsdp``, ``opt``.  Cross-rank P2P sends are asynchronous: they occupy
only the producer's ``p2p`` stream, and whenever a consumer's input
arrives *after* the consumer could have started, the gap is recorded as
an ``exposed_comm`` wait event — exactly the Figure 3 bubbles, surfaced
by the trace exporter as their own category.

The interpreter doubles as a deadlock detector — an invalid schedule
(one whose per-rank op order creates a circular wait) raises instead of
hanging, which is how the property-based schedule tests certify the
flexible-PP generator for arbitrary (pp, v, nc, nmb).

:func:`execute_pipeline` keeps the pre-graph entry point: it lowers a
(schedule, layout, costs) triple with
:func:`~repro.train.lowering.lower_pipeline` and interprets it,
returning the same :class:`PipelineRun` shape as before — except busy
time now counts *compute only*, with per-kind communication totals
reported separately in :attr:`PipelineRun.per_rank_comm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.pp.layout import PipelineLayout, StageAssignment
from repro.pp.schedule import PipelineOp, PipelineSchedule
from repro.sim.engine import Simulator, TraceEvent
from repro.train.cost import StageCost
from repro.train.lowering import (
    PIPELINE_KINDS,
    StepGraph,
    StepOpKind,
    lower_pipeline,
)

CostFn = Callable[[StageAssignment], StageCost]

#: Simulator event kind for each op kind: computation occupies its stream
#: as ``compute``; priced communication is ``comm`` (overlap with compute
#: is what the timeline decides); synthesized waits are ``exposed_comm``.
_EVENT_KIND = {
    StepOpKind.COMPUTE: "compute",
    StepOpKind.OPTIMIZER: "compute",
}

#: per_rank_comm key for each communication op kind.
_COMM_KEY = {
    StepOpKind.TP_ALLGATHER: "tp",
    StepOpKind.TP_REDUCESCATTER: "tp",
    StepOpKind.CP_COMM: "cp",
    StepOpKind.MOE_DISPATCH: "ep",
    StepOpKind.MOE_COMBINE: "ep",
    StepOpKind.P2P_SEND: "p2p",
    StepOpKind.FSDP_ALLGATHER: "fsdp",
    StepOpKind.FSDP_REDUCESCATTER: "fsdp",
}


@dataclass(frozen=True)
class GraphExecution:
    """Raw outcome of interpreting one step graph."""

    graph: StepGraph
    sim: Simulator
    #: Trace event of every executed op, by uid.
    events: Dict[int, TraceEvent]
    #: Synthesized exposed-P2P wait events, in emission order.
    wait_events: Tuple[TraceEvent, ...]

    def events_of_kind(self, *kinds: StepOpKind) -> List[TraceEvent]:
        wanted = frozenset(kinds)
        return [self.events[op.uid] for op in self.graph.ops()
                if op.kind in wanted]


def execute_graph(
    graph: StepGraph,
    sim: Optional[Simulator] = None,
    start_times: Optional[Mapping[int, float]] = None,
    rank_compute_scale: Optional[Mapping[int, float]] = None,
    metrics: Optional[MetricsRegistry] = None,
    op_tags: Optional[Mapping[int, Tuple[str, ...]]] = None,
) -> GraphExecution:
    """Interpret a step graph onto the simulator.

    Args:
        graph: Lowered per-rank programs.
        sim: Simulator to record into (a fresh one by default).
        start_times: Optional per-rank earliest start applied to every op
            of the rank (models an externally-imposed release time).
        rank_compute_scale: Per-rank COMPUTE-duration multipliers (>= 1
            for a throttled GPU) — fault injection for the Section 8.1
            performance-variation experiments.  Communication durations
            are deliberately not scaled.
        metrics: Registry for op counts, op durations, and exposed-P2P
            wait seconds (keyed by PP rank).
        op_tags: Trace tags per op uid — how a fault-perturbed graph
            (:func:`repro.faults.inject.apply_fault_plan`) marks its
            rewritten ops ``"faulted"`` in the timeline.  Tagged ops are
            also counted in the ``faults.injected_ops`` metric.
    """
    if rank_compute_scale and any(
        s <= 0 for s in rank_compute_scale.values()
    ):
        raise ValueError("rank_compute_scale factors must be positive")
    sim = sim or Simulator()
    start_times = start_times or {}
    rank_compute_scale = rank_compute_scale or {}
    op_tags = op_tags or {}

    if metrics is not None:
        op_count = metrics.counter(
            "pp.ops", unit="ops",
            description="pipeline ops executed, by rank and kind")
        op_seconds = metrics.histogram(
            "pp.op_seconds", unit="s",
            description="pipeline compute-op durations, by kind")
        exposed_p2p = metrics.counter(
            "pp.exposed_p2p_seconds", unit="s",
            description="compute-stream time lost waiting for P2P input")
        injected_ops = metrics.counter(
            "faults.injected_ops", unit="ops",
            description="fault-perturbed ops executed, by rank")

    events: Dict[int, TraceEvent] = {}
    waits: List[TraceEvent] = []
    programs = graph.programs
    pointers = [0] * len(programs)
    total_ops = sum(len(p) for p in programs)
    executed = 0
    has_tags = bool(op_tags)
    run = sim.run

    # The ready-list walk below visits ranks round-robin and runs each
    # rank's program as far as its dependencies allow.  The visiting
    # order — and therefore the event submission order — is part of the
    # engine's observable behaviour (traces and golden reports are
    # byte-stable), so the optimisations here (hoisted per-rank lookups,
    # inlined dependency checks) must never reorder submissions.
    while executed < total_ops:
        progressed = False
        for rank, prog in enumerate(programs):
            ptr = pointers[rank]
            n_ops = len(prog)
            if ptr >= n_ops:
                continue
            floor = start_times.get(rank, 0.0)
            scale = rank_compute_scale.get(rank, 1.0)
            while ptr < n_ops:
                op = prog[ptr]
                ready = True
                for uid in op.deps:
                    if uid not in events:
                        ready = False
                        break
                if not ready:
                    break
                deps = [events[uid] for uid in op.deps]
                if op.wait_name is not None:
                    # Exposed wait: the gap between the rank being ready
                    # (own stream free, local inputs done) and the
                    # cross-rank input arriving.
                    arrival = max(
                        (d.end for d in deps if d.rank != rank),
                        default=0.0)
                    local_ready = max(
                        sim.now(rank, op.stream), floor,
                        max((d.end for d in deps if d.rank == rank),
                            default=0.0))
                    if arrival > local_ready:
                        wait = sim.run(
                            rank=rank,
                            stream="wait",
                            duration=arrival - local_ready,
                            name=op.wait_name,
                            kind="exposed_comm",
                            not_before=local_ready,
                        )
                        waits.append(wait)
                        if metrics is not None:
                            exposed_p2p.inc(wait.duration, rank=rank)
                duration = op.duration
                if op.kind is StepOpKind.COMPUTE:
                    duration *= scale
                tags = op_tags.get(op.uid, ()) if has_tags else ()
                event = run(
                    rank=rank,
                    stream=op.stream,
                    duration=duration,
                    name=op.name,
                    kind=_EVENT_KIND.get(op.kind, "comm"),
                    after=deps,
                    not_before=floor,
                    tags=tags,
                )
                if metrics is not None:
                    if tags:
                        injected_ops.inc(1, rank=rank)
                    if op.pipeline_op is not None:
                        kind_label = op.pipeline_op.kind.name.lower()
                        op_count.inc(1, rank=rank, kind=kind_label)
                        op_seconds.observe(event.duration, kind=kind_label)
                events[op.uid] = event
                ptr += 1
                executed += 1
                progressed = True
            if ptr != pointers[rank]:
                pointers[rank] = ptr
        if not progressed:
            blocked = [
                (rank, prog[pointers[rank]].name)
                for rank, prog in enumerate(programs)
                if pointers[rank] < len(prog)
            ]
            raise RuntimeError(
                f"pipeline schedule deadlocked; blocked ops: {blocked}"
            )

    return GraphExecution(graph=graph, sim=sim, events=events,
                          wait_events=tuple(waits))


@dataclass(frozen=True)
class PipelineRun:
    """Result of executing one schedule."""

    schedule: PipelineSchedule
    sim: Simulator
    #: Latest end time across the run's own pipeline events (a step
    #: timeline's FSDP/optimizer tail is *not* included — see
    #: :class:`repro.train.step.StepReport` for the full-step time).
    makespan: float
    #: Per-rank **compute-only** busy seconds (communication is tallied
    #: separately in :attr:`per_rank_comm`).
    per_rank_busy: Tuple[float, ...]
    #: Compute event of every executed op, for timeline verification
    #: (:mod:`repro.verify.invariants` checks send-before-recv against
    #: these without parsing event names).
    op_events: Optional[Dict[PipelineOp, TraceEvent]] = None
    #: P2P latency the run was executed with; None when unknown (e.g. a
    #: PipelineRun assembled outside execute_pipeline).
    p2p_seconds: Optional[float] = None
    #: Earliest pipeline compute start — nonzero when something (e.g. the
    #: first FSDP all-gather) delays the whole pipeline; bubble ratios
    #: measure idleness from here, not from t=0.
    start_time: float = 0.0
    #: Per-rank communication seconds by kind ("tp", "cp", "ep", "p2p",
    #: "exposed_p2p", and "fsdp" for step timelines).
    per_rank_comm: Optional[Tuple[Dict[str, float], ...]] = None

    @property
    def pp(self) -> int:
        return self.schedule.pp

    @property
    def per_rank_occupied(self) -> Tuple[float, ...]:
        """Compute plus exposed TP/CP/EP communication per rank — the
        time a rank is *doing* pipeline work (the pre-graph notion of
        busy)."""
        if self.per_rank_comm is None:
            return self.per_rank_busy
        return tuple(
            busy + comm.get("tp", 0.0) + comm.get("cp", 0.0)
            + comm.get("ep", 0.0)
            for busy, comm in zip(self.per_rank_busy, self.per_rank_comm)
        )

    @property
    def per_rank_idle(self) -> Tuple[float, ...]:
        span = self.makespan - self.start_time
        return tuple(span - occ for occ in self.per_rank_occupied)

    @property
    def bubble_ratios(self) -> Tuple[float, ...]:
        """Per-rank idle over occupied — the paper's PP bubble metric."""
        return tuple(
            idle / occ if occ > 0 else 0.0
            for idle, occ in zip(self.per_rank_idle, self.per_rank_occupied)
        )

    @property
    def mean_bubble_ratio(self) -> float:
        ratios = self.bubble_ratios
        return sum(ratios) / len(ratios)


def summarize_pipeline_execution(
    execution: GraphExecution,
    schedule: PipelineSchedule,
    p2p_seconds: Optional[float],
) -> PipelineRun:
    """Fold an interpreted graph's pipeline region into a PipelineRun."""
    pp = schedule.pp
    busy = [0.0] * pp
    comm: List[Dict[str, float]] = [{} for _ in range(pp)]
    op_events: Dict[PipelineOp, TraceEvent] = {}
    makespan = 0.0
    start_time: Optional[float] = None
    for op in execution.graph.ops():
        event = execution.events[op.uid]
        if op.kind is StepOpKind.COMPUTE:
            busy[op.rank] += event.duration
            if op.pipeline_op is not None:
                op_events[op.pipeline_op] = event
            if start_time is None or event.start < start_time:
                start_time = event.start
        elif op.kind in _COMM_KEY:
            key = _COMM_KEY[op.kind]
            comm[op.rank][key] = comm[op.rank].get(key, 0.0) + event.duration
        if op.kind in PIPELINE_KINDS:
            makespan = max(makespan, event.end)
    for wait in execution.wait_events:
        comm[wait.rank]["exposed_p2p"] = (
            comm[wait.rank].get("exposed_p2p", 0.0) + wait.duration)
        makespan = max(makespan, wait.end)
    return PipelineRun(
        schedule=schedule,
        sim=execution.sim,
        makespan=makespan,
        per_rank_busy=tuple(busy),
        op_events=op_events,
        p2p_seconds=p2p_seconds,
        start_time=start_time or 0.0,
        per_rank_comm=tuple(comm),
    )


def execute_pipeline(
    schedule: PipelineSchedule,
    layout: PipelineLayout,
    forward_cost: CostFn,
    backward_cost: CostFn,
    p2p_seconds: float,
    sim: Optional[Simulator] = None,
    start_times: Optional[Dict[int, float]] = None,
    rank_compute_scale: Optional[Dict[int, float]] = None,
    metrics: Optional[MetricsRegistry] = None,
    backward_input_cost: Optional[CostFn] = None,
    backward_weight_cost: Optional[CostFn] = None,
) -> PipelineRun:
    """Lower a schedule and execute its timeline.

    Args:
        schedule: The per-rank programs.
        layout: Layer placement (supplies each op's stage contents).
        forward_cost: Stage -> forward cost for one micro-batch.
        backward_cost: Stage -> backward cost for one micro-batch.
        backward_input_cost: Optional BI pricing for split-backward
            schedules (defaults to the exact-sum split of backward).
        backward_weight_cost: Optional BW pricing, likewise.
        p2p_seconds: Inter-stage activation/gradient transfer time.
        sim: Simulator to record into (a fresh one by default).
        start_times: Optional per-rank earliest start (models the exposed
            first FSDP all-gather).
        rank_compute_scale: Per-rank compute-time multipliers (>= 1 for a
            throttled GPU) — fault injection for the Section 8.1
            performance-variation experiments.
        metrics: Registry to report op counts, op durations, and exposed
            P2P wait seconds into (keyed by PP rank).

    Whenever an op's cross-rank input arrives *after* the rank could have
    started it, the gap is recorded as an ``exposed_comm`` event on the
    rank's ``wait`` stream — those are exactly the Figure 3 bubbles, and
    the trace exporter surfaces them as their own category.
    """
    graph = lower_pipeline(
        schedule, layout, forward_cost, backward_cost, p2p_seconds,
        backward_input_cost=backward_input_cost,
        backward_weight_cost=backward_weight_cost)
    execution = execute_graph(
        graph, sim=sim, start_times=start_times,
        rank_compute_scale=rank_compute_scale, metrics=metrics)
    return summarize_pipeline_execution(execution, schedule, p2p_seconds)
