"""Event-level execution of a pipeline schedule on the simulator.

Walks every rank's program in order, releasing each op when its cross-rank
dependency has arrived: a forward needs the previous stage's forward output
(plus P2P transfer time), a backward needs the next stage's input gradient.
P2P sends are asynchronous and do not occupy the receiver's compute stream,
so exposed P2P shows up exactly as the Figure 3 bubbles: idle gaps on the
compute stream while the rank waits for data.

The executor doubles as a deadlock detector — an invalid schedule (one
whose per-rank op order creates a circular wait) raises instead of hanging,
which is how the property-based schedule tests certify the flexible-PP
generator for arbitrary (pp, v, nc, nmb).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.pp.layout import PipelineLayout, StageAssignment
from repro.pp.schedule import OpKind, PipelineOp, PipelineSchedule
from repro.sim.engine import Simulator, TraceEvent
from repro.train.cost import StageCost

CostFn = Callable[[StageAssignment], StageCost]


@dataclass(frozen=True)
class PipelineRun:
    """Result of executing one schedule."""

    schedule: PipelineSchedule
    sim: Simulator
    makespan: float
    per_rank_busy: Tuple[float, ...]
    #: Compute event of every executed op, for timeline verification
    #: (:mod:`repro.verify.invariants` checks send-before-recv against
    #: these without parsing event names).
    op_events: Optional[Dict[PipelineOp, TraceEvent]] = None
    #: P2P latency the run was executed with; None when unknown (e.g. a
    #: PipelineRun assembled outside execute_pipeline).
    p2p_seconds: Optional[float] = None

    @property
    def pp(self) -> int:
        return self.schedule.pp

    @property
    def per_rank_idle(self) -> Tuple[float, ...]:
        return tuple(self.makespan - b for b in self.per_rank_busy)

    @property
    def bubble_ratios(self) -> Tuple[float, ...]:
        """Per-rank idle over compute — the paper's PP bubble metric."""
        return tuple(
            idle / busy if busy > 0 else 0.0
            for idle, busy in zip(self.per_rank_idle, self.per_rank_busy)
        )

    @property
    def mean_bubble_ratio(self) -> float:
        ratios = self.bubble_ratios
        return sum(ratios) / len(ratios)


def execute_pipeline(
    schedule: PipelineSchedule,
    layout: PipelineLayout,
    forward_cost: CostFn,
    backward_cost: CostFn,
    p2p_seconds: float,
    sim: Optional[Simulator] = None,
    start_times: Optional[Dict[int, float]] = None,
    rank_compute_scale: Optional[Dict[int, float]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> PipelineRun:
    """Execute a schedule and return its timeline.

    Args:
        schedule: The per-rank programs.
        layout: Layer placement (supplies each op's stage contents).
        forward_cost: Stage -> forward cost for one micro-batch.
        backward_cost: Stage -> backward cost for one micro-batch.
        p2p_seconds: Inter-stage activation/gradient transfer time.
        sim: Simulator to record into (a fresh one by default).
        start_times: Optional per-rank earliest start (models the exposed
            first FSDP all-gather).
        rank_compute_scale: Per-rank compute-time multipliers (>= 1 for a
            throttled GPU) — fault injection for the Section 8.1
            performance-variation experiments.
        metrics: Registry to report op counts, op durations, and exposed
            P2P wait seconds into (keyed by PP rank).

    Whenever an op's cross-rank input arrives *after* the rank could have
    started it, the gap is recorded as an ``exposed_comm`` event on the
    rank's ``p2p`` stream — those are exactly the Figure 3 bubbles, and
    the trace exporter surfaces them as their own category.
    """
    if layout.pp != schedule.pp or layout.v != schedule.shape.v:
        raise ValueError("layout and schedule disagree on pp or v")
    if rank_compute_scale and any(
        s <= 0 for s in rank_compute_scale.values()
    ):
        raise ValueError("rank_compute_scale factors must be positive")
    sim = sim or Simulator()
    start_times = start_times or {}
    rank_compute_scale = rank_compute_scale or {}
    pp = schedule.pp
    last_stage = layout.num_stages - 1

    # Memoised per-stage costs.
    fwd_cost: Dict[int, StageCost] = {}
    bwd_cost: Dict[int, StageCost] = {}
    for s in range(layout.num_stages):
        fwd_cost[s] = forward_cost(layout.stage(s))
        bwd_cost[s] = backward_cost(layout.stage(s))

    # ready[(kind, global_stage, mb)] = time the op's output is available
    # at the producer (before P2P).
    ready: Dict[Tuple[OpKind, int, int], float] = {}
    op_events: Dict[PipelineOp, TraceEvent] = {}
    pointers = [0] * pp
    programs = [schedule.program(r) for r in range(pp)]
    busy = [0.0] * pp

    def dep_time(kind: OpKind, stage: int, mb: int) -> Optional[float]:
        """Arrival time of the op's cross-rank input, or None if missing.
        0.0 when the op has no dependency."""
        if kind is OpKind.FORWARD:
            if stage == 0:
                return 0.0
            t = ready.get((OpKind.FORWARD, stage - 1, mb))
        else:
            if stage == last_stage:
                # Loss is local to the last stage; its own forward ordering
                # is guaranteed by program order on the same rank.
                return 0.0
            t = ready.get((OpKind.BACKWARD, stage + 1, mb))
        if t is None:
            return None
        return t + p2p_seconds

    if metrics is not None:
        op_count = metrics.counter(
            "pp.ops", unit="ops",
            description="pipeline ops executed, by rank and kind")
        op_seconds = metrics.histogram(
            "pp.op_seconds", unit="s",
            description="pipeline op durations, by kind")
        exposed_p2p = metrics.counter(
            "pp.exposed_p2p_seconds", unit="s",
            description="compute-stream time lost waiting for P2P input")

    total_ops = sum(len(p) for p in programs)
    executed = 0
    while executed < total_ops:
        progressed = False
        for ppr in range(pp):
            while pointers[ppr] < len(programs[ppr]):
                op = programs[ppr][pointers[ppr]]
                stage = op.global_stage(pp)
                arrival = dep_time(op.kind, stage, op.microbatch)
                if arrival is None:
                    break
                cost = (fwd_cost if op.kind is OpKind.FORWARD
                        else bwd_cost)[stage]
                scale = rank_compute_scale.get(ppr, 1.0)
                duration = (cost.compute_seconds * scale
                            + cost.tp_comm_seconds + cost.cp_comm_seconds)
                kind_label = op.kind.name.lower()
                wait_start = max(sim.now(ppr, "compute"),
                                 start_times.get(ppr, 0.0))
                if arrival > wait_start:
                    wait = sim.run(
                        rank=ppr,
                        stream="p2p",
                        duration=arrival - wait_start,
                        name=f"p2p:wait:{op.label(pp)}",
                        kind="exposed_comm",
                        not_before=wait_start,
                    )
                    if metrics is not None:
                        exposed_p2p.inc(wait.duration, rank=ppr)
                event = sim.run(
                    rank=ppr,
                    stream="compute",
                    duration=duration,
                    name=op.label(pp),
                    kind="compute",
                    not_before=max(arrival, start_times.get(ppr, 0.0)),
                )
                if metrics is not None:
                    op_count.inc(1, rank=ppr, kind=kind_label)
                    op_seconds.observe(event.duration, kind=kind_label)
                busy[ppr] += event.duration
                ready[(op.kind, stage, op.microbatch)] = event.end
                op_events[op] = event
                pointers[ppr] += 1
                executed += 1
                progressed = True
        if not progressed:
            blocked = [
                (ppr, programs[ppr][pointers[ppr]].label(pp))
                for ppr in range(pp) if pointers[ppr] < len(programs[ppr])
            ]
            raise RuntimeError(
                f"pipeline schedule deadlocked; blocked ops: {blocked}"
            )

    return PipelineRun(
        schedule=schedule,
        sim=sim,
        makespan=sim.makespan(),
        per_rank_busy=tuple(busy),
        op_events=op_events,
        p2p_seconds=p2p_seconds,
    )
