"""End-to-end training-step simulation on the event timeline."""

from repro.train.cost import CostModel, StageCost
from repro.train.executor import PipelineRun, execute_pipeline
from repro.train.step import StepReport, simulate_step

from repro.train.phases import (
    TrainingPhase,
    PhaseReport,
    LLAMA3_405B_PHASES,
    phases_by_name,
    plan_pretraining,
    describe_pretraining,
)

__all__ = [
    "TrainingPhase",
    "PhaseReport",
    "LLAMA3_405B_PHASES",
    "phases_by_name",
    "plan_pretraining",
    "describe_pretraining",
    "CostModel",
    "StageCost",
    "PipelineRun",
    "execute_pipeline",
    "StepReport",
    "simulate_step",
]
