"""Event-timeline engine with per-rank streams and synchronising collectives.

The engine tracks, for every (rank, stream) pair, the time at which the
stream becomes free.  Tasks are submitted in a causally consistent order —
i.e. all of a task's dependencies must already have been submitted — which
is the natural order for schedule executors that walk per-rank programs with
a ready-list.  In exchange the engine stays a few hundred lines and the
resulting traces are exact.

Streams model CUDA streams: one ``compute`` stream per rank plus any number
of communication streams (``p2p``, ``fsdp``, ``cp``...).  Work on different
streams of the same rank may overlap, which is how the simulator expresses
communication/computation overlap (e.g. FSDP all-gather prefetch hidden
under forward compute, Section 7.3.1).

Fault injection composes with this overlap through *duration modifiers*
(:meth:`Simulator.add_duration_modifier`): every submitted task's duration
passes through the registered modifier chain, so a degraded link or a
throttled GPU (:mod:`repro.faults`) stretches exactly the events it
matches — including each participant's contribution to a collective — and
any event a modifier perturbed is tagged ``"faulted"`` in the trace.

**Fast path.**  This is the hot module under everything — step graphs,
fault fuzzing, detection matrices, multi-step Poisson runs — so the
implementation is tuned for raw submission throughput and O(1)-amortised
inspection (see ``docs/engine.md``):

* :class:`TraceEvent` is a ``__slots__`` record (no dataclass machinery on
  the hot constructor path), with low-cardinality ``tags`` tuples interned
  so a million-event trace shares a handful of tuple objects;
* makespan, per-stream busy time, and per-rank event buckets are
  maintained *incrementally on submit*, so :meth:`makespan`,
  :meth:`busy_time`, :meth:`idle_time`, and :meth:`events_for` never scan
  the full event list;
* :meth:`run_collective` evaluates per-rank join times and payload
  durations in one batched pass (and skips the per-rank modifier walk
  entirely when no modifiers are registered), so paper-scale collectives
  cost one Python loop, not four;
* opt-in *rank-symmetry folding* (:class:`RankFold`) simulates one DP
  replica and fans events out to all replicas lazily — a 131K-rank mesh
  of identical replicas costs one replica's submissions.

The semantics are pinned by a differential harness (``tests/harness``)
that replays every seeded workload through the frozen pre-fast-path
engine and asserts bitwise equality of every event field; keep any edit
here inside that contract.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.collectives import DEFAULT_RETRY_POLICY, RetryPolicy

StreamKey = Tuple[int, str]

#: Duration-modifier hook: ``(rank, stream, kind, name, duration)`` -> new
#: duration.  Modifiers may be stateful closures (one-shot hangs, periodic
#: jitter); they run in registration order, each seeing the previous one's
#: output.
DurationModifier = Callable[[int, str, str, str, float], float]

_EVENT_FIELDS = ("name", "kind", "rank", "stream", "start", "end",
                 "group", "tags")


class TraceEvent:
    """One completed task on one rank's stream.

    A ``__slots__`` record rather than a dataclass: event construction is
    the single hottest operation in the simulator, and slotted attribute
    stores are ~3x faster than the frozen-dataclass ``__setattr__`` path.
    Treat instances as immutable — the engine shares ``group`` and
    ``tags`` tuples between events, and downstream consumers (trace
    export, analysis, verification) all assume event fields never change.
    Use :meth:`replace` to derive modified copies.

    Attributes:
        name: Operation name, e.g. ``"fwd:mb3:vs1"`` or ``"allgather:kv"``.
        kind: Category used by trace analysis: ``"compute"``,
            ``"comm"``, or ``"exposed_comm"``.
        rank: Global rank the event ran on.
        stream: Stream name within the rank.
        start: Start timestamp in seconds.
        end: End timestamp in seconds.
        group: Optional tuple of participant ranks for collectives.
        tags: Free-form labels; the engine adds ``"faulted"`` to any event
            whose duration a registered modifier changed.
    """

    __slots__ = _EVENT_FIELDS

    def __init__(self, name: str, kind: str, rank: int, stream: str,
                 start: float, end: float,
                 group: Tuple[int, ...] = (),
                 tags: Tuple[str, ...] = ()) -> None:
        self.name = name
        self.kind = kind
        self.rank = rank
        self.stream = stream
        self.start = start
        self.end = end
        self.group = group
        self.tags = tags

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TraceEvent") -> bool:
        """Whether two events overlap in wall-clock time."""
        return self.start < other.end and other.start < self.end

    def replace(self, **changes: object) -> "TraceEvent":
        """A copy with the given fields replaced (``dataclasses.replace``
        equivalent for this slotted class)."""
        for key in changes:
            if key not in _EVENT_FIELDS:
                raise TypeError(f"TraceEvent has no field {key!r}")
        kwargs = {f: changes.get(f, getattr(self, f))
                  for f in _EVENT_FIELDS}
        return TraceEvent(**kwargs)

    def _astuple(self) -> tuple:
        return (self.name, self.kind, self.rank, self.stream,
                self.start, self.end, self.group, self.tags)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent(name={self.name!r}, kind={self.kind!r}, "
                f"rank={self.rank}, stream={self.stream!r}, "
                f"start={self.start}, end={self.end}, "
                f"group={self.group}, tags={self.tags})")


class RankFold:
    """Opt-in rank-symmetry folding: simulate one replica, fan out many.

    Data-parallel replicas of a training step execute *identical*
    per-rank timelines whenever nothing couples them (no cross-replica
    collectives, no replica-specific faults).  Folding exploits that:
    the caller submits only the base replica (ranks ``0..stride-1``) and
    the engine lazily projects the timeline onto all ``replicas``
    copies — replica ``k`` holds ranks ``k*stride .. (k+1)*stride-1``,
    with identical timings and rank-shifted collective groups.

    The fold is a *contract*, not a check: the engine validates that no
    submission names a rank outside the base replica, but it cannot know
    whether the modelled workload really is replica-symmetric — that is
    the caller's promise (and the differential harness proves the
    projection itself exact by explicit per-replica replay).

    Attributes:
        replicas: Number of identical copies (>= 1).
        stride: Ranks per replica; replica ``k`` spans
            ``[k*stride, (k+1)*stride)``.
    """

    __slots__ = ("replicas", "stride")

    def __init__(self, replicas: int, stride: int) -> None:
        if replicas < 1:
            raise ValueError("fold needs replicas >= 1")
        if stride < 1:
            raise ValueError("fold needs stride >= 1")
        self.replicas = replicas
        self.stride = stride

    @property
    def world_size(self) -> int:
        return self.replicas * self.stride

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankFold(replicas={self.replicas}, stride={self.stride})"


class _StreamState:
    """Incremental accounting for one (rank, stream) pair."""

    __slots__ = ("free", "busy", "max_end", "events")

    def __init__(self) -> None:
        self.free = 0.0
        self.busy = 0.0
        self.max_end = 0.0
        self.events: List[TraceEvent] = []


class Simulator:
    """Timeline simulator over (rank, stream) resources.

    Example:
        >>> sim = Simulator()
        >>> a = sim.run(rank=0, stream="compute", duration=1.0, name="fwd")
        >>> b = sim.run(rank=1, stream="compute", duration=1.0, name="fwd",
        ...             after=[a])
        >>> b.start
        1.0
    """

    def __init__(self, fold: Optional[RankFold] = None) -> None:
        self._streams: Dict[StreamKey, _StreamState] = {}
        self._events: List[TraceEvent] = []
        self._rank_events: Dict[int, List[TraceEvent]] = {}
        self._modifiers: List[DurationModifier] = []
        self._max_end = 0.0
        self._tag_intern: Dict[Tuple[str, ...], Tuple[str, ...]] = {}
        self._fold = fold
        #: Cache of the fanned-out event list: (base length, list).
        self._fold_cache: Optional[Tuple[int, List[TraceEvent]]] = None

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------

    def add_duration_modifier(self, modifier: DurationModifier) -> None:
        """Register a per-rank duration modifier (fault injection).

        Every subsequent :meth:`run` and :meth:`run_collective` duration
        flows through the chain; see :data:`DurationModifier`.
        """
        self._modifiers.append(modifier)

    def _modified_duration(
        self, rank: int, stream: str, kind: str, name: str, duration: float
    ) -> Tuple[float, bool]:
        """Duration after the modifier chain, plus whether it changed."""
        out = duration
        for modifier in self._modifiers:
            out = modifier(rank, stream, kind, name, out)
        if out < 0:
            raise ValueError(
                f"duration modifier made task {name!r} negative ({out})")
        return out, out != duration

    def _tagged(self, tags: Tuple[str, ...], faulted: bool) -> Tuple[str, ...]:
        if faulted and "faulted" not in tags:
            tags = tags + ("faulted",)
        if not tags:
            return tags
        # Tags are low-cardinality; interning keeps million-event traces
        # from holding a million identical ("faulted",) tuples.
        interned = self._tag_intern.get(tags)
        if interned is None:
            interned = self._tag_intern[tags] = tags
        return interned

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _stream(self, rank: int, stream: str) -> _StreamState:
        key = (rank, stream)
        st = self._streams.get(key)
        if st is None:
            if self._fold is not None and not 0 <= rank < self._fold.stride:
                raise ValueError(
                    f"rank {rank} outside the folded base replica "
                    f"[0, {self._fold.stride}) — submit base-replica ranks "
                    f"only when folding")
            st = self._streams[key] = _StreamState()
        return st

    def _commit(self, st: _StreamState, event: TraceEvent) -> None:
        """Record one event into the incremental accounting."""
        end = event.end
        st.events.append(event)
        st.busy += end - event.start
        if end > st.max_end:
            st.max_end = end
        if end > self._max_end:
            self._max_end = end
        self._events.append(event)
        rank = event.rank
        bucket = self._rank_events.get(rank)
        if bucket is None:
            bucket = self._rank_events[rank] = []
        bucket.append(event)

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------

    def run(
        self,
        rank: int,
        stream: str,
        duration: float,
        name: str,
        kind: str = "compute",
        after: Optional[Sequence[TraceEvent]] = None,
        not_before: float = 0.0,
        tags: Tuple[str, ...] = (),
    ) -> TraceEvent:
        """Run one task on a single rank's stream and return its event.

        The task starts when the stream is free, every event in ``after``
        has finished, and ``not_before`` has passed.
        """
        if duration < 0:
            raise ValueError(f"negative duration for task {name!r}")
        faulted = False
        if self._modifiers:
            duration, faulted = self._modified_duration(
                rank, stream, kind, name, duration)
        st = self._stream(rank, stream)
        ready = st.free
        if not_before > ready:
            ready = not_before
        if after:
            for dep in after:
                dep_end = dep.end
                if dep_end > ready:
                    ready = dep_end
        tags = self._tagged(tuple(tags), faulted) if (tags or faulted) else ()
        event = TraceEvent(name, kind, rank, stream, ready, ready + duration,
                           (), tags)
        st.free = event.end
        self._commit(st, event)
        return event

    def run_collective(
        self,
        ranks: Sequence[int],
        stream: str,
        duration: float,
        name: str,
        after: Optional[Dict[int, Sequence[TraceEvent]]] = None,
        kind: str = "comm",
        skew: Optional[Dict[int, float]] = None,
        tags: Tuple[str, ...] = (),
        failed_attempts: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> Dict[int, TraceEvent]:
        """Run a synchronising collective across ``ranks``.

        Every participant joins at its own ready time; the collective's
        payload transfer begins only once the **slowest** participant has
        joined (this is what makes slow-rank localisation, Section 6.1,
        possible: fast ranks show long collectives).  ``skew`` adds a
        per-rank extra delay before joining, used for fault injection.

        Registered duration modifiers apply per participant: the payload
        transfer takes the **maximum** of the per-rank modified durations,
        so one rank's degraded link slows the whole collective, and only
        the perturbed participants are tagged ``"faulted"``.

        ``failed_attempts`` plays out the timeout→retry→backoff ladder of
        ``retry_policy`` (default :data:`~repro.sim.collectives.
        DEFAULT_RETRY_POLICY`) before the successful attempt: each failed
        attempt occupies the stream for the policy's watchdog timeout and
        is tagged ``"retry"``, each backoff gap is tagged
        ``("retry", "backoff")``.  Raises ``ValueError`` if the policy's
        retry budget cannot absorb that many failures — the caller is
        expected to model a job abort instead (:mod:`repro.resilience`).

        Returns one event per rank for the **successful** attempt,
        spanning [join, collective end], so a rank's event duration
        includes its wait for stragglers.
        """
        if failed_attempts < 0:
            raise ValueError("failed_attempts must be >= 0")
        if failed_attempts:
            policy = retry_policy or DEFAULT_RETRY_POLICY
            if policy.exhausted_by(failed_attempts):
                raise ValueError(
                    f"collective {name!r}: {failed_attempts} failed attempts "
                    f"exceed the retry budget (max_retries="
                    f"{policy.max_retries}); model an abort instead")
            for attempt in range(failed_attempts):
                self._run_collective_once(
                    ranks, stream, policy.timeout_seconds,
                    f"{name}#try{attempt}", after, kind, skew,
                    tags + ("retry",))
                # Later attempts are gated by stream order alone.
                after = None
                skew = None
                backoff = policy.backoff_seconds(attempt)
                if backoff > 0:
                    for rank in ranks:
                        self.run(
                            rank, stream, backoff, f"{name}#backoff{attempt}",
                            kind=kind, tags=tags + ("retry", "backoff"))
        return self._run_collective_once(
            ranks, stream, duration, name, after, kind, skew, tags)

    def _run_collective_once(
        self,
        ranks: Sequence[int],
        stream: str,
        duration: float,
        name: str,
        after: Optional[Dict[int, Sequence[TraceEvent]]],
        kind: str,
        skew: Optional[Dict[int, float]],
        tags: Tuple[str, ...],
    ) -> Dict[int, TraceEvent]:
        if not ranks:
            raise ValueError("collective needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in collective {name!r}")
        # One batched pass per quantity, instead of the reference's four
        # per-rank dict-building loops.  The common case — no modifiers,
        # no deps, no skew — reduces to one stream lookup per rank and a
        # single max() over the join times.
        states = [self._stream(rank, stream) for rank in ranks]
        if self._modifiers:
            modified = [
                self._modified_duration(rank, stream, kind, name, duration)
                for rank in ranks
            ]
            payload = max(out for out, _ in modified)
            any_faulted = any(faulted for _, faulted in modified)
        else:
            if duration < 0:
                # Matches the reference path, where the (empty) modifier
                # chain's output check rejects negative durations.
                raise ValueError(
                    f"duration modifier made task {name!r} negative "
                    f"({duration})")
            payload = duration
            any_faulted = False

        if after or skew:
            after = after or {}
            skew = skew or {}
            empty: Tuple[TraceEvent, ...] = ()
            join_times = []
            for rank, st in zip(ranks, states):
                join = st.free
                for dep in after.get(rank, empty):
                    if dep.end > join:
                        join = dep.end
                join_times.append(join + skew.get(rank, 0.0))
        else:
            join_times = [st.free for st in states]

        start = max(join_times)
        end = start + payload
        group = tuple(ranks)
        base_tags = self._tagged(tuple(tags), False) if tags else ()
        faulted_tags = (self._tagged(tuple(tags), True)
                        if any_faulted else base_tags)
        events: Dict[int, TraceEvent] = {}
        for i, rank in enumerate(ranks):
            if any_faulted and modified[i][1]:
                rank_tags = faulted_tags
            else:
                rank_tags = base_tags
            event = TraceEvent(name, kind, rank, stream, join_times[i], end,
                               group, rank_tags)
            st = states[i]
            st.free = end
            self._commit(st, event)
            events[rank] = event
        return events

    def advance(self, rank: int, stream: str, until: float) -> None:
        """Force a stream to be busy until a given time (models stalls)."""
        st = self._stream(rank, stream)
        if until > st.free:
            st.free = until

    def record(self, event: TraceEvent) -> None:
        """Append an externally-timed event, advancing its stream.

        Used to splice timelines together (e.g. merging per-phase traces);
        the event's own start/end are trusted as-is.
        """
        if event.end < event.start:
            raise ValueError(f"event {event.name!r} ends before it starts")
        st = self._stream(event.rank, event.stream)
        if event.end > st.free:
            st.free = event.end
        self._commit(st, event)

    # ------------------------------------------------------------------
    # Symmetry folding
    # ------------------------------------------------------------------

    @property
    def fold(self) -> Optional[RankFold]:
        """The active rank fold, or None when the engine is unfolded."""
        return self._fold

    def _shift_events(
        self, base: Iterable[TraceEvent], offset: int,
        group_cache: Dict[Tuple[Tuple[int, ...], int], Tuple[int, ...]],
    ) -> List[TraceEvent]:
        """Base-replica events projected onto the replica at ``offset``."""
        if offset == 0:
            return list(base)
        out = []
        append = out.append
        for e in base:
            group = e.group
            if group:
                key = (group, offset)
                shifted = group_cache.get(key)
                if shifted is None:
                    shifted = group_cache[key] = tuple(
                        r + offset for r in group)
                group = shifted
            append(TraceEvent(e.name, e.kind, e.rank + offset, e.stream,
                              e.start, e.end, group, e.tags))
        return out

    def _fold_events(self) -> List[TraceEvent]:
        """The fanned-out event list, replica-major, lazily cached.

        Replica-major order (all of replica 0's events in submission
        order, then replica 1's, ...) is the order an unfolded engine
        produces when the caller replays the base submissions once per
        replica — the equivalence the differential harness pins.
        """
        assert self._fold is not None
        cached = self._fold_cache
        if cached is not None and cached[0] == len(self._events):
            return cached[1]
        group_cache: Dict[Tuple[Tuple[int, ...], int], Tuple[int, ...]] = {}
        out: List[TraceEvent] = []
        for k in range(self._fold.replicas):
            out.extend(self._shift_events(
                self._events, k * self._fold.stride, group_cache))
        self._fold_cache = (len(self._events), out)
        return out

    def _base_rank(self, rank: int) -> int:
        """Map a folded global rank back onto the base replica."""
        fold = self._fold
        if fold is None:
            return rank
        if not 0 <= rank < fold.world_size:
            # Outside the folded world: no events there, same as the
            # unfolded engine's behaviour for a never-seen rank.
            return rank
        return rank % fold.stride

    # ------------------------------------------------------------------
    # Inspection API
    # ------------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, in submission order.

        Under a :class:`RankFold` this is the fanned-out timeline,
        replica-major; the returned list is cached between submissions,
        so repeated access is cheap.
        """
        if self._fold is not None:
            return list(self._fold_events())
        return list(self._events)

    def now(self, rank: int, stream: str) -> float:
        """Time at which a stream becomes free."""
        st = self._streams.get((self._base_rank(rank), stream))
        return st.free if st is not None else 0.0

    def makespan(self, ranks: Optional[Iterable[int]] = None) -> float:
        """Latest end time across the given ranks (or all ranks).

        Maintained incrementally: the unfiltered call is O(1), the
        filtered call is O(streams of those ranks) — never O(events).
        """
        if ranks is None:
            return self._max_end
        out = 0.0
        seen = {self._base_rank(r) for r in ranks}
        for (rank, _), st in self._streams.items():
            if rank in seen and st.max_end > out:
                out = st.max_end
        return out

    def events_for(
        self, rank: int, stream: Optional[str] = None, kind: Optional[str] = None
    ) -> List[TraceEvent]:
        """Events on one rank, optionally filtered by stream and kind.

        Indexed per rank on submit, so the cost is O(that rank's events)
        rather than a scan of the whole timeline.
        """
        base_rank = self._base_rank(rank)
        bucket = self._rank_events.get(base_rank, [])
        if stream is None and kind is None:
            out = list(bucket)
        else:
            out = [
                e for e in bucket
                if (stream is None or e.stream == stream)
                and (kind is None or e.kind == kind)
            ]
        if self._fold is not None and rank != base_rank:
            group_cache: Dict[
                Tuple[Tuple[int, ...], int], Tuple[int, ...]] = {}
            out = self._shift_events(out, rank - base_rank, group_cache)
        return out

    def overlapping_events(
        self,
    ) -> List[Tuple[TraceEvent, TraceEvent]]:
        """Pairs of events that overlap in time on the same (rank, stream).

        A correct timeline never has any: each (rank, stream) models one
        serially-executing CUDA stream.  The ``submit-in-causal-order``
        contract makes overlap impossible through :meth:`run`, but
        :meth:`record` trusts caller-supplied times, so spliced timelines
        can violate it — this is the raw check behind the
        ``stream-overlap`` invariant in :mod:`repro.verify.invariants`.
        """
        offenders: List[Tuple[TraceEvent, TraceEvent]] = []
        for st in self._streams.values():
            ordered = sorted(st.events, key=lambda e: (e.start, e.end))
            active: Optional[TraceEvent] = None  # max-end event so far
            for cur in ordered:
                if active is not None and active.overlaps(cur):
                    offenders.append((active, cur))
                if active is None or cur.end > active.end:
                    active = cur
        if self._fold is not None and offenders:
            group_cache: Dict[
                Tuple[Tuple[int, ...], int], Tuple[int, ...]] = {}
            fanned: List[Tuple[TraceEvent, TraceEvent]] = []
            for k in range(self._fold.replicas):
                offset = k * self._fold.stride
                for a, b in offenders:
                    pair = self._shift_events((a, b), offset, group_cache)
                    fanned.append((pair[0], pair[1]))
            return fanned
        return offenders

    def busy_time(self, rank: int, stream: str = "compute") -> float:
        """Total busy duration on a stream (events never overlap per
        stream).  Accumulated incrementally on submit — O(1)."""
        st = self._streams.get((self._base_rank(rank), stream))
        return st.busy if st is not None else 0.0

    def idle_time(self, rank: int, stream: str = "compute") -> float:
        """Makespan minus busy time on one rank's stream — O(1), so
        ``busy_time(r, s) + idle_time(r, s) == makespan()`` per stream by
        construction."""
        return self._max_end - self.busy_time(rank, stream)
