"""Discrete-event performance simulator.

The simulator reproduces the *timing structure* of distributed training:
per-GPU compute and communication streams, point-to-point transfers with
dependencies, and synchronising collectives whose start time is gated by the
slowest participant.  Costs come from the analytical models in
:mod:`repro.hardware` and :mod:`repro.sim.collectives`.

The engine is deliberately small: callers (the pipeline executor in
:mod:`repro.train`, the CP attention benchmarks) submit tasks in any causally
consistent order and read back a trace of :class:`TraceEvent` records, which
the debugging tools in :mod:`repro.debug` then analyse exactly the way
Section 6.1 describes for production traces.
"""

from repro.sim.engine import RankFold, Simulator, TraceEvent, StreamKey
from repro.sim.collectives import (
    DEFAULT_COLLECTIVE_TIMEOUT_SECONDS,
    DEFAULT_RETRY_POLICY,
    CollectiveCost,
    RetryPolicy,
    all_gather_time,
    all_to_all_time,
    reduce_scatter_time,
    all_reduce_time,
    broadcast_time,
    p2p_time,
    achieved_all_gather_bandwidth,
)

__all__ = [
    "RankFold",
    "Simulator",
    "TraceEvent",
    "StreamKey",
    "DEFAULT_COLLECTIVE_TIMEOUT_SECONDS",
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
    "CollectiveCost",
    "all_gather_time",
    "all_to_all_time",
    "reduce_scatter_time",
    "all_reduce_time",
    "broadcast_time",
    "p2p_time",
    "achieved_all_gather_bandwidth",
]
