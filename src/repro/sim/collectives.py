"""Analytical cost models for NCCL-style collectives.

All models are ring-algorithm based, the NCCL default at these group sizes:

* **all-gather** of a total output of ``S`` bytes over ``n`` ranks performs
  ``n - 1`` steps, each moving an ``S / n``-byte shard to the neighbour, so
  ``t = (n - 1) * (alpha + (S / n) / bw_eff)``.
* **reduce-scatter** is symmetric to all-gather.
* **all-reduce** is a reduce-scatter followed by an all-gather.
* **broadcast** uses a binomial tree: ``ceil(log2 n)`` hops of the full
  payload.
* **all-to-all** (the MoE expert dispatch/combine collective) uses the
  pairwise-exchange algorithm: each rank trades a distinct ``S / n``-byte
  shard with each of its ``n - 1`` peers.  Unlike the ring models it is
  priced *hierarchically*: exchanges with same-node peers ride the
  intra-node link, cross-node exchanges the inter-node fabric, and the
  group completes when its worst-placed rank (the one with the most
  cross-node peers) finishes.

``bw_eff`` is the message-size-dependent effective bandwidth of the slowest
link in the group (Section 5.2: a collective runs at the speed of its
slowest hop).  A ``congestion`` factor > 1 divides the available bandwidth,
modelling the FSDP/PP traffic interference of Section 3.1.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.hardware.cluster import ClusterSpec
from repro.hardware.network import LinkSpec, effective_bandwidth

#: Default collective watchdog timeout, in simulated seconds.  This is the
#: single constant behind every timeout-shaped behaviour in the repo: a
#: :class:`repro.faults.HungRank` with ``timeout_seconds=None`` stalls at
#: most this long (NCCL-watchdog-then-recover), and a failed collective
#: attempt under :class:`RetryPolicy` occupies its stream for exactly this
#: long before backing off.  Real NCCL defaults to minutes; the simulated
#: workloads run seconds-long steps, so the constant is scaled to match.
DEFAULT_COLLECTIVE_TIMEOUT_SECONDS = 30.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for failed collectives.

    Models the runtime's recovery ladder for transient network faults: a
    collective that does not complete within ``timeout_seconds`` is torn
    down by the watchdog, the group backs off
    ``backoff_base_seconds * backoff_multiplier**attempt`` (attempt 0 is
    the first failure), and the collective is re-issued — at most
    ``max_retries`` times before the job aborts and restarts from its
    last checkpoint (:mod:`repro.resilience`).
    """

    max_retries: int = 3
    timeout_seconds: float = DEFAULT_COLLECTIVE_TIMEOUT_SECONDS
    backoff_base_seconds: float = 1.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be > 0")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff_seconds(self, attempt: int) -> float:
        """Backoff after the ``attempt``-th failure (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return self.backoff_base_seconds * self.backoff_multiplier**attempt

    def retry_overhead_seconds(self, failed_attempts: int) -> float:
        """Total time ``failed_attempts`` timeouts + backoffs add before
        the successful attempt starts."""
        return sum(
            self.timeout_seconds + self.backoff_seconds(k)
            for k in range(failed_attempts)
        )

    def exhausted_by(self, failed_attempts: int) -> bool:
        """Whether this many failures exceeds the retry budget (the
        caller should abort-and-restart rather than retry again)."""
        return failed_attempts > self.max_retries

    def to_dict(self) -> dict:
        return {
            "max_retries": self.max_retries,
            "timeout_seconds": self.timeout_seconds,
            "backoff_base_seconds": self.backoff_base_seconds,
            "backoff_multiplier": self.backoff_multiplier,
        }


#: The policy used when a caller requests retries without supplying one.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class CollectiveCost:
    """Result of a collective cost query.

    Attributes:
        seconds: Predicted wall-clock time of the collective.
        bytes_on_wire: Bytes each rank sends over the network.
        algorithm_bandwidth: Collective "bus bandwidth" in bytes/s —
            total payload divided by time, the metric Figure 12 plots.
    """

    seconds: float
    bytes_on_wire: float
    algorithm_bandwidth: float


def _group_link(cluster: ClusterSpec, ranks: Sequence[int]) -> LinkSpec:
    return cluster.group_link(ranks)


def _ring_steps_time(
    link: LinkSpec, shard_bytes: float, steps: int, congestion: float
) -> float:
    if steps == 0:
        return 0.0
    bw = effective_bandwidth(link, max(shard_bytes, 1.0)) / congestion
    return steps * (link.latency + shard_bytes / bw)


def all_gather_time(
    cluster: ClusterSpec,
    ranks: Sequence[int],
    total_bytes: float,
    congestion: float = 1.0,
) -> CollectiveCost:
    """Ring all-gather producing ``total_bytes`` of output on every rank."""
    _validate(ranks, total_bytes, congestion)
    n = len(ranks)
    if n == 1:
        return CollectiveCost(seconds=0.0, bytes_on_wire=0.0,
                              algorithm_bandwidth=float("inf"))
    link = _group_link(cluster, ranks)
    shard = total_bytes / n
    seconds = _ring_steps_time(link, shard, n - 1, congestion)
    wire = shard * (n - 1)
    return CollectiveCost(
        seconds=seconds,
        bytes_on_wire=wire,
        algorithm_bandwidth=total_bytes / seconds,
    )


def reduce_scatter_time(
    cluster: ClusterSpec,
    ranks: Sequence[int],
    total_bytes: float,
    congestion: float = 1.0,
) -> CollectiveCost:
    """Ring reduce-scatter over an input of ``total_bytes`` per rank."""
    # Symmetric to all-gather in the ring model.
    return all_gather_time(cluster, ranks, total_bytes, congestion)


def all_reduce_time(
    cluster: ClusterSpec,
    ranks: Sequence[int],
    total_bytes: float,
    congestion: float = 1.0,
) -> CollectiveCost:
    """Ring all-reduce: reduce-scatter then all-gather."""
    _validate(ranks, total_bytes, congestion)
    n = len(ranks)
    if n == 1:
        return CollectiveCost(0.0, 0.0, float("inf"))
    link = _group_link(cluster, ranks)
    shard = total_bytes / n
    seconds = _ring_steps_time(link, shard, 2 * (n - 1), congestion)
    return CollectiveCost(
        seconds=seconds,
        bytes_on_wire=2 * shard * (n - 1),
        algorithm_bandwidth=total_bytes / seconds,
    )


def broadcast_time(
    cluster: ClusterSpec,
    ranks: Sequence[int],
    total_bytes: float,
    congestion: float = 1.0,
) -> CollectiveCost:
    """Binomial-tree broadcast of ``total_bytes`` from the first rank."""
    _validate(ranks, total_bytes, congestion)
    n = len(ranks)
    if n == 1:
        return CollectiveCost(0.0, 0.0, float("inf"))
    link = _group_link(cluster, ranks)
    hops = math.ceil(math.log2(n))
    # max(..., 1.0) mirrors _ring_steps_time: a zero-byte broadcast is
    # latency-only (hops * alpha), not a ValueError.
    bw = effective_bandwidth(link, max(total_bytes, 1.0)) / congestion
    seconds = hops * (link.latency + total_bytes / bw)
    return CollectiveCost(
        seconds=seconds,
        bytes_on_wire=total_bytes,
        algorithm_bandwidth=total_bytes / seconds,
    )


def all_to_all_time(
    cluster: ClusterSpec,
    ranks: Sequence[int],
    total_bytes: float,
    congestion: float = 1.0,
) -> CollectiveCost:
    """Pairwise-exchange all-to-all over ``total_bytes`` of input per rank
    (the MoE dispatch/combine collective).

    Each rank holds ``total_bytes`` of routed tokens, sends a distinct
    ``total_bytes / n`` shard to each of its ``n - 1`` peers, and keeps
    its own shard.  Exchanges are serialised per rank (one NIC), so a
    rank's time is the sum over its peers of per-exchange transfer
    times — same-node peers at the intra-node link, cross-node peers at
    the inter-node fabric.  The collective completes when the
    worst-placed rank (most cross-node peers) finishes.
    """
    _validate(ranks, total_bytes, congestion)
    n = len(ranks)
    if n == 1:
        return CollectiveCost(0.0, 0.0, float("inf"))
    shard = total_bytes / n
    node_counts: dict = {}
    for r in ranks:
        node = cluster.node_of(r)
        node_counts[node] = node_counts.get(node, 0) + 1
    # A rank on the group's most-populated node has the fewest cross-node
    # peers; the slowest rank sits on the least-populated node.
    max_inter = n - min(node_counts.values())
    seconds = (
        _ring_steps_time(cluster.intra_node_link, shard,
                         (n - 1) - max_inter, congestion)
        + _ring_steps_time(cluster.inter_node_link, shard,
                           max_inter, congestion)
    )
    return CollectiveCost(
        seconds=seconds,
        bytes_on_wire=shard * (n - 1),
        algorithm_bandwidth=total_bytes / seconds,
    )


def p2p_time(
    cluster: ClusterSpec,
    src: int,
    dst: int,
    message_bytes: float,
    congestion: float = 1.0,
) -> float:
    """Seconds for one point-to-point send (PP stage boundary traffic).

    Each branch computes only what it returns — this sits on the
    engine's hottest per-op path, so no speculative ``transfer_time``
    call that the non-empty case would throw away.
    """
    if congestion < 1.0:
        raise ValueError("congestion factor must be >= 1.0")
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    link = cluster.link_between(src, dst)
    if message_bytes == 0:
        return link.latency
    return link.latency + message_bytes / (link.bandwidth / congestion)


def achieved_all_gather_bandwidth(
    cluster: ClusterSpec,
    ranks: Sequence[int],
    total_bytes: float,
    congestion: float = 1.0,
) -> float:
    """Achieved all-gather bus bandwidth in GB/s — the Figure 12 metric.

    NCCL reports ``busbw = (n - 1) / n * S / t`` for all-gather; we follow
    the same convention so the numbers are comparable with the paper.
    """
    n = len(ranks)
    if n == 1:
        return 0.0
    cost = all_gather_time(cluster, ranks, total_bytes, congestion)
    return (n - 1) / n * total_bytes / cost.seconds / 1e9


def _validate(ranks: Sequence[int], total_bytes: float, congestion: float) -> None:
    if not ranks:
        raise ValueError("collective needs at least one rank")
    if len(set(ranks)) != len(ranks):
        raise ValueError("duplicate ranks in collective group")
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    if congestion < 1.0:
        raise ValueError("congestion factor must be >= 1.0")
