"""Document-structured synthetic batches.

A training sequence of length ``seq`` is a concatenation of documents; the
attention mask lets a token attend only within its own document (the "block
causal" / document mask).  Document lengths follow a clipped geometric
distribution with a configurable mean (the paper's CP experiments use an
average document length of 1K tokens, Section 7.2); with probability
``p_full_sequence`` the whole sequence is a single document — the
"no eos_id" worst case that bounds the slowest CP rank (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class DocumentBatch:
    """One sequence's document structure.

    Attributes:
        seq: Total tokens.
        doc_lens: Document lengths; sums to ``seq``.
    """

    seq: int
    doc_lens: tuple

    def __post_init__(self) -> None:
        if sum(self.doc_lens) != self.seq:
            raise ValueError("doc_lens must sum to seq")
        if any(l <= 0 for l in self.doc_lens):
            raise ValueError("doc_lens must be positive")

    @property
    def doc_ids(self) -> np.ndarray:
        return doc_ids_from_lengths(self.doc_lens)

    @property
    def eos(self) -> List[int]:
        return eos_positions(self.doc_lens)

    def attended_per_row(self) -> np.ndarray:
        """Number of attended key positions for each query row under the
        document mask: ``i - doc_start(i) + 1``."""
        ids = self.doc_ids
        starts = np.zeros(self.seq, dtype=np.int64)
        boundary = np.flatnonzero(np.diff(ids)) + 1
        starts[boundary] = boundary
        starts = np.maximum.accumulate(starts)
        return np.arange(self.seq, dtype=np.int64) - starts + 1


def sample_document_lengths(
    seq: int,
    mean_doc_len: float,
    rng: np.random.Generator,
    p_full_sequence: float = 0.0,
    min_doc_len: int = 16,
    sigma: float = 0.0,
) -> List[int]:
    """Sample document lengths that partition a sequence.

    With ``sigma == 0`` lengths are geometric with the requested mean.
    With ``sigma > 0`` they are lognormal (same mean, log-space standard
    deviation ``sigma``) — a heavy-tailed corpus where occasional very
    long documents span many CP chunks, the regime that drives the
    Section 7.3.2 fleet imbalance.  Either way lengths are clipped below
    at ``min_doc_len`` and the final document absorbs the remainder.
    """
    if seq <= 0:
        raise ValueError("seq must be positive")
    if mean_doc_len <= min_doc_len:
        raise ValueError("mean_doc_len must exceed min_doc_len")
    if not 0.0 <= p_full_sequence <= 1.0:
        raise ValueError("p_full_sequence must be a probability")
    if sigma < 0.0:
        raise ValueError("sigma must be non-negative")
    if p_full_sequence and rng.random() < p_full_sequence:
        return [seq]
    lengths: List[int] = []
    remaining = seq
    p = 1.0 / (mean_doc_len - min_doc_len + 1)
    mu = np.log(mean_doc_len) - sigma**2 / 2.0
    while remaining > 0:
        if sigma > 0.0:
            draw = max(int(rng.lognormal(mu, sigma)), min_doc_len)
        else:
            draw = min_doc_len + int(rng.geometric(p)) - 1
        draw = min(draw, remaining)
        if remaining - draw < min_doc_len:
            draw = remaining
        lengths.append(draw)
        remaining -= draw
    return lengths


def doc_ids_from_lengths(doc_lens: Sequence[int]) -> np.ndarray:
    """Per-token document ids (0-based) from document lengths."""
    if not doc_lens:
        raise ValueError("doc_lens must be non-empty")
    return np.repeat(np.arange(len(doc_lens)), np.asarray(doc_lens))


def eos_positions(doc_lens: Sequence[int]) -> List[int]:
    """Token indices of each document's final (end-of-sequence) token."""
    out = []
    total = 0
    for l in doc_lens:
        total += l
        out.append(total - 1)
    return out


def make_batch(
    seq: int,
    mean_doc_len: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    p_full_sequence: float = 0.0,
) -> DocumentBatch:
    """Convenience constructor: a single-document batch when
    ``mean_doc_len`` is None, otherwise sampled documents."""
    if mean_doc_len is None:
        return DocumentBatch(seq=seq, doc_lens=(seq,))
    if rng is None:
        rng = np.random.default_rng(0)
    lens = sample_document_lengths(
        seq, mean_doc_len, rng, p_full_sequence=p_full_sequence
    )
    return DocumentBatch(seq=seq, doc_lens=tuple(lens))
