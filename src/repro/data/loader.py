"""Data loading under 4D parallelism (Section 4, "Integration").

The paper's integration rules, implemented over real token arrays:

* **Dataloaders feed DP groups**: each data-parallel group receives its
  own batches; tokenisation is oblivious to CP.
* **CP ranks select local tokens**: every rank of a CP group receives the
  *full* sequence (it needs the complete eos layout to build its attention
  mask), then selects the head/tail chunks it owns, together with the
  matching position ids for correct rotary embeddings.

:class:`TokenBatchLoader` generates deterministic synthetic document
batches; :func:`cp_local_view` performs the per-rank selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.data.documents import DocumentBatch, sample_document_lengths


def _rank_rows(seq: int, cp: int, rank: int):
    # Imported lazily: repro.cp depends on repro.data for document
    # structures, so the reverse edge must not exist at import time.
    from repro.cp.sharding import rank_row_indices

    return rank_row_indices(seq, cp, rank)


@dataclass(frozen=True)
class GlobalBatch:
    """One DP group's batch for one step.

    Attributes:
        tokens: (bs, seq) int32 token ids (synthetic).
        batches: per-sequence document structure (eos layout).
        step: Step index the batch belongs to.
        dp_rank: The data-parallel group this batch feeds.
    """

    tokens: np.ndarray
    batches: Tuple[DocumentBatch, ...]
    step: int
    dp_rank: int

    @property
    def bs(self) -> int:
        return self.tokens.shape[0]

    @property
    def seq(self) -> int:
        return self.tokens.shape[1]


@dataclass(frozen=True)
class CpLocalView:
    """What one CP rank actually computes on.

    Attributes:
        tokens: (bs, seq/cp) the rank's head+tail token chunks.
        position_ids: (bs, seq/cp) absolute positions of those tokens —
            required for correct rotary embeddings under CP (Section 4).
        doc_ids_full: (bs, seq) the *complete* per-token document ids;
            every rank keeps the full mask information even though it
            only computes its own query rows.
    """

    tokens: np.ndarray
    position_ids: np.ndarray
    doc_ids_full: np.ndarray


class TokenBatchLoader:
    """Deterministic synthetic dataloader for one DP group.

    Each DP group gets an independent stream (different seeds), matching
    the paper's statement that dataloaders continue to serve DP groups
    unchanged when CP is enabled.
    """

    def __init__(
        self,
        seq: int,
        bs: int,
        vocab: int = 128256,
        mean_doc_len: Optional[float] = 1024.0,
        dp_rank: int = 0,
        seed: int = 0,
        sigma: float = 0.0,
    ) -> None:
        if seq < 1 or bs < 1 or vocab < 2:
            raise ValueError("seq, bs must be >= 1 and vocab >= 2")
        self.seq = seq
        self.bs = bs
        self.vocab = vocab
        self.mean_doc_len = mean_doc_len
        self.dp_rank = dp_rank
        self.sigma = sigma
        self._rng = np.random.default_rng((seed, dp_rank))
        self._step = 0

    def next_batch(self) -> GlobalBatch:
        """Generate the next step's batch for this DP group."""
        sequences = []
        structures = []
        for _ in range(self.bs):
            if self.mean_doc_len is None:
                lens = [self.seq]
            else:
                lens = sample_document_lengths(
                    self.seq, self.mean_doc_len, self._rng,
                    sigma=self.sigma,
                )
            structures.append(DocumentBatch(seq=self.seq,
                                            doc_lens=tuple(lens)))
            sequences.append(
                self._rng.integers(0, self.vocab, self.seq, dtype=np.int32)
            )
        batch = GlobalBatch(
            tokens=np.stack(sequences),
            batches=tuple(structures),
            step=self._step,
            dp_rank=self.dp_rank,
        )
        self._step += 1
        return batch

    def __iter__(self) -> Iterator[GlobalBatch]:
        while True:
            yield self.next_batch()


def cp_local_view(batch: GlobalBatch, cp: int, cp_rank: int) -> CpLocalView:
    """Select one CP rank's local tokens from a full batch.

    The rank takes chunks ``cp_rank`` and ``2*cp - cp_rank - 1`` of every
    sequence (the head/tail sharding), with absolute position ids, while
    retaining the complete document-id layout for mask construction.
    """
    if not 0 <= cp_rank < cp:
        raise ValueError(f"cp_rank {cp_rank} out of range for cp={cp}")
    rows = _rank_rows(batch.seq, cp, cp_rank)
    tokens = batch.tokens[:, rows]
    position_ids = np.broadcast_to(rows, (batch.bs, rows.size)).copy()
    doc_ids = np.stack([b.doc_ids for b in batch.batches])
    return CpLocalView(tokens=tokens, position_ids=position_ids,
                       doc_ids_full=doc_ids)


def reassemble_from_cp_views(
    views: List[CpLocalView], seq: int, cp: int
) -> np.ndarray:
    """Inverse of :func:`cp_local_view` over all ranks — used to verify
    the selection is a lossless partition."""
    if len(views) != cp:
        raise ValueError(f"expected {cp} views, got {len(views)}")
    bs = views[0].tokens.shape[0]
    full = np.zeros((bs, seq), dtype=views[0].tokens.dtype)
    for rank, view in enumerate(views):
        rows = _rank_rows(seq, cp, rank)
        full[:, rows] = view.tokens
    return full
