"""Synthetic training data: document-structured token batches.

Llama 3's document-mask attention makes the computation pattern of every
batch depend on where end-of-sequence tokens fall (Section 4).  This package
generates document-length structures with controllable statistics so the CP
imbalance experiments (Figures 11 and 14) have realistic inputs.
"""

from repro.data.loader import (
    GlobalBatch,
    CpLocalView,
    TokenBatchLoader,
    cp_local_view,
    reassemble_from_cp_views,
)
from repro.data.documents import (
    DocumentBatch,
    sample_document_lengths,
    doc_ids_from_lengths,
    eos_positions,
    make_batch,
)

__all__ = [
    "GlobalBatch",
    "CpLocalView",
    "TokenBatchLoader",
    "cp_local_view",
    "reassemble_from_cp_views",
    "DocumentBatch",
    "sample_document_lengths",
    "doc_ids_from_lengths",
    "eos_positions",
    "make_batch",
]
