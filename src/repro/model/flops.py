"""FLOP and parameter accounting for text and multimodal models.

Conventions:

* One multiply-accumulate counts as 2 FLOPs.
* A GEMM backward costs 2x its forward (one GEMM for the input gradient and
  one for the weight gradient).  **Frozen** layers skip the weight-gradient
  GEMM and cost only 1x forward — the multimodal workload-imbalance driver
  of Section 3.2.2.
* Attention score FLOPs scale with the *mask fraction*: the share of the
  full ``seq x seq`` score matrix actually computed.  A causal mask computes
  ~half; a document (block-causal) mask computes less, in proportion to the
  squared document lengths — the source of the CP workload imbalance in
  Figures 11 and 14.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.model.config import (
    MultimodalConfig,
    TextModelConfig,
    VisionEncoderConfig,
)


# ---------------------------------------------------------------------------
# Parameter counts
# ---------------------------------------------------------------------------

def layer_params(cfg: TextModelConfig) -> int:
    """Parameters in one transformer layer (attention + FFN + norms).

    For an MoE layer the FFN part is ``n_experts`` full SwiGLU experts
    plus the router — see :func:`expert_params` for the slice that
    expert parallelism shards."""
    d = cfg.dim
    attn = d * d + 2 * d * cfg.kv_dim + d * d  # Wq, Wk+Wv, Wo
    norms = 2 * d
    if cfg.is_moe:
        ffn = expert_params(cfg) + d * cfg.n_experts  # experts + router
    else:
        ffn = 3 * d * cfg.ffn_hidden               # W_gate, W_up, W_down
    return attn + ffn + norms


def expert_params(cfg: TextModelConfig) -> int:
    """Expert-FFN parameters in one MoE layer (0 for dense models) — the
    slice of :func:`layer_params` that expert parallelism divides by
    ``ep``, since each EP rank stores only its own experts."""
    if not cfg.is_moe:
        return 0
    return 3 * cfg.dim * cfg.ffn_hidden * cfg.n_experts


def embedding_params(cfg: TextModelConfig) -> int:
    """Input embedding table parameters."""
    return cfg.vocab_size * cfg.dim


def output_head_params(cfg: TextModelConfig) -> int:
    """Output projection (untied in Llama 3) plus final norm."""
    return cfg.vocab_size * cfg.dim + cfg.dim


def model_params(cfg: TextModelConfig) -> int:
    """Total text-model parameters."""
    return (
        cfg.n_layers * layer_params(cfg)
        + embedding_params(cfg)
        + output_head_params(cfg)
    )


def vision_layer_params(cfg: VisionEncoderConfig) -> int:
    """Parameters in one ViT layer (MHA + 2-matrix MLP + norms)."""
    d, f = cfg.dim, cfg.ffn_hidden
    return 4 * d * d + 2 * d * f + 2 * d


def vision_model_params(cfg: VisionEncoderConfig) -> int:
    """Total ViT parameters including the patch-embedding projection."""
    patch_embed = 3 * cfg.patch_size**2 * cfg.dim
    return cfg.n_layers * vision_layer_params(cfg) + patch_embed


def cross_attention_layer_params(cfg: MultimodalConfig) -> int:
    """Parameters in one cross-attention layer.

    Query projection from the text stream; K/V projections take the image
    encoder output (projected to the text dim); same FFN as a text layer.
    """
    d, f = cfg.text.dim, cfg.text.ffn_hidden
    attn = d * d + 2 * d * cfg.text.kv_dim + d * d
    ffn = 3 * d * f
    return attn + ffn + 2 * d


# ---------------------------------------------------------------------------
# Mask fractions
# ---------------------------------------------------------------------------

def causal_mask_fraction(seq: int) -> float:
    """Fraction of the seq x seq score matrix under a causal mask."""
    if seq <= 0:
        raise ValueError("seq must be positive")
    return (seq + 1) / (2.0 * seq)


def document_mask_fraction(doc_lens: Sequence[int]) -> float:
    """Fraction of the score matrix under a document (block-causal) mask.

    Tokens attend causally within their own document only, so the computed
    area is the sum of per-document causal triangles over the full square.
    """
    if not doc_lens or any(l <= 0 for l in doc_lens):
        raise ValueError("doc_lens must be a non-empty list of positive ints")
    seq = sum(doc_lens)
    area = sum(l * (l + 1) / 2.0 for l in doc_lens)
    return area / float(seq * seq)


# ---------------------------------------------------------------------------
# Text layer FLOPs
# ---------------------------------------------------------------------------

def attention_score_flops(
    cfg: TextModelConfig, seq: int, mask_fraction: Optional[float] = None
) -> float:
    """Forward FLOPs of QK^T plus attention-weighted V for one sequence."""
    if mask_fraction is None:
        mask_fraction = causal_mask_fraction(seq)
    # Each of QK^T and PV is 2 * seq * seq * dim at full density.
    return 2 * (2.0 * seq * seq * cfg.dim) * mask_fraction


def layer_linear_flops(cfg: TextModelConfig, seq: int) -> float:
    """Forward FLOPs of the GEMMs in one layer for ``seq`` tokens.

    MoE layers count *active* FLOPs: every token runs through ``top_k``
    experts (not all of them) plus the router projection — the
    denominator convention MoE MFU figures use."""
    d, f = cfg.dim, cfg.ffn_hidden
    qkvo = 2.0 * seq * d * (d + 2 * cfg.kv_dim + d)
    if cfg.is_moe:
        ffn = 2.0 * seq * d * f * 3 * cfg.top_k
        ffn += 2.0 * seq * d * cfg.n_experts  # router scores
    else:
        ffn = 2.0 * seq * d * f * 3
    return qkvo + ffn


def layer_forward_flops(
    cfg: TextModelConfig, seq: int, mask_fraction: Optional[float] = None
) -> float:
    """Forward FLOPs of one full transformer layer for one sequence."""
    return layer_linear_flops(cfg, seq) + attention_score_flops(
        cfg, seq, mask_fraction
    )


def layer_backward_flops(
    cfg: TextModelConfig,
    seq: int,
    mask_fraction: Optional[float] = None,
    frozen: bool = False,
) -> float:
    """Backward FLOPs of one layer.

    Frozen layers (multimodal text stack, Section 3.2.2) compute only input
    gradients: 1x forward for the GEMMs.  Attention scores have no weights,
    so their backward always costs ~2x forward.
    """
    linear_factor = 1.0 if frozen else 2.0
    return (
        linear_factor * layer_linear_flops(cfg, seq)
        + 2.0 * attention_score_flops(cfg, seq, mask_fraction)
    )


def output_head_flops(cfg: TextModelConfig, seq: int) -> float:
    """Forward FLOPs of the vocabulary projection for ``seq`` tokens."""
    return 2.0 * seq * cfg.dim * cfg.vocab_size


def model_forward_flops(
    cfg: TextModelConfig, seq: int, mask_fraction: Optional[float] = None
) -> float:
    """Forward FLOPs of the whole text model for one sequence."""
    return (
        cfg.n_layers * layer_forward_flops(cfg, seq, mask_fraction)
        + output_head_flops(cfg, seq)
    )


def model_step_flops(
    cfg: TextModelConfig,
    tokens_per_step: float,
    seq: int,
    mask_fraction: Optional[float] = None,
    recompute: bool = False,
) -> float:
    """Hardware FLOPs of one optimizer step over ``tokens_per_step`` tokens.

    Forward + backward (3x forward for trained layers); activation
    recomputation adds one extra forward (Section 7.1.2's 17.5% TFLOPs win
    comes from turning this off).
    """
    sequences = tokens_per_step / seq
    fwd = model_forward_flops(cfg, seq, mask_fraction)
    layer_bwd = cfg.n_layers * layer_backward_flops(cfg, seq, mask_fraction)
    head_bwd = 2.0 * output_head_flops(cfg, seq)
    per_seq = fwd + layer_bwd + head_bwd
    if recompute:
        per_seq += fwd
    return sequences * per_seq


# ---------------------------------------------------------------------------
# Vision / multimodal FLOPs
# ---------------------------------------------------------------------------

def vision_forward_flops(cfg: VisionEncoderConfig) -> float:
    """Forward FLOPs of the ViT for one image (full bidirectional attention)."""
    s, d, f = cfg.num_image_tokens, cfg.dim, cfg.ffn_hidden
    per_layer = 2.0 * s * d * 4 * d + 2.0 * s * d * f * 2 + 2 * (2.0 * s * s * d)
    patch_embed = 2.0 * s * (3 * cfg.patch_size**2) * d
    return cfg.n_layers * per_layer + patch_embed


def vision_step_flops(cfg: VisionEncoderConfig) -> float:
    """Forward + backward FLOPs for one image (encoder is trained)."""
    return 3.0 * vision_forward_flops(cfg)


def cross_attention_forward_flops(cfg: MultimodalConfig) -> float:
    """Forward FLOPs of one cross-attention layer for one sample.

    Q comes from ``text_seq`` text tokens; K/V from ``image_seq`` image
    tokens; scores are text_seq x image_seq and dense (no causal structure
    across modalities).  Because image_seq >> text_seq, this dominates the
    multimodal text stack (Section 3.2.2).
    """
    st, si = cfg.text_seq, cfg.image_seq
    d, f = cfg.text.dim, cfg.text.ffn_hidden
    q_proj = 2.0 * st * d * d
    kv_proj = 2.0 * si * d * (2 * cfg.text.kv_dim)
    scores = 2 * (2.0 * st * si * d)
    out_proj = 2.0 * st * d * d
    ffn = 2.0 * st * d * f * 3
    return q_proj + kv_proj + scores + out_proj + ffn


def self_attention_forward_flops(cfg: MultimodalConfig) -> float:
    """Forward FLOPs of one (frozen) self-attention text layer for one
    sample during multimodal training (short text sequence)."""
    return layer_forward_flops(cfg.text, cfg.text_seq)


def multimodal_layer_step_flops(cfg: MultimodalConfig) -> dict:
    """Forward+backward FLOPs per layer type for one sample.

    Returns a dict with ``self`` (frozen: fwd + input-grad bwd) and
    ``cross`` (trained: fwd + full bwd) entries; the ratio between them is
    the PP imbalance the paper balances with 4:1 grouping.
    """
    self_fwd = self_attention_forward_flops(cfg)
    self_bwd = layer_backward_flops(cfg.text, cfg.text_seq, frozen=True)
    cross_fwd = cross_attention_forward_flops(cfg)
    return {
        "self": self_fwd + self_bwd,
        "cross": 3.0 * cross_fwd,
    }
