"""Model architecture configurations for Llama 3 text and multimodal models.

These are plain descriptions of the architectures the paper trains: the 405B
text model (126 layers after the balanced-PP co-design of Section 3.1.2),
the scaled-down 26/28-layer variants used for the PP experiments in
Section 7.1, and the multimodal model of Section 3.2 (a ViT image encoder
plus cross-attention layers inserted into the frozen text stack).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TextModelConfig:
    """A Llama-style decoder-only transformer.

    Attributes:
        name: Human-readable identifier.
        dim: Hidden size.
        n_layers: Number of transformer layers.
        n_heads: Number of attention (query) heads.
        n_kv_heads: Number of key/value heads (GQA when < n_heads).
        ffn_hidden: SwiGLU FFN inner dimension (per projection).
        vocab_size: Vocabulary size (128K for Llama 3, Section 7.1.2).
        norm_eps: RMSNorm epsilon (kept for completeness).
        rope_theta: RoPE base frequency.
        n_experts: MoE expert count per layer; 0 means dense (every
            Llama 3 production model).  Each expert is a full
            ``ffn_hidden``-wide SwiGLU FFN.
        top_k: Experts each token is routed to (when ``n_experts > 0``).
        capacity_factor: Per-expert buffer headroom over the balanced
            ``tokens * top_k / n_experts`` load; tokens past capacity
            are dropped (see :mod:`repro.train.moe`).
    """

    name: str
    dim: int
    n_layers: int
    n_heads: int
    n_kv_heads: int
    ffn_hidden: int
    vocab_size: int = 128256
    norm_eps: float = 1e-5
    rope_theta: float = 500000.0
    n_experts: int = 0
    top_k: int = 2
    capacity_factor: float = 1.25

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ValueError("dim must be divisible by n_heads")
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be divisible by n_kv_heads")
        for field_name in ("dim", "n_layers", "n_heads", "n_kv_heads",
                           "ffn_hidden", "vocab_size"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.n_experts < 0:
            raise ValueError("n_experts must be >= 0 (0 = dense)")
        if self.n_experts > 0:
            if not 1 <= self.top_k <= self.n_experts:
                raise ValueError("top_k must be in [1, n_experts]")
            if self.capacity_factor <= 0:
                raise ValueError("capacity_factor must be positive")

    @property
    def is_moe(self) -> bool:
        return self.n_experts > 0

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) projection output."""
        return self.n_kv_heads * self.head_dim

    @property
    def gqa_ratio(self) -> int:
        """Query heads per KV head; the factor by which K/V tensors are
        smaller than Q — the reason all-gather CP is cheap (Section 4)."""
        return self.n_heads // self.n_kv_heads

    def with_layers(self, n_layers: int) -> "TextModelConfig":
        """Same architecture with a different layer count (Section 7.1
        scaled-down models; Section 3.1.2 balanced-PP co-design)."""
        return replace(self, n_layers=n_layers,
                       name=f"{self.name}-L{n_layers}")

    def moe_variant(
        self,
        n_experts: int,
        top_k: int = 2,
        capacity_factor: float = 1.25,
    ) -> "TextModelConfig":
        """The MoE counterpart of this architecture: every dense FFN is
        replaced by ``n_experts`` experts of the same ``ffn_hidden``
        width with top-``k`` routing (the `repro step --experts N`
        surface)."""
        if n_experts < 1:
            raise ValueError("n_experts must be >= 1 for an MoE variant")
        return replace(self, n_experts=n_experts, top_k=top_k,
                       capacity_factor=capacity_factor,
                       name=f"{self.name}-moe{n_experts}e")


@dataclass(frozen=True)
class VisionEncoderConfig:
    """A ViT image encoder (Section 3.2).

    Attributes:
        name: Human-readable identifier.
        dim: Hidden size.
        n_layers: Transformer layer count.
        n_heads: Attention heads.
        ffn_hidden: MLP inner dimension.
        image_size: Input resolution in pixels (448 early, 672 later —
            the change that pushed encoder cost from manageable to 33%
            of step latency, Section 3.2.1).
        patch_size: ViT patch edge in pixels.
    """

    name: str
    dim: int
    n_layers: int
    n_heads: int
    ffn_hidden: int
    image_size: int = 448
    patch_size: int = 14

    def __post_init__(self) -> None:
        if self.image_size % self.patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads

    @property
    def num_image_tokens(self) -> int:
        """Output sequence length per image: (size / patch)^2.

        448 px / 14 -> 1024 tokens; 672 px / 14 -> 2304 tokens, matching
        the paper's "1.2K tokens for 448x448 and 3K for 672x672" (which
        include a handful of special tokens we omit).
        """
        side = self.image_size // self.patch_size
        return side * side


@dataclass(frozen=True)
class MultimodalConfig:
    """Llama 3 multimodal model: frozen text stack + trained cross-attention
    layers and image encoder (Section 3.2).

    Attributes:
        text: The (frozen) text model.
        vision: The (trained) image encoder.
        self_per_cross: Self-attention layers per inserted cross-attention
            layer.  The paper settles on a 4:1 layer ratio via co-design
            (Section 3.2.2).
        text_seq: Text sequence length during multimodal pre-training
            (< 200 tokens, Section 3.2.2).
    """

    text: TextModelConfig
    vision: VisionEncoderConfig
    self_per_cross: int = 4
    text_seq: int = 192

    def __post_init__(self) -> None:
        if self.self_per_cross <= 0:
            raise ValueError("self_per_cross must be positive")
        if self.text.n_layers % self.self_per_cross != 0:
            raise ValueError(
                "text layers must divide evenly into self/cross groups"
            )

    @property
    def n_cross_layers(self) -> int:
        return self.text.n_layers // self.self_per_cross

    @property
    def image_seq(self) -> int:
        return self.vision.num_image_tokens


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

#: Llama 3 8B.
LLAMA3_8B = TextModelConfig(
    name="llama3-8b", dim=4096, n_layers=32, n_heads=32, n_kv_heads=8,
    ffn_hidden=14336,
)

#: Llama 3 70B.
LLAMA3_70B = TextModelConfig(
    name="llama3-70b", dim=8192, n_layers=80, n_heads=64, n_kv_heads=8,
    ffn_hidden=28672,
)

#: Llama 3 405B as trained: 126 layers after removing one layer from the
#: first and last PP stages (Section 3.1.2).
LLAMA3_405B = TextModelConfig(
    name="llama3-405b", dim=16384, n_layers=126, n_heads=128, n_kv_heads=8,
    ffn_hidden=53248,
)

#: The original, unbalanced 128-layer configuration.
LLAMA3_405B_UNBALANCED = LLAMA3_405B.with_layers(128)

#: Scaled-down 405B used for the Section 7.1 PP experiments: same model
#: dimensions, 26 layers (balanced) / 28 layers (uniform).
LLAMA3_405B_SCALED_26L = LLAMA3_405B.with_layers(26)
LLAMA3_405B_SCALED_28L = LLAMA3_405B.with_layers(28)

#: The 405B-based multimodal model at each production resolution: one
#: cross-attention layer per 4 self-attention layers (Section 3.2.2's
#: co-designed ratio).  Uses the 128-layer text stack (divisible by 4).
def _multimodal(vision: "VisionEncoderConfig") -> "MultimodalConfig":
    return MultimodalConfig(
        text=LLAMA3_405B_UNBALANCED, vision=vision, self_per_cross=4
    )


#: ViT encoders at the two production resolutions (Section 3.2.1).
VIT_448 = VisionEncoderConfig(
    name="vit-g-448", dim=1792, n_layers=40, n_heads=16, ffn_hidden=7168,
    image_size=448,
)
VIT_672 = VisionEncoderConfig(
    name="vit-g-672", dim=1792, n_layers=48, n_heads=16, ffn_hidden=7168,
    image_size=672,
)

LLAMA3_MULTIMODAL_448 = _multimodal(VIT_448)
LLAMA3_MULTIMODAL_672 = _multimodal(VIT_672)
