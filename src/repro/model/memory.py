"""Per-layer memory accounting: parameters, gradients, optimizer state,
and saved activations.

Activation accounting follows the breakdown popularised by Korthikanti et
al. ("Reducing Activation Recomputation in Large Transformer Models"),
adapted to Llama's SwiGLU FFN and flash attention (no materialised
``seq x seq`` score matrix; only the log-sum-exp statistics are saved).
With tensor + sequence parallelism all per-token activations divide by
``tp``; context parallelism divides the tokens a rank holds by ``cp``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import TextModelConfig
from repro.model.flops import (
    embedding_params,
    layer_params,
    model_params,
    output_head_params,
)

BF16_BYTES = 2
FP32_BYTES = 4
GIB = 1024.0**3


@dataclass(frozen=True)
class ActivationBreakdown:
    """Bytes saved for backward by one layer, for one micro-batch sequence.

    All fields are totals across the sequence, already divided by the
    tensor-parallel degree (sequence parallelism shards every term).
    """

    attn_inputs: float      # RMSNorm input + Q/K/V projections' input
    qkv: float              # Q, K, V tensors
    attn_output: float      # context tensor feeding the output projection
    softmax_stats: float    # flash-attention log-sum-exp (FP32 per head)
    ffn_inputs: float       # RMSNorm input to the FFN
    ffn_hidden: float       # gate and up projections (the SwiGLU product is
                            # recomputed elementwise in backward, one of the
                            # Section 6.3-style memory optimizations)

    @property
    def total(self) -> float:
        return (
            self.attn_inputs + self.qkv + self.attn_output
            + self.softmax_stats + self.ffn_inputs + self.ffn_hidden
        )


def activation_bytes_per_layer(
    cfg: TextModelConfig,
    seq: int,
    mbs: int = 1,
    tp: int = 1,
    cp: int = 1,
    dtype_bytes: int = BF16_BYTES,
) -> ActivationBreakdown:
    """Saved-activation bytes for one layer and one micro-batch.

    Args:
        cfg: Model architecture.
        seq: Full sequence length of the batch.
        mbs: Micro-batch size (sequences per micro-batch).
        tp: Tensor-parallel degree (with sequence parallelism).
        cp: Context-parallel degree (shards the sequence dimension).
        dtype_bytes: Activation element size (BF16 by default).
    """
    if seq <= 0 or mbs <= 0 or tp <= 0 or cp <= 0:
        raise ValueError("seq, mbs, tp, cp must all be positive")
    tokens = seq * mbs / cp / tp
    d, kv = cfg.dim, cfg.kv_dim
    return ActivationBreakdown(
        attn_inputs=dtype_bytes * tokens * d,
        qkv=dtype_bytes * tokens * (d + 2 * kv),
        attn_output=dtype_bytes * tokens * d,
        softmax_stats=FP32_BYTES * tokens * cfg.n_heads,
        ffn_inputs=dtype_bytes * tokens * d,
        ffn_hidden=dtype_bytes * tokens * 2 * cfg.ffn_hidden,
    )


def layer_param_bytes(
    cfg: TextModelConfig, tp: int = 1, dtype_bytes: int = BF16_BYTES
) -> float:
    """Bytes of one layer's weights on one TP rank."""
    return dtype_bytes * layer_params(cfg) / tp


def layer_grad_bytes(
    cfg: TextModelConfig, tp: int = 1, dtype_bytes: int = FP32_BYTES
) -> float:
    """Bytes of one layer's unsharded gradient buffer on one TP rank.

    FP32 by default: the paper accumulates gradients in FP32 across PP
    micro-batches (Section 6.2).
    """
    return dtype_bytes * layer_params(cfg) / tp


def embedding_bytes(
    cfg: TextModelConfig, tp: int = 1, dtype_bytes: int = BF16_BYTES
) -> float:
    """Bytes of the input embedding on one TP rank (row-sharded)."""
    return dtype_bytes * embedding_params(cfg) / tp


def output_head_bytes(
    cfg: TextModelConfig, tp: int = 1, dtype_bytes: int = BF16_BYTES
) -> float:
    """Bytes of the output head on one TP rank (column-sharded)."""
    return dtype_bytes * output_head_params(cfg) / tp


def optimizer_state_bytes_per_param() -> int:
    """Adam with an FP32 master copy: master + exp_avg + exp_avg_sq."""
    return 3 * FP32_BYTES


def full_model_bytes(cfg: TextModelConfig, dtype_bytes: int = BF16_BYTES) -> float:
    """Bytes of the whole unsharded model in the given dtype."""
    return dtype_bytes * model_params(cfg)


def training_state_bytes(cfg: TextModelConfig) -> float:
    """Global checkpoint payload: BF16 weights plus full optimizer state.

    This is what a run must persist to resume exactly — the quantity the
    checkpoint policies in :mod:`repro.resilience` price against storage
    bandwidth.  Activations and gradients are excluded: both are
    recomputed/re-reduced after a restart.
    """
    per_param = BF16_BYTES + optimizer_state_bytes_per_param()
    return per_param * model_params(cfg)
