"""Cluster topology: nodes of GPUs joined by a hierarchical network.

The Llama 3 cluster is hierarchical (Section 5.2): NVLink inside an 8-GPU
host is the innermost, highest-bandwidth level; RoCE across hosts (and, in a
real datacenter, across pods) forms the slower outer levels.  The parallelism
ordering [TP, CP, PP, DP] exists precisely to put chatty dimensions on inner
levels.  :class:`ClusterSpec` answers the one question cost models need:
*which link class connects a given set of global ranks?*

The node → rack → pod grouping is also the cluster's **failure topology**
(Section 6): a leaf switch or rack PDU takes out every node in its rack at
once, and pod-level events (spine maintenance, power domain trips) take out
every rack in a pod.  :mod:`repro.resilience` consumes ``rack_of``/``pod_of``
to model correlated fail-stop domains and to decide which checkpoint tiers
survive which failures (a node-local checkpoint dies with its node; a
peer-replica placed in the same rack dies with the rack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hardware.gpu import GpuSpec, H100_HBM3
from repro.hardware.network import LinkSpec, NVLINK_H100, ROCE_400G


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of identical nodes.

    Attributes:
        gpu: The accelerator installed in every slot.
        gpus_per_node: GPUs sharing the intra-node link (8 for Grand Teton).
        num_nodes: Number of nodes.
        intra_node_link: Link class inside a node (NVLink).
        inter_node_link: Link class between nodes (RoCE).
        oversubscription: Bandwidth-reduction factor applied to inter-node
            traffic that crosses the spine (Section 8.2 recommends
            oversubscribed upper tiers).  1.0 means full bisection.
        storage_bandwidth_per_node: Sustained bytes/s one node can push
            to (or pull from) the checkpoint store.  Defaults to 8 GB/s,
            a distributed-blob-store figure well below the 400G NIC so
            storage — not the network — bounds checkpoint time.
        local_ssd_bandwidth_per_node: Sustained bytes/s one node reads or
            writes against its own NVMe scratch (the node-local
            checkpoint tier).  Defaults to 24 GB/s (a small RAID of
            datacenter NVMe) — faster than the remote store, slower than
            streaming to a peer's HBM over the NIC.
        nodes_per_rack: Nodes sharing a rack (one leaf switch / PDU
            failure domain).
        racks_per_pod: Racks sharing a pod (one spine / power failure
            domain).
    """

    gpu: GpuSpec = H100_HBM3
    gpus_per_node: int = 8
    num_nodes: int = 2048
    intra_node_link: LinkSpec = NVLINK_H100
    inter_node_link: LinkSpec = ROCE_400G
    oversubscription: float = 1.0
    storage_bandwidth_per_node: float = 8e9
    local_ssd_bandwidth_per_node: float = 24e9
    nodes_per_rack: int = 8
    racks_per_pod: int = 32

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0 or self.num_nodes <= 0:
            raise ValueError("gpus_per_node and num_nodes must be positive")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription factor must be >= 1.0")
        if self.storage_bandwidth_per_node <= 0:
            raise ValueError("storage_bandwidth_per_node must be positive")
        if self.local_ssd_bandwidth_per_node <= 0:
            raise ValueError("local_ssd_bandwidth_per_node must be positive")
        if self.nodes_per_rack <= 0 or self.racks_per_pod <= 0:
            raise ValueError("nodes_per_rack and racks_per_pod must be "
                             "positive")

    @property
    def num_gpus(self) -> int:
        """Total GPUs in the cluster."""
        return self.gpus_per_node * self.num_nodes

    @property
    def num_racks(self) -> int:
        """Racks in the cluster (the last one may be partially filled)."""
        return -(-self.num_nodes // self.nodes_per_rack)

    @property
    def num_pods(self) -> int:
        """Pods in the cluster (the last one may be partially filled)."""
        return -(-self.num_racks // self.racks_per_pod)

    def node_of(self, rank: int) -> int:
        """Node index hosting a global rank."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def rack_of(self, node: int) -> int:
        """Rack index hosting a node (the leaf failure domain)."""
        self._check_node(node)
        return node // self.nodes_per_rack

    def pod_of(self, node: int) -> int:
        """Pod index hosting a node (the spine failure domain)."""
        return self.rack_of(node) // self.racks_per_pod

    def nodes_in_rack(self, rack: int) -> int:
        """Nodes actually installed in a rack (the tail rack is ragged)."""
        if not 0 <= rack < self.num_racks:
            raise ValueError(
                f"rack {rack} out of range for cluster of "
                f"{self.num_racks} racks")
        first = rack * self.nodes_per_rack
        return min(self.nodes_per_rack, self.num_nodes - first)

    def local_rank(self, rank: int) -> int:
        """Slot index of a global rank within its node."""
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def link_between(self, rank_a: int, rank_b: int) -> LinkSpec:
        """Link class connecting two global ranks."""
        if self.node_of(rank_a) == self.node_of(rank_b):
            return self.intra_node_link
        return self.inter_node_link

    def group_link(self, ranks: Sequence[int]) -> LinkSpec:
        """Slowest link class inside a communication group.

        Ring-style collectives run at the speed of the slowest hop, so a
        group that spans nodes is charged the inter-node link even when
        some of its members share a host.
        """
        if len(ranks) < 1:
            raise ValueError("group must contain at least one rank")
        nodes = {self.node_of(r) for r in ranks}
        if len(nodes) == 1:
            return self.intra_node_link
        return self.inter_node_link

    def inter_node_bandwidth(self) -> float:
        """Effective per-rank inter-node bandwidth (bytes/s), after
        oversubscription."""
        return self.inter_node_link.bandwidth / self.oversubscription

    def checkpoint_bandwidth_per_node(self) -> float:
        """Bytes/s one node sustains against the checkpoint store.

        Checkpoint traffic rides the scale-out NIC to the store, so it is
        bounded by whichever is slower: the store itself or the
        (oversubscribed) inter-node link.
        """
        return min(self.storage_bandwidth_per_node,
                   self.inter_node_bandwidth())

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_gpus:
            raise ValueError(
                f"rank {rank} out of range for cluster of {self.num_gpus} GPUs"
            )

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} out of range for cluster of "
                f"{self.num_nodes} nodes")


def grand_teton(num_gpus: int, gpu: GpuSpec = H100_HBM3) -> ClusterSpec:
    """A Grand-Teton-style cluster with the requested total GPU count."""
    if num_gpus % 8 != 0:
        raise ValueError("Grand Teton nodes hold 8 GPUs; num_gpus must be a multiple of 8")
    return ClusterSpec(gpu=gpu, gpus_per_node=8, num_nodes=num_gpus // 8)


#: The production Llama 3 405B cluster: 16,384 H100s in 2,048 nodes.
GRAND_TETON_16K = grand_teton(16384)
