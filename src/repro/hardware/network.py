"""Interconnect link specifications and point-to-point transfer cost model.

Two link classes matter for the paper's cluster: NVLink within a Grand Teton
node (8 GPUs, ~450 GB/s per direction per GPU) and RDMA-over-Converged-
Ethernet (RoCE) across nodes, which Section 5.1 quotes at ~50 GB/s per rank.

Effective bandwidth ramps with message size: tiny messages are dominated by
fixed latency, large ones approach the wire rate.  We use the standard
half-bandwidth-point model: ``eff_bw(s) = peak * s / (s + s_half)`` where
``s_half = peak * latency`` is the message size at which latency and
serialisation contribute equally.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """One interconnect class.

    Attributes:
        name: Human-readable name.
        bandwidth_gbps: Peak unidirectional bandwidth per rank in GB/s.
        latency_us: One-way base latency in microseconds (includes software
            stack and switch hops at this topology level).
    """

    name: str
    bandwidth_gbps: float
    latency_us: float

    @property
    def bandwidth(self) -> float:
        """Peak bandwidth in bytes/s."""
        return self.bandwidth_gbps * 1e9

    @property
    def latency(self) -> float:
        """Base latency in seconds."""
        return self.latency_us * 1e-6

    @property
    def half_bandwidth_size(self) -> float:
        """Message size (bytes) at which effective bandwidth is half of peak."""
        return self.bandwidth * self.latency


#: Intra-node NVLink on H100 (NVLink 4, ~450 GB/s per direction per GPU).
NVLINK_H100 = LinkSpec(name="NVLink4", bandwidth_gbps=450.0, latency_us=3.0)

#: Inter-node RoCE fabric as provisioned for Llama 3 (~50 GB/s per rank).
ROCE_400G = LinkSpec(name="RoCE-400G", bandwidth_gbps=50.0, latency_us=15.0)


def effective_bandwidth(link: LinkSpec, message_bytes: float) -> float:
    """Achieved bandwidth (bytes/s) for one message of the given size."""
    if message_bytes <= 0:
        raise ValueError("message_bytes must be positive")
    size = float(message_bytes)
    return link.bandwidth * size / (size + link.half_bandwidth_size)


def transfer_time(link: LinkSpec, message_bytes: float) -> float:
    """Seconds to move one message across the link (latency + serialisation)."""
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    if message_bytes == 0:
        return link.latency
    return link.latency + message_bytes / link.bandwidth
