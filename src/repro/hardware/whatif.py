"""Quantified versions of the Section 8 hardware recommendations.

The paper closes with qualitative advice for future training hardware;
each function here turns one recommendation into a measurable experiment
on our substrates:

* :func:`hbm_capacity_sweep` — "higher HBM capacity can improve
  performance": sweep the HBM size, pick the best feasible (tp, pp) at
  each point, and watch throughput step up when lower TP degrees become
  feasible (the 2K-GPU tp=8 -> tp=4 ~10% story of Section 8.1).
* :func:`dvfs_jitter_inflation` — "minimize performance variations and
  make DVFS deterministic": under fine-grain synchronisation the cluster
  runs at the per-step *max* across accelerators, so i.i.d. transient
  slowdowns inflate elapsed time ~log(world)-style, while the same
  average slowdown applied deterministically costs only its mean.
* :func:`oversubscription_sweep` — "optimize network hierarchy": spine
  oversubscription divides inter-node bandwidth; throughput degrades
  gracefully while inter-node traffic is hideable or small, which is what
  makes oversubscribed upper tiers cost-effective.
* :func:`perf_per_watt` — "prioritize power efficiency": achieved
  TFLOPs per watt of board power, the paper's capacity-constrained metric.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from typing import TYPE_CHECKING

from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig

if TYPE_CHECKING:  # typing only — avoids a package import cycle
    from repro.parallel.config import JobConfig, ParallelConfig


@dataclass(frozen=True)
class CapacityPoint:
    """Best feasible configuration at one HBM capacity."""

    capacity_gb: float
    best_tp: Optional[int]
    best_pp: Optional[int]
    tflops_per_gpu: float
    peak_memory_gb: float


def hbm_capacity_sweep(
    model: TextModelConfig,
    job: "JobConfig",
    cluster: ClusterSpec,
    capacities_gb: Sequence[float],
    tp_candidates: Sequence[int] = (2, 4, 8),
    pp_candidates: Sequence[int] = (2, 4, 8),
    v: Optional[int] = None,
    headroom: float = 0.9,
) -> List[CapacityPoint]:
    """For each HBM capacity, the best feasible (tp, pp) by TFLOPs.

    A configuration is feasible when its simulated peak memory fits in
    ``capacity * headroom``.  Larger HBM admits smaller TP degrees (less
    exposed TP communication) — the Section 8.1 effect.
    """
    from repro.parallel.config import ParallelConfig, ZeroStage
    from repro.train.step import simulate_step

    if not capacities_gb:
        raise ValueError("capacities_gb must name at least one capacity")
    points = []
    for cap in capacities_gb:
        best: Optional[Tuple[float, int, int, float]] = None
        for tp in tp_candidates:
            if tp > cluster.gpus_per_node:
                continue
            for pp in pp_candidates:
                dp = job.ngpu // (tp * pp)
                if dp < 1 or tp * pp * dp != job.ngpu:
                    continue
                if job.gbs % dp != 0:
                    continue
                par = ParallelConfig(tp=tp, cp=1, pp=pp, dp=dp,
                                     zero=ZeroStage.ZERO_1)
                try:
                    rep = simulate_step(model, par, job, cluster, v=v)
                except ValueError:
                    continue
                if rep.max_peak_memory_gb > cap * headroom:
                    continue
                key = (rep.tflops_per_gpu, tp, pp, rep.max_peak_memory_gb)
                if best is None or key[0] > best[0]:
                    best = key
        if best is None:
            points.append(CapacityPoint(cap, None, None, 0.0, 0.0))
        else:
            points.append(CapacityPoint(cap, best[1], best[2], best[0],
                                        best[3]))
    return points


@dataclass(frozen=True)
class JitterReport:
    """Elapsed-time inflation from per-accelerator performance variation."""

    world_size: int
    baseline_seconds: float
    deterministic_seconds: float
    jitter_seconds: float

    @property
    def deterministic_inflation(self) -> float:
        return self.deterministic_seconds / self.baseline_seconds - 1.0

    @property
    def jitter_inflation(self) -> float:
        return self.jitter_seconds / self.baseline_seconds - 1.0


def dvfs_jitter_inflation(
    world_size: int,
    sync_points: int = 1000,
    op_seconds: float = 1e-3,
    slowdown_mean: float = 0.02,
    rng: Optional[np.random.Generator] = None,
) -> JitterReport:
    """Elapsed time of a synchronous workload under DVFS variation.

    Every sync point (a collective) runs at the pace of the slowest of
    ``world_size`` accelerators.  *Deterministic* slowdown: every op on
    every rank is uniformly ``slowdown_mean`` slower — elapsed inflates by
    exactly that mean.  *Transient jitter*: each rank's op is slowed by an
    exponential with the same mean, at different times on different ranks
    — the per-sync max makes the cluster pay the tail, not the mean.
    """
    if world_size < 1 or sync_points < 1:
        raise ValueError("world_size and sync_points must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)
    baseline = sync_points * op_seconds
    deterministic = sync_points * op_seconds * (1.0 + slowdown_mean)
    jitter_draws = rng.exponential(
        slowdown_mean * op_seconds, size=(sync_points, world_size)
    )
    jitter = float(np.sum(op_seconds + jitter_draws.max(axis=1)))
    return JitterReport(
        world_size=world_size,
        baseline_seconds=baseline,
        deterministic_seconds=deterministic,
        jitter_seconds=jitter,
    )


def oversubscription_sweep(
    model: TextModelConfig,
    parallel: "ParallelConfig",
    job: "JobConfig",
    cluster: ClusterSpec,
    factors: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    v: Optional[int] = None,
) -> Dict[float, float]:
    """Achieved TFLOPs/GPU as the spine oversubscription factor grows.

    Oversubscription divides the effective *inter-node* bandwidth that DP
    and PP traffic sees; intra-node NVLink (TP) is unaffected, which is
    why mild oversubscription is cheap under the [TP, CP, PP, DP]
    placement.
    """
    from repro.hardware.network import LinkSpec
    from repro.train.step import simulate_step

    out = {}
    for f in factors:
        if f < 1.0:
            raise ValueError("oversubscription factors must be >= 1.0")
        link = cluster.inter_node_link
        derated = replace(
            cluster,
            oversubscription=f,
            inter_node_link=LinkSpec(
                name=f"{link.name}/{f:g}x-oversub",
                bandwidth_gbps=link.bandwidth_gbps / f,
                latency_us=link.latency_us,
            ),
        )
        rep = simulate_step(model, parallel, job, derated, v=v)
        out[f] = rep.tflops_per_gpu
    return out


def perf_per_watt(tflops_per_gpu: float, cluster: ClusterSpec) -> float:
    """Achieved TFLOPs per watt of accelerator board power — the metric
    the paper argues matters most for 100K-GPU, power-capped clusters."""
    if tflops_per_gpu < 0:
        raise ValueError("tflops_per_gpu must be non-negative")
    return tflops_per_gpu / cluster.gpu.tdp_watts
