"""GPU accelerator specifications and a roofline compute-time model.

The paper trains on NVIDIA H100 GPUs (700 W TDP, 80 GB HBM3) and also runs
context-parallel scalability studies on an HBM2e variant (Section 7.2).  We
capture each part as a :class:`GpuSpec` and provide a roofline-style model
for the time of a dense operation: an op with ``flops`` floating point
operations and ``bytes`` of memory traffic runs at

    time = max(flops / (peak_flops * eff), bytes / hbm_bandwidth)

where ``eff`` is a shape-dependent efficiency in (0, 1] that penalises small
GEMM dimensions — the effect Section 8.1 warns about ("parallelisms reduce
the dimension of GEMMs").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """Fixed characteristics of one accelerator.

    Attributes:
        name: Human-readable part name.
        peak_bf16_tflops: Dense BF16 tensor-core throughput in TFLOP/s.
        hbm_capacity_gb: HBM capacity in GiB.
        hbm_bandwidth_gbps: HBM bandwidth in GB/s.
        tdp_watts: Board power limit in watts.
        kernel_launch_us: Fixed host-side overhead charged per kernel, in
            microseconds.  Models the CPU-bound regime of Section 8.1.
    """

    name: str
    peak_bf16_tflops: float
    hbm_capacity_gb: float
    hbm_bandwidth_gbps: float
    tdp_watts: float = 700.0
    kernel_launch_us: float = 5.0

    @property
    def peak_flops(self) -> float:
        """Peak BF16 throughput in FLOP/s."""
        return self.peak_bf16_tflops * 1e12

    @property
    def hbm_bandwidth(self) -> float:
        """HBM bandwidth in bytes/s."""
        return self.hbm_bandwidth_gbps * 1e9


#: Production Llama 3 training part (Section 7.3): H100 SXM, 80 GB HBM3.
H100_HBM3 = GpuSpec(
    name="H100-HBM3",
    peak_bf16_tflops=989.0,
    hbm_capacity_gb=80.0,
    hbm_bandwidth_gbps=3350.0,
    tdp_watts=700.0,
)

#: Lower-memory-bandwidth H100 used for the CP scalability study (Section 7.2).
H100_HBM2E = GpuSpec(
    name="H100-HBM2e",
    peak_bf16_tflops=989.0,
    hbm_capacity_gb=80.0,
    hbm_bandwidth_gbps=2000.0,
    tdp_watts=700.0,
)

#: H100 successor with the same compute but 141 GB HBM3e — the "higher HBM
#: capacity" direction Section 8.1 recommends, with public specs.
H200 = GpuSpec(
    name="H200",
    peak_bf16_tflops=989.0,
    hbm_capacity_gb=141.0,
    hbm_bandwidth_gbps=4800.0,
    tdp_watts=700.0,
)

#: Next-generation part (dense BF16, public figures): compute grows faster
#: than interconnect — the regime where the Section 8 recommendations about
#: arithmetic intensity and network co-design start to bind hard.
B200 = GpuSpec(
    name="B200",
    peak_bf16_tflops=2250.0,
    hbm_capacity_gb=192.0,
    hbm_bandwidth_gbps=8000.0,
    tdp_watts=1000.0,
)


def relative_compute_scale(gpu: GpuSpec, reference: GpuSpec = H100_HBM3) -> float:
    """Compute-time multiplier of ``gpu`` relative to ``reference``.

    A slower part gets a multiplier > 1 (its ops take longer); a faster
    part < 1.  This is what heterogeneous pipeline stages
    (:mod:`repro.pp.heterogeneity`) attach to a
    :class:`~repro.pp.analysis.ScheduleShape` as per-stage compute scale.
    """
    return reference.peak_bf16_tflops / gpu.peak_bf16_tflops


def gemm_efficiency(m: int, n: int, k: int) -> float:
    """Shape-dependent fraction of peak a GEMM of size (m, n, k) achieves.

    Isolated large GEMM kernels reach ~75-80% of H100 peak, but sustained
    end-to-end training GEMM throughput is lower: wave quantisation, CPU
    launch gaps between back-to-back kernels, and the 700 W power cap all
    shave the average.  The saturation constant is calibrated so the
    end-to-end step simulation reproduces the paper's ~400 TFLOPs/GPU for
    the 405B 8K-sequence configuration; small dimensions fall off further
    because tiles underfill the SMs (the Section 8.1 concern).
    """
    if min(m, n, k) <= 0:
        raise ValueError(f"GEMM dims must be positive, got ({m}, {n}, {k})")
    saturation = 0.58
    # Each dimension contributes d / (d + d_half); d_half is the size at
    # which that dimension alone halves throughput.
    d_half = 96.0
    shape_factor = 1.0
    for dim in (m, n, k):
        shape_factor *= dim / (dim + d_half)
    return saturation * shape_factor


def attainable_tflops(gpu: GpuSpec, flops: float, bytes_moved: float) -> float:
    """Roofline-attainable TFLOP/s for an op with the given traffic."""
    if flops <= 0:
        raise ValueError("flops must be positive")
    compute_time = flops / gpu.peak_flops
    memory_time = bytes_moved / gpu.hbm_bandwidth
    return flops / max(compute_time, memory_time) / 1e12


def gemm_time(
    gpu: GpuSpec,
    m: int,
    n: int,
    k: int,
    dtype_bytes: int = 2,
    include_launch: bool = True,
) -> float:
    """Seconds to run a single (m x k) @ (k x n) GEMM on ``gpu``.

    Combines the shape-efficiency curve with a memory roofline over the
    three operand tensors, plus a fixed kernel-launch overhead.
    """
    flops = 2.0 * m * n * k
    bytes_moved = dtype_bytes * (m * k + k * n + m * n)
    compute_time = flops / (gpu.peak_flops * gemm_efficiency(m, n, k))
    memory_time = bytes_moved / gpu.hbm_bandwidth
    launch = gpu.kernel_launch_us * 1e-6 if include_launch else 0.0
    return max(compute_time, memory_time) + launch
