"""Hardware specifications: GPUs, links, and cluster topology.

This package models the fixed characteristics of the training hardware the
paper used (H100 GPUs in Grand Teton nodes, NVLink intra-node, RoCE
inter-node) as plain data objects plus a small number of derived quantities
(roofline-attainable FLOPs, effective bandwidth at a message size).  The
discrete-event simulator in :mod:`repro.sim` consumes these specs; nothing
here depends on the rest of the library.
"""

from repro.hardware.gpu import (
    GpuSpec,
    H100_HBM3,
    H100_HBM2E,
    H200,
    B200,
    gemm_time,
    gemm_efficiency,
    attainable_tflops,
)
from repro.hardware.network import (
    LinkSpec,
    NVLINK_H100,
    ROCE_400G,
    effective_bandwidth,
    transfer_time,
)
from repro.hardware.cluster import ClusterSpec, GRAND_TETON_16K, grand_teton

from repro.hardware.whatif import (
    CapacityPoint,
    JitterReport,
    hbm_capacity_sweep,
    dvfs_jitter_inflation,
    oversubscription_sweep,
    perf_per_watt,
)

__all__ = [
    "CapacityPoint",
    "JitterReport",
    "hbm_capacity_sweep",
    "dvfs_jitter_inflation",
    "oversubscription_sweep",
    "perf_per_watt",
    "GpuSpec",
    "H100_HBM3",
    "H100_HBM2E",
    "H200",
    "B200",
    "gemm_time",
    "gemm_efficiency",
    "attainable_tflops",
    "LinkSpec",
    "NVLINK_H100",
    "ROCE_400G",
    "effective_bandwidth",
    "transfer_time",
    "ClusterSpec",
    "GRAND_TETON_16K",
    "grand_teton",
]
