"""Critical-path extraction over an executed step graph.

Answers the Section 6.1 debugging question "which op chain bounds the
step, and by how much": starting from the makespan-defining op, walk
backward through the edge that *actually* gated each op's start — a
dependency edge whose producer finished exactly when the op started, or
the previous op on the same (rank, stream) — until reaching an op that
started at t=0.  The result is a chronological chain of
:class:`PathEntry` (op, rank, stream, duration, slack) whose durations
tile the timeline exactly.

Exactness is not approximate: the simulator computes every start time as
``max(stream_free, dep_ends..., 0)`` and ``max`` returns one of its
arguments bit-for-bit, so the binding predecessor's ``end`` equals the
op's ``start`` in exact float comparison.  The chain therefore satisfies

* ``entries[0].start == 0.0``,
* ``entries[i+1].start == entries[i].end`` for every link, and
* ``entries[-1].end == makespan`` (the ``simulate_step`` step time),

which is the ``critical-path-makespan`` invariant enforced by
:func:`repro.verify.invariants.run_step_invariants`.  (Summing durations
with float ``+`` would not telescope exactly; contiguity is the exact
formulation.)

Every executed op additionally gets a **slack**: how much later it could
have finished without moving the makespan, computed by a latest-finish
backward pass over the combined precedence graph (dependency edges plus
per-(rank, stream) serialization).  Path ops have slack ~0; ops with
small positive slack are the near-critical set that becomes critical
after small perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.sim.engine import TraceEvent
from repro.train.lowering import StepGraph

#: Slack at or below this is reported as critical (float dust from the
#: latest-finish arithmetic; the path walk itself is exact).
SLACK_EPS = 1e-9


@dataclass(frozen=True)
class PathEntry:
    """One op on (or near) the critical path.

    Attributes:
        uid: Step-graph op uid.
        name: Trace event name.
        kind: :class:`~repro.train.lowering.StepOpKind` value string.
        rank: Executor (pipeline) rank.
        stream: Simulator stream the op occupied.
        start: Event start in seconds.
        end: Event end in seconds.
        slack: Seconds the op could slip without moving the makespan.
        via: How the op's start was bound — ``"origin"`` (t=0),
            ``"dep"`` (a dependency edge), ``"stream"`` (the previous op
            on its stream), or ``"gap"`` (no binding found: an external
            release floor delayed it, so the chain is inexact).
    """

    uid: int
    name: str
    kind: str
    rank: int
    stream: str
    start: float
    end: float
    slack: float
    via: str

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "uid": self.uid,
            "name": self.name,
            "kind": self.kind,
            "rank": self.rank,
            "stream": self.stream,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "slack": self.slack,
            "via": self.via,
        }


@dataclass(frozen=True)
class CriticalPathReport:
    """Outcome of one critical-path extraction.

    ``entries`` is the chain in chronological order; ``exact`` certifies
    the makespan invariant (contiguous links, ``start == 0`` origin,
    terminal ``end == makespan``).  ``slack_by_uid`` covers every
    executed op; ``near_critical`` is the lowest-slack off-path subset.
    """

    entries: Tuple[PathEntry, ...]
    makespan_seconds: float
    exact: bool
    slack_by_uid: Mapping[int, float]
    near_critical: Tuple[PathEntry, ...] = ()

    @property
    def n_ops(self) -> int:
        return len(self.entries)

    @property
    def path_seconds(self) -> float:
        """Span of the chain — equals the makespan when ``exact``."""
        if not self.entries:
            return 0.0
        return self.entries[-1].end - self.entries[0].start

    @property
    def seconds_by_stream(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for e in self.entries:
            out[e.stream] = out.get(e.stream, 0.0) + e.duration
        return dict(sorted(out.items()))

    @property
    def seconds_by_kind(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for e in self.entries:
            out[e.kind] = out.get(e.kind, 0.0) + e.duration
        return dict(sorted(out.items()))

    @property
    def share_by_stream(self) -> Dict[str, float]:
        """Critical-path share of the makespan per stream — the number
        the planner and goodput reports cite ("61% compute-bound")."""
        if self.makespan_seconds <= 0:
            return {s: 0.0 for s in self.seconds_by_stream}
        return {s: v / self.makespan_seconds
                for s, v in self.seconds_by_stream.items()}

    def remap_ranks(self, rank_map: Mapping[int, int]) -> "CriticalPathReport":
        """Entries with ranks rewritten (executor PP rank -> mesh rank)."""
        return replace(
            self,
            entries=tuple(
                replace(e, rank=rank_map.get(e.rank, e.rank))
                for e in self.entries),
            near_critical=tuple(
                replace(e, rank=rank_map.get(e.rank, e.rank))
                for e in self.near_critical),
        )

    def to_dict(self, top: Optional[int] = 10) -> dict:
        """JSON-able summary; ``top`` bounds the per-op lists (the full
        chain stays available on :attr:`entries`)."""
        longest = sorted(
            self.entries, key=lambda e: (-e.duration, e.start, e.uid))
        if top is not None:
            longest = longest[:top]
        near = list(self.near_critical if top is None
                    else self.near_critical[:top])
        return {
            "makespan_seconds": self.makespan_seconds,
            "path_seconds": self.path_seconds,
            "exact": self.exact,
            "n_ops": self.n_ops,
            "seconds_by_stream": self.seconds_by_stream,
            "share_by_stream": self.share_by_stream,
            "seconds_by_kind": self.seconds_by_kind,
            "top_entries": [e.to_dict() for e in longest],
            "near_critical": [e.to_dict() for e in near],
        }


def _stream_predecessors(
    executed: Dict[int, TraceEvent],
    by_uid: Dict[int, object],
) -> Dict[int, int]:
    """uid -> uid of the previous op on the same (rank, stream)."""
    lanes: Dict[Tuple[int, str], List[int]] = {}
    for uid, event in executed.items():
        lanes.setdefault((event.rank, event.stream), []).append(uid)
    pred: Dict[int, int] = {}
    for uids in lanes.values():
        uids.sort(key=lambda u: (executed[u].start, executed[u].end, u))
        for prev, cur in zip(uids, uids[1:]):
            pred[cur] = prev
    return pred


def _compute_slack(
    executed: Dict[int, TraceEvent],
    by_uid: Dict[int, object],
    stream_pred: Dict[int, int],
    makespan: float,
) -> Dict[int, float]:
    """Latest-finish backward pass over dep + stream-order edges."""
    successors: Dict[int, List[int]] = {uid: [] for uid in executed}
    indegree: Dict[int, int] = {uid: 0 for uid in executed}

    def add_edge(src: int, dst: int) -> None:
        successors[src].append(dst)
        indegree[dst] += 1

    for uid in executed:
        for dep in by_uid[uid].deps:
            if dep in executed:
                add_edge(dep, uid)
        prev = stream_pred.get(uid)
        if prev is not None:
            add_edge(prev, uid)

    # Kahn topological order (robust to zero-duration ties).
    order: List[int] = [u for u, d in indegree.items() if d == 0]
    head = 0
    while head < len(order):
        for succ in successors[order[head]]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                order.append(succ)
        head += 1

    # A tampered timeline can make lane order contradict dep edges,
    # leaving a cycle that Kahn's order never reaches; those nodes fall
    # back to the makespan default rather than crashing — the chain
    # walk still flags the inconsistency.
    latest_finish: Dict[int, float] = {}
    for uid in reversed(order):
        succs = successors[uid]
        if not succs:
            latest_finish[uid] = makespan
        else:
            latest_finish[uid] = min(
                latest_finish.get(s, makespan)
                - (executed[s].end - executed[s].start)
                for s in succs)
    return {
        uid: max(0.0, latest_finish.get(uid, makespan) - executed[uid].end)
        for uid in executed
    }


def extract_critical_path(
    graph: StepGraph,
    events: Dict[int, TraceEvent],
    makespan: Optional[float] = None,
    near_k: int = 25,
) -> CriticalPathReport:
    """Extract the makespan-bounding op chain of one executed step graph.

    Args:
        graph: The lowered (possibly fault-perturbed) graph that ran.
        events: Executed event per op uid —
            ``StepReport.execution.events``.
        makespan: Step time to pin the chain against; defaults to the
            latest event end (exactly ``simulate_step``'s step_seconds).
        near_k: How many lowest-slack off-path ops to surface.

    The walk never raises on an inexact timeline (e.g. one executed with
    external per-rank release times); it flags it via
    :attr:`CriticalPathReport.exact` so callers — the
    ``critical-path-makespan`` invariant — can decide.
    """
    by_uid = graph.by_uid()
    executed = {uid: ev for uid, ev in events.items() if uid in by_uid}
    if not executed:
        return CriticalPathReport(
            entries=(), makespan_seconds=makespan or 0.0,
            exact=not makespan, slack_by_uid={})
    observed = max(e.end for e in executed.values())
    if makespan is None:
        makespan = observed

    stream_pred = _stream_predecessors(executed, by_uid)
    slack = _compute_slack(executed, by_uid, stream_pred, makespan)

    # Terminal op: the one defining the observed makespan (deterministic
    # tie-break by start then uid).
    terminal = max(executed, key=lambda u: (executed[u].end,
                                            executed[u].start, u))

    chain: List[Tuple[int, str]] = []
    seen = set()
    uid: Optional[int] = terminal
    while uid is not None and uid not in seen:
        seen.add(uid)
        event = executed[uid]
        binding: Optional[int] = None
        via = "origin"
        if event.start != 0.0:
            for dep in by_uid[uid].deps:
                dep_event = executed.get(dep)
                if dep_event is not None and dep_event.end == event.start:
                    binding, via = dep, "dep"
                    break
            if binding is None:
                prev = stream_pred.get(uid)
                if prev is not None and executed[prev].end == event.start:
                    binding, via = prev, "stream"
                else:
                    via = "gap"  # external release floor; chain inexact
        chain.append((uid, via))
        uid = binding
    chain.reverse()

    entries = tuple(
        PathEntry(
            uid=u,
            name=executed[u].name,
            kind=by_uid[u].kind.value,
            rank=executed[u].rank,
            stream=executed[u].stream,
            start=executed[u].start,
            end=executed[u].end,
            slack=slack[u],
            via=via,
        )
        for u, via in chain
    )
    exact = (entries[0].start == 0.0
             and entries[0].via == "origin"
             and entries[-1].end == makespan)

    on_path = {e.uid for e in entries}
    near = sorted(
        (u for u in executed if u not in on_path),
        key=lambda u: (slack[u], executed[u].start, u))[:near_k]
    near_entries = tuple(
        PathEntry(
            uid=u, name=executed[u].name, kind=by_uid[u].kind.value,
            rank=executed[u].rank, stream=executed[u].stream,
            start=executed[u].start, end=executed[u].end,
            slack=slack[u], via="slack",
        )
        for u in near
    )
    return CriticalPathReport(
        entries=entries,
        makespan_seconds=makespan,
        exact=exact,
        slack_by_uid=slack,
        near_critical=near_entries,
    )


__all__ = [
    "SLACK_EPS",
    "PathEntry",
    "CriticalPathReport",
    "extract_critical_path",
]
