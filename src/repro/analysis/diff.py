"""Run-vs-run trace diffing with automatic regression blame.

Two traces of the *same* configuration (different code, hardware health,
or fault state) are aligned by stable op identity — ``(rank, stream,
name, occurrence)``, where occurrence disambiguates repeated names in
chronological order — and the per-op deltas are bucketed by
``(kind, stream)`` with a per-rank (= pipeline-stage, for step graphs)
breakdown.  The blame report names every bucket responsible for at least
a configurable share of the total regression, together with its top
contributing ops, so "step got 8% slower" becomes "rank 2's compute ops
gained 0.25 s (straggler)".

Only occupancy events (kind ``compute``/``comm``) are aligned: the
synthesized ``exposed_comm`` wait events are *downstream symptoms* (one
straggler inflates waits on every later stage, multiplying the apparent
delta), so their aggregate delta is reported separately as a diagnostic
rather than bucketed as a cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Event kinds that carry attributable duration (see module docstring).
ALIGN_KINDS = ("comm", "compute")

#: Kind of the synthesized wait events, reported but never blamed.
WAIT_KIND = "exposed_comm"


@dataclass(frozen=True)
class OpDelta:
    """Duration change of one aligned op between two runs."""

    name: str
    rank: int
    stream: str
    kind: str
    occurrence: int
    baseline_seconds: float
    current_seconds: float
    faulted: bool = False

    @property
    def delta_seconds(self) -> float:
        return self.current_seconds - self.baseline_seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "rank": self.rank,
            "stream": self.stream,
            "kind": self.kind,
            "occurrence": self.occurrence,
            "baseline_seconds": self.baseline_seconds,
            "current_seconds": self.current_seconds,
            "delta_seconds": self.delta_seconds,
            "faulted": self.faulted,
        }


@dataclass(frozen=True)
class DiffBucket:
    """Aggregated delta for one (kind, stream) with a per-rank split."""

    kind: str
    stream: str
    delta_seconds: float
    baseline_seconds: float
    current_seconds: float
    n_ops: int
    n_faulted: int
    by_rank: Tuple[Tuple[int, float], ...]
    top_ops: Tuple[OpDelta, ...]

    def to_dict(self, share: float = 0.0) -> dict:
        return {
            "kind": self.kind,
            "stream": self.stream,
            "delta_seconds": self.delta_seconds,
            "baseline_seconds": self.baseline_seconds,
            "current_seconds": self.current_seconds,
            "share": share,
            "n_ops": self.n_ops,
            "n_faulted": self.n_faulted,
            "by_rank": {str(r): d for r, d in self.by_rank},
            "top_ops": [o.to_dict() for o in self.top_ops],
        }


def _align(events: Iterable) -> Dict[Tuple[int, str, str, int], object]:
    """Index occupancy events by stable identity."""
    groups: Dict[Tuple[int, str, str], List[object]] = {}
    for e in events:
        if e.kind in ALIGN_KINDS:
            groups.setdefault((e.rank, e.stream, e.name), []).append(e)
    out: Dict[Tuple[int, str, str, int], object] = {}
    for (rank, stream, name), members in groups.items():
        members.sort(key=lambda e: (e.start, e.end))
        for occurrence, e in enumerate(members):
            out[(rank, stream, name, occurrence)] = e
    return out


@dataclass(frozen=True)
class TraceDiff:
    """Full alignment of two traces plus aggregate statistics."""

    baseline_makespan: float
    current_makespan: float
    deltas: Tuple[OpDelta, ...]
    unmatched_baseline_ops: int
    unmatched_baseline_seconds: float
    unmatched_current_ops: int
    unmatched_current_seconds: float
    exposed_wait_delta_seconds: float

    @property
    def regression_seconds(self) -> float:
        return self.current_makespan - self.baseline_makespan

    def buckets(self, top_ops: int = 3) -> List[DiffBucket]:
        """Per-(kind, stream) aggregation, sorted by delta descending."""
        grouped: Dict[Tuple[str, str], List[OpDelta]] = {}
        for d in self.deltas:
            grouped.setdefault((d.kind, d.stream), []).append(d)
        out: List[DiffBucket] = []
        for (kind, stream), members in grouped.items():
            by_rank: Dict[int, float] = {}
            for d in members:
                by_rank[d.rank] = by_rank.get(d.rank, 0.0) + d.delta_seconds
            ranked = sorted(
                members,
                key=lambda d: (-d.delta_seconds, d.rank, d.name, d.occurrence))
            out.append(DiffBucket(
                kind=kind,
                stream=stream,
                delta_seconds=sum(d.delta_seconds for d in members),
                baseline_seconds=sum(d.baseline_seconds for d in members),
                current_seconds=sum(d.current_seconds for d in members),
                n_ops=len(members),
                n_faulted=sum(1 for d in members if d.faulted),
                by_rank=tuple(sorted(by_rank.items())),
                top_ops=tuple(ranked[:top_ops]),
            ))
        out.sort(key=lambda b: (-b.delta_seconds, b.kind, b.stream))
        return out

    def blame(self, threshold: float = 0.05,
              top_ops: int = 3) -> List[DiffBucket]:
        """Buckets owning at least ``threshold`` of the total positive
        delta — the "responsible for >= X% of the regression" report."""
        buckets = self.buckets(top_ops=top_ops)
        total = sum(b.delta_seconds for b in buckets if b.delta_seconds > 0)
        if total <= 0:
            return []
        return [b for b in buckets
                if b.delta_seconds > 0 and b.delta_seconds >= threshold * total]

    def to_dict(self, top: int = 10, threshold: float = 0.05) -> dict:
        buckets = self.buckets(top_ops=3)
        total = sum(b.delta_seconds for b in buckets if b.delta_seconds > 0)
        blamed = {(b.kind, b.stream) for b in self.blame(threshold=threshold)}
        regressions = sorted(
            (d for d in self.deltas if d.delta_seconds > 0),
            key=lambda d: (-d.delta_seconds, d.rank, d.name, d.occurrence))
        return {
            "baseline_makespan_seconds": self.baseline_makespan,
            "current_makespan_seconds": self.current_makespan,
            "regression_seconds": self.regression_seconds,
            "exposed_wait_delta_seconds": self.exposed_wait_delta_seconds,
            "n_matched": len(self.deltas),
            "blame_threshold": threshold,
            "unmatched": {
                "baseline": {"ops": self.unmatched_baseline_ops,
                             "seconds": self.unmatched_baseline_seconds},
                "current": {"ops": self.unmatched_current_ops,
                            "seconds": self.unmatched_current_seconds},
            },
            "buckets": [
                b.to_dict(share=(b.delta_seconds / total
                                 if total > 0 and b.delta_seconds > 0 else 0.0))
                for b in buckets],
            "blame": [
                b.to_dict(share=b.delta_seconds / total)
                for b in buckets if (b.kind, b.stream) in blamed],
            "top_regressions": [d.to_dict() for d in regressions[:top]],
        }


def diff_traces(baseline_events: Iterable,
                current_events: Iterable) -> TraceDiff:
    """Align two event collections and compute per-op deltas.

    Events are duck-typed: anything with ``name``/``kind``/``rank``/
    ``stream``/``start``/``end`` (and optionally ``tags``) works — both
    :class:`~repro.sim.engine.TraceEvent` and
    :class:`~repro.analysis.streaming.LightEvent`.  Both inputs must be
    in the same rank space (remap one side first if not).
    """
    baseline = list(baseline_events)
    current = list(current_events)
    base_map = _align(baseline)
    cur_map = _align(current)

    deltas: List[OpDelta] = []
    for key in sorted(base_map.keys() & cur_map.keys()):
        rank, stream, name, occurrence = key
        b, c = base_map[key], cur_map[key]
        deltas.append(OpDelta(
            name=name, rank=rank, stream=stream, kind=c.kind,
            occurrence=occurrence,
            baseline_seconds=b.end - b.start,
            current_seconds=c.end - c.start,
            faulted="faulted" in tuple(getattr(c, "tags", ()) or ()),
        ))

    def _unmatched(own, other):
        keys = own.keys() - other.keys()
        return len(keys), sum(own[k].end - own[k].start for k in keys)

    ub_ops, ub_seconds = _unmatched(base_map, cur_map)
    uc_ops, uc_seconds = _unmatched(cur_map, base_map)

    def _wait_seconds(events):
        return sum(e.end - e.start for e in events if e.kind == WAIT_KIND)

    return TraceDiff(
        baseline_makespan=max((e.end for e in baseline), default=0.0),
        current_makespan=max((e.end for e in current), default=0.0),
        deltas=tuple(deltas),
        unmatched_baseline_ops=ub_ops,
        unmatched_baseline_seconds=ub_seconds,
        unmatched_current_ops=uc_ops,
        unmatched_current_seconds=uc_seconds,
        exposed_wait_delta_seconds=(
            _wait_seconds(current) - _wait_seconds(baseline)),
    )


__all__ = [
    "ALIGN_KINDS",
    "WAIT_KIND",
    "OpDelta",
    "DiffBucket",
    "TraceDiff",
    "diff_traces",
]
