"""Streaming trace ingestion: aggregate million-event traces in O(1) memory.

Production traces routinely hit millions of events (the paper's 16k-GPU
runs produce one lane per rank per stream); loading them as one Python
list before analyzing defeats the point.  This module provides:

* :func:`iter_trace_events` — a generator yielding :class:`LightEvent`
  from a live event list, an in-memory trace dict, or a Chrome-trace
  JSON **file parsed incrementally**: the ``traceEvents`` array is
  decoded object-by-object with ``json.JSONDecoder.raw_decode`` over a
  bounded read buffer, so peak memory is O(chunk + one event), not
  O(file).
* :class:`StreamingTraceAggregator` — consumes any event iterator while
  maintaining per-(stream, kind) duration statistics and a top-K slowest
  heap in **O(streams x kinds + K + ranks)** memory, independent of
  event count.  ``benchmarks/test_trace_analysis.py`` pins this on a
  1M-event trace under a fixed RSS budget.
"""

from __future__ import annotations

import heapq
import json
from typing import Dict, Iterable, Iterator, List, NamedTuple, Tuple, Union

_CHUNK = 1 << 16
#: The ``"traceEvents"`` key must appear this early in a trace file;
#: keeps the header scan from buffering unboundedly on garbage input.
_MAX_HEADER = 1 << 20
_US = 1e6  # Chrome trace timestamps are microseconds.


class LightEvent(NamedTuple):
    """Minimal duck-type of :class:`repro.sim.engine.TraceEvent` carrying
    only what the analytics need (no group membership)."""

    name: str
    kind: str
    rank: int
    stream: str
    start: float
    end: float
    tags: Tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


def _event_from_row(row: dict) -> Union[LightEvent, None]:
    """Convert one Chrome-trace row back to an event, or None to skip.

    Inverse of :func:`repro.obs.trace.trace_event_dicts` for occupancy
    rows: ``X`` rows become duration events, ``i`` rows zero-duration
    markers; metadata and flow phases carry no duration and are skipped.
    """
    ph = row.get("ph")
    if ph not in ("X", "i"):
        return None
    args = row.get("args") or {}
    start = float(row.get("ts", 0.0)) / _US
    dur = float(row.get("dur", 0.0)) / _US if ph == "X" else 0.0
    stream = args.get("stream")
    if stream is None:
        stream = str(row.get("tid", 0))
    return LightEvent(
        name=str(row.get("name", "")),
        kind=str(row.get("cat", "marker" if ph == "i" else "compute")),
        rank=int(row.get("pid", 0)),
        stream=str(stream),
        start=start,
        end=start + dur,
        tags=tuple(args.get("tags", ())),
    )


def _iter_rows_from_stream(stream) -> Iterator[dict]:
    """Incrementally decode the traceEvents array from a JSON stream."""
    decoder = json.JSONDecoder()
    buf = stream.read(_CHUNK)
    # Locate the start of the event array: either the file itself is a
    # bare JSON array, or it is an object with a "traceEvents" key.
    while True:
        stripped = buf.lstrip()
        if stripped.startswith("["):
            buf = stripped[1:]
            break
        marker = buf.find('"traceEvents"')
        if marker >= 0:
            bracket = buf.find("[", marker)
            if bracket >= 0:
                buf = buf[bracket + 1:]
                break
        if len(buf) > _MAX_HEADER:
            raise ValueError(
                "malformed trace: no traceEvents array in file header")
        chunk = stream.read(_CHUNK)
        if not chunk:
            raise ValueError("malformed trace: no traceEvents array found")
        buf += chunk
    while True:
        buf = buf.lstrip()
        while buf[:1] == ",":
            buf = buf[1:].lstrip()
        if buf[:1] == "]":
            return
        try:
            row, end = decoder.raw_decode(buf)
        except ValueError:
            chunk = stream.read(_CHUNK)
            if not chunk:
                raise ValueError(
                    "malformed trace: unterminated traceEvents array")
            buf += chunk
            continue
        if not isinstance(row, dict):
            raise ValueError(
                f"malformed trace: expected object in traceEvents, "
                f"got {type(row).__name__}")
        yield row
        buf = buf[end:]


def iter_trace_events(source) -> Iterator[LightEvent]:
    """Yield :class:`LightEvent` from any trace source.

    Accepts a path string, a text file object (including stdin), a
    parsed trace dict (``{"traceEvents": [...]}``), a bare row list, or
    any iterable of event-like objects (e.g. ``Simulator.events``).
    Raises ``ValueError`` on malformed JSON input.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            yield from iter_trace_events(fh)
        return
    if isinstance(source, dict):
        rows = source.get("traceEvents", [])
        if not isinstance(rows, list):
            raise ValueError("malformed trace: traceEvents is not a list")
        source = rows
    if isinstance(source, list):
        for row in source:
            if isinstance(row, dict):
                event = _event_from_row(row)
                if event is not None:
                    yield event
            else:
                yield row  # already an event object
        return
    if hasattr(source, "read"):
        for row in _iter_rows_from_stream(source):
            event = _event_from_row(row)
            if event is not None:
                yield event
        return
    # Fallback: an iterable of event objects (live Simulator events).
    for e in source:
        yield e


class _Stat:
    """Running duration statistics for one (stream, kind) lane."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.total / self.count if self.count else 0.0,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max if self.count else 0.0,
        }


class StreamingTraceAggregator:
    """Single-pass aggregator over an event stream.

    Memory is O(streams x kinds + K + ranks) — never proportional to the
    number of events consumed.
    """

    def __init__(self, top_k: int = 10) -> None:
        if top_k < 0:
            raise ValueError(f"top_k must be >= 0 (got {top_k})")
        self.top_k = top_k
        self.n_events = 0
        self.makespan = 0.0
        self._stats: Dict[Tuple[str, str], _Stat] = {}
        self._ranks: set = set()
        # Min-heap of (duration, seq, name, rank, stream, kind, start);
        # seq makes ties deterministic and keeps tuples comparable.
        self._heap: List[Tuple] = []
        self._seq = 0

    def add(self, event) -> None:
        duration = event.end - event.start
        self.n_events += 1
        if event.end > self.makespan:
            self.makespan = event.end
        self._ranks.add(event.rank)
        key = (event.stream, event.kind)
        stat = self._stats.get(key)
        if stat is None:
            stat = self._stats[key] = _Stat()
        stat.observe(duration)
        if self.top_k:
            self._seq += 1
            item = (duration, -self._seq, event.name, event.rank,
                    event.stream, event.kind, event.start)
            if len(self._heap) < self.top_k:
                heapq.heappush(self._heap, item)
            elif item > self._heap[0]:
                heapq.heapreplace(self._heap, item)

    def consume(self, events: Iterable) -> "StreamingTraceAggregator":
        for event in events:
            self.add(event)
        return self

    @property
    def n_ranks(self) -> int:
        return len(self._ranks)

    def top_slowest(self) -> List[dict]:
        """Top-K slowest events, longest first (earliest-seen wins ties)."""
        ranked = sorted(self._heap, reverse=True)
        return [
            {"name": name, "rank": rank, "stream": stream, "kind": kind,
             "start": start, "duration_seconds": duration}
            for duration, _neg_seq, name, rank, stream, kind, start in ranked
        ]

    def to_dict(self) -> dict:
        return {
            "n_events": self.n_events,
            "n_ranks": self.n_ranks,
            "makespan_seconds": self.makespan,
            "streams": {
                f"{stream}/{kind}": stat.to_dict()
                for (stream, kind), stat in sorted(self._stats.items())
            },
            "top_slowest": self.top_slowest(),
        }


__all__ = [
    "LightEvent",
    "StreamingTraceAggregator",
    "iter_trace_events",
]
