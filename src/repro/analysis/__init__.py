"""Trace analytics: turn raw timelines into answers.

Three pillars over the observability spine (Perfetto export, step event
graphs, fault tags, run timelines):

* :mod:`repro.analysis.critical_path` — which op chain bounds the step,
  exactly, plus per-op slack for the near-critical set.
* :mod:`repro.analysis.diff` — run-vs-run alignment with automatic
  regression blame by (kind, stream, pipeline stage).
* :mod:`repro.analysis.streaming` — constant-memory ingestion and
  aggregation of million-event traces.

All three surface through the ``repro analyze`` CLI subcommand with the
``repro.analysis/v1`` JSON schema.
"""

from repro.analysis.critical_path import (
    SLACK_EPS,
    CriticalPathReport,
    PathEntry,
    extract_critical_path,
)
from repro.analysis.diff import (
    ALIGN_KINDS,
    DiffBucket,
    OpDelta,
    TraceDiff,
    diff_traces,
)
from repro.analysis.streaming import (
    LightEvent,
    StreamingTraceAggregator,
    iter_trace_events,
)

__all__ = [
    "SLACK_EPS",
    "CriticalPathReport",
    "PathEntry",
    "extract_critical_path",
    "ALIGN_KINDS",
    "DiffBucket",
    "OpDelta",
    "TraceDiff",
    "diff_traces",
    "LightEvent",
    "StreamingTraceAggregator",
    "iter_trace_events",
]
