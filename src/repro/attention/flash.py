"""Flash-style blocked attention: streaming softmax over key tiles.

Computes exactly the same function as :func:`attention_reference` but one
key tile at a time, carrying running (max, sum, output) statistics — the
algorithm of Flash-Attention v2, which is the paper's single-GPU baseline
(Section 7.2).  Besides serving as a numerics cross-check (different
accumulation order, same result up to rounding), it exposes the kernel-
fragmentation statistics the ring-attention cost model needs: how many
tile kernels ran and how much merge work was done.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.reference import AttentionResult, expand_kv


@dataclass(frozen=True)
class KernelStats:
    """Work counters from a blocked attention run.

    Attributes:
        num_tiles: Key tiles processed (kernel invocations in a fused
            implementation would amortise these; ring attention cannot).
        score_flops: FLOPs spent on QK^T and PV for processed tiles.
        merge_elements: Elements rescaled when merging running statistics.
    """

    num_tiles: int
    score_flops: float
    merge_elements: float


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
    block_k: int = 128,
    scale: float | None = None,
) -> tuple[AttentionResult, KernelStats]:
    """Blocked attention over key tiles of size ``block_k``.

    Tiles with no allowed (query, key) pairs are skipped entirely —
    the mask-aware tile skipping that makes causal/document masks cheaper
    than dense attention.
    """
    seq_q, n_heads, head_dim = q.shape
    seq_k = k.shape[0]
    if mask.shape != (seq_q, seq_k):
        raise ValueError("mask shape mismatch")
    if block_k < 1:
        raise ValueError("block_k must be >= 1")
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)

    kx = expand_kv(k, n_heads)
    vx = expand_kv(v, n_heads)

    running_max = np.full((n_heads, seq_q), -np.inf)
    running_sum = np.zeros((n_heads, seq_q))
    acc = np.zeros((seq_q, n_heads, head_dim))
    num_tiles = 0
    score_flops = 0.0
    merge_elements = 0.0

    for start in range(0, seq_k, block_k):
        end = min(start + block_k, seq_k)
        tile_mask = mask[:, start:end]
        if not tile_mask.any():
            continue
        num_tiles += 1
        scores = np.einsum("qhd,khd->hqk", q, kx[start:end]) * scale
        scores = np.where(tile_mask[None, :, :], scores, -np.inf)
        score_flops += 2.0 * seq_q * (end - start) * n_heads * head_dim * 2
        tile_max = np.max(scores, axis=-1)
        new_max = np.maximum(running_max, tile_max)
        safe_new = np.where(np.isfinite(new_max), new_max, 0.0)
        correction = np.exp(
            np.where(np.isfinite(running_max), running_max - safe_new, -np.inf)
        )
        correction = np.where(np.isfinite(running_max), correction, 0.0)
        expd = np.exp(scores - safe_new[:, :, None])
        expd = np.where(tile_mask[None, :, :], expd, 0.0)
        running_sum = running_sum * correction + np.sum(expd, axis=-1)
        acc = acc * correction.T[:, :, None] + np.einsum(
            "hqk,khd->qhd", expd, vx[start:end]
        )
        running_max = new_max
        merge_elements += float(acc.size)

    has_keys = running_sum > 0
    denom = np.where(has_keys, running_sum, 1.0)
    out = acc / denom.T[:, :, None]
    out = np.where(has_keys.T[:, :, None], out, 0.0)
    safe_max = np.where(np.isfinite(running_max), running_max, 0.0)
    lse = np.where(has_keys, safe_max + np.log(denom), -np.inf)
    result = AttentionResult(out=out, lse=lse.T)
    stats = KernelStats(
        num_tiles=num_tiles,
        score_flops=score_flops,
        merge_elements=merge_elements,
    )
    return result, stats
