"""Attention masks: causal and document (block-causal).

Masks are boolean (query, key) matrices with True where attention is
allowed.  The document mask restricts attention to tokens of the same
document *and* earlier positions; its boundaries depend on the input's
eos positions, which is exactly what makes tile-based masking error-prone
in ring-style CP (Section 4) and trivial in the all-gather formulation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def causal_mask(seq: int) -> np.ndarray:
    """Lower-triangular allowed matrix: token i attends tokens 0..i."""
    if seq <= 0:
        raise ValueError("seq must be positive")
    return np.tril(np.ones((seq, seq), dtype=bool))


def document_mask(doc_ids: np.ndarray) -> np.ndarray:
    """Block-causal mask from per-token document ids."""
    ids = np.asarray(doc_ids)
    if ids.ndim != 1 or ids.size == 0:
        raise ValueError("doc_ids must be a non-empty 1-D array")
    seq = ids.size
    same_doc = ids[:, None] == ids[None, :]
    return same_doc & causal_mask(seq)


def allowed_ranges(doc_ids: np.ndarray) -> np.ndarray:
    """Per-row [start, end) of allowed key positions under the document
    mask — contiguous because documents are contiguous.  Shape (seq, 2)."""
    ids = np.asarray(doc_ids)
    seq = ids.size
    starts = np.zeros(seq, dtype=np.int64)
    boundary = np.flatnonzero(np.diff(ids)) + 1
    starts[boundary] = boundary
    starts = np.maximum.accumulate(starts)
    ends = np.arange(1, seq + 1, dtype=np.int64)
    return np.stack([starts, ends], axis=1)


def mask_area(mask: np.ndarray) -> int:
    """Number of allowed (query, key) pairs — proportional to attention
    FLOPs under this mask."""
    return int(np.count_nonzero(mask))


def rows_mask(mask: np.ndarray, rows: Sequence[int]) -> np.ndarray:
    """Sub-mask for a subset of query rows against all keys."""
    return mask[np.asarray(rows, dtype=np.int64), :]
