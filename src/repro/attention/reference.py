"""Reference masked multi-head attention with GQA, in FP64-stable numpy.

This is the ground truth every distributed attention variant must match:
all-gather CP attention should match it *exactly on its rows*, and ring
attention should match it to merge-rounding tolerance.  Outputs include the
per-row log-sum-exp statistics, which ring attention needs for merging
partial results (Section 4's discussion of RingAttention's rescaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

NEG_INF = -np.inf


@dataclass(frozen=True)
class AttentionResult:
    """Attention output plus softmax statistics.

    Attributes:
        out: (seq_q, n_heads, head_dim) attention output.
        lse: (seq_q, n_heads) log-sum-exp of masked scores (natural log),
            -inf for rows with no allowed keys.
    """

    out: np.ndarray
    lse: np.ndarray


def expand_kv(t: np.ndarray, n_heads: int) -> np.ndarray:
    """Repeat KV heads to match query heads (GQA/MQA expansion)."""
    seq, kv_heads, head_dim = t.shape
    if n_heads % kv_heads != 0:
        raise ValueError("n_heads must be a multiple of kv heads")
    return np.repeat(t, n_heads // kv_heads, axis=1)


def attention_reference(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
    scale: Optional[float] = None,
) -> AttentionResult:
    """Masked attention for queries ``q`` against keys/values ``k``/``v``.

    Args:
        q: (seq_q, n_heads, head_dim).
        k: (seq_k, n_kv_heads, head_dim).
        v: (seq_k, n_kv_heads, head_dim).
        mask: (seq_q, seq_k) boolean, True = attend.
        scale: Score scale; defaults to 1/sqrt(head_dim).
    """
    if q.ndim != 3 or k.ndim != 3 or v.ndim != 3:
        raise ValueError("q, k, v must be rank-3: (seq, heads, head_dim)")
    if k.shape != v.shape:
        raise ValueError("k and v must have identical shapes")
    seq_q, n_heads, head_dim = q.shape
    seq_k = k.shape[0]
    if mask.shape != (seq_q, seq_k):
        raise ValueError(
            f"mask shape {mask.shape} != ({seq_q}, {seq_k})"
        )
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)

    kx = expand_kv(k, n_heads)
    vx = expand_kv(v, n_heads)
    # scores: (heads, seq_q, seq_k)
    scores = np.einsum("qhd,khd->hqk", q, kx) * scale
    scores = np.where(mask[None, :, :], scores, NEG_INF)

    row_max = np.max(scores, axis=-1, keepdims=True)
    # Rows with no allowed keys have row_max = -inf; keep them at -inf so
    # exp() yields 0 and we can zero the output.
    safe_max = np.where(np.isfinite(row_max), row_max, 0.0)
    expd = np.exp(scores - safe_max)
    expd = np.where(mask[None, :, :], expd, 0.0)
    denom = np.sum(expd, axis=-1, keepdims=True)
    has_keys = denom[..., 0] > 0
    out = np.einsum("hqk,khd->qhd", np.divide(
        expd, np.where(denom == 0, 1.0, denom)
    ), vx)
    out = np.where(has_keys.T[:, :, None], out, 0.0)
    lse = np.where(
        has_keys, safe_max[..., 0] + np.log(np.where(denom[..., 0] == 0, 1.0,
                                                     denom[..., 0])), NEG_INF
    )
    return AttentionResult(out=out, lse=lse.T)
