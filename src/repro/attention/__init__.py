"""Exact numpy attention kernels: reference, flash-style blocked, masks."""

from repro.attention.masks import (
    causal_mask,
    document_mask,
    allowed_ranges,
    mask_area,
    rows_mask,
)
from repro.attention.reference import (
    AttentionResult,
    attention_reference,
    expand_kv,
)
from repro.attention.flash import KernelStats, flash_attention
from repro.attention.backward import attention_backward_reference

__all__ = [
    "causal_mask",
    "document_mask",
    "allowed_ranges",
    "mask_area",
    "rows_mask",
    "AttentionResult",
    "attention_reference",
    "expand_kv",
    "KernelStats",
    "flash_attention",
    "attention_backward_reference",
]
