"""Reference backward pass through masked GQA attention.

Gradient math for ``out = softmax(mask(q k^T / sqrt(d))) v`` with grouped
KV heads: per query head h (with kv-group g = h // gqa_ratio):

    dv_g  += p_h^T dout_h
    dp_h   = dout_h v_g^T
    ds_h   = p_h * (dp_h - rowsum(dp_h * p_h))
    dq_h   = ds_h k_g * scale
    dk_g  += ds_h^T q_h * scale

This is the single-device ground truth the distributed CP backward
(:mod:`repro.cp.backward`) must match: dq exactly per query row, dk/dv up
to the cross-rank reduction order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.attention.reference import expand_kv


def attention_backward_reference(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
    dout: np.ndarray,
    scale: float | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients (dq, dk, dv) of masked attention.

    Args:
        q: (seq_q, n_heads, head_dim).
        k: (seq_k, n_kv_heads, head_dim).
        v: (seq_k, n_kv_heads, head_dim).
        mask: (seq_q, seq_k) boolean.
        dout: (seq_q, n_heads, head_dim) upstream gradient.

    Returns dq shaped like q and dk/dv shaped like k/v (KV-head grads
    summed over their query-head group).
    """
    seq_q, n_heads, head_dim = q.shape
    seq_k, n_kv_heads, _ = k.shape
    if mask.shape != (seq_q, seq_k):
        raise ValueError("mask shape mismatch")
    if dout.shape != q.shape:
        raise ValueError("dout must match q's shape")
    if scale is None:
        scale = 1.0 / np.sqrt(head_dim)
    group = n_heads // n_kv_heads

    kx = expand_kv(k, n_heads)
    vx = expand_kv(v, n_heads)
    scores = np.einsum("qhd,khd->hqk", q, kx) * scale
    scores = np.where(mask[None, :, :], scores, -np.inf)
    row_max = np.max(scores, axis=-1, keepdims=True)
    safe = np.where(np.isfinite(row_max), row_max, 0.0)
    expd = np.exp(scores - safe)
    expd = np.where(mask[None, :, :], expd, 0.0)
    denom = np.sum(expd, axis=-1, keepdims=True)
    p = np.divide(expd, np.where(denom == 0, 1.0, denom))

    dv_heads = np.einsum("hqk,qhd->khd", p, dout)
    dp = np.einsum("qhd,khd->hqk", dout, vx)
    ds = p * (dp - np.sum(dp * p, axis=-1, keepdims=True))
    dq = np.einsum("hqk,khd->qhd", ds, kx) * scale
    dk_heads = np.einsum("hqk,qhd->khd", ds, q) * scale

    # Reduce query-head groups back onto the shared KV heads.
    dk = dk_heads.reshape(seq_k, n_kv_heads, group, head_dim).sum(axis=2)
    dv = dv_heads.reshape(seq_k, n_kv_heads, group, head_dim).sum(axis=2)
    return dq, dk, dv
