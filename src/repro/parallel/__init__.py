"""4D parallelism: configuration, device mesh, planner, and memory model."""

from repro.parallel.config import (
    ParallelConfig,
    JobConfig,
    ZeroStage,
    LLAMA3_405B_SHORT_CONTEXT,
    LLAMA3_405B_LONG_CONTEXT,
)
from repro.parallel.mesh import DeviceMesh, MeshCoord, DIM_ORDER
from repro.parallel.memory import RankMemory, estimate_rank_memory
from repro.parallel.planner import (
    Plan,
    plan_parallelism,
    replan_for_gpu_count,
    arithmetic_intensity_2d,
    hardware_flops_per_byte,
    MEMORY_HEADROOM,
)

from repro.parallel.ordering import (
    PAPER_ORDER,
    DimTraffic,
    OrderingScore,
    dimension_traffic,
    links_for_order,
    score_ordering,
    rank_orderings,
)

__all__ = [
    "PAPER_ORDER",
    "DimTraffic",
    "OrderingScore",
    "dimension_traffic",
    "links_for_order",
    "score_ordering",
    "rank_orderings",
    "ParallelConfig",
    "JobConfig",
    "ZeroStage",
    "LLAMA3_405B_SHORT_CONTEXT",
    "LLAMA3_405B_LONG_CONTEXT",
    "DeviceMesh",
    "MeshCoord",
    "DIM_ORDER",
    "RankMemory",
    "estimate_rank_memory",
    "Plan",
    "plan_parallelism",
    "replan_for_gpu_count",
    "arithmetic_intensity_2d",
    "hardware_flops_per_byte",
    "MEMORY_HEADROOM",
]
