"""Device mesh: mapping between global ranks and parallel coordinates.

The order of dimensions is the paper's [TP, CP, PP, DP] (Section 5.2)
extended with expert parallelism nested between CP and PP — inner to
outer it is [TP, CP, EP, PP, DP].  TP ranks are adjacent global ranks
(same NVLink domain when ``tp <= gpus_per_node``), then CP, then EP (the
MoE all-to-all domain, kept inside PP so dispatch/combine rides the
fastest links the mesh allows), then PP, with DP outermost.  A global
rank decomposes as::

    rank = (((dp_idx * pp + pp_idx) * ep + ep_idx) * cp + cp_idx) * tp
           + tp_idx

With ``ep == 1`` (every dense model) this is bitwise the paper's 4D
decomposition ``rank = ((dp_idx * pp + pp_idx) * cp + cp_idx) * tp +
tp_idx``.

The mesh also constructs the process groups that both the simulator and
the trace-analysis tools (Section 6.1's top-down slow-rank search)
operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.parallel.config import ParallelConfig

#: Dimension names, innermost first.
DIM_ORDER = ("tp", "cp", "ep", "pp", "dp")


@dataclass(frozen=True)
class MeshCoord:
    """Coordinates of one rank.  ``ep`` defaults to 0 so 4D call sites
    (and every dense mesh) construct coordinates unchanged."""

    tp: int
    cp: int
    pp: int
    dp: int
    ep: int = 0

    def replace_dim(self, dim: str, value: int) -> "MeshCoord":
        parts = {"tp": self.tp, "cp": self.cp, "ep": self.ep,
                 "pp": self.pp, "dp": self.dp}
        if dim not in parts:
            raise ValueError(f"unknown dim {dim!r}")
        parts[dim] = value
        return MeshCoord(**parts)


class DeviceMesh:
    """Rank <-> coordinate mapping and process-group construction."""

    def __init__(self, parallel: ParallelConfig) -> None:
        self.parallel = parallel

    @property
    def world_size(self) -> int:
        return self.parallel.world_size

    def _sizes(self) -> Dict[str, int]:
        p = self.parallel
        return {"tp": p.tp, "cp": p.cp, "ep": p.ep, "pp": p.pp, "dp": p.dp}

    def coord_of(self, rank: int) -> MeshCoord:
        """Coordinates of a global rank."""
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")
        p = self.parallel
        tp_idx = rank % p.tp
        cp_idx = (rank // p.tp) % p.cp
        ep_idx = (rank // (p.tp * p.cp)) % p.ep
        pp_idx = (rank // (p.tp * p.cp * p.ep)) % p.pp
        dp_idx = rank // (p.tp * p.cp * p.ep * p.pp)
        return MeshCoord(tp=tp_idx, cp=cp_idx, ep=ep_idx, pp=pp_idx,
                         dp=dp_idx)

    def rank_of(self, coord: MeshCoord) -> int:
        """Global rank of a coordinate."""
        p = self.parallel
        for dim in DIM_ORDER:
            idx, size = getattr(coord, dim), self._sizes()[dim]
            if not 0 <= idx < size:
                raise ValueError(f"{dim} index {idx} out of range [0, {size})")
        return (
            (((coord.dp * p.pp + coord.pp) * p.ep + coord.ep) * p.cp
             + coord.cp) * p.tp + coord.tp
        )

    def group_of(self, rank: int, dim: str) -> List[int]:
        """Ranks in the same ``dim`` process group as ``rank``.

        E.g. ``group_of(r, "tp")`` is the TP group: all ranks differing
        from ``r`` only in their TP coordinate, in TP-index order.
        ``group_of(r, "ep")`` is the expert-parallel group the MoE
        all-to-all runs over.
        """
        coord = self.coord_of(rank)
        size = self._sizes().get(dim)
        if size is None:
            raise ValueError(f"unknown dim {dim!r}; expected one of {DIM_ORDER}")
        return [
            self.rank_of(coord.replace_dim(dim, i)) for i in range(size)
        ]

    def all_groups(self, dim: str) -> List[List[int]]:
        """Every ``dim`` process group, each as an ordered rank list."""
        seen = set()
        groups = []
        for rank in range(self.world_size):
            group = tuple(self.group_of(rank, dim))
            if group not in seen:
                seen.add(group)
                groups.append(list(group))
        return groups

    def dp_cp_group_of(self, rank: int) -> List[int]:
        """The combined DP x CP group used for parameter all-gather and
        gradient reduce-scatter (Section 4: CP extends DP for parameter
        communication).  The (tp, ep, pp) coordinates stay fixed: each EP
        rank owns disjoint experts, so its gradient shard group spans
        only the DP x CP replicas of the same expert shard."""
        coord = self.coord_of(rank)
        p = self.parallel
        ranks = []
        for dp_idx in range(p.dp):
            for cp_idx in range(p.cp):
                c = MeshCoord(tp=coord.tp, cp=cp_idx, ep=coord.ep,
                              pp=coord.pp, dp=dp_idx)
                ranks.append(self.rank_of(c))
        return ranks

    def pp_stage_ranks(self, pp_idx: int) -> List[int]:
        """All global ranks at one pipeline stage.

        Constructed arithmetically from the decomposition formula: for a
        fixed (dp, pp) the inner tp*cp*ep block is contiguous, so the
        stage is ``dp`` contiguous runs — O(result) instead of the old
        O(world_size) coord_of scan per query.
        """
        p = self.parallel
        if not 0 <= pp_idx < p.pp:
            raise ValueError(f"pp index {pp_idx} out of range")
        inner = p.tp * p.cp * p.ep
        return [
            (dp_idx * p.pp + pp_idx) * inner + i
            for dp_idx in range(p.dp)
            for i in range(inner)
        ]

    def pp_neighbor(self, rank: int, direction: int) -> int:
        """Rank holding the next (+1) or previous (-1) pipeline stage for
        the same (tp, cp, ep, dp) coordinates, wrapping at the ends."""
        if direction not in (1, -1):
            raise ValueError("direction must be +1 or -1")
        coord = self.coord_of(rank)
        new_pp = (coord.pp + direction) % self.parallel.pp
        return self.rank_of(coord.replace_dim("pp", new_pp))
