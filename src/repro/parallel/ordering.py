"""Quantitative justification of the [TP, CP, PP, DP] dimension ordering
(Section 5.2).

The paper orders parallelism dimensions by communication demand and places
the most demanding on the innermost (fastest) network level.  This module
makes that argument computable: it characterises each dimension's
communication (volume per layer or per step, events per step, and whether
latency can be hidden), maps a candidate ordering onto the cluster's
hierarchy (innermost dimensions get NVLink while they fit within a node),
and scores the total *exposed* communication time per training step.  The
paper's ordering should — and does — minimise the score.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hardware.cluster import ClusterSpec
from repro.hardware.network import LinkSpec
from repro.model.config import TextModelConfig
from repro.parallel.config import JobConfig, ParallelConfig
from repro.sim.collectives import all_gather_time, p2p_time

#: The paper's ordering, innermost first.
PAPER_ORDER: Tuple[str, ...] = ("tp", "cp", "pp", "dp")


@dataclass(frozen=True)
class DimTraffic:
    """Per-dimension communication demand for one training step.

    Attributes:
        dim: Dimension name.
        events_per_step: Synchronising communications per step.
        bytes_per_event: Payload per event per rank.
        hideable: Whether the latency can overlap with compute (only DP's
            parameter all-gather / gradient reduce-scatter, Section 5.2).
        collective: True for group collectives (TP/CP/DP); False for P2P
            (PP), which involves only two ranks and no group sync.
    """

    dim: str
    events_per_step: float
    bytes_per_event: float
    hideable: bool
    collective: bool


def dimension_traffic(
    model: TextModelConfig,
    parallel: ParallelConfig,
    job: JobConfig,
) -> Dict[str, DimTraffic]:
    """Characterise each dimension's traffic, following Section 5.2.

    * TP: four exposed collectives per layer per micro-batch (two around
      attention, two around the FFN), activation-sized.
    * CP: one exposed KV all-gather per layer per micro-batch (plus the
      mirrored reduce-scatter in backward).
    * PP: asynchronous P2P per virtual-stage boundary per micro-batch.
    * DP: one parameter all-gather + gradient reduce-scatter per step,
      overlappable with forward/backward.
    """
    nmb = job.micro_batches(parallel)
    tokens = job.seq * job.mbs / max(parallel.cp, 1)
    act_bytes = 2.0 * tokens * model.dim
    kv_bytes = 2.0 * job.seq * job.mbs * max(
        model.kv_dim // max(parallel.tp, 1), model.head_dim) * 2
    layers = model.n_layers
    from repro.model.flops import layer_params

    param_bytes = 2.0 * layers * layer_params(model) / max(parallel.tp, 1) \
        / max(parallel.pp, 1)

    return {
        "tp": DimTraffic("tp", events_per_step=4.0 * layers * nmb,
                         bytes_per_event=act_bytes, hideable=False,
                         collective=True),
        "cp": DimTraffic("cp", events_per_step=2.0 * layers * nmb,
                         bytes_per_event=kv_bytes, hideable=False,
                         collective=True),
        "pp": DimTraffic("pp", events_per_step=2.0 * nmb
                         * max(parallel.pp, 1),
                         bytes_per_event=act_bytes
                         / max(parallel.tp, 1), hideable=False,
                         collective=False),
        "dp": DimTraffic("dp", events_per_step=2.0,
                         bytes_per_event=param_bytes, hideable=True,
                         collective=True),
    }


def _dim_sizes(parallel: ParallelConfig) -> Dict[str, int]:
    return {"tp": parallel.tp, "cp": parallel.cp, "pp": parallel.pp,
            "dp": parallel.dp}


def links_for_order(
    order: Sequence[str], parallel: ParallelConfig, cluster: ClusterSpec
) -> Dict[str, LinkSpec]:
    """Which link class each dimension lands on under an ordering.

    Walking the order from the innermost dimension, the cumulative product
    of group sizes determines whether a dimension's groups still fit
    within one node (NVLink) or span nodes (RoCE).
    """
    if sorted(order) != sorted(PAPER_ORDER):
        raise ValueError(f"order must be a permutation of {PAPER_ORDER}")
    sizes = _dim_sizes(parallel)
    links: Dict[str, LinkSpec] = {}
    span = 1
    for dim in order:
        span *= sizes[dim]
        if sizes[dim] == 1:
            links[dim] = cluster.intra_node_link
        elif span <= cluster.gpus_per_node:
            links[dim] = cluster.intra_node_link
        else:
            links[dim] = cluster.inter_node_link
    return links


@dataclass(frozen=True)
class OrderingScore:
    """Exposed communication cost of one ordering."""

    order: Tuple[str, ...]
    exposed_seconds: float
    per_dim_seconds: Dict[str, float]


def score_ordering(
    order: Sequence[str],
    model: TextModelConfig,
    parallel: ParallelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
) -> OrderingScore:
    """Total exposed communication seconds per step under an ordering.

    Collective time uses the ring model on the dimension's assigned link;
    hideable dimensions contribute only their unoverlappable residual
    (we charge 10% — first all-gather and last reduce-scatter exposure).
    """
    traffic = dimension_traffic(model, parallel, job)
    links = links_for_order(order, parallel, cluster)
    sizes = _dim_sizes(parallel)
    per_dim: Dict[str, float] = {}
    for dim, t in traffic.items():
        size = sizes[dim]
        if size == 1:
            per_dim[dim] = 0.0
            continue
        link = links[dim]
        # Build a representative group on the right link class.
        if link is cluster.intra_node_link:
            group = list(range(size))
        else:
            group = [i * cluster.gpus_per_node for i in range(size)]
        if t.collective:
            per_event = all_gather_time(
                cluster, group, t.bytes_per_event).seconds
        else:
            per_event = p2p_time(cluster, group[0], group[-1],
                                 t.bytes_per_event)
        total = per_event * t.events_per_step
        if t.hideable:
            total *= 0.10
        per_dim[dim] = total
    return OrderingScore(
        order=tuple(order),
        exposed_seconds=sum(per_dim.values()),
        per_dim_seconds=per_dim,
    )


def rank_orderings(
    model: TextModelConfig,
    parallel: ParallelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
) -> List[OrderingScore]:
    """Score every permutation of the four dimensions, best first."""
    scores = [
        score_ordering(order, model, parallel, job, cluster)
        for order in itertools.permutations(PAPER_ORDER)
    ]
    return sorted(scores, key=lambda s: s.exposed_seconds)
