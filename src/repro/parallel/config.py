"""Parallelism configuration and training-job hyperparameters.

Terminology follows Table 1 of the paper exactly, extended with the
expert-parallel axis for MoE variants:

========  ==================================================================
``ngpu``  number of GPUs
``seq``   sequence length
``gbs``   global batch size (in sequences)
``bs``    batch size per data-parallel group
``mbs``   micro-batch size in pipeline stage execution
``dp/tp/cp/pp``  GPUs in one data/tensor/context/pipeline parallel group
``ep``    GPUs sharing one expert-parallel group (MoE all-to-all domain)
``ndp``   number of data-parallel groups
``v``     number of virtual stages on one PP rank
``nc``    consecutive micro-batches per virtual stage per round
``nmb``   micro-batches per virtual stage
``tmb``   total micro-batches on one PP rank (= nmb * v)
========  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ZeroStage(Enum):
    """FSDP sharding strategy, aligned with DeepSpeed's ZeRO definitions
    (Section 2.1): what is sharded across the data-parallel group."""

    ZERO_1 = 1  # optimizer states only
    ZERO_2 = 2  # optimizer states + gradients
    ZERO_3 = 3  # optimizer states + gradients + parameters


@dataclass(frozen=True)
class ParallelConfig:
    """Sizes of the parallelism dimensions.

    The product ``tp * cp * ep * pp * dp`` must equal the world size; the
    order of dimensions when mapping to physical ranks is fixed to
    [TP, CP, EP, PP, DP] inner -> outer (Section 5.2, extended with the
    expert-parallel axis nested just outside CP so the chatty MoE
    all-to-all stays on as few network hops as the mesh allows).

    ``ep`` defaults to 1, which degenerates bitwise to the paper's 4D
    [TP, CP, PP, DP] mesh: dense models never see the extra axis.
    """

    tp: int = 1
    cp: int = 1
    ep: int = 1
    pp: int = 1
    dp: int = 1
    zero: ZeroStage = ZeroStage.ZERO_1

    def __post_init__(self) -> None:
        for name in ("tp", "cp", "ep", "pp", "dp"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def world_size(self) -> int:
        return self.tp * self.cp * self.ep * self.pp * self.dp

    @property
    def model_parallel_size(self) -> int:
        """GPUs holding one model replica's parameters (TP x EP x PP)."""
        return self.tp * self.ep * self.pp

    @property
    def ndp(self) -> int:
        """Number of data-parallel groups (= dp)."""
        return self.dp

    @property
    def grad_shard_degree(self) -> int:
        """Ranks sharing one gradient shard: CP extends the DP group when
        communicating parameters and gradients (Section 4, Integration).
        Expert parameters are disjoint across EP ranks, so EP does not
        widen the shard group."""
        return self.dp * self.cp

    def describe(self) -> str:
        ep = f" ep={self.ep}" if self.ep > 1 else ""
        return (
            f"tp={self.tp} cp={self.cp}{ep} pp={self.pp} dp={self.dp} "
            f"({self.zero.name}, world={self.world_size})"
        )


@dataclass(frozen=True)
class JobConfig:
    """One training phase's hyperparameters.

    Attributes:
        seq: Sequence length in tokens.
        gbs: Global batch size in sequences.
        ngpu: Total GPUs used by the phase.
        mbs: Micro-batch size in sequences (1 throughout Llama 3).
    """

    seq: int
    gbs: int
    ngpu: int
    mbs: int = 1

    def __post_init__(self) -> None:
        for name in ("seq", "gbs", "ngpu", "mbs"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def tokens_per_step(self) -> int:
        """Global token budget per optimizer step (16M for Llama 3)."""
        return self.seq * self.gbs

    def batch_per_dp_group(self, parallel: ParallelConfig) -> int:
        """``bs``: sequences each data-parallel group processes per step.

        EP ranks carry *distinct* micro-batches — expert parallelism is
        carved out of the data dimension (each EP rank routes its own
        tokens through the all-to-all), so the replica count for batch
        division is ``dp * ep``, not ``dp`` alone.
        """
        if parallel.world_size != self.ngpu:
            raise ValueError(
                f"parallel config covers {parallel.world_size} GPUs, "
                f"job uses {self.ngpu}"
            )
        replicas = parallel.dp * parallel.ep
        if self.gbs % replicas != 0:
            raise ValueError(
                f"gbs={self.gbs} not divisible by dp*ep={replicas}"
            )
        return self.gbs // replicas

    def micro_batches(self, parallel: ParallelConfig) -> int:
        """Total micro-batches per pipeline per step (bs / mbs)."""
        bs = self.batch_per_dp_group(parallel)
        if bs % self.mbs != 0:
            raise ValueError(f"bs={bs} not divisible by mbs={self.mbs}")
        return bs // self.mbs


#: Llama 3 405B short-context phase (Table 2, row 1).
LLAMA3_405B_SHORT_CONTEXT = JobConfig(seq=8192, gbs=2048, ngpu=16384)

#: Llama 3 405B long-context phase (Table 2, row 2).
LLAMA3_405B_LONG_CONTEXT = JobConfig(seq=131072, gbs=128, ngpu=16384)
