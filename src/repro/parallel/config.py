"""4D parallelism configuration and training-job hyperparameters.

Terminology follows Table 1 of the paper exactly:

========  ==================================================================
``ngpu``  number of GPUs
``seq``   sequence length
``gbs``   global batch size (in sequences)
``bs``    batch size per data-parallel group
``mbs``   micro-batch size in pipeline stage execution
``dp/tp/cp/pp``  GPUs in one data/tensor/context/pipeline parallel group
``ndp``   number of data-parallel groups
``v``     number of virtual stages on one PP rank
``nc``    consecutive micro-batches per virtual stage per round
``nmb``   micro-batches per virtual stage
``tmb``   total micro-batches on one PP rank (= nmb * v)
========  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ZeroStage(Enum):
    """FSDP sharding strategy, aligned with DeepSpeed's ZeRO definitions
    (Section 2.1): what is sharded across the data-parallel group."""

    ZERO_1 = 1  # optimizer states only
    ZERO_2 = 2  # optimizer states + gradients
    ZERO_3 = 3  # optimizer states + gradients + parameters


@dataclass(frozen=True)
class ParallelConfig:
    """Sizes of the four parallelism dimensions.

    The product ``tp * cp * pp * dp`` must equal the world size; the order
    of dimensions when mapping to physical ranks is fixed to
    [TP, CP, PP, DP] inner -> outer (Section 5.2).
    """

    tp: int = 1
    cp: int = 1
    pp: int = 1
    dp: int = 1
    zero: ZeroStage = ZeroStage.ZERO_1

    def __post_init__(self) -> None:
        for name in ("tp", "cp", "pp", "dp"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def world_size(self) -> int:
        return self.tp * self.cp * self.pp * self.dp

    @property
    def model_parallel_size(self) -> int:
        """GPUs holding one model replica's parameters (TP x PP)."""
        return self.tp * self.pp

    @property
    def ndp(self) -> int:
        """Number of data-parallel groups (= dp)."""
        return self.dp

    @property
    def grad_shard_degree(self) -> int:
        """Ranks sharing one gradient shard: CP extends the DP group when
        communicating parameters and gradients (Section 4, Integration)."""
        return self.dp * self.cp

    def describe(self) -> str:
        return (
            f"tp={self.tp} cp={self.cp} pp={self.pp} dp={self.dp} "
            f"({self.zero.name}, world={self.world_size})"
        )


@dataclass(frozen=True)
class JobConfig:
    """One training phase's hyperparameters.

    Attributes:
        seq: Sequence length in tokens.
        gbs: Global batch size in sequences.
        ngpu: Total GPUs used by the phase.
        mbs: Micro-batch size in sequences (1 throughout Llama 3).
    """

    seq: int
    gbs: int
    ngpu: int
    mbs: int = 1

    def __post_init__(self) -> None:
        for name in ("seq", "gbs", "ngpu", "mbs"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def tokens_per_step(self) -> int:
        """Global token budget per optimizer step (16M for Llama 3)."""
        return self.seq * self.gbs

    def batch_per_dp_group(self, parallel: ParallelConfig) -> int:
        """``bs``: sequences each data-parallel group processes per step."""
        if parallel.world_size != self.ngpu:
            raise ValueError(
                f"parallel config covers {parallel.world_size} GPUs, "
                f"job uses {self.ngpu}"
            )
        if self.gbs % parallel.dp != 0:
            raise ValueError(
                f"gbs={self.gbs} not divisible by dp={parallel.dp}"
            )
        return self.gbs // parallel.dp

    def micro_batches(self, parallel: ParallelConfig) -> int:
        """Total micro-batches per pipeline per step (bs / mbs)."""
        bs = self.batch_per_dp_group(parallel)
        if bs % self.mbs != 0:
            raise ValueError(f"bs={bs} not divisible by mbs={self.mbs}")
        return bs // self.mbs


#: Llama 3 405B short-context phase (Table 2, row 1).
LLAMA3_405B_SHORT_CONTEXT = JobConfig(seq=8192, gbs=2048, ngpu=16384)

#: Llama 3 405B long-context phase (Table 2, row 2).
LLAMA3_405B_LONG_CONTEXT = JobConfig(seq=131072, gbs=128, ngpu=16384)
