"""Closed-form per-rank peak memory model under 4D parallelism.

This is the estimator the Section 5 planner uses to decide whether a
candidate (tp, pp) fits in HBM, and the analytical counterpart of the exact
event-driven accounting in :mod:`repro.pp.grad_memory` (tests cross-check
the two).

Accounting per PP rank:

* **Parameters** — BF16.  Resident unsharded under ZeRO-1/2; under ZeRO-3
  the resident copy is sharded over the DP x CP group and one virtual
  stage's worth is transiently gathered.
* **Gradients** — FP32 (the paper accumulates PP micro-batch gradients in
  FP32, Section 6.2).  Unsharded under ZeRO-1; under ZeRO-2/3 the resident
  buffer is sharded and one virtual stage is transiently unsharded before
  its reduce-scatter.
* **Optimizer state** — FP32 master + two Adam moments, always sharded over
  DP x CP (all ZeRO stages shard optimizer state).
* **Activations** — saved tensors of every in-flight micro-batch, where
  the in-flight count comes from the schedule (warm-up depth for 1F1B,
  all micro-batches for all-forward-all-backward).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import TextModelConfig
from repro.model.flops import expert_params, layer_params
from repro.model.memory import (
    BF16_BYTES,
    FP32_BYTES,
    GIB,
    activation_bytes_per_layer,
    embedding_bytes,
    optimizer_state_bytes_per_param,
    output_head_bytes,
)
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage


@dataclass(frozen=True)
class RankMemory:
    """Peak memory breakdown for one GPU rank, in bytes."""

    params: float
    grads: float
    optimizer: float
    activations: float
    embedding_and_head: float

    @property
    def total(self) -> float:
        return (
            self.params + self.grads + self.optimizer
            + self.activations + self.embedding_and_head
        )

    @property
    def total_gb(self) -> float:
        return self.total / GIB


def estimate_rank_memory(
    model: TextModelConfig,
    parallel: ParallelConfig,
    job: JobConfig,
    layers_on_rank: int,
    in_flight_microbatches: float,
    virtual_stages: int = 1,
    has_embedding: bool = False,
    has_output_head: bool = False,
    recompute: bool = False,
) -> RankMemory:
    """Peak memory for one PP rank.

    Args:
        model: Architecture.
        parallel: 4D parallel sizes and ZeRO stage.
        job: Phase hyperparameters (seq, mbs).
        layers_on_rank: Transformer layers hosted by this PP rank.
        in_flight_microbatches: Peak number of *virtual-stage executions*
            whose forward activations are alive simultaneously (the
            warm-up depth for 1F1B, all ``nmb * v`` for AFAB); each such
            execution holds ``layers_on_rank / virtual_stages`` layers of
            activations.
        virtual_stages: ``v``; sizes the transient unsharded-gradient /
            gathered-parameter windows under ZeRO-2/3.
        has_embedding: Whether this rank hosts the input embedding.
        has_output_head: Whether this rank hosts the output projection.
        recompute: Full activation recomputation — only each layer's input
            is saved; the rest is recomputed in backward.
    """
    if layers_on_rank < 0 or in_flight_microbatches < 0:
        raise ValueError("layers_on_rank and in_flight_microbatches must be >= 0")
    if virtual_stages < 1:
        raise ValueError("virtual_stages must be >= 1")

    tp, cp = parallel.tp, parallel.cp
    shard = parallel.grad_shard_degree  # dp * cp
    # EP shards the expert weights (each EP rank owns n_experts / ep of
    # them); the dense remainder of the layer is replicated across EP and
    # sharded by TP like any other weight.
    experts = expert_params(model)
    per_layer_params = (
        layer_params(model) - experts + experts / parallel.ep
    ) / tp
    rank_params = layers_on_rank * per_layer_params
    stage_params = rank_params / virtual_stages

    # Parameters (BF16).
    if parallel.zero is ZeroStage.ZERO_3:
        params = BF16_BYTES * (rank_params / shard + stage_params)
    else:
        params = BF16_BYTES * rank_params

    # Gradients (FP32 accumulation buffers).
    if parallel.zero is ZeroStage.ZERO_1:
        grads = FP32_BYTES * rank_params
    else:
        grads = FP32_BYTES * (rank_params / shard + stage_params)

    # Optimizer state: always sharded over DP x CP.
    optimizer = optimizer_state_bytes_per_param() * rank_params / shard

    # Activations.
    act = activation_bytes_per_layer(
        model, seq=job.seq, mbs=job.mbs, tp=tp, cp=cp
    )
    layers_per_stage = layers_on_rank / virtual_stages
    if recompute:
        # Only each layer's input survives; one layer's full set is alive
        # transiently during its recomputed backward.
        tokens = job.seq * job.mbs / cp / tp
        per_layer_saved = BF16_BYTES * tokens * model.dim
        activations = (
            in_flight_microbatches * layers_per_stage * per_layer_saved
            + act.total
        )
    else:
        activations = in_flight_microbatches * layers_per_stage * act.total

    # Embedding / output head (BF16 weights + FP32 grads, TP-sharded).
    extra = 0.0
    if has_embedding:
        extra += embedding_bytes(model, tp) * (1 + FP32_BYTES / BF16_BYTES)
    if has_output_head:
        extra += output_head_bytes(model, tp) * (1 + FP32_BYTES / BF16_BYTES)

    return RankMemory(
        params=params,
        grads=grads,
        optimizer=optimizer,
        activations=activations,
        embedding_and_head=extra,
    )
