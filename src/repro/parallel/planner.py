"""The Section 5 parallelism planner.

Given a model, a training phase (GPU count, global token budget, sequence
length) and a cluster, derive the sizes of the four parallelism dimensions
the way Section 5.1 does:

1. **TP** — the smallest power of two that keeps ``bs >= 1`` given the
   batch-size constraint, capped at the node size so TP stays on NVLink.
2. **2D vs 3D** — reject 2D (ZeRO-3 + TP) when the per-token arithmetic
   intensity over FSDP communication is far below the hardware
   FLOPs-to-bandwidth ratio (the paper's 8K-token example: 8K FLOPs/byte
   vs ~19.78K).
3. **PP** — the smallest power of two whose per-rank memory estimate fits
   in HBM with headroom.
4. **CP** — the smallest power of two that restores ``bs >= pp`` for long
   sequences; DP is what CP replaces (TP and PP cannot shrink).
5. **ZeRO mode / schedule** — ZeRO-1 + 1F1B when ``bs >= 2 * pp``, else
   ZeRO-2 + all-forward-all-backward (Section 3.1.3).

For MoE models the cost-aware rerank adds **EP** as a planning axis: every
power-of-two divisor of the expert count joins the (tp, pp) sweep, and the
simulated timeline decides whether slicing experts across ranks (TP) or
spreading whole experts (EP, paying the token all-to-all) wins — the
trade flips toward EP as experts grow more numerous and smaller.  The
analytic first-fit path keeps ``ep=1`` (all experts resident per rank), so
dense planning and Table 2 are byte-identical to the 4D planner.

The planner records its reasoning as human-readable rationale lines so the
Table 2 benchmark can show *why* each number came out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.parallel.memory import estimate_rank_memory
from repro.pp.analysis import (
    ScheduleShape,
    default_nc,
    peak_in_flight_microbatches,
)
from repro.pp.registry import schedule_entry, schedule_kinds

#: Fraction of HBM the planner is willing to fill (the rest is reserve for
#: fragmentation, NCCL buffers, and CUDA context).
MEMORY_HEADROOM = 0.90


@dataclass(frozen=True)
class Plan:
    """Planner output: chosen sizes plus the reasoning trail."""

    parallel: ParallelConfig
    job: JobConfig
    bs: int
    virtual_stages: int
    schedule: str  # a registered schedule kind ("1f1b", "afab", ...)
    estimated_rank0_memory_gb: float
    rationale: List[str] = field(default_factory=list)
    #: ``cost_aware=True`` only: every (tp, pp[, ep]) candidate evaluated,
    #: the feasible ones ranked by simulated TFLOPs/GPU (best first).
    candidates: List[dict] = field(default_factory=list)

    def describe(self) -> str:
        lines = [self.parallel.describe(), f"bs={self.bs} schedule={self.schedule}"]
        lines.extend(f"  - {r}" for r in self.rationale)
        return "\n".join(lines)


def arithmetic_intensity_2d(seq: int, dtype_bytes: int = 2) -> float:
    """FLOPs per FSDP-ZeRO-3 communication byte at batch size 1 (Section
    5.1): each parameter costs ``dtype_bytes`` on the wire and contributes
    2 FLOPs per token in forward."""
    return 2.0 * seq / dtype_bytes


def hardware_flops_per_byte(cluster: ClusterSpec) -> float:
    """Peak compute over per-rank inter-node bandwidth — the ratio 2D
    parallelism must beat to hide FSDP communication (989K / 50 for the
    production cluster)."""
    return cluster.gpu.peak_flops / cluster.inter_node_bandwidth()


def _power_of_two_at_least(x: float) -> int:
    return 1 << max(0, math.ceil(math.log2(max(x, 1.0))))


def _rank0_memory_gb(
    model: TextModelConfig,
    parallel: ParallelConfig,
    job: JobConfig,
    v: int,
    nc: int,
    nmb: int,
) -> float:
    layers_rank0 = math.ceil(model.n_layers / parallel.pp)
    if parallel.pp == 1:
        # No pipeline: one micro-batch's activations alive at a time.
        v, in_flight = 1, 1
    else:
        in_flight = peak_in_flight_microbatches(
            parallel.pp, 0, v, min(nc, nmb), nmb,
            all_forward_all_backward=(nc < parallel.pp),
        )
    mem = estimate_rank_memory(
        model, parallel, job,
        layers_on_rank=layers_rank0,
        in_flight_microbatches=in_flight,
        virtual_stages=v,
        has_embedding=True,
        has_output_head=(parallel.pp == 1),
    )
    return mem.total_gb


def _evaluate_candidate(
    model: TextModelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    tp: int,
    pp: int,
    capacity_gb: float,
    schedule_kind: Optional[str] = None,
    ep: int = 1,
) -> dict:
    """Price one (tp, pp, ep) candidate end to end: derive cp/dp/bs/ZeRO
    the Section 5.1 way, gate on memory, then simulate a full step on the
    lowered timeline for its achieved TFLOPs/GPU.

    ``schedule_kind`` pins the pipeline schedule the candidate simulates
    under (any registered kind); None keeps the Section 3.1.3 family
    pick.  Kinds whose support set excludes the candidate's shape (after
    the registry ``constrain`` hook coerces what it can, e.g. ``v = 1``
    for the classic schedules) come back infeasible with the registry's
    reason.
    """
    from repro.train.step import simulate_step  # deferred: train -> parallel

    cand: dict = {"tp": tp, "pp": pp, "ep": ep, "cp": None, "dp": None,
                  "bs": None, "schedule": None,
                  "schedule_kind": schedule_kind,
                  "zero": None, "memory_gb": None,
                  "tflops_per_gpu": None, "feasible": False, "reason": ""}
    cp_needed = job.ngpu / (job.gbs * tp)
    cp = _power_of_two_at_least(cp_needed) if cp_needed > 1 else 1
    cand["cp"] = cp
    if job.ngpu % (tp * cp * ep * pp) != 0:
        cand["reason"] = f"ngpu={job.ngpu} not divisible by tp*cp*ep*pp"
        return cand
    dp = job.ngpu // (tp * cp * ep * pp)
    bs = job.gbs // (dp * ep)  # EP ranks carry distinct micro-batches
    cand.update(dp=dp, bs=bs)
    if dp < 1 or bs < 1:
        cand["reason"] = "batch constraint leaves bs < 1"
        return cand
    if bs >= 2 * pp:
        zero, schedule = ZeroStage.ZERO_1, "1f1b"
    else:
        zero, schedule = ZeroStage.ZERO_2, "afab"
    cand.update(schedule=schedule, zero=zero.value)
    # Memory gate: same trial as the Section 5.1 first-fit's step 3 —
    # ZeRO-1 gradient residency at cp=1 — so cost-aware only re-ranks
    # depths the analytic derivation already considers safe rather than
    # admitting ones that fit solely under the ZeRO-2/AFAB fallback.
    v = math.ceil(model.n_layers / pp)
    dp_cp = job.ngpu // (tp * ep * pp)
    trial = ParallelConfig(tp=tp, cp=1, ep=ep, pp=pp, dp=dp_cp,
                           zero=ZeroStage.ZERO_1)
    bs_trial = max(job.gbs // (dp_cp * ep), 1)
    nmb_trial = max(bs_trial // job.mbs, 1)
    mem_gb = _rank0_memory_gb(model, trial, job, v,
                              default_nc(pp, nmb_trial), nmb_trial)
    cand["memory_gb"] = mem_gb
    if mem_gb > capacity_gb:
        cand["reason"] = (
            f"rank-0 peak {mem_gb:.1f} GiB exceeds "
            f"{capacity_gb:.0f} GiB usable HBM")
        return cand
    parallel = ParallelConfig(tp=tp, cp=cp, ep=ep, pp=pp, dp=dp, zero=zero)
    kind = schedule_kind if schedule_kind is not None else schedule
    cand["schedule_kind"] = kind
    # Coerce the candidate shape into the kind's support set where the
    # registry can (v, nc); a kind that needs a different micro-batch
    # count than the batch allows is simply infeasible here.
    nmb = max(bs // job.mbs, 1)
    shape = ScheduleShape(pp=pp, v=v, nc=default_nc(pp, nmb), nmb=nmb)
    entry = schedule_entry(kind)
    if entry.constrain is not None:
        constrained = entry.constrain(shape)
        if constrained.nmb != nmb:
            cand["reason"] = (
                f"schedule {kind!r} needs nmb={constrained.nmb}, "
                f"batch gives nmb={nmb}")
            return cand
        shape = constrained
    sim_v, sim_nc = shape.v, shape.nc
    reason = entry.unsupported_reason(shape)
    if reason:
        cand["reason"] = f"schedule {kind!r} unsupported: {reason}"
        return cand
    cand["v"] = sim_v
    try:
        rep = simulate_step(model, parallel, job, cluster,
                            schedule_kind=kind, v=sim_v, nc=sim_nc)
    except (ValueError, RuntimeError) as exc:
        cand["reason"] = f"simulation failed: {exc}"
        return cand
    cand.update(tflops_per_gpu=rep.tflops_per_gpu, feasible=True)
    return cand


def plan_parallelism(
    model: TextModelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    max_pp: int = 64,
    cost_aware: bool = False,
    schedule_kind: Optional[str] = None,
) -> Plan:
    """Derive the 4D parallelism configuration for a training phase.

    Reproduces Table 2: for the 405B model on 16,384 GPUs it returns
    (tp=8, cp=1, pp=16, dp=128) at seq 8K / gbs 2048, and
    (tp=8, cp=16, pp=16, dp=8) at seq 131K / gbs 128.

    With ``cost_aware=True``, the first-fit choice is replaced by a
    simulated-throughput ranking: every (tp, pp) power-of-two pair is
    priced by lowering and executing a full step timeline
    (:func:`repro.train.step.simulate_step` — the same path
    ``pp.autotune`` and ``hardware.whatif`` use), and the feasible
    candidate with the highest TFLOPs/GPU wins.  All candidates, with
    per-candidate infeasibility reasons, land in ``Plan.candidates``.
    For MoE models the sweep also covers EP (power-of-two divisors of the
    expert count), so the planner decides the EP-vs-TP placement of the
    expert FFNs on simulated evidence.

    ``schedule_kind`` adds the schedule as a planning axis: a registered
    kind pins what cost-aware candidates simulate under, and ``"all"``
    sweeps every registered kind per (tp, pp) pair so the ranking can
    trade pipeline depth against schedule shape.  The analytic (non
    cost-aware) derivation is schedule-independent, so Table 2 is
    reproduced unchanged for any pinned kind.
    """
    if job.ngpu > cluster.num_gpus:
        raise ValueError(
            f"job wants {job.ngpu} GPUs but cluster has {cluster.num_gpus}"
        )
    if schedule_kind is not None and schedule_kind != "all":
        schedule_entry(schedule_kind)  # raises on unknown kinds
    rationale: List[str] = []

    # --- Step 1: TP --------------------------------------------------
    # bs = gbs * tp * pp * cp / ngpu, so requiring bs >= pp with cp = 1
    # gives tp >= ngpu / gbs (the pp terms cancel — the paper's Section
    # 5.1 derivation).  TP is capped at the node size so its fully
    # exposed collectives stay on NVLink; any remaining shortfall is
    # CP's job in step 4.
    node = cluster.gpus_per_node
    tp_needed = _power_of_two_at_least(job.ngpu / job.gbs)
    tp_min = min(tp_needed, node)

    # --- Step 2: 2D vs 3D --------------------------------------------
    ai = arithmetic_intensity_2d(job.seq)
    hw = hardware_flops_per_byte(cluster)
    use_3d = ai < hw
    if use_3d:
        rationale.append(
            f"3D over 2D: arithmetic intensity {ai:,.0f} FLOPs/byte < "
            f"hardware ratio {hw:,.0f}; FSDP ZeRO-3 comm cannot hide "
            "(Section 5.1)"
        )
    else:
        rationale.append(
            f"2D viable: arithmetic intensity {ai:,.0f} >= hardware ratio "
            f"{hw:,.0f}"
        )

    # --- Step 3: TP and PP (and EP for MoE) to fit memory --------------
    # Start from the batch-minimal TP; if no pipeline depth fits, escalate
    # TP toward the node size (more TP halves per-rank weights and
    # activations) before giving up.  MoE models get an inner EP
    # escalation: spreading whole experts across EP ranks divides the
    # expert weights the way deeper PP divides the layers, so a model
    # whose replicated experts overflow HBM can still fit.  Dense models
    # have an EP axis of (1,), leaving the 4D derivation untouched.
    capacity = cluster.gpu.hbm_capacity_gb * MEMORY_HEADROOM
    ep_axis = _ep_axis(model, job)
    chosen_pp: Optional[int] = None
    ep = 1
    tp = tp_min
    while tp <= node:
        pp = 1
        while pp <= max_pp and tp * pp <= job.ngpu:
            # Candidate: v = one layer per virtual stage.
            layers_per_rank = math.ceil(model.n_layers / pp)
            v = layers_per_rank
            for trial_ep in ep_axis:
                dp_cp = job.ngpu // (tp * trial_ep * pp)
                if dp_cp < 1:
                    continue
                trial = ParallelConfig(tp=tp, cp=1, ep=trial_ep, pp=pp,
                                       dp=dp_cp, zero=ZeroStage.ZERO_1)
                bs = max(job.gbs // (dp_cp * trial_ep), 1)
                nmb = max(bs // job.mbs, 1)
                nc = default_nc(pp, nmb)
                mem_gb = _rank0_memory_gb(model, trial, job, v, nc, nmb)
                if mem_gb <= capacity:
                    chosen_pp, ep = pp, trial_ep
                    break
            if chosen_pp is not None:
                break
            pp *= 2
        if chosen_pp is not None:
            break
        tp *= 2
    if chosen_pp is None:
        raise ValueError(
            "no (tp, pp) combination fits the model in memory on this cluster"
        )
    pp = chosen_pp
    if ep > 1:
        rationale.append(
            f"ep={ep}: {model.n_experts} experts overflow HBM replicated; "
            f"spreading {model.n_experts // ep} per rank over EP fits "
            "(paying the token all-to-all)"
        )
    rationale.insert(0, (
        f"tp={tp}: batch constraint needs tp*cp >= ngpu/gbs = "
        f"{job.ngpu / job.gbs:.0f} (minimum tp={tp_min}); tp capped at "
        f"node size {node} to keep TP on NVLink, escalated as needed to "
        "fit memory (Section 5.1)"
    ))
    rationale.append(
        f"pp={pp}: first power of two where rank-0 peak "
        f"{mem_gb:.1f} GiB fits in {capacity:.0f} GiB usable HBM"
    )
    layers_per_rank = math.ceil(model.n_layers / pp)
    v = layers_per_rank

    # --- Step 4: CP to restore bs >= pp -------------------------------
    # cp >= ngpu / (gbs * tp) gives bs >= pp with the chosen tp, pp.
    cp_needed = job.ngpu / (job.gbs * tp)
    cp = _power_of_two_at_least(cp_needed) if cp_needed > 1 else 1
    if cp > 1:
        rationale.append(
            f"cp={cp}: long-context gbs={job.gbs} leaves bs < pp without "
            f"CP; cp >= ngpu/(gbs*tp) = {cp_needed:.0f} restores bs >= pp "
            "by replacing DP (Section 5.1)"
        )
    else:
        rationale.append("cp=1: gbs is large enough that bs >= pp without CP")

    dp = job.ngpu // (tp * cp * ep * pp)
    if dp < 1 or tp * cp * ep * pp * dp != job.ngpu:
        raise ValueError(
            f"ngpu={job.ngpu} not divisible by tp*cp*ep*pp = "
            f"{tp * cp * ep * pp}"
        )
    bs = job.gbs // (dp * ep)

    # --- Step 5: ZeRO mode and schedule (Section 3.1.3) ----------------
    if bs >= 2 * pp:
        zero, schedule = ZeroStage.ZERO_1, "1f1b"
        rationale.append(
            f"ZeRO-1 + 1F1B: bs={bs} >= 2*pp={2 * pp}; keep gradients "
            "unsharded to avoid reduce-scatter traffic (Section 3.1.3)"
        )
    else:
        zero, schedule = ZeroStage.ZERO_2, "afab"
        rationale.append(
            f"ZeRO-2 + all-forward-all-backward: bs={bs} < 2*pp={2 * pp}; "
            "reshard gradients to save memory (Section 3.1.3)"
        )

    parallel = ParallelConfig(tp=tp, cp=cp, ep=ep, pp=pp, dp=dp, zero=zero)
    nmb = bs // job.mbs
    nc = default_nc(pp, nmb)
    mem_gb = _rank0_memory_gb(model, parallel, job, v, nc, nmb)
    plan = Plan(
        parallel=parallel,
        job=job,
        bs=bs,
        virtual_stages=v,
        schedule=schedule,
        estimated_rank0_memory_gb=mem_gb,
        rationale=rationale,
    )
    if not cost_aware:
        return plan
    return _cost_aware_rerank(
        model, job, cluster, plan, rationale, tp_min, node, max_pp, capacity,
        schedule_kind=schedule_kind)


def _schedule_axis(schedule_kind: Optional[str]) -> Sequence[Optional[str]]:
    """The schedule kinds a cost-aware rerank sweeps per (tp, pp) pair."""
    if schedule_kind is None:
        return (None,)  # the Section 3.1.3 family pick, as before
    if schedule_kind == "all":
        return schedule_kinds()
    return (schedule_kind,)


def _ep_axis(model: TextModelConfig, job: JobConfig) -> Sequence[int]:
    """The expert-parallel sizes a cost-aware rerank sweeps.

    Dense models have no experts to spread, so the axis collapses to
    ``(1,)`` and the sweep is byte-identical to the 4D planner.  For MoE
    models every power of two that divides the expert count (each EP rank
    must own a whole number of experts) and fits in the GPU budget joins
    the sweep.
    """
    if not model.is_moe:
        return (1,)
    axis = [1]
    ep = 2
    while ep <= model.n_experts and ep <= job.ngpu:
        if model.n_experts % ep == 0:
            axis.append(ep)
        ep *= 2
    return tuple(axis)


def _cost_aware_rerank(
    model: TextModelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    plan: Plan,
    rationale: List[str],
    tp_min: int,
    node: int,
    max_pp: int,
    capacity: float,
    schedule_kind: Optional[str] = None,
) -> Plan:

    # --- Cost-aware re-ranking -----------------------------------------
    # Price every (tp, pp) pair — times every schedule kind on the axis,
    # times every EP size for MoE models — on the simulated timeline and
    # let throughput, not first-fit order, pick the winner.
    candidates: List[dict] = []
    ep_axis = _ep_axis(model, job)
    cand_tp = tp_min
    while cand_tp <= node:
        cand_pp = 1
        while cand_pp <= max_pp and cand_tp * cand_pp <= job.ngpu:
            for cand_ep in ep_axis:
                if cand_tp * cand_pp * cand_ep > job.ngpu:
                    continue
                for kind in _schedule_axis(schedule_kind):
                    candidates.append(_evaluate_candidate(
                        model, job, cluster, cand_tp, cand_pp, capacity,
                        schedule_kind=kind, ep=cand_ep))
            cand_pp *= 2
        cand_tp *= 2
    candidates.sort(
        key=lambda c: (not c["feasible"], -(c["tflops_per_gpu"] or 0.0)))
    feasible = [c for c in candidates if c["feasible"]]
    if not feasible:
        return replace(plan, candidates=candidates, rationale=rationale + [
            "cost-aware: no candidate survived memory and simulation; "
            "keeping the first-fit plan"])
    best = feasible[0]
    chosen = ParallelConfig(
        tp=best["tp"], cp=best["cp"], ep=best.get("ep", 1), pp=best["pp"],
        dp=best["dp"], zero=ZeroStage(best["zero"]))
    best_v = best.get("v") or math.ceil(model.n_layers / chosen.pp)
    best_nmb = max(best["bs"] // job.mbs, 1)
    best_nc = default_nc(chosen.pp, best_nmb)
    best_schedule = (best["schedule_kind"] if schedule_kind is not None
                     else best["schedule"])
    return Plan(
        parallel=chosen,
        job=job,
        bs=best["bs"],
        virtual_stages=best_v,
        schedule=best_schedule,
        estimated_rank0_memory_gb=_rank0_memory_gb(
            model, chosen, job, best_v, best_nc, best_nmb),
        rationale=rationale + [
            f"cost-aware: tp={chosen.tp} pp={chosen.pp}"
            + (f" ep={chosen.ep}" if chosen.ep > 1 else "")
            + f" schedule={best['schedule_kind']} wins at "
            f"{best['tflops_per_gpu']:.0f} TFLOPs/GPU over "
            f"{len(feasible)} feasible of {len(candidates)} candidates"],
        candidates=candidates,
    )


def replan_for_gpu_count(
    model: TextModelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    max_ngpu: int,
    max_pp: int = 64,
    cost_aware: bool = False,
) -> Plan:
    """Replan after permanent capacity loss: the elastic-restart path.

    Finds the largest node-aligned GPU count ``<= max_ngpu`` for which
    Section 5.1 yields a schedulable plan, stepping down one node at a
    time past counts the divisibility constraints reject (e.g. a gbs the
    shrunken dp no longer divides).  The job keeps its gbs and sequence
    length — the paper's phases fix the token budget per step, so losing
    nodes shows up as a slower step, not a smaller batch.

    Raises ``ValueError`` when no node-aligned count down to one node
    admits a plan.
    """
    node = cluster.gpus_per_node
    for ngpu in range(max_ngpu - max_ngpu % node, 0, -node):
        shrunk_job = replace(job, ngpu=ngpu)
        shrunk_cluster = replace(cluster, num_nodes=ngpu // node)
        try:
            plan = plan_parallelism(model, shrunk_job, shrunk_cluster,
                                    max_pp=max_pp, cost_aware=cost_aware)
            # A plan is only usable if the schedule can actually split
            # the batch into whole micro-batches.
            shrunk_job.micro_batches(plan.parallel)
        except ValueError:
            continue
        return plan
    raise ValueError(
        f"no feasible plan at or below {max_ngpu} GPUs "
        f"({node} per node) for this job")
