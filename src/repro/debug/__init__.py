"""Debugging at scale: slow-rank localisation and memory snapshots."""

from repro.debug.trace_analysis import (
    SlowRankReport,
    LevelDecision,
    identify_slow_rank,
    SEARCH_ORDER,
)
from repro.debug.workload import WorkloadSpec, run_synthetic_workload
from repro.debug.inflection import (
    Changepoint,
    detect_changepoint,
    detect_fleet_regressions,
    synth_step_durations,
)
from repro.debug.memory_snapshot import (
    MemorySnapshot,
    AllocationEvent,
    pp_output_release_savings,
)

__all__ = [
    "SlowRankReport",
    "LevelDecision",
    "identify_slow_rank",
    "SEARCH_ORDER",
    "WorkloadSpec",
    "run_synthetic_workload",
    "Changepoint",
    "detect_changepoint",
    "detect_fleet_regressions",
    "synth_step_durations",
    "MemorySnapshot",
    "AllocationEvent",
    "pp_output_release_savings",
]
