"""Memory-snapshot tracking and the Section 6.3 optimizations.

Models PyTorch's memory-snapshot tool: a tagged allocation timeline with
exact peak attribution.  On top of it, two optimizations the paper applies
to 4D parallelism:

* **Early release of P2P-sent outputs** — a PP stage only needs the
  *metadata* (shape) of its forward output to start backward, but a
  reference-counting autograd engine keeps the full tensor alive until the
  backward executes.  Releasing the storage right after the P2P send (by
  resizing the storage to zero) removes one activation-sized tensor per
  in-flight micro-batch.
* The resulting headroom is what let Llama 3 turn off activation
  recomputation (worth 17.5% TFLOPs on the scaled-down model, Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.pp.schedule import OpKind, PipelineSchedule


@dataclass(frozen=True)
class AllocationEvent:
    """One allocator action."""

    time: float
    tag: str
    delta_bytes: float  # positive = alloc, negative = free / resize-to-zero


class MemorySnapshot:
    """Tagged allocation recorder with peak attribution.

    Mirrors the workflow of the PyTorch memory-snapshot tool the paper
    uses: record every (de)allocation with a tag, then ask for the peak
    and which tags held memory at that moment.
    """

    def __init__(self) -> None:
        self._events: List[AllocationEvent] = []
        self._live: Dict[str, float] = {}

    def alloc(self, time: float, tag: str, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError("alloc size must be non-negative")
        self._events.append(AllocationEvent(time, tag, nbytes))
        self._live[tag] = self._live.get(tag, 0.0) + nbytes

    def free(self, time: float, tag: str, nbytes: Optional[float] = None) -> None:
        """Free ``nbytes`` of a tag (all of it by default) — the
        resize-storage-to-zero trick frees without waiting for refcounts."""
        held = self._live.get(tag, 0.0)
        amount = held if nbytes is None else nbytes
        if amount - held > 1e-9:
            raise ValueError(f"freeing more than held for tag {tag!r}")
        self._events.append(AllocationEvent(time, tag, -amount))
        self._live[tag] = held - amount

    @property
    def events(self) -> List[AllocationEvent]:
        return list(self._events)

    def timeline(self) -> List[Tuple[float, float]]:
        """(time, total live bytes) after each event, in time order."""
        out = []
        total = 0.0
        for e in sorted(self._events, key=lambda e: e.time):
            total += e.delta_bytes
            out.append((e.time, total))
        return out

    def peak(self) -> Tuple[float, float]:
        """(peak bytes, time of peak)."""
        best, best_t = 0.0, 0.0
        for t, total in self.timeline():
            if total > best:
                best, best_t = total, t
        return best, best_t

    def live_at_peak(self) -> Dict[str, float]:
        """Bytes held per tag at the peak moment."""
        _, peak_t = self.peak()
        live: Dict[str, float] = {}
        for e in sorted(self._events, key=lambda e: e.time):
            if e.time > peak_t:
                break
            live[e.tag] = live.get(e.tag, 0.0) + e.delta_bytes
        return {k: v for k, v in live.items() if v > 0}


def pp_output_release_savings(
    schedule: PipelineSchedule,
    ppr: int,
    output_bytes: float,
    act_bytes: float,
) -> Tuple[float, float]:
    """Peak memory on one rank with and without early output release.

    Without the optimization, every forward's *output* tensor stays alive
    (held by autograd) until that micro-batch's backward; with it, the
    output is freed right after the P2P send — only the saved activations
    remain.  Returns ``(peak_without, peak_with)`` in bytes.
    """
    if output_bytes < 0 or act_bytes < 0:
        raise ValueError("byte sizes must be non-negative")

    def run(release_early: bool) -> float:
        snap = MemorySnapshot()
        t = 0.0
        for op in schedule.program(ppr):
            t += 1.0
            key = f"mb{op.microbatch}:vs{op.virtual_stage}"
            if op.kind is OpKind.FORWARD:
                snap.alloc(t, f"act:{key}", act_bytes)
                snap.alloc(t, f"out:{key}", output_bytes)
                if release_early:
                    # Freed right after the send completes.
                    snap.free(t + 0.5, f"out:{key}")
            else:
                snap.free(t, f"act:{key}")
                if not release_early:
                    snap.free(t, f"out:{key}")
        return snap.peak()[0]

    return run(release_early=False), run(release_early=True)
