"""Synthetic 5D-parallel workload with fault injection (the Figure 8 setup).

Runs a few training-step-shaped iterations over a full device mesh: per
layer, every rank computes, then its TP group all-gathers, then its CP
group gathers KV, then (when ``ep > 1``) its EP group trades expert
tokens in an all-to-all; per step the DP x CP group reduce-scatters
gradients and PP neighbours exchange activations.  Any rank can be given a *slowdown*
(extra seconds per compute op — a flaky GPU, deterministic-DVFS violation,
or thermal throttle), and the resulting trace is what
:func:`repro.debug.trace_analysis.identify_slow_rank` diagnoses.

This reproduces the paper's example: with (cp=2, tp=4) on 8 GPUs, slowing
rank 6 makes rank 2 look like the TP-group bottleneck, but the top-down
search correctly walks CP first and lands on rank 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.parallel.mesh import DeviceMesh
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from repro.faults.models import FaultPlan


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of the synthetic workload.

    Attributes:
        steps: Training steps to simulate.
        layers: Layers per step (each layer = compute + TP + CP comm).
        compute_seconds: Per-layer compute time on a healthy rank.
        tp_comm_seconds: TP all-gather/reduce-scatter time per layer.
        cp_comm_seconds: CP KV-gather time per layer (skipped when cp=1).
        ep_comm_seconds: EP dispatch/combine all-to-all time per layer
            (skipped when ep=1).
        pp_comm_seconds: Inter-stage P2P per step (skipped when pp=1).
        dp_comm_seconds: Gradient reduce-scatter per step (skipped when
            the DP x CP group is trivial).
    """

    steps: int = 3
    layers: int = 4
    compute_seconds: float = 1.0
    tp_comm_seconds: float = 0.1
    cp_comm_seconds: float = 0.15
    ep_comm_seconds: float = 0.12
    pp_comm_seconds: float = 0.05
    dp_comm_seconds: float = 0.3


def run_synthetic_workload(
    mesh: DeviceMesh,
    spec: WorkloadSpec = WorkloadSpec(),
    slowdown: Optional[Dict[int, float]] = None,
    sim: Optional[Simulator] = None,
    faults: Optional["FaultPlan"] = None,
) -> Simulator:
    """Execute the workload and return the recorded trace.

    Args:
        mesh: Device mesh covering every simulated rank.
        spec: Workload shape.
        slowdown: Extra seconds added to *each compute op* of the given
            ranks — the simplest injected fault.
        sim: Simulator to record into.
        faults: Declarative fault plan (:class:`repro.faults.FaultPlan`)
            installed as simulator duration modifiers before the workload
            runs — the general form of ``slowdown``.
    """
    slowdown = slowdown or {}
    sim = sim or Simulator()
    if faults is not None:
        faults.install(sim, mesh)
    p = mesh.parallel
    world = mesh.world_size

    for step in range(spec.steps):
        for layer in range(spec.layers):
            for rank in range(world):
                sim.run(
                    rank=rank,
                    stream="compute",
                    duration=spec.compute_seconds + slowdown.get(rank, 0.0),
                    name=f"compute:s{step}:l{layer}",
                    kind="compute",
                )
            # CP's KV all-gather feeds attention, then TP collectives wrap
            # the block — so CP precedes TP within a layer.  This ordering
            # is what creates Figure 8's decoy: a rank waiting on its CP
            # peer joins the following TP collective late and *looks* like
            # the TP-group bottleneck.
            if p.cp > 1:
                for group in mesh.all_groups("cp"):
                    sim.run_collective(
                        group, stream="compute",
                        duration=spec.cp_comm_seconds,
                        name=f"cp:kv-ag:s{step}:l{layer}",
                    )
            if p.tp > 1:
                for group in mesh.all_groups("tp"):
                    sim.run_collective(
                        group, stream="compute",
                        duration=spec.tp_comm_seconds,
                        name=f"tp:ag:s{step}:l{layer}",
                    )
            # The expert FFN sits after attention, so the EP token
            # all-to-all (dispatch + combine folded into one event)
            # closes the layer.
            if p.ep > 1:
                for group in mesh.all_groups("ep"):
                    sim.run_collective(
                        group, stream="compute",
                        duration=spec.ep_comm_seconds,
                        name=f"ep:a2a:s{step}:l{layer}",
                    )
        if p.pp > 1:
            # Stage hand-off: each rank syncs with its next-stage peer.
            # The pipeline is a chain, not a ring — the last stage has no
            # next-stage peer, so no wrap link back to stage 0 (such a
            # nonexistent edge would let the pp-level blame pass couple
            # the chain ends and misdirect the Section 6.1 search).
            for rank in range(world):
                if mesh.coord_of(rank).pp == p.pp - 1:
                    continue
                peer = mesh.pp_neighbor(rank, +1)
                sim.run_collective(
                    [rank, peer], stream="compute",
                    duration=spec.pp_comm_seconds,
                    name=f"pp:p2p:s{step}",
                )
        dp_groups = {
            tuple(mesh.dp_cp_group_of(r)) for r in range(world)
        }
        for group in dp_groups:
            if len(group) > 1:
                sim.run_collective(
                    list(group), stream="compute",
                    duration=spec.dp_comm_seconds,
                    name=f"dp:grad-rs:s{step}",
                )
    return sim
