"""Changepoint detection for performance regressions over training time.

Section 6.1 frames slow-rank hunting as failure localisation and cites the
inflection-point hypothesis: the most diagnostic moment is *when* behaviour
changed, not where the error finally surfaced.  For training fleets the
practical version is: given per-step durations for each rank, find the
step at which a rank's distribution shifted (a GPU starting to throttle, a
link going degraded) — transient slowdowns accumulate through fine-grain
synchronisation (Section 8.1), so catching the onset early matters.

The detector is a standard two-sample split statistic: for each candidate
changepoint, compare means before/after, normalised by pooled variance;
report the split maximising the statistic when it clears a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Changepoint:
    """A detected behaviour change in one rank's step-duration series."""

    rank: int
    step: int            # first step of the new regime
    before_mean: float
    after_mean: float
    score: float         # normalised shift statistic

    @property
    def slowdown(self) -> float:
        """Relative slowdown of the new regime (can be negative)."""
        return self.after_mean / self.before_mean - 1.0


def detect_changepoint(
    durations: Sequence[float],
    min_segment: int = 5,
    threshold: float = 6.0,
) -> Optional[Changepoint]:
    """Find the most likely changepoint in one duration series.

    Args:
        durations: Per-step durations of one rank.
        min_segment: Minimum steps on each side of a split.
        threshold: Detection threshold on the normalised statistic
            (roughly a z-score; 6 keeps false positives negligible on
            thousand-step series).

    Returns None when no split clears the threshold.
    """
    x = np.asarray(durations, dtype=np.float64)
    n = x.size
    if n < 2 * min_segment:
        return None
    best_score, best_split = 0.0, -1
    # Prefix sums for O(n) mean computation per split.
    csum = np.cumsum(x)
    csq = np.cumsum(x * x)
    total, total_sq = csum[-1], csq[-1]
    for split in range(min_segment, n - min_segment + 1):
        n1, n2 = split, n - split
        s1 = csum[split - 1]
        m1 = s1 / n1
        m2 = (total - s1) / n2
        var1 = csq[split - 1] / n1 - m1 * m1
        var2 = (total_sq - csq[split - 1]) / n2 - m2 * m2
        pooled = np.sqrt(max((n1 * var1 + n2 * var2) / n, 1e-18))
        score = abs(m2 - m1) / pooled * np.sqrt(n1 * n2 / n)
        if score > best_score:
            best_score, best_split = score, split
    if best_score < threshold or best_split < 0:
        return None
    m1 = float(csum[best_split - 1] / best_split)
    m2 = float((total - csum[best_split - 1]) / (n - best_split))
    return Changepoint(rank=-1, step=best_split, before_mean=m1,
                       after_mean=m2, score=float(best_score))


def detect_fleet_regressions(
    per_rank_durations: Dict[int, Sequence[float]],
    min_segment: int = 5,
    threshold: float = 6.0,
    min_slowdown: float = 0.01,
) -> List[Changepoint]:
    """Scan every rank's series; return slow-onset changepoints, most
    severe first.

    Only *slowdowns* beyond ``min_slowdown`` are reported (speed-ups are
    usually recovery, not faults).
    """
    found: List[Changepoint] = []
    for rank, series in per_rank_durations.items():
        cp = detect_changepoint(series, min_segment, threshold)
        if cp is not None and cp.slowdown >= min_slowdown:
            found.append(Changepoint(rank=rank, step=cp.step,
                                     before_mean=cp.before_mean,
                                     after_mean=cp.after_mean,
                                     score=cp.score))
    return sorted(found, key=lambda c: -c.slowdown)


def synth_step_durations(
    steps: int,
    base_seconds: float = 1.0,
    noise: float = 0.01,
    fault_step: Optional[int] = None,
    fault_slowdown: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Synthetic per-step durations with an optional onset fault — the
    test/bench workload generator for the detector."""
    if rng is None:
        rng = np.random.default_rng(0)
    x = base_seconds * (1.0 + noise * rng.standard_normal(steps))
    if fault_step is not None:
        if not 0 <= fault_step < steps:
            raise ValueError("fault_step out of range")
        x[fault_step:] *= 1.0 + fault_slowdown
    return x
