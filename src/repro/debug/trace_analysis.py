"""Top-down slow-rank localisation from communication traces (Section 6.1).

The key observation from production: **in a synchronising collective, the
slowest participant shows the *shortest* trace span** — it joins last, and
everyone else's span includes the wait for it (Figure 8).  But a rank that
looks slow in its TP group may itself be waiting on a CP peer, so the first
rank where the problem is observed is often not the source.

The fix is to search parallelism dimensions from the **outermost level
inward** ([DP, PP, EP, CP, TP] — the reverse of the Section 5.2 comm
order, with EP between PP and CP as in the mesh decomposition):
at each level, find which group index the straggler lives at by blaming
each rank for the wait it caused its peers, then narrow the candidate set
and descend.  The result pins a single global rank plus an attribution of
where its time went.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.parallel.mesh import DeviceMesh
from repro.sim.engine import Simulator, TraceEvent

#: Search order: outermost parallelism level first (Section 6.1).
SEARCH_ORDER = ("dp", "pp", "ep", "cp", "tp")


@dataclass(frozen=True)
class LevelDecision:
    """One narrowing step of the top-down search."""

    dim: str
    chosen_index: int
    blame_seconds: float
    candidates_before: int
    candidates_after: int


@dataclass(frozen=True)
class SlowRankReport:
    """Outcome of the top-down analysis."""

    slow_rank: int
    decisions: Tuple[LevelDecision, ...]
    compute_excess_seconds: float
    attribution: str  # "compute" or "communication"

    def describe(self) -> str:
        lines = [f"slow rank: {self.slow_rank} ({self.attribution}-bound)"]
        for d in self.decisions:
            lines.append(
                f"  {d.dim}: index {d.chosen_index} "
                f"(blame {d.blame_seconds * 1e3:.3f} ms, "
                f"{d.candidates_before} -> {d.candidates_after} candidates)"
            )
        return "\n".join(lines)


def _collective_blame(
    events: List[TraceEvent], candidates: set
) -> Dict[int, float]:
    """Wait each rank caused its peers, from its *earliest* collective at
    this level.

    Events of one collective instance share (name, end, group); within an
    instance, a rank's lateness is its join time minus the earliest join.
    Only each rank's first instance counts: lateness cascades — a rank
    held up by a straggler joins *its* next collective late, smearing
    blame down the chain — but at a rank's first collective of a level its
    lag is still fresh, so the earliest-instance blame isolates the
    origin.  This is the trace-analysis core of Section 6.1.
    """
    instances: Dict[Tuple[str, float, Tuple[int, ...]], List[TraceEvent]] = \
        defaultdict(list)
    for e in events:
        if e.group and e.rank in candidates:
            instances[(e.name, e.end, e.group)].append(e)
    first_start: Dict[int, float] = {}
    for members in instances.values():
        for m in members:
            prev = first_start.get(m.rank)
            if prev is None or m.start < prev:
                first_start[m.rank] = m.start
    blame: Dict[int, float] = defaultdict(float)
    for members in instances.values():
        if len(members) < 2:
            continue
        earliest = min(m.start for m in members)
        for m in members:
            if m.start == first_start[m.rank]:
                blame[m.rank] += (m.start - earliest) * (len(members) - 1)
    return blame


def identify_slow_rank(
    sim: Simulator, mesh: DeviceMesh,
    metrics: Optional[MetricsRegistry] = None,
) -> SlowRankReport:
    """Run the Section 6.1 top-down search over a recorded trace.

    Collective events must be named ``"<dim>:..."`` (e.g. ``"tp:ag"``),
    which is how the synthetic workload and the training executor tag
    them.  Raises if the trace contains no collectives at any level.

    When ``metrics`` is given, every narrowing decision is appended to the
    registry's structured-event log (``slow_rank.decision``, then a final
    ``slow_rank.located``) and the per-level blame lands in the
    ``slow_rank.blame_seconds`` gauge — the machine-readable form of the
    Figure 8 walk.
    """
    candidates = set(range(mesh.world_size))
    decisions: List[LevelDecision] = []
    # Both priced collectives ("comm") and exposed waits ("exposed_comm")
    # count: the executor/obs layer marks unhidden communication with the
    # latter kind, and a straggler visible only through exposed waits must
    # still be visible to the search.
    comm_events = [
        e for e in sim.events if e.kind in ("comm", "exposed_comm")
    ]
    if not comm_events:
        raise ValueError("trace contains no communication events")

    for dim in SEARCH_ORDER:
        if len(candidates) == 1:
            break
        dim_events = [e for e in comm_events if e.name.startswith(f"{dim}:")]
        if not dim_events:
            continue
        blame = _collective_blame(dim_events, candidates)
        if not blame:
            continue
        worst_rank = max(blame, key=lambda r: blame[r])
        chosen_index = getattr(mesh.coord_of(worst_rank), dim)
        before = len(candidates)
        candidates = {
            r for r in candidates
            if getattr(mesh.coord_of(r), dim) == chosen_index
        }
        decision = LevelDecision(
            dim=dim,
            chosen_index=chosen_index,
            blame_seconds=blame[worst_rank],
            candidates_before=before,
            candidates_after=len(candidates),
        )
        decisions.append(decision)
        if metrics is not None:
            metrics.event(
                "slow_rank.decision",
                dim=dim,
                chosen_index=chosen_index,
                blame_seconds=decision.blame_seconds,
                candidates_before=before,
                candidates_after=len(candidates),
            )
            metrics.gauge(
                "slow_rank.blame_seconds", unit="s",
                description="straggler blame at the chosen group, per level",
            ).set(decision.blame_seconds, dim=dim)

    def compute_time(rank: int) -> float:
        return sum(
            e.duration for e in sim.events_for(rank, kind="compute")
        )

    if len(candidates) != 1:
        # Fall back to the rank with the largest compute time among the
        # remaining candidates (no collectives discriminated further).
        slow_rank = max(candidates, key=compute_time)
    else:
        slow_rank = next(iter(candidates))

    # Attribution: compare the slow rank's compute time against the fleet
    # median; if its excess compute explains its lateness, it is
    # compute-bound (faulty/thermally-throttled GPU), else communication.
    compute_times = sorted(compute_time(r) for r in range(mesh.world_size))
    n = len(compute_times)
    # True median: averaging the middle pair for even-sized fleets (the
    # upper-middle element alone overstates the baseline whenever the
    # straggler's own time lands in the upper half, deflating its excess).
    median = (compute_times[n // 2] if n % 2
              else (compute_times[n // 2 - 1] + compute_times[n // 2]) / 2.0)
    excess = compute_time(slow_rank) - median
    attribution = "compute" if excess > 0.05 * max(median, 1e-12) else \
        "communication"
    if metrics is not None:
        metrics.event(
            "slow_rank.located",
            rank=slow_rank,
            attribution=attribution,
            compute_excess_seconds=excess,
        )
    return SlowRankReport(
        slow_rank=slow_rank,
        decisions=tuple(decisions),
        compute_excess_seconds=excess,
        attribution=attribution,
    )
