"""repro: a reproduction of "Scaling Llama 3 Training with Efficient
Parallelism Strategies" (ISCA 2025).

The library models the paper's 4D-parallel (FSDP + TP + PP + CP) training
system for Llama 3 on a discrete-event cluster simulator, with real-numerics
substrates where the paper's claims are numerical (context-parallel
attention, BF16/FP32 gradient accumulation).

Quick start::

    from repro.model import LLAMA3_405B
    from repro.hardware import GRAND_TETON_16K
    from repro.parallel import plan_parallelism, LLAMA3_405B_SHORT_CONTEXT

    plan = plan_parallelism(LLAMA3_405B, LLAMA3_405B_SHORT_CONTEXT,
                            GRAND_TETON_16K)
    print(plan.describe())

Subpackages:

* :mod:`repro.hardware` — GPU, link, and cluster specifications
* :mod:`repro.sim` — discrete-event simulator and collective cost models
* :mod:`repro.model` — Llama 3 architectures, FLOPs and memory accounting
* :mod:`repro.parallel` — 4D parallel config, device mesh, Section 5 planner
* :mod:`repro.pp` — flexible pipeline schedules, balancing, multimodal
* :mod:`repro.cp` — context parallelism: sharding, all-gather + ring attention
* :mod:`repro.attention` — exact numpy attention kernels
* :mod:`repro.numerics` — BF16 emulation and accumulation-order experiments
* :mod:`repro.train` — end-to-end training-step simulation
* :mod:`repro.debug` — slow-rank localisation and memory snapshots
* :mod:`repro.data` — document-structured synthetic batches
"""

__version__ = "1.0.0"
