"""Context-parallel sequence sharding: the head/tail chunk assignment.

The paper splits the input tokens into ``2 * cp`` chunks and assigns rank
``i`` both chunk ``i`` and chunk ``2 * cp - i - 1`` (Section 4,
Implementation).  Under a causal mask the early chunk is cheap (few allowed
keys) and the late chunk expensive, so the pairing balances the per-rank
score-matrix area exactly — *for the causal mask*.  Document masks break
this balance because their boundaries are input-dependent, which is the
measured imbalance of Figures 11 and 14.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.documents import DocumentBatch


def chunk_bounds(seq: int, cp: int) -> List[Tuple[int, int]]:
    """[start, end) bounds of the ``2 * cp`` token chunks.

    Chunks are as equal as possible; when ``seq`` is not divisible the
    earlier chunks are one token longer.
    """
    if seq <= 0 or cp <= 0:
        raise ValueError("seq and cp must be positive")
    n_chunks = 2 * cp
    if seq < n_chunks:
        raise ValueError(f"seq={seq} shorter than 2*cp={n_chunks}")
    base, rem = divmod(seq, n_chunks)
    bounds = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < rem else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def chunks_of_rank(cp: int, rank: int) -> Tuple[int, int]:
    """Chunk indices assigned to a CP rank: (i, 2*cp - i - 1)."""
    if not 0 <= rank < cp:
        raise ValueError(f"rank {rank} out of range for cp={cp}")
    return rank, 2 * cp - rank - 1


def rank_row_indices(seq: int, cp: int, rank: int) -> np.ndarray:
    """Global query-row indices a CP rank owns (both its chunks, in order)."""
    bounds = chunk_bounds(seq, cp)
    head, tail = chunks_of_rank(cp, rank)
    rows = np.concatenate([
        np.arange(*bounds[head], dtype=np.int64),
        np.arange(*bounds[tail], dtype=np.int64),
    ])
    return rows


def head_tail_partition_problems(seq: int, cp: int) -> List[str]:
    """Structural problems in the head/tail sharding, as messages.

    An empty list certifies the Section 4 assignment: the ``2 * cp``
    chunks tile ``[0, seq)`` exactly, rank ``i`` owns chunks ``i`` and
    ``2*cp - 1 - i``, and every query row belongs to exactly one rank.
    Used by the CP differential oracle (:mod:`repro.verify.oracles`)
    before it compares any attention outputs, so a sharding bug is
    reported as a sharding bug rather than a numerics mismatch.
    """
    problems: List[str] = []
    bounds = chunk_bounds(seq, cp)
    if bounds[0][0] != 0 or bounds[-1][1] != seq:
        problems.append(
            f"chunks do not span [0, {seq}): first={bounds[0]}, "
            f"last={bounds[-1]}")
    for (_, end_a), (start_b, _) in zip(bounds, bounds[1:]):
        if end_a != start_b:
            problems.append(
                f"chunk gap/overlap at boundary {end_a} != {start_b}")
    owners = np.full(seq, -1, dtype=np.int64)
    for rank in range(cp):
        head, tail = chunks_of_rank(cp, rank)
        if tail != 2 * cp - 1 - head:
            problems.append(
                f"rank {rank} pairing ({head}, {tail}) is not head/tail")
        rows = rank_row_indices(seq, cp, rank)
        taken = owners[rows]
        if np.any(taken >= 0):
            first = int(rows[np.argmax(taken >= 0)])
            problems.append(
                f"row {first} owned by both rank {int(owners[first])} "
                f"and rank {rank}")
        owners[rows] = rank
    unowned = np.flatnonzero(owners < 0)
    if unowned.size:
        problems.append(
            f"{unowned.size} rows owned by no rank (first: "
            f"{int(unowned[0])})")
    return problems


def attended_per_row_causal(seq: int) -> np.ndarray:
    """Allowed key count per query row under a full causal mask."""
    return np.arange(1, seq + 1, dtype=np.int64)


def rank_workloads(
    seq: int, cp: int, batch: Optional[DocumentBatch] = None
) -> List[int]:
    """Score-matrix area (allowed (q, k) pairs) each CP rank computes.

    With ``batch`` None a full causal mask is assumed; otherwise the
    batch's document mask.  Causal workloads are balanced to within one
    chunk row by construction; document workloads generally are not.
    """
    if batch is not None and batch.seq != seq:
        raise ValueError("batch.seq != seq")
    per_row = (
        attended_per_row_causal(seq) if batch is None
        else batch.attended_per_row()
    )
    return [
        int(per_row[rank_row_indices(seq, cp, rank)].sum())
        for rank in range(cp)
    ]


def workload_imbalance(workloads: Sequence[int]) -> float:
    """Slowest-over-mean ratio; 1.0 is perfect balance.

    The step time of any CP-synchronous algorithm — all-gather based or
    ring based — is bounded by the slowest rank (Section 7.3.2), so this
    ratio is the attainable-efficiency ceiling for *any* CP attention.
    """
    if not workloads:
        raise ValueError("workloads must be non-empty")
    mean = sum(workloads) / len(workloads)
    if mean == 0:
        return 1.0
    return max(workloads) / mean


def naive_contiguous_workloads(
    seq: int, cp: int, batch: Optional[DocumentBatch] = None
) -> List[int]:
    """Workloads of the naive sharding (rank i takes the i-th contiguous
     1/cp slice) — the strawman the head/tail pairing improves on."""
    per_row = (
        attended_per_row_causal(seq) if batch is None
        else batch.attended_per_row()
    )
    base, rem = divmod(seq, cp)
    out = []
    start = 0
    for i in range(cp):
        size = base + (1 if i < rem else 0)
        out.append(int(per_row[start:start + size].sum()))
        start += size
    return out
