"""Ring-style context-parallel attention (RingAttention / TransformerEngine
baseline of Sections 4 and 7.2).

Each rank keeps its two query chunks resident while the ``2 * cp`` K/V
chunks circulate around the ring.  Every arrival triggers a *partial*
attention kernel over that chunk's keys, and partial results are merged
with log-sum-exp rescaling — the extra elementwise work (and kernel
fragmentation) that makes ring attention lose to the all-gather variant at
small sequence lengths and large cp (Figure 13).

The numerics here are real: the merge follows the Flash-Attention
rescaling identity, and the test suite checks the merged output matches
the single-device reference to floating-point tolerance (it is *not*
bitwise identical — a different accumulation order, which is exactly the
Section 6.2 distinction between numerical gaps and bugs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.attention.masks import causal_mask, document_mask
from repro.attention.reference import expand_kv
from repro.cp.allgather import CpAttentionOutput, CpRankStats
from repro.cp.sharding import chunk_bounds, rank_row_indices
from repro.data.documents import DocumentBatch


@dataclass(frozen=True)
class RingStats:
    """Extra work counters specific to the ring algorithm."""

    kernels_launched: int      # partial-attention kernels across all ranks
    merge_elements: float      # output elements rescaled during merges
    p2p_messages: int          # chunk hand-offs around the ring


def ring_cp_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    cp: int,
    batch: Optional[DocumentBatch] = None,
    dtype_bytes: int = 2,
) -> Tuple[CpAttentionOutput, RingStats]:
    """Ring attention over ``2 * cp`` circulating K/V chunks.

    Mirrors TE's implementation shape: chunks are assigned head/tail like
    the queries, each rank iterates through all chunks (skipping fully
    masked ones), computing partials and merging with LSE rescaling.
    """
    seq = q.shape[0]
    n_heads = q.shape[1]
    head_dim = q.shape[2]
    mask = causal_mask(seq) if batch is None else document_mask(batch.doc_ids)
    bounds = chunk_bounds(seq, cp)
    kx = expand_kv(k, n_heads)
    vx = expand_kv(v, n_heads)
    scale = 1.0 / np.sqrt(head_dim)

    out = np.zeros_like(q)
    lse_full = np.full((seq, n_heads), -np.inf)
    stats: List[CpRankStats] = []
    kernels = 0
    merge_elements = 0.0

    kv_chunk_bytes = 2 * (seq / (2 * cp)) * k.shape[1] * head_dim * dtype_bytes

    for rank in range(cp):
        rows = rank_row_indices(seq, cp, rank)
        q_r = q[rows]
        running_max = np.full((n_heads, rows.size), -np.inf)
        running_sum = np.zeros((n_heads, rows.size))
        acc = np.zeros((rows.size, n_heads, head_dim))
        area = 0
        for chunk in range(2 * cp):
            start, end = bounds[chunk]
            tile_mask = mask[np.ix_(rows, np.arange(start, end))]
            if not tile_mask.any():
                continue
            kernels += 1
            area += int(np.count_nonzero(tile_mask))
            scores = np.einsum("qhd,khd->hqk", q_r, kx[start:end]) * scale
            scores = np.where(tile_mask[None, :, :], scores, -np.inf)
            tile_max = np.max(scores, axis=-1)
            new_max = np.maximum(running_max, tile_max)
            safe_new = np.where(np.isfinite(new_max), new_max, 0.0)
            correction = np.where(
                np.isfinite(running_max),
                np.exp(running_max - safe_new),
                0.0,
            )
            expd = np.exp(scores - safe_new[:, :, None])
            expd = np.where(tile_mask[None, :, :], expd, 0.0)
            running_sum = running_sum * correction + np.sum(expd, axis=-1)
            acc = acc * correction.T[:, :, None] + np.einsum(
                "hqk,khd->qhd", expd, vx[start:end]
            )
            running_max = new_max
            merge_elements += float(acc.size)

        has_keys = running_sum > 0
        denom = np.where(has_keys, running_sum, 1.0)
        out_r = acc / denom.T[:, :, None]
        out_r = np.where(has_keys.T[:, :, None], out_r, 0.0)
        out[rows] = out_r
        safe_max = np.where(np.isfinite(running_max), running_max, 0.0)
        lse_full[rows] = np.where(
            has_keys, safe_max + np.log(denom), -np.inf
        ).T
        stats.append(
            CpRankStats(
                rank=rank,
                rows=int(rows.size),
                score_area=area,
                # Each rank receives 2*cp - 2 foreign chunk pairs (its own
                # two chunks are local).
                allgather_bytes=kv_chunk_bytes * (2 * cp - 2),
            )
        )

    ring_stats = RingStats(
        kernels_launched=kernels,
        merge_elements=merge_elements,
        p2p_messages=cp * (2 * cp - 2) if cp > 1 else 0,
    )
    return (
        CpAttentionOutput(out=out, lse=lse_full, per_rank=tuple(stats)),
        ring_stats,
    )
