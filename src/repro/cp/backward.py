"""Backward pass of all-gather CP attention, with the KV-gradient
reduce-scatter (Section 4: "all-gathering KV tensors or reduce-scattering
the gradients of KV tensors").

Forward all-gathers K/V; the mirror in backward is that every rank holds
gradient *contributions* to the full K and V tensors (its query rows
attended keys everywhere), which must be summed across the CP group and
scattered back to each rank's own rows — a reduce-scatter.

Correctness structure mirrors the forward:

* ``dq`` is computed exactly per query row — bitwise equal to the
  single-device backward on those rows;
* ``dk``/``dv`` are cross-rank sums, so they match the single-device
  result to floating-point tolerance, and match the *order-emulated*
  baseline (partials summed in ring order) **bitwise** — the Section 6.2
  discriminator applied to CP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.attention.backward import attention_backward_reference
from repro.attention.masks import causal_mask, document_mask
from repro.cp.sharding import rank_row_indices
from repro.data.documents import DocumentBatch


@dataclass(frozen=True)
class CpBackwardOutput:
    """Distributed attention backward, reassembled."""

    dq: np.ndarray                      # (seq, heads, head_dim)
    dk: np.ndarray                      # (seq, kv_heads, head_dim)
    dv: np.ndarray                      # (seq, kv_heads, head_dim)
    reduce_scatter_bytes_per_rank: float


def _mask(seq: int, batch: Optional[DocumentBatch]) -> np.ndarray:
    if batch is None:
        return causal_mask(seq)
    if batch.seq != seq:
        raise ValueError("batch.seq mismatch")
    return document_mask(batch.doc_ids)


def rank_partials(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    dout: np.ndarray,
    cp: int,
    batch: Optional[DocumentBatch] = None,
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Each rank's local backward: (rows, dq_rows, dk_partial, dv_partial).

    ``dk_partial``/``dv_partial`` span the *full* sequence — the buffers
    that enter the reduce-scatter.
    """
    seq = q.shape[0]
    mask = _mask(seq, batch)
    out = []
    for rank in range(cp):
        rows = rank_row_indices(seq, cp, rank)
        dq_rows, dk_p, dv_p = attention_backward_reference(
            q[rows], k, v, mask[rows, :], dout[rows]
        )
        out.append((rows, dq_rows, dk_p, dv_p))
    return out


def allgather_cp_attention_backward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    dout: np.ndarray,
    cp: int,
    batch: Optional[DocumentBatch] = None,
    dtype_bytes: int = 2,
) -> CpBackwardOutput:
    """Distributed backward: per-rank partials, then ring-order
    reduce-scatter of dk/dv; dq needs no communication."""
    if cp < 1:
        raise ValueError("cp must be >= 1")
    seq = q.shape[0]
    partials = rank_partials(q, k, v, dout, cp, batch)

    dq = np.zeros_like(q)
    for rows, dq_rows, _, _ in partials:
        dq[rows] = dq_rows

    # Ring-order reduction, as a reduce-scatter would sum shards.
    dk = partials[0][2].copy()
    dv = partials[0][3].copy()
    for _, _, dk_p, dv_p in partials[1:]:
        dk += dk_p
        dv += dv_p

    kv_bytes = 2.0 * seq * k.shape[1] * k.shape[2] * dtype_bytes
    return CpBackwardOutput(
        dq=dq, dk=dk, dv=dv,
        reduce_scatter_bytes_per_rank=kv_bytes * (cp - 1) / max(cp, 1),
    )


def emulated_order_backward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    dout: np.ndarray,
    cp: int,
    batch: Optional[DocumentBatch] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sequential baseline forced into CP's accumulation order: compute
    the same per-rank partials and sum them in the same ring order.
    Bitwise equal to :func:`allgather_cp_attention_backward` by
    construction — the reference a real implementation is debugged
    against (Section 6.2)."""
    out = allgather_cp_attention_backward(q, k, v, dout, cp, batch)
    return out.dq, out.dk, out.dv
