"""Event-level simulation of ring attention's compute/communication
overlap.

The analytical model in :mod:`repro.cp.perf` charges ring attention
``max(kernel_i, p2p)`` per iteration; this module lets that structure
*emerge* from the event simulator instead: each rank runs its partial
kernels on a ``compute`` stream while chunk transfers proceed on a
``comm`` stream, and a kernel may only start once its chunk has arrived.
Exposed communication is then simply the compute stream's idle time —
large when chunks outpace the (small) kernels, nil when attention is
compute-bound.  The tests check the emergent behaviour agrees with the
analytical Figure 13 story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cp.perf import (
    AttentionShape,
    RING_KERNEL_LAUNCH_US,
    _chunk_area,
    _row_starts,
    attention_kernel_time,
)
from repro.cp.sharding import chunk_bounds, rank_row_indices
from repro.data.documents import DocumentBatch
from repro.hardware.cluster import ClusterSpec
from repro.hardware.network import transfer_time
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class RingTimeline:
    """Executed ring-attention timeline for one CP group."""

    sim: Simulator
    cp: int
    makespan: float
    per_rank_compute: Tuple[float, ...]

    @property
    def per_rank_exposed_comm(self) -> Tuple[float, ...]:
        """Compute-stream idle while waiting for chunks."""
        return tuple(self.makespan - c for c in self.per_rank_compute)

    @property
    def exposed_fraction(self) -> float:
        """Mean exposed-communication share of the makespan."""
        if self.makespan == 0:
            return 0.0
        return float(np.mean(self.per_rank_exposed_comm)) / self.makespan


def simulate_ring_attention(
    cluster: ClusterSpec,
    seq: int,
    cp: int,
    shape: AttentionShape = AttentionShape(),
    batch: Optional[DocumentBatch] = None,
) -> RingTimeline:
    """Run one ring-attention layer on the event simulator.

    Each rank iterates over the ``2 * cp`` K/V chunks in ring order
    (its own pair first, then arrivals); chunk *i*'s kernel depends on
    chunk *i*'s transfer completing on the ``comm`` stream.  Skipped
    (fully masked) chunks still circulate.
    """
    if cp < 1:
        raise ValueError("cp must be >= 1")
    starts = _row_starts(seq, batch)
    bounds = chunk_bounds(seq, cp)
    link = cluster.group_link(list(range(cp)))
    chunk_bytes = (
        2.0 * (seq / (2 * cp)) * shape.kv_heads * shape.head_dim
        * shape.dtype_bytes
    )
    p2p = transfer_time(link, chunk_bytes)

    sim = Simulator()
    compute_busy: List[float] = []
    for rank in range(cp):
        rows = rank_row_indices(seq, cp, rank)
        own = set(rank_chunks(cp, rank))
        # Ring order: own chunks first (no transfer), then the rest in
        # circulation order.
        order = sorted(own) + [c for c in range(2 * cp) if c not in own]
        busy = 0.0
        prev_recv = None
        for i, chunk in enumerate(order):
            if chunk not in own:
                prev_recv = sim.run(
                    rank, "comm", p2p, f"recv:chunk{chunk}", kind="comm",
                )
            lo, hi = bounds[chunk]
            area = _chunk_area(rows, starts, lo, hi)
            if area == 0:
                continue
            kernel = attention_kernel_time(
                cluster.gpu, rows.size, area, shape, kv_len=hi - lo,
                launch_us=RING_KERNEL_LAUNCH_US,
            )
            event = sim.run(
                rank, "compute", kernel, f"attn:chunk{chunk}",
                kind="compute",
                after=[prev_recv] if (prev_recv and chunk not in own)
                else None,
            )
            busy += event.duration
        compute_busy.append(busy)

    return RingTimeline(
        sim=sim, cp=cp, makespan=sim.makespan(),
        per_rank_compute=tuple(compute_busy),
    )


def rank_chunks(cp: int, rank: int) -> Tuple[int, int]:
    """Chunks resident on a rank before the ring starts (head/tail)."""
    from repro.cp.sharding import chunks_of_rank

    return chunks_of_rank(cp, rank)
