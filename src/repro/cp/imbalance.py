"""Fleet-level CP workload imbalance (Section 7.3.2, Figure 14).

Long-context training runs many DP groups, each with its own batch and
therefore its own document-mask geometry.  Every CP collective waits for
the slowest rank of its group, and every training step waits for the
slowest DP group — so per-batch document variation turns into fleet-wide
idle time.  The paper measured, on 8K GPUs:

* the slowest GPU spends **1.44x** the compute time of the fastest, and
  the gap is entirely attention-kernel time;
* exposed CP communication is **7.64%** of elapsed time, of which
  **65.75%** is waiting for the slowest CP rank;
* any overlap-based CP algorithm still waits for the slowest rank, so the
  attainable improvement over all-gather CP is bounded (**2.62%**).

This module reproduces those statistics from synthetic document batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cp.perf import (
    AttentionShape,
    attention_kernel_time,
    _area_of_rows,
    _row_starts,
)
from repro.cp.sharding import rank_row_indices
from repro.data.documents import DocumentBatch, sample_document_lengths
from repro.hardware.cluster import ClusterSpec
from repro.sim.collectives import all_gather_time


@dataclass(frozen=True)
class FleetImbalanceReport:
    """Aggregated statistics over a simulated fleet of CP groups."""

    attention_seconds: np.ndarray   # (n_gpus,) per-GPU attention kernel time
    compute_seconds: np.ndarray     # (n_gpus,) attention + other compute
    exposed_cp_seconds: np.ndarray  # (n_gpus,) all-gather + straggler wait
    wait_seconds: np.ndarray        # (n_gpus,) straggler wait only
    elapsed_seconds: float          # fleet step-synchronous elapsed time

    @property
    def slowest_over_fastest_compute(self) -> float:
        """Figure 14a's headline ratio (1.44x in the paper)."""
        return float(self.compute_seconds.max() / self.compute_seconds.min())

    @property
    def slowest_over_fastest_attention(self) -> float:
        """Figure 14b: the same ratio on attention kernels alone."""
        return float(
            self.attention_seconds.max() / self.attention_seconds.min()
        )

    @property
    def cp_exposed_fraction(self) -> float:
        """Exposed CP latency share of elapsed time (7.64% in the paper)."""
        return float(self.exposed_cp_seconds.mean() / self.elapsed_seconds)

    @property
    def waiting_fraction_of_exposed(self) -> float:
        """Share of exposed CP time that is straggler waiting (65.75%)."""
        exposed = self.exposed_cp_seconds.mean()
        if exposed == 0:
            return 0.0
        return float(self.wait_seconds.mean() / exposed)

    @property
    def overlap_headroom(self) -> float:
        """Upper bound on end-to-end improvement from perfectly
        overlapping CP communication: only the collective itself can be
        hidden, never the straggler wait (2.62% in the paper)."""
        hideable = self.exposed_cp_seconds.mean() - self.wait_seconds.mean()
        return float(hideable / self.elapsed_seconds)


def simulate_fleet_imbalance(
    cluster: ClusterSpec,
    seq: int,
    cp: int,
    n_dp_groups: int,
    steps: int,
    mean_doc_len: float,
    shape: AttentionShape = AttentionShape(),
    attention_share: float = 0.25,
    p_full_sequence: float = 0.2,
    sigma: float = 1.5,
    rng: Optional[np.random.Generator] = None,
) -> FleetImbalanceReport:
    """Simulate ``steps`` training steps of ``n_dp_groups x cp`` GPUs.

    Args:
        cluster: Hardware.
        seq: Full sequence length (131072 for Llama 3 long context).
        cp: Context-parallel degree.
        n_dp_groups: DP groups, each drawing independent batches.
        steps: Training steps to accumulate.
        mean_doc_len: Mean document length of the synthetic corpus.
        shape: Attention head configuration (post-TP).
        attention_share: Target share of a balanced rank's compute time
            spent in attention; the remainder models FFN and projections,
            identical across ranks (Figure 14 shows the compute gap is
            entirely attention).
        p_full_sequence: Probability a batch is one giant document — the
            slowest-rank regime of Section 4.
        sigma: Log-space spread of document lengths (heavy-tailed corpus;
            0 for the light-tailed geometric sampler).
        rng: Random generator (seeded by default for reproducibility).
    """
    if not 0.0 < attention_share < 1.0:
        raise ValueError("attention_share must be in (0, 1)")
    if rng is None:
        rng = np.random.default_rng(7)

    n_gpus = n_dp_groups * cp
    attention = np.zeros(n_gpus)
    wait = np.zeros(n_gpus)
    exposed = np.zeros(n_gpus)

    #: Backward attention (dQ, dK, dV through the score matrix) costs
    #: ~2.5x the forward flash kernel.
    bwd_factor = 2.5

    # Fixed per-step non-attention compute (GEMMs, norms, projections —
    # forward and backward), sized off the balanced causal workload so
    # ``attention_share`` holds on average.
    balanced = single_rank_balanced_time(cluster, seq, cp, shape)
    balanced_total = balanced * (1.0 + bwd_factor)
    other_per_step = balanced_total * (1.0 - attention_share) / attention_share

    # Exposed CP communication per layer-step: the KV all-gather in
    # forward plus the KV-gradient reduce-scatter in backward (same ring
    # cost, Section 5.2).
    ag = all_gather_time(
        cluster, list(range(cp)),
        2.0 * seq * shape.kv_heads * shape.head_dim * shape.dtype_bytes,
    ).seconds
    comm = 2.0 * ag

    elapsed = 0.0
    for _ in range(steps):
        group_elapsed = np.zeros(n_dp_groups)
        for g in range(n_dp_groups):
            lens = sample_document_lengths(
                seq, mean_doc_len, rng, p_full_sequence=p_full_sequence,
                sigma=sigma,
            )
            batch = DocumentBatch(seq=seq, doc_lens=tuple(lens))
            starts = _row_starts(seq, batch)
            fwd = np.empty(cp)
            for r in range(cp):
                rows = rank_row_indices(seq, cp, r)
                area = _area_of_rows(rows, starts)
                fwd[r] = attention_kernel_time(
                    cluster.gpu, rows.size, area, shape, kv_len=seq
                )
            kernel = fwd * (1.0 + bwd_factor)  # fwd + bwd attention
            slowest = kernel.max()
            gpus = slice(g * cp, (g + 1) * cp)
            attention[gpus] += kernel
            wait[gpus] += slowest - kernel
            exposed[gpus] += (slowest - kernel) + comm
            group_elapsed[g] = slowest + comm + other_per_step
        # The fleet steps synchronously: everyone waits for the slowest
        # DP group (gradient reduce-scatter is a global barrier).
        elapsed += group_elapsed.max()

    compute = attention + steps * other_per_step
    return FleetImbalanceReport(
        attention_seconds=attention,
        compute_seconds=compute,
        exposed_cp_seconds=exposed,
        wait_seconds=wait,
        elapsed_seconds=elapsed,
    )


def single_rank_balanced_time(
    cluster: ClusterSpec, seq: int, cp: int, shape: AttentionShape
) -> float:
    """Attention kernel time of one CP rank under a full causal mask —
    the balanced reference workload."""
    rows = rank_row_indices(seq, cp, 0)
    starts = np.zeros(seq, dtype=np.int64)
    area = _area_of_rows(rows, starts)
    return attention_kernel_time(cluster.gpu, rows.size, area, shape,
                                 kv_len=seq)
