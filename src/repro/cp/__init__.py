"""Context parallelism: sharding, all-gather CP attention, ring baseline,
performance model, and fleet imbalance analysis."""

from repro.cp.sharding import (
    chunk_bounds,
    chunks_of_rank,
    rank_row_indices,
    rank_workloads,
    workload_imbalance,
    naive_contiguous_workloads,
)
from repro.cp.allgather import (
    CpRankStats,
    CpAttentionOutput,
    allgather_cp_attention,
    local_kv_to_allgathered,
)
from repro.cp.ring import RingStats, ring_cp_attention
from repro.cp.perf import (
    AttentionShape,
    CpPerfResult,
    attention_kernel_time,
    single_gpu_attention_time,
    allgather_cp_perf,
    ring_cp_perf,
    cp_allgather_bandwidth_gbps,
)
from repro.cp.backward import (
    CpBackwardOutput,
    allgather_cp_attention_backward,
    emulated_order_backward,
    rank_partials,
)
from repro.cp.ring_schedule import RingTimeline, simulate_ring_attention
from repro.cp.imbalance import (
    FleetImbalanceReport,
    simulate_fleet_imbalance,
)

__all__ = [
    "chunk_bounds",
    "chunks_of_rank",
    "rank_row_indices",
    "rank_workloads",
    "workload_imbalance",
    "naive_contiguous_workloads",
    "CpRankStats",
    "CpAttentionOutput",
    "allgather_cp_attention",
    "local_kv_to_allgathered",
    "RingStats",
    "ring_cp_attention",
    "AttentionShape",
    "CpPerfResult",
    "attention_kernel_time",
    "single_gpu_attention_time",
    "allgather_cp_perf",
    "ring_cp_perf",
    "cp_allgather_bandwidth_gbps",
    "CpBackwardOutput",
    "allgather_cp_attention_backward",
    "emulated_order_backward",
    "rank_partials",
    "RingTimeline",
    "simulate_ring_attention",
    "FleetImbalanceReport",
    "simulate_fleet_imbalance",
]
