"""Analytical performance model for context-parallel attention.

Reproduces the quantities plotted in Section 7.2:

* **Relative HFU** (Figures 11 and 13): hardware FLOPs utilisation of a
  distributed attention, normalised to Flash-Attention v2 on one GPU with
  the same mask — ``t_single / (cp * t_cp)``.
* **Achieved all-gather bandwidth** (Figure 12) via the collectives model.
* **Attention latency speed-up** vs one GPU (the 3.89x on 4 GPUs claim).

The kernel-time model is a roofline with a tile-fill efficiency term: a
flash kernel whose average contiguous key span is ``L`` runs at
``eff_max * L / (L + l_half)`` of peak, which is what punishes ring
attention's ``seq / (2 * cp)``-token chunks at small sequence lengths
(the Figure 13 crossover) while leaving long-sequence behaviour
compute-bound for everyone.

Areas (allowed (q, k) pairs) are computed exactly from the document
structure in O(seq) without materialising masks, so the model runs at the
paper's full 131K sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.documents import DocumentBatch
from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu import GpuSpec
from repro.sim.collectives import (
    achieved_all_gather_bandwidth,
    all_gather_time,
)
from repro.cp.sharding import chunk_bounds, rank_row_indices

#: Peak fraction a well-fed flash kernel sustains on H100.
EFF_MAX = 0.70
#: Key-span at which tile-fill efficiency halves.  Calibrated so the
#: Figure 13 crossover lands where the paper reports it (CP beats ring by
#: up to ~13.5% relative HFU at cp=4, seq 4K-8K).
L_HALF = 192.0
#: Bytes of extra memory traffic per output element per ring merge step.
#: TE fuses the rescale into the kernel epilogue, so only the accumulator
#: rewrite remains.
MERGE_BYTES_PER_ELEMENT = 1
#: Per-tile launch overhead of ring attention's partial kernels, in
#: microseconds — lower than a cold kernel launch (persistent kernels)
#: but paid 2*cp times per layer instead of once.
RING_KERNEL_LAUNCH_US = 2.5


@dataclass(frozen=True)
class AttentionShape:
    """Per-rank attention problem dimensions (post-TP sharding)."""

    heads: int = 16        # 128 query heads / tp=8
    kv_heads: int = 1      # 8 KV heads / tp=8
    head_dim: int = 128
    dtype_bytes: int = 2


def _row_starts(seq: int, batch: Optional[DocumentBatch]) -> np.ndarray:
    """Per-row first allowed key position."""
    if batch is None:
        return np.zeros(seq, dtype=np.int64)
    ids = batch.doc_ids
    starts = np.zeros(seq, dtype=np.int64)
    boundary = np.flatnonzero(np.diff(ids)) + 1
    starts[boundary] = boundary
    return np.maximum.accumulate(starts)


def _area_of_rows(rows: np.ndarray, starts: np.ndarray) -> int:
    return int((rows + 1 - starts[rows]).sum())


def _chunk_area(
    rows: np.ndarray, starts: np.ndarray, lo: int, hi: int
) -> int:
    """Allowed pairs between query ``rows`` and key range [lo, hi)."""
    upper = np.minimum(rows + 1, hi)
    lower = np.maximum(starts[rows], lo)
    return int(np.maximum(upper - lower, 0).sum())


def attention_kernel_time(
    gpu: GpuSpec,
    rows: int,
    area: int,
    shape: AttentionShape,
    kv_len: int,
    launch_us: Optional[float] = None,
) -> float:
    """Roofline time for one fused flash kernel.

    Args:
        gpu: Accelerator spec.
        rows: Query rows processed.
        area: Allowed (q, k) pairs.
        shape: Head configuration.
        kv_len: Keys resident for this kernel (memory-traffic term).
        launch_us: Launch overhead override (ring partial kernels use
            :data:`RING_KERNEL_LAUNCH_US`).
    """
    launch = (gpu.kernel_launch_us if launch_us is None else launch_us) * 1e-6
    if rows <= 0 or area <= 0:
        return launch
    flops = 4.0 * area * shape.heads * shape.head_dim
    avg_span = area / rows
    eff = EFF_MAX * avg_span / (avg_span + L_HALF)
    compute = flops / (gpu.peak_flops * eff)
    bytes_moved = shape.dtype_bytes * (
        2 * rows * shape.heads * shape.head_dim            # Q and O
        + 2 * kv_len * shape.kv_heads * shape.head_dim     # K and V
    )
    memory = bytes_moved / gpu.hbm_bandwidth
    return max(compute, memory) + launch


def single_gpu_attention_time(
    gpu: GpuSpec,
    seq: int,
    shape: AttentionShape = AttentionShape(),
    batch: Optional[DocumentBatch] = None,
) -> float:
    """Flash-Attention v2 on one GPU — the Figure 11/13 baseline."""
    starts = _row_starts(seq, batch)
    rows = np.arange(seq, dtype=np.int64)
    area = _area_of_rows(rows, starts)
    return attention_kernel_time(gpu, seq, area, shape, kv_len=seq)


@dataclass(frozen=True)
class CpPerfResult:
    """Timing decomposition of one distributed attention call."""

    cp: int
    compute_seconds: float    # slowest rank's kernel time
    comm_seconds: float       # exposed communication
    merge_seconds: float      # ring-only LSE merge cost
    single_gpu_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds + self.merge_seconds

    @property
    def relative_hfu(self) -> float:
        """HFU normalised to single-GPU flash: t1 / (cp * t_cp)."""
        return self.single_gpu_seconds / (self.cp * self.total_seconds)

    @property
    def speedup(self) -> float:
        """Attention latency reduction vs one GPU (3.89x claim at cp=4)."""
        return self.single_gpu_seconds / self.total_seconds


def _kv_total_bytes(seq: int, shape: AttentionShape) -> float:
    return 2.0 * seq * shape.kv_heads * shape.head_dim * shape.dtype_bytes


def allgather_cp_perf(
    cluster: ClusterSpec,
    seq: int,
    cp: int,
    shape: AttentionShape = AttentionShape(),
    batch: Optional[DocumentBatch] = None,
) -> CpPerfResult:
    """All-gather CP attention: exposed KV all-gather, then one fused
    kernel per rank over the full key range; step time is gated by the
    slowest rank (document masks make ranks unequal)."""
    if cp < 1:
        raise ValueError("cp must be >= 1")
    single = single_gpu_attention_time(cluster.gpu, seq, shape, batch)
    if cp == 1:
        return CpPerfResult(
            cp=1, compute_seconds=single, comm_seconds=0.0,
            merge_seconds=0.0, single_gpu_seconds=single,
        )
    starts = _row_starts(seq, batch)
    kernel_times = []
    for rank in range(cp):
        rows = rank_row_indices(seq, cp, rank)
        area = _area_of_rows(rows, starts)
        kernel_times.append(
            attention_kernel_time(cluster.gpu, rows.size, area, shape,
                                  kv_len=seq)
        )
    ag = all_gather_time(
        cluster, list(range(cp)), _kv_total_bytes(seq, shape)
    )
    return CpPerfResult(
        cp=cp,
        compute_seconds=max(kernel_times),
        comm_seconds=ag.seconds,
        merge_seconds=0.0,
        single_gpu_seconds=single,
    )


def ring_cp_perf(
    cluster: ClusterSpec,
    seq: int,
    cp: int,
    shape: AttentionShape = AttentionShape(),
    batch: Optional[DocumentBatch] = None,
) -> CpPerfResult:
    """Ring (TE-style) CP attention: 2*cp partial kernels per rank with
    P2P overlap and LSE merging.

    Per ring step the rank pays ``max(kernel_i, p2p)`` (communication is
    overlapped with computation) plus the merge's memory-bound rescale;
    small chunks mean fragmented kernels with poor tile fill — the
    Figure 13 effect.
    """
    if cp < 1:
        raise ValueError("cp must be >= 1")
    single = single_gpu_attention_time(cluster.gpu, seq, shape, batch)
    if cp == 1:
        return CpPerfResult(
            cp=1, compute_seconds=single, comm_seconds=0.0,
            merge_seconds=0.0, single_gpu_seconds=single,
        )
    starts = _row_starts(seq, batch)
    bounds = chunk_bounds(seq, cp)
    link = cluster.group_link(list(range(cp)))
    chunk_bytes = _kv_total_bytes(seq, shape) / (2 * cp)
    from repro.hardware.network import transfer_time

    p2p = transfer_time(link, chunk_bytes)
    gpu = cluster.gpu

    per_rank_compute: List[float] = []
    per_rank_comm: List[float] = []
    per_rank_merge: List[float] = []
    for rank in range(cp):
        rows = rank_row_indices(seq, cp, rank)
        compute = 0.0
        exposed_comm = 0.0
        merges = 0
        for ci, (lo, hi) in enumerate(bounds):
            area = _chunk_area(rows, starts, lo, hi)
            if area == 0:
                # The chunk still circulates; its P2P may be exposed.
                exposed_comm += max(p2p - 0.0, 0.0) if ci > 0 else 0.0
                continue
            kernel = attention_kernel_time(
                gpu, rows.size, area, shape, kv_len=hi - lo,
                launch_us=RING_KERNEL_LAUNCH_US,
            )
            if ci == 0:
                compute += kernel
            else:
                # Overlap: the step costs max(kernel, p2p).
                compute += kernel
                exposed_comm += max(p2p - kernel, 0.0)
            merges += 1
        merge_bytes = (
            merges * rows.size * shape.heads * shape.head_dim
            * MERGE_BYTES_PER_ELEMENT
        )
        per_rank_compute.append(compute)
        per_rank_comm.append(exposed_comm)
        per_rank_merge.append(merge_bytes / gpu.hbm_bandwidth)

    worst = int(np.argmax(
        np.asarray(per_rank_compute) + np.asarray(per_rank_comm)
        + np.asarray(per_rank_merge)
    ))
    return CpPerfResult(
        cp=cp,
        compute_seconds=per_rank_compute[worst],
        comm_seconds=per_rank_comm[worst],
        merge_seconds=per_rank_merge[worst],
        single_gpu_seconds=single,
    )


def cp_allgather_bandwidth_gbps(
    cluster: ClusterSpec, seq: int, cp: int,
    shape: AttentionShape = AttentionShape(),
) -> float:
    """Achieved CP all-gather bus bandwidth (Figure 12).  Identical for
    causal and document masks — the payload does not depend on the mask,
    which is how the paper isolates the HFU gap to compute imbalance."""
    return achieved_all_gather_bandwidth(
        cluster, list(range(cp)), _kv_total_bytes(seq, shape)
    )
