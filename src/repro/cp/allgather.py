"""All-gather-based context-parallel attention (the paper's CP solution).

Each CP rank owns two query chunks (head/tail sharding) and, before
attention, **all-gathers the full K and V tensors** — cheap relative to Q
because GQA makes K/V ``gqa_ratio`` times smaller, and the O(seq) gather is
asymptotically dominated by the O(seq^2) attention (Section 4).

With the full K/V present, each rank computes its query rows against the
complete key sequence under the exact mask.  The production kernel realises
this by padding the Q sequence with leading zeros to the key offset while
keeping the full KV sequence-length information; in this numpy model the
same effect is the per-row mask slice, so document masks that cross chunk
boundaries are handled exactly — the flexibility RingAttention's tile
bookkeeping struggles with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.attention.masks import causal_mask, document_mask
from repro.attention.reference import attention_reference
from repro.cp.sharding import rank_row_indices
from repro.data.documents import DocumentBatch
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class CpRankStats:
    """Per-rank work and communication accounting."""

    rank: int
    rows: int
    score_area: int       # allowed (q, k) pairs this rank computed
    allgather_bytes: float  # K+V bytes this rank received


@dataclass(frozen=True)
class CpAttentionOutput:
    """Distributed attention result, reassembled."""

    out: np.ndarray                # (seq, heads, head_dim), full sequence
    lse: np.ndarray                # (seq, heads)
    per_rank: Tuple[CpRankStats, ...]


def _full_mask(seq: int, batch: Optional[DocumentBatch]) -> np.ndarray:
    if batch is None:
        return causal_mask(seq)
    if batch.seq != seq:
        raise ValueError("batch.seq mismatch")
    return document_mask(batch.doc_ids)


def allgather_cp_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    cp: int,
    batch: Optional[DocumentBatch] = None,
    dtype_bytes: int = 2,
    metrics: Optional[MetricsRegistry] = None,
) -> CpAttentionOutput:
    """Run attention as ``cp`` ranks would, and reassemble the output.

    Args:
        q: (seq, n_heads, head_dim) queries for the full sequence.
        k: (seq, n_kv_heads, head_dim) keys.
        v: (seq, n_kv_heads, head_dim) values.
        cp: Context-parallel degree.
        batch: Document structure; None means a full causal mask.
        dtype_bytes: Wire element size for the communication accounting.
        metrics: Registry to report per-rank all-gather counts, received
            bytes, and computed score area into.

    The result is **bitwise identical** to single-device attention on the
    same rows: each rank computes exact softmax over its full allowed key
    range (no partial-result merging, unlike ring attention).
    """
    seq = q.shape[0]
    if k.shape[0] != seq or v.shape[0] != seq:
        raise ValueError("q, k, v must cover the same sequence")
    mask = _full_mask(seq, batch)

    out = np.zeros_like(q)
    lse = np.full((seq, q.shape[1]), -np.inf)
    stats: List[CpRankStats] = []
    kv_bytes_total = 2 * seq * k.shape[1] * k.shape[2] * dtype_bytes
    for rank in range(cp):
        rows = rank_row_indices(seq, cp, rank)
        rank_mask = mask[rows, :]
        result = attention_reference(q[rows], k, v, rank_mask)
        out[rows] = result.out
        lse[rows] = result.lse
        stats.append(
            CpRankStats(
                rank=rank,
                rows=int(rows.size),
                score_area=int(np.count_nonzero(rank_mask)),
                allgather_bytes=kv_bytes_total * (cp - 1) / cp,
            )
        )
    if metrics is not None:
        ag_count = metrics.counter(
            "cp.allgather.count", unit="collectives",
            description="KV all-gathers performed, per CP rank")
        ag_bytes = metrics.counter(
            "cp.allgather.bytes", unit="B",
            description="KV bytes received over all-gather, per CP rank")
        area = metrics.counter(
            "cp.score_area", unit="pairs",
            description="allowed (q, k) pairs computed, per CP rank")
        for s in stats:
            ag_count.inc(1, rank=s.rank)
            ag_bytes.inc(s.allgather_bytes, rank=s.rank)
            area.inc(s.score_area, rank=s.rank)
    return CpAttentionOutput(out=out, lse=lse, per_rank=tuple(stats))


def local_kv_to_allgathered(
    kv_shards: List[np.ndarray], seq: int, cp: int
) -> np.ndarray:
    """Reassemble the full K (or V) tensor from per-rank head/tail shards —
    the data movement the all-gather performs.  ``kv_shards[r]`` holds rank
    r's rows in its local order (head chunk then tail chunk)."""
    if len(kv_shards) != cp:
        raise ValueError(f"expected {cp} shards, got {len(kv_shards)}")
    head_dim_shape = kv_shards[0].shape[1:]
    full = np.zeros((seq, *head_dim_shape), dtype=kv_shards[0].dtype)
    for rank, shard in enumerate(kv_shards):
        rows = rank_row_indices(seq, cp, rank)
        if shard.shape[0] != rows.size:
            raise ValueError(f"rank {rank} shard has wrong row count")
        full[rows] = shard
    return full
