"""BF16 emulation and precision configuration.

Numpy has no bfloat16, so we emulate it exactly: a BF16 value is a float32
whose low 16 mantissa bits are zero.  :func:`to_bf16` rounds float32 to the
nearest BF16 (round-half-to-even, matching hardware), and
:func:`bf16_matmul` mimics an H100 tensor-core GEMM — BF16 inputs, FP32
accumulation — which is the accumulation-precision baseline Section 6.2
aligns software behaviour with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

Dtype = Literal["bf16", "fp32"]


def to_bf16(x: np.ndarray) -> np.ndarray:
    """Round float values to the nearest bfloat16, returned as float32.

    Implements round-half-to-even on the top 16 bits of the IEEE-754
    binary32 representation, the same rounding hardware applies.
    """
    f32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = f32.view(np.uint32)
    # Round to nearest even: add 0x7FFF plus the parity of bit 16.
    rounding_bias = 0x7FFF + ((bits >> 16) & 1)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    out = rounded.view(np.float32).copy()
    # Preserve NaN payloads simply by regenerating a quiet NaN.
    out[np.isnan(f32)] = np.nan
    return out.reshape(np.shape(x))


def is_bf16_representable(x: np.ndarray) -> np.ndarray:
    """Boolean mask of values already exactly representable in BF16."""
    f32 = np.ascontiguousarray(x, dtype=np.float32)
    return (f32.view(np.uint32) & 0xFFFF) == 0


def cast(x: np.ndarray, dtype: Dtype) -> np.ndarray:
    """Cast to an emulated dtype ("bf16" rounds, "fp32" passes through)."""
    if dtype == "bf16":
        return to_bf16(x)
    if dtype == "fp32":
        return np.asarray(x, dtype=np.float32)
    raise ValueError(f"unknown dtype {dtype!r}")


@dataclass(frozen=True)
class PrecisionConfig:
    """Where precision is spent during training (Section 6.2).

    Attributes:
        compute: GEMM input/output dtype (BF16 in production).
        grad_accum: Dtype for accumulating micro-batch gradients in PP
            backwards.  The paper uses FP32 here to close numerical gaps.
        grad_reduce: Dtype for the DP reduce-scatter of gradients; also
            FP32 in production.
    """

    compute: Dtype = "bf16"
    grad_accum: Dtype = "fp32"
    grad_reduce: Dtype = "fp32"


#: Pure-BF16 configuration: the numerically fragile baseline.
ALL_BF16 = PrecisionConfig(compute="bf16", grad_accum="bf16",
                           grad_reduce="bf16")
#: Production Llama 3 configuration (Section 6.2): BF16 compute, FP32
#: gradient accumulation and reduction.
PRODUCTION = PrecisionConfig(compute="bf16", grad_accum="fp32",
                             grad_reduce="fp32")
#: Full FP32: the numerics-debugging reference.
ALL_FP32 = PrecisionConfig(compute="fp32", grad_accum="fp32",
                           grad_reduce="fp32")


def matmul(a: np.ndarray, b: np.ndarray, precision: PrecisionConfig) -> np.ndarray:
    """GEMM under a precision config.

    BF16 compute mirrors tensor-core semantics: inputs rounded to BF16,
    products accumulated in FP32, result rounded back to BF16.  FP32
    compute is a plain float32 GEMM.
    """
    if precision.compute == "bf16":
        prod = to_bf16(a).astype(np.float32) @ to_bf16(b).astype(np.float32)
        return to_bf16(prod)
    return np.asarray(a, np.float32) @ np.asarray(b, np.float32)


def accumulate(total: np.ndarray, update: np.ndarray, dtype: Dtype) -> np.ndarray:
    """One gradient-accumulation step in the given dtype.

    In BF16 the running total itself is BF16, so small updates can be
    swallowed entirely — the drift mechanism FP32 accumulation removes.
    """
    if dtype == "bf16":
        return to_bf16(to_bf16(total) + to_bf16(update))
    return np.asarray(total, np.float32) + np.asarray(update, np.float32)
