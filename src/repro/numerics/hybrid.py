"""Hybrid data-parallel x pipeline-parallel training with real numerics.

Composes the two emulators the way production composes FSDP and PP
(Section 3.1.3): each data-parallel group runs the *same* pipeline
schedule over its own batch shard, accumulating micro-batch gradients in
``grad_accum`` precision inside the pipeline; the per-group gradients are
then reduce-scattered across DP in ``grad_reduce`` precision and applied
to FP32 master shards.

The correctness contract follows the whole library's pattern: the hybrid
trainer matches a monolithic big-batch baseline with matched accumulation
orders **bitwise**, so a real dp x pp implementation can be debugged
against it the Section 6.2 way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.numerics.fsdp_emul import _shard_bounds
from repro.numerics.pipeline_emul import PipelineEmulator, make_pipeline
from repro.numerics.precision import PrecisionConfig, accumulate
from repro.numerics.transformer import Params, TinyTransformer
from repro.pp.schedule import PipelineSchedule


@dataclass
class HybridDpPpTrainer:
    """dp data-parallel groups, each running a pp-deep pipeline.

    The global batch is (dp * nmb, seq): group ``g`` takes rows
    ``g*nmb .. (g+1)*nmb`` as its micro-batches.
    """

    model: TinyTransformer
    schedule: PipelineSchedule
    dp: int
    precision: PrecisionConfig

    def __post_init__(self) -> None:
        if self.dp < 1:
            raise ValueError("dp must be >= 1")
        self._pipeline: PipelineEmulator = make_pipeline(
            self.model, self.schedule, self.precision
        )
        self.master_shards: Dict[str, List[np.ndarray]] = {
            name: [
                p.astype(np.float32).reshape(-1)[lo:hi].copy()
                for lo, hi in _shard_bounds(p.size, self.dp)
            ]
            for name, p in self.model.params.items()
        }

    @property
    def global_batch(self) -> int:
        return self.dp * self.schedule.shape.nmb

    def _sync_params_from_masters(self) -> None:
        for name, p in self.model.params.items():
            flat = np.concatenate(self.master_shards[name])[:p.size]
            self.model.params[name] = flat.reshape(p.shape).astype(
                np.float32)

    def train_step(
        self, tokens: np.ndarray, targets: np.ndarray, lr: float = 0.1
    ) -> Tuple[float, Params]:
        """One synchronous step over a (dp * nmb, seq) global batch.

        Returns (mean loss, the fully reduced gradient sum) — the
        gradients are also applied to the master shards via SGD.
        """
        nmb = self.schedule.shape.nmb
        if tokens.shape[0] != self.global_batch:
            raise ValueError(
                f"global batch must be dp*nmb = {self.global_batch}, got "
                f"{tokens.shape[0]}"
            )
        self._sync_params_from_masters()

        group_grads: List[Params] = []
        losses = []
        for g in range(self.dp):
            sl = slice(g * nmb, (g + 1) * nmb)
            loss, grads = self._pipeline.run_step(tokens[sl], targets[sl])
            losses.append(loss)
            group_grads.append(grads)

        # DP reduce-scatter (ring order) in grad_reduce precision.
        reduced: Params = {}
        for name in self.model.params:
            total = group_grads[0][name].astype(np.float32)
            for g in group_grads[1:]:
                total = accumulate(total, g[name].astype(np.float32),
                                   self.precision.grad_reduce)
            reduced[name] = total

        # Sharded SGD on FP32 masters (mean over the global batch).
        for name, shards in self.master_shards.items():
            flat = reduced[name].reshape(-1)
            bounds = _shard_bounds(flat.size, self.dp)
            for r, (lo, hi) in enumerate(bounds):
                shards[r] = shards[r] - lr * flat[lo:hi] / self.global_batch

        self._sync_params_from_masters()
        return float(np.mean(losses)), reduced

    def train(self, tokens: np.ndarray, targets: np.ndarray, steps: int,
              lr: float = 0.1) -> List[float]:
        return [self.train_step(tokens, targets, lr)[0]
                for _ in range(steps)]
