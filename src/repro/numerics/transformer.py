"""A small Llama-style transformer with hand-written forward and backward.

This is the real-computation substrate for the Section 6.2 numerics
experiments: every GEMM goes through :func:`repro.numerics.precision.matmul`
so the whole network can run in emulated BF16 (with FP32 tensor-core-style
accumulation) or full precision, and the backward pass returns raw gradient
arrays whose accumulation order the parallel emulators in
:mod:`repro.numerics.parallel_emul` can rearrange and compare bitwise.

Architecture (per layer): RMSNorm -> causal multi-head attention ->
residual -> RMSNorm -> SwiGLU FFN -> residual; embedding in, RMSNorm +
linear head out, cross-entropy loss averaged over tokens.  Softmax, norms
and elementwise math run in FP32 as production kernels do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.numerics.precision import PrecisionConfig, cast, matmul

Params = Dict[str, np.ndarray]


@dataclass(frozen=True)
class TinyConfig:
    """Dimensions of the numerics-testbed model."""

    vocab: int = 64
    dim: int = 32
    n_layers: int = 2
    n_heads: int = 4
    ffn_hidden: int = 64
    norm_eps: float = 1e-5

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ValueError("dim must be divisible by n_heads")

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads


def init_params(cfg: TinyConfig, rng: np.random.Generator) -> Params:
    """Gaussian-initialised parameters, scaled 1/sqrt(fan_in), float32."""
    def w(fan_in: int, *shape: int) -> np.ndarray:
        return (rng.standard_normal(shape) / np.sqrt(fan_in)).astype(np.float32)

    params: Params = {
        "embed": w(cfg.dim, cfg.vocab, cfg.dim),
        "head": w(cfg.dim, cfg.dim, cfg.vocab),
        "final_norm": np.ones(cfg.dim, dtype=np.float32),
    }
    for i in range(cfg.n_layers):
        params[f"l{i}.norm1"] = np.ones(cfg.dim, dtype=np.float32)
        params[f"l{i}.norm2"] = np.ones(cfg.dim, dtype=np.float32)
        for name in ("wq", "wk", "wv", "wo"):
            params[f"l{i}.{name}"] = w(cfg.dim, cfg.dim, cfg.dim)
        params[f"l{i}.wg"] = w(cfg.dim, cfg.dim, cfg.ffn_hidden)
        params[f"l{i}.wu"] = w(cfg.dim, cfg.dim, cfg.ffn_hidden)
        params[f"l{i}.wd"] = w(cfg.ffn_hidden, cfg.ffn_hidden, cfg.dim)
    return params


def random_token_batch(
    cfg: TinyConfig, batch: int, seq: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded ``(tokens, targets)`` pair of shape ``(batch, seq)``.

    The shared draw used by the numerics oracles and tests: reproducing a
    reported mismatch needs only the seed, never a pickled array.
    """
    rng = np.random.default_rng(seed)
    return (rng.integers(0, cfg.vocab, (batch, seq)),
            rng.integers(0, cfg.vocab, (batch, seq)))


# ---------------------------------------------------------------------------
# Primitive forward/backward pairs
# ---------------------------------------------------------------------------

def _rmsnorm_fwd(x: np.ndarray, g: np.ndarray, eps: float):
    r = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + eps)
    y = x / r * g
    return y, (x, g, r)


def _rmsnorm_bwd(dy: np.ndarray, ctx) -> Tuple[np.ndarray, np.ndarray]:
    x, g, r = ctx
    n = x.shape[-1]
    dg = np.sum(dy * x / r, axis=tuple(range(dy.ndim - 1)))
    dyg = dy * g
    dx = dyg / r - x * np.sum(dyg * x, axis=-1, keepdims=True) / (n * r**3)
    return dx, dg


def _silu(z: np.ndarray) -> np.ndarray:
    return z / (1.0 + np.exp(-z))


def _silu_grad(z: np.ndarray) -> np.ndarray:
    s = 1.0 / (1.0 + np.exp(-z))
    return s * (1.0 + z * (1.0 - s))


def _softmax_rows(scores: np.ndarray) -> np.ndarray:
    m = np.max(scores, axis=-1, keepdims=True)
    e = np.exp(scores - m)
    return e / np.sum(e, axis=-1, keepdims=True)


def _attention_fwd(
    q: np.ndarray, k: np.ndarray, v: np.ndarray,
    precision: PrecisionConfig,
):
    """Causal attention per head.  q, k, v: (seq, heads, head_dim)."""
    seq, heads, hd = q.shape
    scale = 1.0 / np.sqrt(hd)
    mask = np.tril(np.ones((seq, seq), dtype=bool))
    ctx_out = np.empty_like(q)
    probs = np.empty((heads, seq, seq), dtype=np.float32)
    for h in range(heads):
        scores = matmul(q[:, h, :], k[:, h, :].T, precision) * scale
        scores = np.where(mask, scores.astype(np.float32), -np.inf)
        p = _softmax_rows(scores)
        probs[h] = p
        ctx_out[:, h, :] = matmul(p, v[:, h, :], precision)
    return ctx_out, (q, k, v, probs, scale)


def _attention_bwd(dctx: np.ndarray, ctx, precision: PrecisionConfig):
    q, k, v, probs, scale = ctx
    seq, heads, hd = q.shape
    dq = np.empty_like(q)
    dk = np.empty_like(k)
    dv = np.empty_like(v)
    for h in range(heads):
        p = probs[h]
        do = dctx[:, h, :]
        dv[:, h, :] = matmul(p.T, do, precision)
        dp = matmul(do, v[:, h, :].T, precision).astype(np.float32)
        ds = p * (dp - np.sum(dp * p, axis=-1, keepdims=True))
        dq[:, h, :] = matmul(ds, k[:, h, :], precision) * scale
        dk[:, h, :] = matmul(ds.T, q[:, h, :], precision) * scale
    return dq, dk, dv


# ---------------------------------------------------------------------------
# Per-module forward/backward (used standalone by the pipeline emulator)
# ---------------------------------------------------------------------------

def embed_forward(
    params: Params, tokens: np.ndarray, precision: PrecisionConfig
) -> np.ndarray:
    """Token embedding lookup (the first pipeline stage's extra module)."""
    return cast(params["embed"][tokens], precision.compute)


def embed_backward(
    params: Params, tokens: np.ndarray, dx: np.ndarray
) -> np.ndarray:
    """Embedding-table gradient from the residual-stream gradient."""
    dembed = np.zeros_like(params["embed"])
    np.add.at(dembed, tokens, dx.astype(dembed.dtype))
    return dembed


def layer_forward(
    cfg: TinyConfig,
    params: Params,
    i: int,
    x: np.ndarray,
    precision: PrecisionConfig,
) -> Tuple[np.ndarray, dict]:
    """Forward of transformer layer ``i``; returns (output, cache).

    The (x_out, cache) pair is exactly what crosses a pipeline-stage
    boundary: the activation goes to the next stage over P2P, the cache
    stays resident until this micro-batch's backward.
    """
    p = params
    seq = x.shape[0]
    cache: dict = {"x_in": x}
    h1, cache["norm1"] = _rmsnorm_fwd(
        x.astype(np.float32), p[f"l{i}.norm1"], cfg.norm_eps
    )
    h1 = cast(h1, precision.compute)
    q = matmul(h1, p[f"l{i}.wq"], precision).reshape(
        seq, cfg.n_heads, cfg.head_dim)
    k = matmul(h1, p[f"l{i}.wk"], precision).reshape(
        seq, cfg.n_heads, cfg.head_dim)
    v = matmul(h1, p[f"l{i}.wv"], precision).reshape(
        seq, cfg.n_heads, cfg.head_dim)
    ctx_out, cache["attn"] = _attention_fwd(q, k, v, precision)
    attn_flat = ctx_out.reshape(seq, cfg.dim)
    attn_proj = matmul(attn_flat, p[f"l{i}.wo"], precision)
    cache["h1"], cache["attn_flat"] = h1, attn_flat
    x = x + attn_proj
    h2, cache["norm2"] = _rmsnorm_fwd(
        x.astype(np.float32), p[f"l{i}.norm2"], cfg.norm_eps
    )
    h2 = cast(h2, precision.compute)
    zg = matmul(h2, p[f"l{i}.wg"], precision)
    zu = matmul(h2, p[f"l{i}.wu"], precision)
    act = _silu(zg.astype(np.float32))
    ffn_in = cast(act * zu.astype(np.float32), precision.compute)
    ffn_out = matmul(ffn_in, p[f"l{i}.wd"], precision)
    cache.update(h2=h2, zg=zg, zu=zu, ffn_in=ffn_in)
    return x + ffn_out, cache


def layer_backward(
    cfg: TinyConfig,
    params: Params,
    i: int,
    dx: np.ndarray,
    cache: dict,
    precision: PrecisionConfig,
) -> Tuple[np.ndarray, Params]:
    """Backward of layer ``i``: upstream residual-stream gradient in,
    (input gradient, weight gradients) out."""
    p = params
    seq = dx.shape[0]
    grads: Params = {}
    c = cache
    # FFN block.
    dffn_out = dx
    grads[f"l{i}.wd"] = matmul(c["ffn_in"].T, dffn_out, precision)
    dffn_in = matmul(dffn_out, p[f"l{i}.wd"].T, precision)
    dffn_in = dffn_in.astype(np.float32)
    act = _silu(c["zg"].astype(np.float32))
    dzg = dffn_in * c["zu"].astype(np.float32) * _silu_grad(
        c["zg"].astype(np.float32))
    dzu = dffn_in * act
    grads[f"l{i}.wg"] = matmul(c["h2"].T, cast(dzg, precision.compute),
                               precision)
    grads[f"l{i}.wu"] = matmul(c["h2"].T, cast(dzu, precision.compute),
                               precision)
    dh2 = (
        matmul(cast(dzg, precision.compute), p[f"l{i}.wg"].T, precision)
        + matmul(cast(dzu, precision.compute), p[f"l{i}.wu"].T, precision)
    )
    dx2, grads[f"l{i}.norm2"] = _rmsnorm_bwd(
        dh2.astype(np.float32), c["norm2"]
    )
    dx = dx + dx2

    # Attention block.
    dattn_proj = dx
    grads[f"l{i}.wo"] = matmul(c["attn_flat"].T, dattn_proj, precision)
    dctx = matmul(dattn_proj, p[f"l{i}.wo"].T, precision).reshape(
        seq, cfg.n_heads, cfg.head_dim)
    dq, dk, dv = _attention_bwd(dctx, c["attn"], precision)
    dq = dq.reshape(seq, cfg.dim)
    dk = dk.reshape(seq, cfg.dim)
    dv = dv.reshape(seq, cfg.dim)
    h1 = c["h1"]
    grads[f"l{i}.wq"] = matmul(h1.T, dq, precision)
    grads[f"l{i}.wk"] = matmul(h1.T, dk, precision)
    grads[f"l{i}.wv"] = matmul(h1.T, dv, precision)
    dh1 = (
        matmul(dq, p[f"l{i}.wq"].T, precision)
        + matmul(dk, p[f"l{i}.wk"].T, precision)
        + matmul(dv, p[f"l{i}.wv"].T, precision)
    )
    dx1, grads[f"l{i}.norm1"] = _rmsnorm_bwd(
        dh1.astype(np.float32), c["norm1"]
    )
    return dx + dx1, grads


def head_forward(
    cfg: TinyConfig,
    params: Params,
    x: np.ndarray,
    targets: np.ndarray,
    precision: PrecisionConfig,
) -> Tuple[float, dict]:
    """Final norm + vocabulary head + cross-entropy (last stage)."""
    seq = x.shape[0]
    hf, norm_cache = _rmsnorm_fwd(
        x.astype(np.float32), params["final_norm"], cfg.norm_eps
    )
    hf = cast(hf, precision.compute)
    logits = matmul(hf, params["head"], precision).astype(np.float32)
    probs = _softmax_rows(logits)
    loss = float(-np.mean(np.log(probs[np.arange(seq), targets] + 1e-30)))
    return loss, {"norm": norm_cache, "hf": hf, "probs": probs,
                  "targets": targets, "seq": seq}


def head_backward(
    params: Params, cache: dict, precision: PrecisionConfig
) -> Tuple[np.ndarray, Params]:
    """Backward of the head: (residual-stream gradient, weight grads)."""
    seq, targets = cache["seq"], cache["targets"]
    grads: Params = {}
    dlogits = cache["probs"].copy()
    dlogits[np.arange(seq), targets] -= 1.0
    dlogits /= seq
    grads["head"] = matmul(cache["hf"].T, dlogits, precision)
    dhf = matmul(dlogits, params["head"].T, precision)
    dx, grads["final_norm"] = _rmsnorm_bwd(
        dhf.astype(np.float32), cache["norm"]
    )
    return dx, grads


# ---------------------------------------------------------------------------
# Full model
# ---------------------------------------------------------------------------

class TinyTransformer:
    """Numerics-testbed transformer with explicit forward/backward.

    All methods are pure with respect to ``params``: gradients are
    returned, never applied, so callers control the update and the
    accumulation order.
    """

    def __init__(self, cfg: TinyConfig, params: Params) -> None:
        self.cfg = cfg
        self.params = params

    @classmethod
    def create(cls, cfg: TinyConfig, seed: int = 0) -> "TinyTransformer":
        return cls(cfg, init_params(cfg, np.random.default_rng(seed)))

    def forward(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
        precision: PrecisionConfig,
    ) -> Tuple[float, dict]:
        """Cross-entropy loss for one sequence, plus the backward cache.

        Composed from the per-module primitives (:func:`embed_forward`,
        :func:`layer_forward`, :func:`head_forward`) so monolithic and
        pipeline-staged execution share every floating-point operation —
        the bitwise-comparison baseline of Section 6.2.
        """
        cfg, p = self.cfg, self.params
        if tokens.ndim != 1 or tokens.shape != targets.shape:
            raise ValueError("tokens and targets must be equal-length 1-D")
        x = embed_forward(p, tokens, precision)
        layer_caches: List[dict] = []
        for i in range(cfg.n_layers):
            x, cache = layer_forward(cfg, p, i, x, precision)
            layer_caches.append(cache)
        loss, head_cache = head_forward(cfg, p, x, targets, precision)
        cache_all = {
            "tokens": tokens, "layers": layer_caches, "head": head_cache,
        }
        return loss, cache_all

    def backward(self, cache: dict, precision: PrecisionConfig) -> Params:
        """Gradients of the cached forward, keyed like ``params``."""
        cfg, p = self.cfg, self.params
        grads: Params = {}
        dx, head_grads = head_backward(p, cache["head"], precision)
        grads.update(head_grads)
        for i in reversed(range(cfg.n_layers)):
            dx, layer_grads = layer_backward(
                cfg, p, i, dx, cache["layers"][i], precision)
            grads.update(layer_grads)
        grads["embed"] = embed_backward(p, cache["tokens"], dx)
        return grads

    def loss_and_grads(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
        precision: PrecisionConfig,
    ) -> Tuple[float, Params]:
        loss, cache = self.forward(tokens, targets, precision)
        return loss, self.backward(cache, precision)

    def apply_sgd(self, grads: Params, lr: float) -> None:
        """In-place SGD update (FP32 master weights)."""
        for name, g in grads.items():
            self.params[name] = (
                self.params[name].astype(np.float32)
                - lr * g.astype(np.float32)
            )
