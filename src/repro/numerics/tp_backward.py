"""Backward pass of the Megatron-style tensor-parallel layer.

Completes :mod:`repro.numerics.tp_emul` with the backward GEMM dataflow
(Section 2.1's TP, executed on real arrays):

* **row-parallel** linears (attention output, FFN down) need *no*
  communication for the input gradient: each rank computes
  ``dy @ W_shard^T`` on its own inner-dim slice, and the slices
  concatenate — bitwise exact.
* **column-parallel** linears (QKV, FFN gate/up) require an all-reduce of
  the input gradient: ``dx = sum_r dy_r @ W_r^T`` — a cross-rank sum, so
  bitwise only against the order-emulated baseline.
* **weight gradients are always reduction-free**: ``dW_r`` is an exact
  shard of the monolithic ``dW`` (column-parallel shards columns,
  row-parallel shards rows) — bitwise against the monolithic backward.

The tests certify each contract against
:func:`repro.numerics.transformer.layer_backward`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.numerics.precision import PrecisionConfig, accumulate, cast, matmul
from repro.numerics.transformer import (
    Params,
    TinyConfig,
    _attention_bwd,
    _attention_fwd,
    _rmsnorm_bwd,
    _rmsnorm_fwd,
    _silu,
    _silu_grad,
)


def _col_shards(w: np.ndarray, tp: int):
    shard = w.shape[1] // tp
    return [w[:, r * shard:(r + 1) * shard] for r in range(tp)]


def _row_shards(w: np.ndarray, tp: int):
    shard = w.shape[0] // tp
    return [w[r * shard:(r + 1) * shard, :] for r in range(tp)]


def _column_parallel_input_grad(
    dy: np.ndarray, w: np.ndarray, tp: int, precision: PrecisionConfig
) -> np.ndarray:
    """dx of a column-parallel linear: per-rank partials, ring all-reduce."""
    shard = dy.shape[1] // tp
    total = matmul(dy[:, :shard], _col_shards(w, tp)[0].T, precision)
    for r in range(1, tp):
        part = matmul(dy[:, r * shard:(r + 1) * shard],
                      _col_shards(w, tp)[r].T, precision)
        total = accumulate(total, part, precision.grad_reduce)
    return total


def tp_layer_forward_with_cache(
    cfg: TinyConfig,
    params: Params,
    layer: int,
    x: np.ndarray,
    tp: int,
    precision: PrecisionConfig,
) -> Tuple[np.ndarray, dict]:
    """TP forward that also returns the backward cache.

    The math (and therefore every floating-point result) is identical to
    :func:`repro.numerics.tp_emul.tp_layer_forward`; the cache mirrors the
    monolithic :func:`~repro.numerics.transformer.layer_forward` cache so
    the two backwards can be compared shard by shard.
    """
    if cfg.n_heads % tp != 0 or cfg.ffn_hidden % tp != 0:
        raise ValueError("tp must divide n_heads and ffn_hidden")
    seq = x.shape[0]
    p = {k.removeprefix(f"l{layer}."): v
         for k, v in params.items() if k.startswith(f"l{layer}.")}
    cache: dict = {"x_in": x}

    h1, cache["norm1"] = _rmsnorm_fwd(x.astype(np.float32), p["norm1"],
                                      cfg.norm_eps)
    h1 = cast(h1, precision.compute)
    cache["h1"] = h1

    def col(name):
        pieces = [matmul(h1, s, precision)
                  for s in _col_shards(p[name], tp)]
        return np.concatenate(pieces, axis=1)

    q = col("wq").reshape(seq, cfg.n_heads, cfg.head_dim)
    k = col("wk").reshape(seq, cfg.n_heads, cfg.head_dim)
    v = col("wv").reshape(seq, cfg.n_heads, cfg.head_dim)

    heads_per = cfg.n_heads // tp
    ctx = np.empty_like(q)
    attn_caches = []
    for r in range(tp):
        sl = slice(r * heads_per, (r + 1) * heads_per)
        ctx[:, sl, :], ac = _attention_fwd(q[:, sl, :], k[:, sl, :],
                                           v[:, sl, :], precision)
        attn_caches.append(ac)
    cache["attn_shards"] = attn_caches
    attn_flat = ctx.reshape(seq, cfg.dim)
    cache["attn_flat"] = attn_flat

    # Row-parallel output projection.
    shard = cfg.dim // tp
    attn_proj = matmul(attn_flat[:, :shard], _row_shards(p["wo"], tp)[0],
                       precision)
    for r in range(1, tp):
        part = matmul(attn_flat[:, r * shard:(r + 1) * shard],
                      _row_shards(p["wo"], tp)[r], precision)
        attn_proj = accumulate(attn_proj, part, precision.grad_reduce)
    x = x + attn_proj

    h2, cache["norm2"] = _rmsnorm_fwd(x.astype(np.float32), p["norm2"],
                                      cfg.norm_eps)
    h2 = cast(h2, precision.compute)
    cache["h2"] = h2

    def col2(name):
        pieces = [matmul(h2, s, precision)
                  for s in _col_shards(p[name], tp)]
        return np.concatenate(pieces, axis=1)

    zg, zu = col2("wg"), col2("wu")
    cache["zg"], cache["zu"] = zg, zu
    ffn_in = cast(_silu(zg.astype(np.float32)) * zu.astype(np.float32),
                  precision.compute)
    cache["ffn_in"] = ffn_in
    shard_f = cfg.ffn_hidden // tp
    ffn_out = matmul(ffn_in[:, :shard_f], _row_shards(p["wd"], tp)[0],
                     precision)
    for r in range(1, tp):
        part = matmul(ffn_in[:, r * shard_f:(r + 1) * shard_f],
                      _row_shards(p["wd"], tp)[r], precision)
        ffn_out = accumulate(ffn_out, part, precision.grad_reduce)
    return x + ffn_out, cache


def tp_layer_backward(
    cfg: TinyConfig,
    params: Params,
    layer: int,
    dx: np.ndarray,
    cache: dict,
    tp: int,
    precision: PrecisionConfig,
) -> Tuple[np.ndarray, Params]:
    """TP backward of one layer; returns (input grad, weight grads).

    Weight gradients come back *unsharded* (shards concatenated in place)
    so they key like the monolithic parameter dict.
    """
    p = {k.removeprefix(f"l{layer}."): v
         for k, v in params.items() if k.startswith(f"l{layer}.")}
    seq = dx.shape[0]
    grads: Params = {}

    # ---- FFN: row-parallel wd --------------------------------------------
    ffn_in = cache["ffn_in"]
    shard_f = cfg.ffn_hidden // tp
    dwd_shards = [
        matmul(ffn_in[:, r * shard_f:(r + 1) * shard_f].T, dx, precision)
        for r in range(tp)
    ]
    grads[f"l{layer}.wd"] = np.concatenate(dwd_shards, axis=0)
    dffn_in = np.concatenate([
        matmul(dx, _row_shards(p["wd"], tp)[r].T, precision)
        for r in range(tp)
    ], axis=1).astype(np.float32)

    zg32 = cache["zg"].astype(np.float32)
    act = _silu(zg32)
    dzg = dffn_in * cache["zu"].astype(np.float32) * _silu_grad(zg32)
    dzu = dffn_in * act
    dzg_c = cast(dzg, precision.compute)
    dzu_c = cast(dzu, precision.compute)
    h2 = cache["h2"]
    grads[f"l{layer}.wg"] = np.concatenate([
        matmul(h2.T, dzg_c[:, r * shard_f:(r + 1) * shard_f], precision)
        for r in range(tp)
    ], axis=1)
    grads[f"l{layer}.wu"] = np.concatenate([
        matmul(h2.T, dzu_c[:, r * shard_f:(r + 1) * shard_f], precision)
        for r in range(tp)
    ], axis=1)
    dh2 = accumulate(
        _column_parallel_input_grad(dzg_c, p["wg"], tp, precision),
        _column_parallel_input_grad(dzu_c, p["wu"], tp, precision),
        precision.grad_reduce,
    )
    dx2, grads[f"l{layer}.norm2"] = _rmsnorm_bwd(
        dh2.astype(np.float32), cache["norm2"])
    dx = dx + dx2

    # ---- attention: row-parallel wo ---------------------------------------
    attn_flat = cache["attn_flat"]
    shard_d = cfg.dim // tp
    grads[f"l{layer}.wo"] = np.concatenate([
        matmul(attn_flat[:, r * shard_d:(r + 1) * shard_d].T, dx, precision)
        for r in range(tp)
    ], axis=0)
    dctx = np.concatenate([
        matmul(dx, _row_shards(p["wo"], tp)[r].T, precision)
        for r in range(tp)
    ], axis=1).reshape(seq, cfg.n_heads, cfg.head_dim)

    heads_per = cfg.n_heads // tp
    dq = np.empty_like(dctx)
    dk = np.empty_like(dctx)
    dv = np.empty_like(dctx)
    for r in range(tp):
        sl = slice(r * heads_per, (r + 1) * heads_per)
        dq[:, sl, :], dk[:, sl, :], dv[:, sl, :] = _attention_bwd(
            dctx[:, sl, :], cache["attn_shards"][r], precision)
    dq = dq.reshape(seq, cfg.dim)
    dk = dk.reshape(seq, cfg.dim)
    dv = dv.reshape(seq, cfg.dim)

    h1 = cache["h1"]
    for name, dt in (("wq", dq), ("wk", dk), ("wv", dv)):
        grads[f"l{layer}.{name}"] = np.concatenate([
            matmul(h1.T, dt[:, r * shard_d:(r + 1) * shard_d], precision)
            for r in range(tp)
        ], axis=1)
    dh1 = accumulate(
        accumulate(
            _column_parallel_input_grad(dq, p["wq"], tp, precision),
            _column_parallel_input_grad(dk, p["wk"], tp, precision),
            precision.grad_reduce,
        ),
        _column_parallel_input_grad(dv, p["wv"], tp, precision),
        precision.grad_reduce,
    )
    dx1, grads[f"l{layer}.norm1"] = _rmsnorm_bwd(
        dh1.astype(np.float32), cache["norm1"])
    return dx + dx1, grads
