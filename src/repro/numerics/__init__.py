"""Real-computation numerics testbed for the Section 6.2 methodology."""

from repro.numerics.precision import (
    PrecisionConfig,
    ALL_BF16,
    ALL_FP32,
    PRODUCTION,
    to_bf16,
    cast,
    matmul,
    accumulate,
    is_bf16_representable,
)
from repro.numerics.transformer import (
    TinyConfig,
    TinyTransformer,
    init_params,
    embed_forward,
    embed_backward,
    layer_forward,
    layer_backward,
    head_forward,
    head_backward,
)
from repro.numerics.parallel_emul import (
    grads_in_order,
    pp_backward_order,
    pp_microbatch_grads,
    dp_sharded_grads,
    tp_row_parallel_matmul,
    tp_emulated_sequential_matmul,
    train_loss_curve,
)
from repro.numerics.fsdp_emul import FsdpEmulator
from repro.numerics.pipeline_emul import PipelineEmulator, make_pipeline
from repro.numerics.hybrid import HybridDpPpTrainer
from repro.numerics.tp_backward import (
    tp_layer_forward_with_cache,
    tp_layer_backward,
)
from repro.numerics.cp_layer import cp_layer_forward, cp_layer_backward
from repro.numerics.tp_emul import (
    column_parallel_linear,
    row_parallel_linear,
    tp_layer_forward,
    tp_layer_forward_emulated_order,
)
from repro.numerics.compare import (
    bitwise_equal,
    max_abs_diff,
    relative_grad_gap,
    DivergenceReport,
    loss_divergence,
)

__all__ = [
    "PrecisionConfig",
    "ALL_BF16",
    "ALL_FP32",
    "PRODUCTION",
    "to_bf16",
    "cast",
    "matmul",
    "accumulate",
    "is_bf16_representable",
    "TinyConfig",
    "TinyTransformer",
    "init_params",
    "embed_forward",
    "embed_backward",
    "layer_forward",
    "layer_backward",
    "head_forward",
    "head_backward",
    "grads_in_order",
    "pp_backward_order",
    "pp_microbatch_grads",
    "dp_sharded_grads",
    "tp_row_parallel_matmul",
    "tp_emulated_sequential_matmul",
    "train_loss_curve",
    "FsdpEmulator",
    "PipelineEmulator",
    "HybridDpPpTrainer",
    "tp_layer_forward_with_cache",
    "tp_layer_backward",
    "cp_layer_forward",
    "cp_layer_backward",
    "make_pipeline",
    "column_parallel_linear",
    "row_parallel_linear",
    "tp_layer_forward",
    "tp_layer_forward_emulated_order",
    "bitwise_equal",
    "max_abs_diff",
    "relative_grad_gap",
    "DivergenceReport",
    "loss_divergence",
]
