"""A real-numerics FSDP (ZeRO-1/2/3) emulator over the testbed model.

The paper's data parallelism is an in-house FSDP supporting the three
ZeRO sharding strategies (Section 2.1).  This emulator reproduces the
*mechanics* on actual numpy arrays: every parameter is flattened, padded,
and split into ``dp`` shards; each emulated rank holds

* ZeRO-1: full parameters, full gradients, 1/dp of optimizer state;
* ZeRO-2: full parameters, 1/dp of gradients (after reduce-scatter),
  1/dp of optimizer state;
* ZeRO-3: 1/dp of parameters (all-gathered around use), plus the above.

A training step runs: (all-gather parameters when sharded) -> per-rank
forward/backward on its batch shard -> ring reduce-scatter of gradients
in the configured precision -> sharded SGD on FP32 master shards ->
parameter shards updated (and, under ZeRO-1/2, broadcast back).

Invariants the tests certify: all three ZeRO stages produce **bitwise
identical** training trajectories (sharding moves bytes, never changes
arithmetic), and the trajectory matches unsharded data-parallel training
with the same reduction order bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.numerics.precision import PrecisionConfig, accumulate
from repro.numerics.transformer import Params, TinyTransformer
from repro.obs.metrics import MetricsRegistry
from repro.parallel.config import ZeroStage


def _shard_bounds(n: int, dp: int) -> List[Tuple[int, int]]:
    """Equal (padded) shard bounds over a flat length-n buffer."""
    per = -(-n // dp)  # ceil
    return [(min(r * per, n), min((r + 1) * per, n)) for r in range(dp)]


@dataclass
class FsdpEmulator:
    """Data-parallel trainer with emulated parameter/gradient sharding.

    One Python object plays all ``dp`` ranks (they share the replicated
    model arithmetic anyway); what is *per-rank* — batch shards, gradient
    shards, optimizer-state shards — is materialised per rank so the
    memory accounting is honest.
    """

    model: TinyTransformer
    dp: int
    zero: ZeroStage
    precision: PrecisionConfig
    #: Optional observability sink: collective counts and resident bytes.
    metrics: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.dp < 1:
            raise ValueError("dp must be >= 1")
        # FP32 master shards, one per rank per parameter.
        self.master_shards: Dict[str, List[np.ndarray]] = {}
        for name, p in self.model.params.items():
            flat = p.astype(np.float32).reshape(-1)
            self.master_shards[name] = [
                flat[lo:hi].copy() for lo, hi in
                _shard_bounds(flat.size, self.dp)
            ]

    # ------------------------------------------------------------------
    # Collectives (emulated on real arrays)
    # ------------------------------------------------------------------

    def _all_gather_params(self) -> Params:
        """Reconstruct full parameters from master shards (the ZeRO-3
        parameter all-gather; a no-op data-wise for ZeRO-1/2, where the
        full BF16 copy is resident, but numerically identical)."""
        full: Params = {}
        for name, p in self.model.params.items():
            flat = np.concatenate(self.master_shards[name])[
                : p.size].reshape(p.shape)
            full[name] = flat.astype(np.float32)
        return full

    def _reduce_scatter(self, per_rank_grads: List[Params]) -> Dict[
            str, List[np.ndarray]]:
        """Ring-order sum of each parameter's gradients, scattered into
        per-rank shards, in ``precision.grad_reduce``."""
        out: Dict[str, List[np.ndarray]] = {}
        for name in self.model.params:
            total = per_rank_grads[0][name].astype(np.float32).reshape(-1)
            for g in per_rank_grads[1:]:
                total = accumulate(
                    total, g[name].astype(np.float32).reshape(-1),
                    self.precision.grad_reduce,
                )
            bounds = _shard_bounds(total.size, self.dp)
            out[name] = [total[lo:hi].copy() for lo, hi in bounds]
        return out

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train_step(
        self, tokens: np.ndarray, targets: np.ndarray, lr: float = 0.1
    ) -> float:
        """One synchronous data-parallel step over a (batch, seq) batch.

        The batch is split contiguously across ranks; returns the mean
        loss.  Parameter updates happen on the FP32 master shards, then
        propagate to the model's working copy.
        """
        batch = tokens.shape[0]
        if batch % self.dp != 0:
            raise ValueError(f"batch {batch} not divisible by dp={self.dp}")
        shard_size = batch // self.dp

        # (ZeRO-3) all-gather parameters before compute.
        self.model.params = self._all_gather_params()

        per_rank_grads: List[Params] = []
        losses = []
        for r in range(self.dp):
            sl = slice(r * shard_size, (r + 1) * shard_size)
            total: Params = {
                k: np.zeros_like(v, dtype=np.float32)
                for k, v in self.model.params.items()
            }
            for i in range(sl.start, sl.stop):
                loss, grads = self.model.loss_and_grads(
                    tokens[i], targets[i], self.precision)
                losses.append(loss)
                total = {
                    k: accumulate(total[k], grads[k],
                                  self.precision.grad_accum)
                    for k in total
                }
            per_rank_grads.append(total)

        grad_shards = self._reduce_scatter(per_rank_grads)

        # Sharded optimizer step on the FP32 masters (SGD on the mean).
        for name, shards in self.master_shards.items():
            for r, master in enumerate(shards):
                g = grad_shards[name][r] / batch
                shards[r] = master - lr * g

        # Propagate updated masters to the working parameters.
        self.model.params = self._all_gather_params()

        if self.metrics is not None:
            zero = self.zero.name.lower()
            self.metrics.counter(
                "fsdp.param_allgathers", unit="collectives",
                description="parameter all-gathers per training step",
            ).inc(2, zero=zero)  # before compute + after optimizer
            self.metrics.counter(
                "fsdp.grad_reduce_scatters", unit="collectives",
                description="gradient reduce-scatters per training step",
            ).inc(1, zero=zero)
            resident = self.metrics.gauge(
                "fsdp.resident_bytes", unit="B",
                description="persistent bytes held per emulated rank")
            for component, nbytes in self.resident_bytes_per_rank().items():
                resident.set(nbytes, zero=zero, component=component)
        return float(np.mean(losses))

    def train(self, tokens: np.ndarray, targets: np.ndarray, steps: int,
              lr: float = 0.1) -> List[float]:
        """Run several steps; returns the loss trajectory."""
        return [self.train_step(tokens, targets, lr) for _ in range(steps)]

    # ------------------------------------------------------------------
    # Memory accounting (bytes actually held per emulated rank)
    # ------------------------------------------------------------------

    def resident_bytes_per_rank(self) -> Dict[str, float]:
        """Persistent bytes one rank holds under the configured ZeRO
        stage, mirroring Section 2.1's sharding definitions."""
        n_params = sum(p.size for p in self.model.params.values())
        shard = -(-n_params // self.dp)
        param_bytes = (
            2.0 * shard if self.zero is ZeroStage.ZERO_3 else 2.0 * n_params
        )
        grad_bytes = (
            4.0 * n_params if self.zero is ZeroStage.ZERO_1 else 4.0 * shard
        )
        optimizer_bytes = 4.0 * shard  # FP32 master (SGD: no moments)
        return {
            "params": param_bytes,
            "grads": grad_bytes,
            "optimizer": optimizer_bytes,
            "total": param_bytes + grad_bytes + optimizer_bytes,
        }
