"""A real-numerics pipeline-parallel trainer over the testbed model.

Unlike :func:`repro.numerics.parallel_emul.pp_microbatch_grads` (which
re-runs the whole model per micro-batch to study accumulation order),
this emulator actually *partitions the model into pipeline stages* and
executes a real :class:`~repro.pp.schedule.PipelineSchedule` op by op:

* a FORWARD op runs one stage's layers on one micro-batch and hands the
  output activation to the next stage (the P2P payload);
* a BACKWARD op consumes the gradient arriving from the next stage, runs
  the stage's layer backwards, accumulates weight gradients in the
  configured precision, and hands the input gradient upstream;
* stage 0 additionally owns the embedding, the last stage the head+loss.

The correctness contract — certified by the tests — is the paper's
Section 6.2 bar: the pipelined run produces gradients **bitwise
identical** to the monolithic model when the accumulation order matches,
for every valid schedule (1F1B, flexible, AFAB), because stage-boundary
hand-offs are exact and the per-op arithmetic is shared with the
monolithic forward/backward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.numerics.precision import PrecisionConfig, accumulate
from repro.numerics.transformer import (
    Params,
    TinyTransformer,
    embed_backward,
    embed_forward,
    head_backward,
    head_forward,
    layer_backward,
    layer_forward,
)
from repro.pp.layout import PipelineLayout, build_layout
from repro.pp.schedule import OpKind, PipelineSchedule


@dataclass
class PipelineEmulator:
    """Executes a pipeline schedule over the testbed model, for real.

    One Python object plays all pipeline ranks; stage state (activation
    caches, gradient buffers) is kept per global stage so the data flow
    is exactly what ``pp`` processes would exchange.
    """

    model: TinyTransformer
    schedule: PipelineSchedule
    layout: PipelineLayout
    precision: PrecisionConfig

    def __post_init__(self) -> None:
        shape = self.schedule.shape
        if self.layout.pp != shape.pp or self.layout.v != shape.v:
            raise ValueError("layout and schedule disagree on pp or v")
        if self.layout.n_layers != self.model.cfg.n_layers:
            raise ValueError(
                f"layout places {self.layout.n_layers} layers; model has "
                f"{self.model.cfg.n_layers}"
            )

    # ------------------------------------------------------------------

    def run_step(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
    ) -> Tuple[float, Params]:
        """One pipelined forward+backward over ``nmb`` micro-batches.

        ``tokens``/``targets`` are (nmb, seq); micro-batch ``m`` is row
        ``m``.  Returns (mean loss, accumulated gradients).
        """
        shape = self.schedule.shape
        if tokens.shape[0] != shape.nmb:
            raise ValueError(
                f"need exactly nmb={shape.nmb} micro-batches, got "
                f"{tokens.shape[0]}"
            )
        cfg, params = self.model.cfg, self.model.params
        last_stage = self.layout.num_stages - 1

        # In-flight state, keyed by (global_stage, microbatch).
        act_in: Dict[Tuple[int, int], np.ndarray] = {}
        caches: Dict[Tuple[int, int], List[dict]] = {}
        head_caches: Dict[int, dict] = {}
        grad_in: Dict[Tuple[int, int], np.ndarray] = {}

        grads: Params = {
            k: np.zeros_like(v, dtype=np.float32)
            for k, v in params.items()
        }
        losses: List[float] = []

        def accum(update: Params) -> None:
            for k, g in update.items():
                grads[k] = accumulate(grads[k], g, self.precision.grad_accum)

        # Execute ops in a causally consistent global order: walk the
        # per-rank programs with a ready-pointer loop (the same discipline
        # as the timing executor, but moving real arrays).
        programs = [list(self.schedule.program(r)) for r in range(shape.pp)]
        pointers = [0] * shape.pp
        total_ops = sum(len(p) for p in programs)
        executed = 0
        while executed < total_ops:
            progressed = False
            for ppr in range(shape.pp):
                while pointers[ppr] < len(programs[ppr]):
                    op = programs[ppr][pointers[ppr]]
                    stage = op.global_stage(shape.pp)
                    key = (stage, op.microbatch)
                    if op.kind is OpKind.FORWARD:
                        if stage == 0:
                            x = embed_forward(
                                params, tokens[op.microbatch],
                                self.precision)
                        elif (stage - 1, op.microbatch) in act_in:
                            x = act_in.pop((stage - 1, op.microbatch))
                        else:
                            break  # waiting for the previous stage
                        stage_caches = []
                        for layer in self.layout.stage(stage).layers:
                            x, cache = layer_forward(
                                cfg, params, layer, x, self.precision)
                            stage_caches.append(cache)
                        caches[key] = stage_caches
                        if stage == last_stage:
                            loss, hc = head_forward(
                                cfg, params, x, targets[op.microbatch],
                                self.precision)
                            losses.append(loss)
                            head_caches[op.microbatch] = hc
                        else:
                            act_in[key] = x
                    else:
                        if stage == last_stage:
                            dx, head_grads = head_backward(
                                params, head_caches.pop(op.microbatch),
                                self.precision)
                            accum(head_grads)
                        elif (stage + 1, op.microbatch) in grad_in:
                            dx = grad_in.pop((stage + 1, op.microbatch))
                        else:
                            break  # waiting for the next stage's backward
                        for layer, cache in zip(
                            reversed(self.layout.stage(stage).layers),
                            reversed(caches.pop(key)),
                        ):
                            dx, layer_grads = layer_backward(
                                cfg, params, layer, dx, cache,
                                self.precision)
                            accum(layer_grads)
                        if stage == 0:
                            accum({"embed": embed_backward(
                                params, tokens[op.microbatch], dx)})
                        else:
                            grad_in[key] = dx
                    pointers[ppr] += 1
                    executed += 1
                    progressed = True
            if not progressed:
                raise RuntimeError("pipeline emulator deadlocked")

        if act_in or grad_in or caches or head_caches:
            raise RuntimeError("pipeline left in-flight state behind")
        return float(np.mean(losses)), grads

    def peak_live_activations(self) -> int:
        """Upper bound on simultaneously live micro-batch caches on the
        heaviest rank, from the schedule (for memory cross-checks)."""
        return max(
            self.schedule.shape.peak_in_flight(r)
            for r in range(self.schedule.shape.pp)
        )


def make_pipeline(
    model: TinyTransformer,
    schedule: PipelineSchedule,
    precision: PrecisionConfig,
    layout: Optional[PipelineLayout] = None,
) -> PipelineEmulator:
    """Convenience constructor with a uniform layer layout."""
    shape = schedule.shape
    if layout is None:
        layout = build_layout(model.cfg.n_layers, shape.pp, shape.v)
    return PipelineEmulator(model=model, schedule=schedule, layout=layout,
                            precision=precision)
