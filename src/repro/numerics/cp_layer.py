"""A context-parallel transformer layer with real numerics.

Executes one testbed-model layer the way CP ranks would (Section 4):

* every rank holds its head/tail *rows* of the sequence and runs the
  per-token work (norms, QKV/output projections, FFN) on those rows —
  all reduction-free;
* K and V are computed per rank on local rows and **all-gathered** into
  the full tensors (an exact row assembly);
* attention runs each rank's query rows against the full K/V under the
  exact (causal or document) mask — the all-gather CP formulation.

Forward is therefore **bitwise identical** to the monolithic layer on the
assembled output.  Backward mirrors it: ``dx`` rows and per-rank weight
*partials* are exact; weight gradients and dK/dV need the cross-rank
reduce-scatter, so they match the monolithic backward to rounding and the
order-emulated baseline bitwise — the same contract as every other
parallelism in this library.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attention.masks import causal_mask, document_mask
from repro.cp.sharding import rank_row_indices
from repro.data.documents import DocumentBatch
from repro.numerics.precision import PrecisionConfig, accumulate, cast, matmul
from repro.numerics.transformer import (
    Params,
    TinyConfig,
    _rmsnorm_bwd,
    _rmsnorm_fwd,
    _silu,
    _silu_grad,
    _softmax_rows,
)


def _full_mask(seq: int, batch: Optional[DocumentBatch]) -> np.ndarray:
    if batch is None:
        return causal_mask(seq)
    if batch.seq != seq:
        raise ValueError("batch.seq mismatch")
    return document_mask(batch.doc_ids)


def _attention_rows_fwd(q_rows, k_full, v_full, mask_rows, precision):
    """Per-head attention of a row subset against the full K/V, with the
    same op sequence as the monolithic ``_attention_fwd`` (so results are
    bitwise identical per row)."""
    rows, heads, hd = q_rows.shape
    scale = 1.0 / np.sqrt(hd)
    out = np.empty_like(q_rows)
    probs = np.empty((heads, rows, k_full.shape[0]), dtype=np.float32)
    for h in range(heads):
        scores = matmul(q_rows[:, h, :], k_full[:, h, :].T, precision) * scale
        scores = np.where(mask_rows, scores.astype(np.float32), -np.inf)
        p = _softmax_rows(scores)
        probs[h] = p
        out[:, h, :] = matmul(p, v_full[:, h, :], precision)
    return out, probs


def _attention_rows_bwd(dctx_rows, q_rows, k_full, v_full, probs, precision):
    """Backward of the row-subset attention: exact dq rows, full-length
    dK/dV *partials* from these rows' contributions."""
    rows, heads, hd = q_rows.shape
    scale = 1.0 / np.sqrt(hd)
    dq = np.empty_like(q_rows)
    dk = np.zeros_like(k_full)
    dv = np.zeros_like(v_full)
    for h in range(heads):
        p = probs[h]
        do = dctx_rows[:, h, :]
        dv[:, h, :] += matmul(p.T, do, precision)
        dp = matmul(do, v_full[:, h, :].T, precision).astype(np.float32)
        ds = p * (dp - np.sum(dp * p, axis=-1, keepdims=True))
        dq[:, h, :] = matmul(ds, k_full[:, h, :], precision) * scale
        dk[:, h, :] += matmul(ds.T, q_rows[:, h, :], precision) * scale
    return dq, dk, dv


def cp_layer_forward(
    cfg: TinyConfig,
    params: Params,
    layer: int,
    x: np.ndarray,
    cp: int,
    precision: PrecisionConfig,
    batch: Optional[DocumentBatch] = None,
) -> Tuple[np.ndarray, List[dict]]:
    """One layer executed across ``cp`` context-parallel ranks.

    Args:
        cfg, params, layer: As in the monolithic layer.
        x: (seq, dim) full-sequence input (each rank holds its rows).
        cp: Context-parallel degree.
        precision: Compute precisions.
        batch: Document structure; None means causal.

    Returns the assembled (seq, dim) output and per-rank caches.
    """
    seq = x.shape[0]
    mask = _full_mask(seq, batch)
    p = {k.removeprefix(f"l{layer}."): v
         for k, v in params.items() if k.startswith(f"l{layer}.")}

    out = np.empty_like(x)
    k_full = np.empty((seq, cfg.n_heads, cfg.head_dim), dtype=x.dtype)
    v_full = np.empty_like(k_full)
    rank_state = []
    # Pass 1: per-rank local K/V (then "all-gather" by row assembly).
    for rank in range(cp):
        rows = rank_row_indices(seq, cp, rank)
        h1, norm1 = _rmsnorm_fwd(x[rows].astype(np.float32), p["norm1"],
                                 cfg.norm_eps)
        h1 = cast(h1, precision.compute)
        q = matmul(h1, p["wq"], precision).reshape(
            rows.size, cfg.n_heads, cfg.head_dim)
        k_full[rows] = matmul(h1, p["wk"], precision).reshape(
            rows.size, cfg.n_heads, cfg.head_dim)
        v_full[rows] = matmul(h1, p["wv"], precision).reshape(
            rows.size, cfg.n_heads, cfg.head_dim)
        rank_state.append({"rows": rows, "h1": h1, "q": q, "norm1": norm1,
                           "x_rows": x[rows]})

    # Pass 2: attention + the rest, per rank on its rows.
    caches = []
    for state in rank_state:
        rows, h1, q = state["rows"], state["h1"], state["q"]
        ctx, probs = _attention_rows_fwd(q, k_full, v_full, mask[rows, :],
                                         precision)
        attn_flat = ctx.reshape(rows.size, cfg.dim)
        x_mid = state["x_rows"] + matmul(attn_flat, p["wo"], precision)
        h2, norm2 = _rmsnorm_fwd(x_mid.astype(np.float32), p["norm2"],
                                 cfg.norm_eps)
        h2 = cast(h2, precision.compute)
        zg = matmul(h2, p["wg"], precision)
        zu = matmul(h2, p["wu"], precision)
        ffn_in = cast(_silu(zg.astype(np.float32)) * zu.astype(np.float32),
                      precision.compute)
        out[rows] = x_mid + matmul(ffn_in, p["wd"], precision)
        caches.append({
            "rows": rows, "h1": h1, "q": q, "probs": probs,
            "norm1": state["norm1"], "attn_flat": attn_flat,
            "norm2": norm2, "h2": h2, "zg": zg, "zu": zu,
            "ffn_in": ffn_in, "k_full": k_full, "v_full": v_full,
        })
    return out, caches


def cp_layer_backward(
    cfg: TinyConfig,
    params: Params,
    layer: int,
    dx: np.ndarray,
    caches: List[dict],
    cp: int,
    precision: PrecisionConfig,
) -> Tuple[np.ndarray, Params]:
    """Backward across CP ranks: exact dx rows; weight grads and dK/dV
    reduced across ranks in ring order (the reduce-scatter)."""
    p = {k.removeprefix(f"l{layer}."): v
         for k, v in params.items() if k.startswith(f"l{layer}.")}
    dx_out = np.empty_like(dx)

    per_rank_wgrads: List[Params] = []
    dk_partials: List[np.ndarray] = []
    dv_partials: List[np.ndarray] = []
    dh1_kv_rows: Dict[int, np.ndarray] = {}

    for cache in caches:
        rows = cache["rows"]
        d = dx[rows]
        grads: Params = {}
        # FFN.
        grads[f"l{layer}.wd"] = matmul(cache["ffn_in"].T, d, precision)
        dffn_in = matmul(d, p["wd"].T, precision).astype(np.float32)
        zg32 = cache["zg"].astype(np.float32)
        act = _silu(zg32)
        dzg = dffn_in * cache["zu"].astype(np.float32) * _silu_grad(zg32)
        dzu = dffn_in * act
        dzg_c, dzu_c = cast(dzg, precision.compute), cast(dzu,
                                                          precision.compute)
        grads[f"l{layer}.wg"] = matmul(cache["h2"].T, dzg_c, precision)
        grads[f"l{layer}.wu"] = matmul(cache["h2"].T, dzu_c, precision)
        dh2 = (matmul(dzg_c, p["wg"].T, precision)
               + matmul(dzu_c, p["wu"].T, precision))
        dmid, grads[f"l{layer}.norm2"] = _rmsnorm_bwd(
            dh2.astype(np.float32), cache["norm2"])
        dmid = d + dmid
        # Attention output projection.
        grads[f"l{layer}.wo"] = matmul(cache["attn_flat"].T, dmid,
                                       precision)
        dctx = matmul(dmid, p["wo"].T, precision).reshape(
            rows.size, cfg.n_heads, cfg.head_dim)
        dq, dk_p, dv_p = _attention_rows_bwd(
            dctx, cache["q"], cache["k_full"], cache["v_full"],
            cache["probs"], precision)
        dk_partials.append(dk_p)
        dv_partials.append(dv_p)
        dq_flat = dq.reshape(rows.size, cfg.dim)
        grads[f"l{layer}.wq"] = matmul(cache["h1"].T, dq_flat, precision)
        dh1_q = matmul(dq_flat, p["wq"].T, precision)
        # Store per-rank pieces; the K/V path resolves after the reduce.
        cache["_dmid"] = dmid
        cache["_dh1_q"] = dh1_q
        per_rank_wgrads.append(grads)

    # Reduce-scatter of dK/dV (ring order), then finish each rank's rows.
    dk = dk_partials[0].copy()
    dv = dv_partials[0].copy()
    for dk_p, dv_p in zip(dk_partials[1:], dv_partials[1:]):
        dk = accumulate(dk, dk_p, precision.grad_reduce)
        dv = accumulate(dv, dv_p, precision.grad_reduce)

    total: Params = {}
    for cache, grads in zip(caches, per_rank_wgrads):
        rows = cache["rows"]
        dk_rows = dk[rows].reshape(rows.size, cfg.dim)
        dv_rows = dv[rows].reshape(rows.size, cfg.dim)
        grads[f"l{layer}.wk"] = matmul(cache["h1"].T, dk_rows, precision)
        grads[f"l{layer}.wv"] = matmul(cache["h1"].T, dv_rows, precision)
        dh1 = (cache["_dh1_q"]
               + matmul(dk_rows, p["wk"].T, precision)
               + matmul(dv_rows, p["wv"].T, precision))
        dx1, grads[f"l{layer}.norm1"] = _rmsnorm_bwd(
            dh1.astype(np.float32), cache["norm1"])
        dx_out[rows] = cache["_dmid"] + dx1
        # Weight gradients: ring-sum across ranks.
        for name, g in grads.items():
            if name in total:
                total[name] = accumulate(total[name], g,
                                         precision.grad_reduce)
            else:
                total[name] = g.astype(np.float32)
    return dx_out, total
