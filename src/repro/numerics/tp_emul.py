"""A real-numerics tensor-parallel transformer layer (Megatron-style).

The paper's TP follows Megatron-LM (Section 2.1): column-parallel first
GEMMs (QKV, FFN gate/up — output dimension split, no reduction) and
row-parallel second GEMMs (attention output, FFN down — inner dimension
split, cross-rank all-reduce).  This module executes one full transformer
layer that way on real numpy arrays and certifies the numerical contract:

* **column-parallel** outputs are **bitwise identical** to the unsharded
  GEMM — each output element is computed by exactly one rank with the
  same arithmetic;
* **row-parallel** outputs involve a cross-rank sum, so they match the
  fused GEMM only to rounding, and match the order-emulated baseline
  bitwise (the Section 6.2 contract);
* attention itself parallelises over heads (each rank owns
  ``n_heads / tp`` heads), which is also reduction-free and bitwise.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.numerics.precision import PrecisionConfig, accumulate, cast, matmul
from repro.numerics.transformer import (
    TinyConfig,
    _attention_fwd,
    _rmsnorm_fwd,
    _silu,
)


def column_parallel_linear(
    x: np.ndarray, w: np.ndarray, tp: int, precision: PrecisionConfig
) -> np.ndarray:
    """Column-parallel GEMM: W split along its *output* dimension; shard
    outputs concatenate with no reduction — bitwise equal to the fused
    GEMM."""
    out_dim = w.shape[1]
    if out_dim % tp != 0:
        raise ValueError(f"output dim {out_dim} not divisible by tp={tp}")
    shard = out_dim // tp
    pieces = [
        matmul(x, w[:, r * shard:(r + 1) * shard], precision)
        for r in range(tp)
    ]
    return np.concatenate(pieces, axis=1)


def row_parallel_linear(
    x: np.ndarray, w: np.ndarray, tp: int, precision: PrecisionConfig
) -> np.ndarray:
    """Row-parallel GEMM: W split along its *input* dimension, partials
    all-reduced in ring order (matches
    :func:`repro.numerics.parallel_emul.tp_row_parallel_matmul`)."""
    in_dim = w.shape[0]
    if in_dim % tp != 0:
        raise ValueError(f"input dim {in_dim} not divisible by tp={tp}")
    shard = in_dim // tp
    total = matmul(x[:, :shard], w[:shard, :], precision)
    for r in range(1, tp):
        part = matmul(
            x[:, r * shard:(r + 1) * shard],
            w[r * shard:(r + 1) * shard, :], precision,
        )
        total = accumulate(total, part, precision.grad_reduce)
    return total


def tp_layer_forward(
    cfg: TinyConfig,
    params: Dict[str, np.ndarray],
    layer: int,
    x: np.ndarray,
    tp: int,
    precision: PrecisionConfig,
) -> np.ndarray:
    """One transformer layer executed with Megatron-style TP.

    Args:
        cfg: Testbed model dimensions.
        params: Full (unsharded) parameter dict of a
            :class:`~repro.numerics.transformer.TinyTransformer`.
        layer: Layer index to run.
        x: (seq, dim) input activations.
        tp: Tensor-parallel degree; must divide ``n_heads`` and
            ``ffn_hidden``.
        precision: Compute/reduction precisions.
    """
    if cfg.n_heads % tp != 0:
        raise ValueError("tp must divide n_heads")
    if cfg.ffn_hidden % tp != 0:
        raise ValueError("tp must divide ffn_hidden")
    seq = x.shape[0]
    p = {k.removeprefix(f"l{layer}."): v
         for k, v in params.items() if k.startswith(f"l{layer}.")}

    # --- attention block -------------------------------------------------
    h1, _ = _rmsnorm_fwd(x.astype(np.float32), p["norm1"], cfg.norm_eps)
    h1 = cast(h1, precision.compute)
    # Column-parallel QKV: head-blocks of the projection live per rank.
    q = column_parallel_linear(h1, p["wq"], tp, precision).reshape(
        seq, cfg.n_heads, cfg.head_dim)
    k = column_parallel_linear(h1, p["wk"], tp, precision).reshape(
        seq, cfg.n_heads, cfg.head_dim)
    v = column_parallel_linear(h1, p["wv"], tp, precision).reshape(
        seq, cfg.n_heads, cfg.head_dim)
    # Heads partition across ranks: reduction-free, run per rank.
    heads_per = cfg.n_heads // tp
    ctx = np.empty_like(q)
    for r in range(tp):
        sl = slice(r * heads_per, (r + 1) * heads_per)
        ctx[:, sl, :], _ = _attention_fwd(q[:, sl, :], k[:, sl, :],
                                          v[:, sl, :], precision)
    # Row-parallel output projection (all-reduce).
    attn_out = row_parallel_linear(
        ctx.reshape(seq, cfg.dim), p["wo"], tp, precision)
    x = x + attn_out

    # --- FFN block --------------------------------------------------------
    h2, _ = _rmsnorm_fwd(x.astype(np.float32), p["norm2"], cfg.norm_eps)
    h2 = cast(h2, precision.compute)
    zg = column_parallel_linear(h2, p["wg"], tp, precision)
    zu = column_parallel_linear(h2, p["wu"], tp, precision)
    ffn_in = cast(_silu(zg.astype(np.float32)) * zu.astype(np.float32),
                  precision.compute)
    ffn_out = row_parallel_linear(ffn_in, p["wd"], tp, precision)
    return x + ffn_out


def tp_layer_forward_emulated_order(
    cfg: TinyConfig,
    params: Dict[str, np.ndarray],
    layer: int,
    x: np.ndarray,
    tp: int,
    precision: PrecisionConfig,
) -> np.ndarray:
    """The sequential baseline forced into TP's partition and reduction
    order — bitwise equal to :func:`tp_layer_forward` by construction
    (the Section 6.2 debugging reference for a real TP layer)."""
    return tp_layer_forward(cfg, params, layer, x, tp, precision)


def attention_heads_bitwise_partitionable(
    cfg: TinyConfig,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    tp: int,
    precision: PrecisionConfig,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run attention fused vs head-partitioned; returns both outputs.

    Head partitioning is reduction-free, so the two must be bitwise
    identical — the reason TP attention needs no special numerics care
    while the row-parallel projections do.
    """
    fused, _ = _attention_fwd(q, k, v, precision)
    heads_per = cfg.n_heads // tp
    split = np.empty_like(fused)
    for r in range(tp):
        sl = slice(r * heads_per, (r + 1) * heads_per)
        split[:, sl, :], _ = _attention_fwd(q[:, sl, :], k[:, sl, :],
                                            v[:, sl, :], precision)
    return fused, split
