"""Emulated parallel execution orders over the numerics testbed model.

Section 6.2's debugging method hinges on one fact: parallelism changes
*only* the accumulation order of floating-point sums.  Therefore a
sequential run forced into the parallel order must match the parallel run
**bitwise**; any residual difference is an implementation bug.  This module
provides the pieces:

* :func:`grads_in_order` — sequential gradient accumulation in an explicit
  micro-batch order (the "emulated-order sequential baseline").
* :func:`pp_microbatch_grads` — a genuinely different code path that walks
  a real :class:`~repro.pp.schedule.PipelineSchedule` program and
  accumulates gradients at each BACKWARD op, the way a PP stage would.
* :func:`dp_sharded_grads` — data-parallel shards reduced in ring or tree
  order, in a configurable reduction dtype.
* :func:`tp_row_parallel_matmul` — a row-parallel (k-split) TP GEMM whose
  partial sums are reduced across ranks, plus its emulated-sequential twin.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.numerics.precision import (
    Dtype,
    PrecisionConfig,
    accumulate,
    matmul,
)
from repro.numerics.transformer import Params, TinyTransformer
from repro.pp.schedule import OpKind, PipelineSchedule


def _zero_like_params(params: Params) -> Params:
    return {k: np.zeros_like(v, dtype=np.float32) for k, v in params.items()}


def _accumulate_params(
    total: Params, update: Params, dtype: Dtype
) -> Params:
    return {
        k: accumulate(total[k], update[k], dtype) for k in total
    }


def grads_in_order(
    model: TinyTransformer,
    tokens: np.ndarray,
    targets: np.ndarray,
    order: Sequence[int],
    precision: PrecisionConfig,
) -> Dict[str, np.ndarray]:
    """Accumulate per-sequence gradients in an explicit order.

    Args:
        model: The testbed model.
        tokens: (batch, seq) int tokens.
        targets: (batch, seq) int targets.
        order: Permutation (or subsequence) of batch indices giving the
            accumulation order.
        precision: Compute and ``grad_accum`` dtypes.
    """
    if tokens.ndim != 2:
        raise ValueError("tokens must be (batch, seq)")
    total = _zero_like_params(model.params)
    for idx in order:
        _, grads = model.loss_and_grads(tokens[idx], targets[idx], precision)
        total = _accumulate_params(total, grads, precision.grad_accum)
    return total


def pp_backward_order(schedule: PipelineSchedule, ppr: int,
                      virtual_stage: int = 0) -> List[int]:
    """Micro-batch order in which one virtual stage of one rank runs its
    backwards — the accumulation order PP imposes on that stage's
    gradient buffer."""
    return [
        op.microbatch
        for op in schedule.program(ppr)
        if op.kind is OpKind.BACKWARD and op.virtual_stage == virtual_stage
    ]


def pp_microbatch_grads(
    model: TinyTransformer,
    tokens: np.ndarray,
    targets: np.ndarray,
    schedule: PipelineSchedule,
    ppr: int,
    precision: PrecisionConfig,
    virtual_stage: int = 0,
) -> Dict[str, np.ndarray]:
    """Gradient accumulation as one PP stage would perform it.

    Walks the rank's program op by op; on each BACKWARD of the chosen
    virtual stage, computes that micro-batch's gradients and folds them
    into the accumulation buffer in ``precision.grad_accum``.  The batch
    index doubles as the micro-batch id (mbs = 1).
    """
    if tokens.shape[0] < schedule.shape.nmb:
        raise ValueError(
            f"need at least nmb={schedule.shape.nmb} sequences, got "
            f"{tokens.shape[0]}"
        )
    total = _zero_like_params(model.params)
    for op in schedule.program(ppr):
        if op.kind is not OpKind.BACKWARD or op.virtual_stage != virtual_stage:
            continue
        _, grads = model.loss_and_grads(
            tokens[op.microbatch], targets[op.microbatch], precision
        )
        total = _accumulate_params(total, grads, precision.grad_accum)
    return total


def dp_sharded_grads(
    model: TinyTransformer,
    tokens: np.ndarray,
    targets: np.ndarray,
    dp: int,
    precision: PrecisionConfig,
    tree_reduce: bool = False,
) -> Dict[str, np.ndarray]:
    """Data-parallel gradients: contiguous batch shards, per-shard
    accumulation, then a cross-shard reduction in ``precision.grad_reduce``.

    ``tree_reduce`` selects pairwise (tree) reduction instead of the ring's
    linear left-to-right order — two valid parallel orders that disagree
    bitwise in low precision.
    """
    batch = tokens.shape[0]
    if batch % dp != 0:
        raise ValueError(f"batch {batch} not divisible by dp={dp}")
    shard_size = batch // dp
    shard_grads: List[Params] = []
    for r in range(dp):
        sl = slice(r * shard_size, (r + 1) * shard_size)
        shard_grads.append(
            grads_in_order(model, tokens[sl], targets[sl],
                           range(shard_size), precision)
        )

    reduce_dtype = precision.grad_reduce

    def reduce_pair(a: Params, b: Params) -> Params:
        return {k: accumulate(a[k], b[k], reduce_dtype) for k in a}

    if tree_reduce:
        level = shard_grads
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(reduce_pair(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]
    total = shard_grads[0]
    for g in shard_grads[1:]:
        total = reduce_pair(total, g)
    return total


def tp_row_parallel_matmul(
    x: np.ndarray,
    w: np.ndarray,
    tp: int,
    precision: PrecisionConfig,
) -> np.ndarray:
    """Row-parallel TP GEMM: W is split along its input (k) dimension, each
    rank computes a partial product, and partials are all-reduced in ring
    order — a different FP32 association than one fused GEMM."""
    k = w.shape[0]
    if k % tp != 0:
        raise ValueError(f"inner dim {k} not divisible by tp={tp}")
    shard = k // tp
    partials = [
        matmul(x[:, r * shard:(r + 1) * shard],
               w[r * shard:(r + 1) * shard, :], precision)
        for r in range(tp)
    ]
    total = partials[0]
    for part in partials[1:]:
        total = accumulate(total, part, precision.grad_reduce)
    return total


def tp_emulated_sequential_matmul(
    x: np.ndarray,
    w: np.ndarray,
    tp: int,
    precision: PrecisionConfig,
) -> np.ndarray:
    """The sequential baseline forced into TP's accumulation order
    (Section 6.2's bug-vs-numerics discriminator): identical partial-GEMM
    split and ring-order reduction, computed on one 'rank'.  Bitwise equal
    to :func:`tp_row_parallel_matmul` by construction — if a real TP
    implementation disagrees with this, it has a bug, not a numerics gap.
    """
    # Intentionally the same arithmetic expressed through the same helper:
    # the point of the baseline is to pin the accumulation order.
    return tp_row_parallel_matmul(x, w, tp, precision)


def train_loss_curve(
    model: TinyTransformer,
    tokens: np.ndarray,
    targets: np.ndarray,
    steps: int,
    precision: PrecisionConfig,
    order: Optional[Sequence[int]] = None,
    lr: float = 0.1,
) -> List[float]:
    """Run ``steps`` SGD steps accumulating micro-batch gradients in the
    given precision/order; returns the loss trajectory.  Used to show BF16
    gradient accumulation drifting from the FP32-accumulation curve."""
    batch = tokens.shape[0]
    if order is None:
        order = list(range(batch))
    losses = []
    for _ in range(steps):
        total = _zero_like_params(model.params)
        step_loss = 0.0
        for idx in order:
            loss, grads = model.loss_and_grads(
                tokens[idx], targets[idx], precision
            )
            step_loss += loss
            total = _accumulate_params(total, grads, precision.grad_accum)
        losses.append(step_loss / batch)
        mean_grads = {k: v / batch for k, v in total.items()}
        model.apply_sgd(mean_grads, lr)
    return losses
