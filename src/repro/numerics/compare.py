"""Comparison utilities for gradient dictionaries and loss curves.

These implement the verdicts of the Section 6.2 methodology: *bitwise
equality* is the bar for implementation correctness against an
accumulation-order-matched baseline; *bounded divergence* is the bar for
acceptable numerics between different-but-valid orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

Params = Dict[str, np.ndarray]


def bitwise_equal(a: Params, b: Params) -> bool:
    """True iff every gradient array matches bit for bit."""
    if a.keys() != b.keys():
        raise ValueError("gradient dicts have different keys")
    return all(
        a[k].shape == b[k].shape
        and np.array_equal(
            a[k].astype(np.float32).view(np.uint32),
            b[k].astype(np.float32).view(np.uint32),
        )
        for k in a
    )


def max_abs_diff(a: Params, b: Params) -> float:
    """Largest elementwise absolute difference across all gradients."""
    if a.keys() != b.keys():
        raise ValueError("gradient dicts have different keys")
    return max(
        float(np.max(np.abs(a[k].astype(np.float64)
                            - b[k].astype(np.float64))))
        for k in a
    )


def relative_grad_gap(a: Params, b: Params) -> float:
    """||a - b|| / ||a|| over the concatenated gradients."""
    num = 0.0
    den = 0.0
    for k in a:
        d = a[k].astype(np.float64) - b[k].astype(np.float64)
        num += float(np.sum(d * d))
        den += float(np.sum(a[k].astype(np.float64) ** 2))
    if den == 0.0:
        return 0.0
    return np.sqrt(num / den)


@dataclass(frozen=True)
class DivergenceReport:
    """Loss-curve divergence between a candidate and a reference run."""

    max_gap: float
    final_gap: float
    mean_gap: float


def loss_divergence(
    candidate: Sequence[float], reference: Sequence[float]
) -> DivergenceReport:
    """Absolute loss-gap statistics between two equal-length loss curves."""
    if len(candidate) != len(reference) or not candidate:
        raise ValueError("curves must be non-empty and equal length")
    gaps = [abs(c - r) for c, r in zip(candidate, reference)]
    return DivergenceReport(
        max_gap=max(gaps),
        final_gap=gaps[-1],
        mean_gap=sum(gaps) / len(gaps),
    )
