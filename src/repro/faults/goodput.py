"""Goodput under faults: effective throughput vs. the healthy baseline.

The paper's resilience story (Section 6.1) is ultimately about goodput —
how much training throughput a fleet delivers while degraded, and how
fast the degradation is localised.  This module runs the same optimizer
step twice on the step-graph path — once healthy, once under a
:class:`~repro.faults.models.FaultPlan` — and reports:

* effective tokens/s and MFU under faults vs. healthy (the goodput
  fraction);
* the exposed-communication delta per stream (which stream the fault's
  cost actually surfaced on, after overlap had its chance to hide it);
* the Section 6.1 detection outcome on the synthetic-workload side
  (:func:`repro.faults.detect.score_detection`), so one report carries
  both "how much it hurt" and "would we have found it".

``repro faults --json`` serializes this via
:func:`repro.obs.report.faults_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.debug.workload import WorkloadSpec
from repro.faults.detect import DetectionScore, score_detection
from repro.faults.inject import InjectionReport
from repro.faults.models import FaultPlan
from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig
from repro.obs.metrics import MetricsRegistry, record_comm_overlap_metrics
from repro.parallel.config import JobConfig, ParallelConfig
from repro.parallel.mesh import DeviceMesh
from repro.sim.engine import Simulator
from repro.train.step import StepReport, simulate_step

#: Above this world size the synthetic-workload detection pass is skipped:
#: it simulates every global rank (the step graph only simulates one
#: pipeline), so its cost scales with the fleet, not with pp.
DETECTION_WORLD_LIMIT = 512


def exposed_comm_by_stream(sim: Simulator) -> Dict[str, float]:
    """Exposed communication seconds per stream, summed over ranks.

    Per-stream ``comm``-kind exposure comes from the overlap accounting
    (:func:`repro.obs.metrics.record_comm_overlap_metrics` — the part of
    each collective outside any compute event); synthesized
    ``exposed_comm`` waits (P2P input gaps) are added under their own
    stream (``"wait"`` on the step-graph path).
    """
    registry = record_comm_overlap_metrics(sim)
    out: Dict[str, float] = {}
    if "comm.exposed_seconds" in registry:
        for labels, value in registry.get("comm.exposed_seconds").values.items():
            stream = dict(labels)["stream"]
            out[stream] = out.get(stream, 0.0) + value
    for event in sim.events:
        if event.kind == "exposed_comm":
            out[event.stream] = out.get(event.stream, 0.0) + event.duration
    return out


@dataclass(frozen=True)
class GoodputReport:
    """Healthy-vs-faulted comparison of one simulated step."""

    plan: FaultPlan
    healthy: StepReport
    faulted: StepReport
    injection: InjectionReport
    healthy_exposed_by_stream: Dict[str, float]
    faulted_exposed_by_stream: Dict[str, float]
    #: Detection outcome on the synthetic-workload side; None when
    #: skipped (``detect=False`` or the fleet exceeds the world limit).
    detection: Optional[DetectionScore] = None

    @property
    def goodput_fraction(self) -> float:
        """Faulted over healthy tokens/s — 1.0 means the fault was free."""
        healthy = self.healthy.tokens_per_second
        return self.faulted.tokens_per_second / healthy if healthy else 0.0

    @property
    def step_time_inflation(self) -> float:
        """Faulted over healthy step time (>= 1.0 for slowdown faults)."""
        if self.healthy.step_seconds <= 0:
            return 0.0
        return self.faulted.step_seconds / self.healthy.step_seconds

    @property
    def exposed_comm_delta_seconds(self) -> Dict[str, float]:
        """Per-stream exposed-comm change, faulted minus healthy."""
        streams = set(self.healthy_exposed_by_stream)
        streams.update(self.faulted_exposed_by_stream)
        return {
            s: (self.faulted_exposed_by_stream.get(s, 0.0)
                - self.healthy_exposed_by_stream.get(s, 0.0))
            for s in sorted(streams)
        }


def run_goodput(
    model: TextModelConfig,
    parallel: ParallelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    plan: FaultPlan,
    schedule_kind: str = "flexible",
    workload_spec: WorkloadSpec = WorkloadSpec(),
    detect: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    healthy_sim: Optional[Simulator] = None,
    faulted_sim: Optional[Simulator] = None,
) -> GoodputReport:
    """Simulate one step healthy and faulted, and score detection.

    Args:
        plan: The faults to inject (must be non-empty).
        schedule_kind: Pipeline schedule for both runs.
        workload_spec: Shape of the synthetic workload the detection pass
            runs on (the step graph itself has no per-global-rank trace).
        detect: Run the Section 6.1 localisation loop; skipped anyway
            above :data:`DETECTION_WORLD_LIMIT` global ranks.
        metrics: Registry the faulted step and the detection walk report
            into (step gauges, ``faults.injected_ops``, decision events).
        healthy_sim / faulted_sim: Hand in simulators to export either
            step timeline afterwards (e.g. ``repro faults --trace``).
    """
    if not len(plan):
        raise ValueError("goodput comparison needs a non-empty fault plan")
    mesh = DeviceMesh(parallel)
    plan.validate(mesh)
    healthy = simulate_step(
        model, parallel, job, cluster, schedule_kind=schedule_kind,
        sim=healthy_sim)
    faulted = simulate_step(
        model, parallel, job, cluster, schedule_kind=schedule_kind,
        sim=faulted_sim, metrics=metrics, fault_plan=plan)
    assert faulted.fault_injection is not None

    detection: Optional[DetectionScore] = None
    if detect and mesh.world_size <= DETECTION_WORLD_LIMIT:
        detection, _ = score_detection(
            mesh, plan, spec=workload_spec, metrics=metrics)

    report = GoodputReport(
        plan=plan,
        healthy=healthy,
        faulted=faulted,
        injection=faulted.fault_injection,
        healthy_exposed_by_stream=exposed_comm_by_stream(healthy.run.sim),
        faulted_exposed_by_stream=exposed_comm_by_stream(faulted.run.sim),
        detection=detection,
    )
    if metrics is not None:
        gauges = metrics.gauge(
            "faults.goodput", unit="ratio",
            description="faulted-over-healthy throughput ratios")
        gauges.set(report.goodput_fraction, part="tokens_per_second")
        gauges.set(report.step_time_inflation, part="step_time")
    return report


__all__ = [
    "DETECTION_WORLD_LIMIT",
    "GoodputReport",
    "exposed_comm_by_stream",
    "run_goodput",
]
