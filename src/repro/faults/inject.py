"""Fault injection into the lowered step graph.

The step-graph path cannot use simulator duration modifiers directly:
:mod:`repro.train.lowering` prices every op *before* execution, and the
executor's ranks are pipeline ranks, not global ranks.  So faults are
applied as a graph-to-graph rewrite instead: each fault in a
:class:`~repro.faults.models.FaultPlan` is projected from global ranks
onto the pipeline-rank axis (a fault on global rank ``r`` perturbs the
program of pipeline rank ``mesh.coord_of(r).pp``), matched against each
op's (kind, stream, name), and the matched ops rebuilt with perturbed
durations.  The executor then runs the perturbed graph unchanged — fault
cost composes with stream overlap and exposed-wait accounting exactly
like healthy cost does.

One deliberate coarsening: the step graph carries one program per
pipeline rank on behalf of the whole (tp, cp, dp) slice, so a fault on
any global rank of a pipeline stage slows that stage's shared program.
That matches how a single straggler behaves in a synchronised slice —
TP/CP/DP peers wait at their next collective — and keeps the rewrite
exact on the timeline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.faults.models import FaultPlan
from repro.parallel.mesh import DeviceMesh
from repro.train.lowering import StepGraph, StepOp, StepOpKind


def _sim_kind(op: StepOp) -> str:
    """Simulator event kind the executor will use for this op."""
    if op.kind in (StepOpKind.COMPUTE, StepOpKind.OPTIMIZER):
        return "compute"
    return "comm"


def _pp_ranks(fault, mesh: DeviceMesh) -> Optional[FrozenSet[int]]:
    """Pipeline ranks a fault's global ranks project onto (None = all)."""
    ranks = fault.affected_ranks(mesh)
    if ranks is None:
        return None
    return frozenset(mesh.coord_of(r).pp for r in ranks)


@dataclass(frozen=True)
class InjectionReport:
    """What a fault-plan rewrite did to a step graph."""

    #: uids of every op whose duration the rewrite changed.
    faulted_uids: FrozenSet[int]
    #: Total seconds added across all perturbed ops (can be negative for
    #: speedup-shaped modifiers; faults in this library only add).
    extra_seconds: float
    #: Perturbed-op count per fault, in plan order (a fault that matched
    #: nothing scores 0 — e.g. a CP link fault on a cp=1 mesh).
    ops_faulted_per_fault: Tuple[int, ...]

    @property
    def ops_faulted(self) -> int:
        return len(self.faulted_uids)

    @property
    def tags_by_uid(self) -> Dict[int, Tuple[str, ...]]:
        """Per-uid trace tags for :func:`repro.train.executor.execute_graph`."""
        return {uid: ("faulted",) for uid in self.faulted_uids}

    def to_dict(self) -> dict:
        return {
            "ops_faulted": self.ops_faulted,
            "extra_seconds": self.extra_seconds,
            "ops_faulted_per_fault": list(self.ops_faulted_per_fault),
        }


def apply_fault_plan(
    graph: StepGraph, plan: FaultPlan, mesh: DeviceMesh,
) -> Tuple[StepGraph, InjectionReport]:
    """Rewrite a step graph with a fault plan's perturbed durations.

    Faults apply in plan order, each seeing the previous one's output
    (same chaining semantics as simulator duration modifiers).  Returns
    the perturbed graph plus an :class:`InjectionReport`; the input graph
    is untouched.
    """
    plan.validate(mesh)
    appliers = []
    for fault in plan:
        appliers.append((fault, _pp_ranks(fault, mesh), {}))

    faulted: set = set()
    per_fault = [0] * len(appliers)
    extra = 0.0
    programs: List[Tuple[StepOp, ...]] = []
    for prog in graph.programs:
        new_prog: List[StepOp] = []
        for op in prog:
            kind = _sim_kind(op)
            duration = op.duration
            for idx, (fault, pp_ranks, states) in enumerate(appliers):
                if pp_ranks is not None and op.rank not in pp_ranks:
                    continue
                if not fault.matches_event(kind, op.stream, op.name):
                    continue
                state = states.setdefault(op.rank, fault.fresh_state())
                perturbed = fault.perturb(duration, state)
                if perturbed != duration:
                    per_fault[idx] += 1
                duration = perturbed
            if duration < 0:
                raise ValueError(
                    f"fault plan made op {op.name!r} negative ({duration})")
            if duration != op.duration:
                faulted.add(op.uid)
                extra += duration - op.duration
                op = dataclasses.replace(op, duration=duration)
            new_prog.append(op)
        programs.append(tuple(new_prog))

    report = InjectionReport(
        faulted_uids=frozenset(faulted),
        extra_seconds=extra,
        ops_faulted_per_fault=tuple(per_fault),
    )
    return StepGraph(programs=tuple(programs)), report


__all__ = ["InjectionReport", "apply_fault_plan"]
