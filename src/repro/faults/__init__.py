"""Fault injection and resilience scoring (the Section 6.1 loop).

Declarative fault models (:mod:`repro.faults.models`) inject into both
simulation paths — the synthetic 5D workload via simulator duration
modifiers, and the lowered step graph via a graph rewrite
(:mod:`repro.faults.inject`).  The loop closes in
:mod:`repro.faults.detect` (does the top-down search find what was
injected?) and :mod:`repro.faults.goodput` (what did the fault cost in
tokens/s, MFU, and exposed communication?).  See ``docs/faults.md``.
"""

from repro.faults.models import (
    FAULT_PRESETS,
    CollectiveRetry,
    ComputeStraggler,
    DegradedLink,
    FaultPlan,
    HotExpert,
    HungRank,
    PeriodicJitter,
    fault_from_dict,
    fault_preset,
    parse_fault_spec,
)
from repro.faults.inject import InjectionReport, apply_fault_plan
from repro.faults.detect import DetectionScore, score_detection
from repro.faults.goodput import (
    DETECTION_WORLD_LIMIT,
    GoodputReport,
    exposed_comm_by_stream,
    run_goodput,
)

__all__ = [
    "FAULT_PRESETS",
    "fault_from_dict",
    "fault_preset",
    "CollectiveRetry",
    "ComputeStraggler",
    "DegradedLink",
    "FaultPlan",
    "HotExpert",
    "HungRank",
    "PeriodicJitter",
    "parse_fault_spec",
    "InjectionReport",
    "apply_fault_plan",
    "DetectionScore",
    "score_detection",
    "DETECTION_WORLD_LIMIT",
    "GoodputReport",
    "exposed_comm_by_stream",
    "run_goodput",
]
