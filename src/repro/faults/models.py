"""Declarative fault models over the 5D mesh (the Section 6.1 fault zoo).

Each model describes one production failure mode as *which ranks* it hits,
*which events* it matches, and *how* it perturbs a matched event's
duration.  The same model injects into both simulation paths:

* the synthetic Section 6.1 workload, through simulator duration
  modifiers (:meth:`FaultPlan.install` +
  :meth:`repro.sim.engine.Simulator.add_duration_modifier`), so faults
  compose with stream overlap at run time;
* the lowered step graph, by perturbing per-op durations before
  :func:`repro.train.executor.execute_graph`
  (:func:`repro.faults.inject.apply_fault_plan`).

The taxonomy (see ``docs/faults.md``):

=====================  ==============================================
:class:`ComputeStraggler`  flaky/thermally-throttled GPU: every compute
                           op scaled and/or padded
:class:`DegradedLink`      degraded NVLink or scale-out link: one
                           rank's or one group's comm durations scaled
:class:`HungRank`          one-shot stall, capped by the collective
                           timeout (NCCL-timeout-then-recover)
:class:`PeriodicJitter`    periodic compute hiccup (DVFS, daemon
                           interference)
:class:`CollectiveRetry`   transient network fault: the first N
                           matching collectives pay a retry penalty
:class:`HotExpert`         MoE token-routing imbalance: the rank hosting
                           the hottest expert does capacity-clipped
                           extra work and ships a heavier all-to-all
=====================  ==============================================

Perturbation state is per (fault, rank) and created lazily, so one model
instance can be installed into many simulators without sharing state.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

from repro.sim.collectives import DEFAULT_COLLECTIVE_TIMEOUT_SECONDS

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.parallel.mesh import DeviceMesh
    from repro.sim.engine import DurationModifier, Simulator

#: Event-name prefixes of each mesh dimension's communication, across both
#: simulation paths (workload names `pp:`/`dp:`; step-graph names
#: `p2p:`/`fsdp:` on their own streams).
_COMM_PREFIXES: Dict[str, Tuple[str, ...]] = {
    "tp": ("tp:",),
    "cp": ("cp:",),
    "ep": ("ep:",),
    "pp": ("pp:", "p2p:"),
    "dp": ("dp:", "fsdp:"),
}

#: Step-graph stream carrying each dimension's communication.
_COMM_STREAMS: Dict[str, str] = {
    "tp": "tp", "cp": "cp", "ep": "ep", "pp": "p2p", "dp": "fsdp",
}


def _check_dim(dim: str) -> None:
    if dim not in _COMM_PREFIXES:
        raise ValueError(
            f"unknown dim {dim!r}; expected one of {sorted(_COMM_PREFIXES)}")


def _matches_dim_comm(dim: str, kind: str, stream: str, name: str) -> bool:
    """Is this event the given mesh dimension's communication?"""
    if kind != "comm":
        return False
    return name.startswith(_COMM_PREFIXES[dim]) or stream == _COMM_STREAMS[dim]


@dataclass(frozen=True)
class ComputeStraggler:
    """A persistently slow GPU: every compute op scaled, then padded."""

    rank: int
    extra_seconds: float = 0.5
    scale: float = 1.0

    kind_label = "compute_straggler"

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        if self.extra_seconds < 0 or self.scale <= 0:
            raise ValueError("need extra_seconds >= 0 and scale > 0")
        if self.extra_seconds == 0 and self.scale == 1.0:
            raise ValueError("straggler must slow something down")

    def affected_ranks(self, mesh: "DeviceMesh") -> Optional[FrozenSet[int]]:
        return frozenset({self.rank})

    def matches_event(self, kind: str, stream: str, name: str) -> bool:
        return kind == "compute"

    def fresh_state(self) -> dict:
        return {}

    def perturb(self, duration: float, state: dict) -> float:
        return duration * self.scale + self.extra_seconds

    @property
    def culprit_rank(self) -> Optional[int]:
        return self.rank

    @property
    def expected_attribution(self) -> Optional[str]:
        return "compute"

    def describe(self) -> str:
        return (f"straggler rank={self.rank} x{self.scale:g} "
                f"+{self.extra_seconds:g}s/op")

    def to_dict(self) -> dict:
        return {"kind": self.kind_label, "rank": self.rank,
                "extra_seconds": self.extra_seconds, "scale": self.scale}


@dataclass(frozen=True)
class DegradedLink:
    """A degraded NVLink/scale-out link: ``dim`` comm durations scaled.

    Scope is either one rank's communication (``rank=``) or one whole
    ``dim`` process group (``group=``, an index into
    ``mesh.all_groups(dim)`` — e.g. one NVLink domain for ``dim="tp"``).
    """

    dim: str
    scale: float = 2.0
    group: Optional[int] = None
    rank: Optional[int] = None

    kind_label = "degraded_link"

    def __post_init__(self) -> None:
        _check_dim(self.dim)
        if self.scale <= 0 or self.scale == 1.0:
            raise ValueError("scale must be positive and != 1")
        if (self.group is None) == (self.rank is None):
            raise ValueError("set exactly one of group= or rank=")

    def affected_ranks(self, mesh: "DeviceMesh") -> Optional[FrozenSet[int]]:
        if self.rank is not None:
            return frozenset({self.rank})
        groups = mesh.all_groups(self.dim)
        if not 0 <= self.group < len(groups):
            raise ValueError(
                f"{self.dim} group {self.group} out of range "
                f"[0, {len(groups)})")
        return frozenset(groups[self.group])

    def matches_event(self, kind: str, stream: str, name: str) -> bool:
        return _matches_dim_comm(self.dim, kind, stream, name)

    def fresh_state(self) -> dict:
        return {}

    def perturb(self, duration: float, state: dict) -> float:
        return duration * self.scale

    @property
    def culprit_rank(self) -> Optional[int]:
        return self.rank

    @property
    def expected_attribution(self) -> Optional[str]:
        return "communication"

    def describe(self) -> str:
        where = (f"rank={self.rank}" if self.rank is not None
                 else f"group={self.group}")
        return f"degraded-link dim={self.dim} {where} x{self.scale:g}"

    def to_dict(self) -> dict:
        return {"kind": self.kind_label, "dim": self.dim,
                "scale": self.scale, "group": self.group, "rank": self.rank}


@dataclass(frozen=True)
class HungRank:
    """A rank stalls once, bounded by the collective timeout.

    Models an NCCL-timeout-then-recover hang: the first compute op after
    onset pays ``min(hang_seconds, timeout_seconds)`` extra, then the
    rank runs healthy again.  ``timeout_seconds=None`` means the shared
    watchdog default, :data:`repro.sim.collectives.
    DEFAULT_COLLECTIVE_TIMEOUT_SECONDS` — the same constant that bounds
    a failed attempt under :class:`repro.sim.collectives.RetryPolicy` —
    so no hang is ever unbounded.
    """

    rank: int
    hang_seconds: float = 5.0
    timeout_seconds: Optional[float] = None

    kind_label = "hung_rank"

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be > 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be > 0 when set")

    @property
    def effective_timeout_seconds(self) -> float:
        """The watchdog bound: explicit, or the shared default."""
        if self.timeout_seconds is None:
            return DEFAULT_COLLECTIVE_TIMEOUT_SECONDS
        return self.timeout_seconds

    @property
    def stall_seconds(self) -> float:
        """Effective one-shot stall after the timeout cap."""
        return min(self.hang_seconds, self.effective_timeout_seconds)

    def affected_ranks(self, mesh: "DeviceMesh") -> Optional[FrozenSet[int]]:
        return frozenset({self.rank})

    def matches_event(self, kind: str, stream: str, name: str) -> bool:
        return kind == "compute"

    def fresh_state(self) -> dict:
        return {"fired": False}

    def perturb(self, duration: float, state: dict) -> float:
        if state["fired"]:
            return duration
        state["fired"] = True
        return duration + self.stall_seconds

    @property
    def culprit_rank(self) -> Optional[int]:
        return self.rank

    @property
    def expected_attribution(self) -> Optional[str]:
        return "compute"

    def describe(self) -> str:
        cap = (f" (timeout {self.timeout_seconds:g}s)"
               if self.timeout_seconds is not None else "")
        return f"hung rank={self.rank} {self.hang_seconds:g}s{cap}"

    def to_dict(self) -> dict:
        return {"kind": self.kind_label, "rank": self.rank,
                "hang_seconds": self.hang_seconds,
                "timeout_seconds": self.timeout_seconds,
                "stall_seconds": self.stall_seconds}


@dataclass(frozen=True)
class PeriodicJitter:
    """Periodic compute hiccup: every ``period``-th compute op pays extra."""

    rank: int
    period: int = 2
    extra_seconds: float = 0.02

    kind_label = "periodic_jitter"

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if self.extra_seconds <= 0:
            raise ValueError("extra_seconds must be > 0")

    def affected_ranks(self, mesh: "DeviceMesh") -> Optional[FrozenSet[int]]:
        return frozenset({self.rank})

    def matches_event(self, kind: str, stream: str, name: str) -> bool:
        return kind == "compute"

    def fresh_state(self) -> dict:
        return {"count": 0}

    def perturb(self, duration: float, state: dict) -> float:
        hit = state["count"] % self.period == 0
        state["count"] += 1
        return duration + self.extra_seconds if hit else duration

    @property
    def culprit_rank(self) -> Optional[int]:
        return self.rank

    @property
    def expected_attribution(self) -> Optional[str]:
        return "compute"

    def describe(self) -> str:
        return (f"jitter rank={self.rank} every {self.period} ops "
                f"+{self.extra_seconds:g}s")

    def to_dict(self) -> dict:
        return {"kind": self.kind_label, "rank": self.rank,
                "period": self.period, "extra_seconds": self.extra_seconds}


@dataclass(frozen=True)
class CollectiveRetry:
    """Transient network fault: first ``retries`` matching collectives
    each pay a retry penalty, then the link heals.

    ``rank=None`` hits every participant (a shared switch); a specific
    rank models one NIC flapping.
    """

    dim: str
    retries: int = 1
    extra_seconds: float = 0.05
    rank: Optional[int] = None

    kind_label = "collective_retry"

    def __post_init__(self) -> None:
        _check_dim(self.dim)
        if self.retries < 1:
            raise ValueError("retries must be >= 1")
        if self.extra_seconds <= 0:
            raise ValueError("extra_seconds must be > 0")

    def affected_ranks(self, mesh: "DeviceMesh") -> Optional[FrozenSet[int]]:
        if self.rank is not None:
            return frozenset({self.rank})
        return None  # every rank

    def matches_event(self, kind: str, stream: str, name: str) -> bool:
        return _matches_dim_comm(self.dim, kind, stream, name)

    def fresh_state(self) -> dict:
        return {"left": self.retries}

    def perturb(self, duration: float, state: dict) -> float:
        if state["left"] <= 0:
            return duration
        state["left"] -= 1
        return duration + self.extra_seconds

    @property
    def culprit_rank(self) -> Optional[int]:
        return self.rank

    @property
    def expected_attribution(self) -> Optional[str]:
        return "communication"

    def describe(self) -> str:
        who = f" rank={self.rank}" if self.rank is not None else ""
        return (f"retry dim={self.dim}{who} first {self.retries} "
                f"+{self.extra_seconds:g}s")

    def to_dict(self) -> dict:
        return {"kind": self.kind_label, "dim": self.dim,
                "retries": self.retries,
                "extra_seconds": self.extra_seconds, "rank": self.rank}


@dataclass(frozen=True)
class HotExpert:
    """MoE token-routing imbalance: one EP rank hosts the hottest expert.

    Real routers over-select a few experts early in training.  The EP
    rank hosting the hot expert processes ``imbalance`` times the
    balanced expert load — clipped at ``capacity_factor``, past which
    tokens are dropped instead of computed (:mod:`repro.train.moe`) —
    so its expert compute *and* its share of the dispatch/combine
    all-to-all stretch by :attr:`work_scale` while its EP peers wait.
    Slowdown originates on the compute stream, so the Section 6.1
    search should localise the hosting rank and attribute it
    ``compute`` — routing skew looks exactly like a throttled GPU from
    the outside, which is why it belongs in the fault zoo.
    """

    rank: int
    imbalance: float = 3.0
    capacity_factor: float = 1.25

    kind_label = "hot_expert"

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        if self.imbalance <= 1.0:
            raise ValueError("imbalance must be > 1.0 (1.0 = balanced)")
        if self.capacity_factor <= 1.0:
            raise ValueError(
                "capacity_factor must be > 1.0 for the hot expert to do "
                "any extra work (at <= 1.0 the excess is all drops)")

    @property
    def work_scale(self) -> float:
        """Realised slowdown: the routed load, clipped at capacity."""
        return min(self.imbalance, self.capacity_factor)

    def dropped_fraction(self, n_experts: int) -> float:
        """Token-drop fraction this skew causes at ``n_experts`` experts
        (the :class:`repro.train.step.StepReport` accounting)."""
        from repro.train.moe import dropped_token_fraction
        return dropped_token_fraction(
            n_experts, self.capacity_factor, self.imbalance)

    def affected_ranks(self, mesh: "DeviceMesh") -> Optional[FrozenSet[int]]:
        return frozenset({self.rank})

    def matches_event(self, kind: str, stream: str, name: str) -> bool:
        if kind == "compute":
            return True
        return _matches_dim_comm("ep", kind, stream, name)

    def fresh_state(self) -> dict:
        return {}

    def perturb(self, duration: float, state: dict) -> float:
        return duration * self.work_scale

    @property
    def culprit_rank(self) -> Optional[int]:
        return self.rank

    @property
    def expected_attribution(self) -> Optional[str]:
        return "compute"

    def describe(self) -> str:
        return (f"hot-expert rank={self.rank} x{self.imbalance:g} "
                f"(cap {self.capacity_factor:g})")

    def to_dict(self) -> dict:
        return {"kind": self.kind_label, "rank": self.rank,
                "imbalance": self.imbalance,
                "capacity_factor": self.capacity_factor,
                "work_scale": self.work_scale}


def make_modifier(fault, mesh: "DeviceMesh") -> "DurationModifier":
    """Engine duration modifier for one fault (lazy per-rank state)."""
    ranks = fault.affected_ranks(mesh)
    state: Dict[int, dict] = {}

    def modifier(rank: int, stream: str, kind: str, name: str,
                 duration: float) -> float:
        if ranks is not None and rank not in ranks:
            return duration
        if not fault.matches_event(kind, stream, name):
            return duration
        return fault.perturb(
            duration, state.setdefault(rank, fault.fresh_state()))

    return modifier


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of faults injected together."""

    faults: Tuple[object, ...] = ()

    def __iter__(self) -> Iterator[object]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def validate(self, mesh: "DeviceMesh") -> None:
        """Raise ``ValueError`` for faults outside the mesh."""
        for fault in self.faults:
            ranks = fault.affected_ranks(mesh)
            if ranks is None:
                continue
            bad = [r for r in ranks if not 0 <= r < mesh.world_size]
            if bad:
                raise ValueError(
                    f"fault {fault.describe()!r} targets ranks {sorted(bad)} "
                    f"outside world [0, {mesh.world_size})")

    def install(self, sim: "Simulator", mesh: "DeviceMesh") -> None:
        """Register every fault as a duration modifier on the simulator."""
        self.validate(mesh)
        for fault in self.faults:
            sim.add_duration_modifier(make_modifier(fault, mesh))

    def expected_detection(self) -> Tuple[Optional[int], Optional[str]]:
        """(rank, attribution) the Section 6.1 search should pin, if the
        plan has one unambiguous compute-side culprit; (None, None)
        otherwise (comm faults are group-visible, not rank-exact)."""
        culprits = {
            f.culprit_rank for f in self.faults
            if f.expected_attribution == "compute"
            and f.culprit_rank is not None
        }
        if len(culprits) == 1:
            return next(iter(culprits)), "compute"
        return None, None

    def describe(self) -> str:
        if not self.faults:
            return "no faults"
        return "; ".join(f.describe() for f in self.faults)

    def to_dicts(self) -> list:
        return [f.to_dict() for f in self.faults]


#: ``--fault`` spec types -> constructor + typed field parsers.
_SPEC_TYPES = {
    "straggler": (ComputeStraggler,
                  {"rank": int, "extra": ("extra_seconds", float),
                   "scale": float}),
    "link": (DegradedLink,
             {"dim": str, "scale": float, "group": int, "rank": int}),
    "hang": (HungRank,
             {"rank": int, "seconds": ("hang_seconds", float),
              "timeout": ("timeout_seconds", float)}),
    "jitter": (PeriodicJitter,
               {"rank": int, "period": int,
                "extra": ("extra_seconds", float)}),
    "retry": (CollectiveRetry,
              {"dim": str, "retries": int,
               "extra": ("extra_seconds", float), "rank": int}),
    "hotexpert": (HotExpert,
                  {"rank": int, "imbalance": float,
                   "capacity": ("capacity_factor", float)}),
}


def parse_fault_spec(spec: str):
    """Parse one CLI fault spec, e.g. ``straggler:rank=6,extra=0.5``.

    Format: ``<type>:key=value[,key=value...]`` with types
    ``straggler | link | hang | jitter | retry`` (see ``docs/faults.md``
    for every key).  Raises ``ValueError`` with a usage hint on any
    malformed spec.
    """
    head, _, rest = spec.partition(":")
    entry = _SPEC_TYPES.get(head.strip())
    if entry is None:
        raise ValueError(
            f"unknown fault type {head.strip()!r}; choose from "
            f"{sorted(_SPEC_TYPES)}")
    cls, fields = entry
    kwargs = {}
    for part in filter(None, (p.strip() for p in rest.split(","))):
        key, eq, value = part.partition("=")
        key = key.strip()
        if not eq or key not in fields:
            raise ValueError(
                f"bad {head.strip()!r} field {part!r}; expected one of "
                f"{sorted(fields)}")
        target = fields[key]
        name, conv = target if isinstance(target, tuple) else (key, target)
        try:
            kwargs[name] = conv(value.strip())
        except ValueError:
            raise ValueError(
                f"cannot parse {part!r} as {conv.__name__}") from None
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as err:
        raise ValueError(f"invalid fault spec {spec!r}: {err}") from None


#: ``kind`` label (as emitted by ``to_dict``) -> fault class.
_KIND_LABELS = {cls.kind_label: cls for cls, _ in _SPEC_TYPES.values()}


def fault_from_dict(data: Mapping):
    """Rebuild a fault model from its ``to_dict()`` form.

    The inverse of each model's ``to_dict``: derived keys (e.g.
    ``HungRank``'s ``stall_seconds``) are ignored, so any serialised
    fault round-trips to an equal instance.  Raises ``ValueError`` on an
    unknown ``kind``.
    """
    kind = data.get("kind")
    cls = _KIND_LABELS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown fault kind {kind!r}; choose from {sorted(_KIND_LABELS)}")
    kwargs = {f.name: data[f.name] for f in fields(cls) if f.name in data}
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as err:
        raise ValueError(f"invalid fault dict {dict(data)!r}: {err}") from None


def _straggler_default(world_size: int) -> FaultPlan:
    # A 25%-throttled GPU on the second-to-last rank — the paper's
    # running Figure 8 example shape.
    return FaultPlan((
        ComputeStraggler(rank=max(world_size - 2, 0),
                         extra_seconds=0.0, scale=1.25),
    ))


def _hot_expert_default(world_size: int) -> FaultPlan:
    # One 3x-hot expert (clipped at a 1.25 capacity factor) on the
    # second-to-last rank, mirroring the straggler preset's shape.
    return FaultPlan((
        HotExpert(rank=max(world_size - 2, 0), imbalance=3.0),
    ))


#: Named fault scenarios usable from code and ``repro faults --preset``.
FAULT_PRESETS: Dict[str, "object"] = {
    "straggler-default": _straggler_default,
    "hot-expert-default": _hot_expert_default,
}


def fault_preset(name: str, world_size: int) -> FaultPlan:
    """Build a named preset :class:`FaultPlan` for a given world size."""
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    builder = FAULT_PRESETS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown fault preset {name!r}; choose from "
            f"{sorted(FAULT_PRESETS)}")
    return builder(world_size)
