"""Detection scoring: did the Section 6.1 search find the injected fault?

This closes the fault-injection loop.  A fault plan states its ground
truth (:meth:`~repro.faults.models.FaultPlan.expected_detection`); this
module injects the plan into the synthetic workload, runs
:func:`repro.debug.trace_analysis.identify_slow_rank` on the resulting
trace, and scores the outcome: exact-rank hit, attribution hit, levels
descended, and the blame the search assigned along the way.  The same
scorer backs the detection-accuracy test matrix, the ``repro faults``
goodput report, and the fault-randomizing fuzz mode in
:mod:`repro.verify.fuzz`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.debug.trace_analysis import (
    LevelDecision,
    SlowRankReport,
    identify_slow_rank,
)
from repro.debug.workload import WorkloadSpec, run_synthetic_workload
from repro.faults.models import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.parallel.mesh import DeviceMesh
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class DetectionScore:
    """Scored outcome of one inject-then-localise round trip."""

    #: Ground truth from the plan; None when the plan has no unambiguous
    #: compute-side culprit (e.g. pure link faults).
    expected_rank: Optional[int]
    expected_attribution: Optional[str]
    #: What the Section 6.1 search concluded.
    detected_rank: int
    attribution: str
    compute_excess_seconds: float
    #: The narrowing walk, for blame-path inspection.
    decisions: Tuple[LevelDecision, ...]
    #: Events the injection actually perturbed (tagged ``"faulted"``).
    injected_events: int

    @property
    def scorable(self) -> bool:
        """Whether the plan pinned a single expected rank to score against."""
        return self.expected_rank is not None

    @property
    def exact_hit(self) -> bool:
        return self.scorable and self.detected_rank == self.expected_rank

    @property
    def attribution_hit(self) -> bool:
        return (self.expected_attribution is not None
                and self.attribution == self.expected_attribution)

    @property
    def levels_descended(self) -> int:
        return len(self.decisions)

    @property
    def blame_seconds(self) -> float:
        """Total blame accumulated along the chosen path."""
        return sum(d.blame_seconds for d in self.decisions)

    def to_dict(self) -> dict:
        return {
            "expected_rank": self.expected_rank,
            "expected_attribution": self.expected_attribution,
            "detected_rank": self.detected_rank,
            "attribution": self.attribution,
            "exact_hit": self.exact_hit,
            "attribution_hit": self.attribution_hit,
            "levels_descended": self.levels_descended,
            "blame_seconds": self.blame_seconds,
            "compute_excess_seconds": self.compute_excess_seconds,
            "injected_events": self.injected_events,
            "path": [
                {"dim": d.dim, "index": d.chosen_index,
                 "blame_seconds": d.blame_seconds}
                for d in self.decisions
            ],
        }


def score_detection(
    mesh: DeviceMesh,
    plan: FaultPlan,
    spec: WorkloadSpec = WorkloadSpec(),
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[DetectionScore, Simulator]:
    """Inject a plan into the synthetic workload and score localisation.

    Returns the score plus the faulted simulator (whose trace carries the
    ``"faulted"`` tags), so callers can export or further analyse it.
    When ``metrics`` is given, the underlying search logs its decision
    walk there and this function adds a ``faults.detection`` event with
    the verdict.
    """
    sim = run_synthetic_workload(mesh, spec=spec, faults=plan)
    report: SlowRankReport = identify_slow_rank(sim, mesh, metrics=metrics)
    expected_rank, expected_attr = plan.expected_detection()
    injected = sum(1 for e in sim.events if "faulted" in e.tags)
    score = DetectionScore(
        expected_rank=expected_rank,
        expected_attribution=expected_attr,
        detected_rank=report.slow_rank,
        attribution=report.attribution,
        compute_excess_seconds=report.compute_excess_seconds,
        decisions=report.decisions,
        injected_events=injected,
    )
    if metrics is not None:
        metrics.event(
            "faults.detection",
            plan=plan.describe(),
            expected_rank=expected_rank,
            detected_rank=score.detected_rank,
            exact_hit=score.exact_hit,
            attribution=score.attribution,
        )
    return score, sim


__all__ = ["DetectionScore", "score_detection"]
