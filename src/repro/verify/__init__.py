"""Verification subsystem: invariant checkers, differential oracles, and
a seeded property-fuzz harness.

Correctness as a first-class, reusable subsystem (see
``docs/verification.md``):

* :mod:`repro.verify.invariants` — machine-checkable schedule/timeline
  semantics: stream exclusivity, conservation, dependency ordering,
  Section 3.1.1 warm-up depth, and the Section 3.1.3 ZeRO pairing rule.
* :mod:`repro.verify.oracles` — differential oracles: flexible-PP AFAB
  degeneration, CP head/tail sharding vs. unsharded attention, and
  pipeline numerics vs. the order-matched sequential baseline.
* :mod:`repro.verify.fuzz` — deterministic config fuzzer with shrinking
  to minimal reproducers.
* :mod:`repro.verify.engine_fuzz` — differential engine fuzzer: random
  submission sequences replayed through the fast engine and the frozen
  reference engine (``tests/harness/reference_engine.py``), asserting
  bitwise-equal observables, with greedy shrinking to a minimal
  diverging sequence (``repro verify --engine``).
* :mod:`repro.verify.resilience_fuzz` — taxonomy-sampling fuzz for the
  resilient-run simulator: random failure taxonomies, tiered policies,
  and mitigation strategies checked against accounting/progress/
  determinism/fixed-draw invariants (``repro verify --resilience``).

The same machinery backs ``python -m repro verify`` (CI and local) and
the test suite (``tests/test_verify_*.py``).
"""

from repro.verify.engine_fuzz import (
    EngineFuzzCase,
    EngineFuzzConfig,
    EngineFuzzFailure,
    EngineFuzzResult,
    check_case,
    compare_engines,
    load_reference_simulator,
    run_engine_fuzz,
    sample_case,
    shrink_case,
)
from repro.verify.fuzz import (
    FuzzConfig,
    FuzzFailure,
    FuzzResult,
    check_config,
    run_fuzz,
    sample_config,
    shrink_config,
)
from repro.verify.invariants import (
    InvariantReport,
    Violation,
    check_conservation,
    check_program_order,
    check_send_before_recv,
    check_stream_overlap,
    check_warmup_depth,
    check_zero_schedule,
    run_invariants,
)
from repro.verify.resilience_fuzz import (
    ResilienceFuzzFailure,
    ResilienceFuzzResult,
    ResilienceScenario,
    check_resilience_scenario,
    run_resilience_fuzz,
    sample_resilience_scenario,
    shrink_resilience_scenario,
)
from repro.verify.oracles import (
    OracleResult,
    oracle_afab_degeneration,
    oracle_cp_attention,
    oracle_pp_numerics,
    run_default_oracles,
)

__all__ = [
    "EngineFuzzCase",
    "EngineFuzzConfig",
    "EngineFuzzFailure",
    "EngineFuzzResult",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzResult",
    "InvariantReport",
    "OracleResult",
    "ResilienceFuzzFailure",
    "ResilienceFuzzResult",
    "ResilienceScenario",
    "Violation",
    "check_case",
    "check_config",
    "check_conservation",
    "compare_engines",
    "check_program_order",
    "check_resilience_scenario",
    "check_send_before_recv",
    "check_stream_overlap",
    "check_warmup_depth",
    "check_zero_schedule",
    "load_reference_simulator",
    "oracle_afab_degeneration",
    "oracle_cp_attention",
    "oracle_pp_numerics",
    "run_default_oracles",
    "run_engine_fuzz",
    "run_fuzz",
    "run_invariants",
    "run_resilience_fuzz",
    "sample_case",
    "sample_config",
    "sample_resilience_scenario",
    "shrink_case",
    "shrink_config",
    "shrink_resilience_scenario",
]
