"""Schedule and timeline invariant checkers.

Every checker takes a :class:`~repro.pp.schedule.PipelineSchedule` and/or
an executed :class:`~repro.train.executor.PipelineRun` and returns a list
of :class:`Violation` — empty means the invariant holds.  Checkers never
raise on a bad schedule; they *describe* what is wrong, so the fuzzer can
shrink a failing configuration and the CLI can report it as structured
JSON.

The catalog (paper anchors in parentheses):

``stream-overlap``
    No two events overlap on one (rank, stream) — each stream is one
    serially-executing CUDA stream.
``conservation``
    Every (global stage, micro-batch) pair is executed exactly once per
    direction, on the rank that hosts the stage.
``program-order``
    Within one rank's program, a micro-batch's backward never precedes
    its forward on the same virtual stage.
``send-before-recv``
    In the executed timeline, an op starts no earlier than its cross-rank
    producer finished plus the P2P latency (the Figure 3 dependency
    structure).
``warmup-depth``
    Warm-up forwards before each rank's first backward match the Section
    3.1.1 formula ``(v-1)*nc + 2*(pp-ppr-1)`` (plus the steady-state
    forward, capped at the total); all-forward-all-backward schedules —
    including the ``nc < pp`` degeneration — warm up with the whole batch.
``zero-schedule``
    The ZeRO mode pairs with the schedule family per Section 3.1.3:
    ZeRO-1 + 1F1B when ``bs >= 2 * pp``, ZeRO-2 + AFAB otherwise.
``deadlock`` / ``executor-error``
    Emitted by the fuzz harness when executing a schedule raises instead
    of completing (the executor doubles as a deadlock detector).

Step-graph timeline invariants (:func:`run_step_invariants`, over a
lowered :class:`~repro.train.lowering.StepGraph` and its executed
events):

``step-dep-ordering``
    Every executed op starts no earlier than each of its graph
    dependencies finished.
``fsdp-allgather-before-use``
    A virtual stage's parameter all-gather completes before the stage's
    first compute of the matching round starts (Section 7.3.1 prefetch
    correctness).
``fsdp-reduce-after-backward``
    A stage's gradient reduce-scatter starts only after the stage's last
    backward finished.
``optimizer-after-reduce``
    Each rank's optimizer starts after every reduce-scatter on the rank.
``fsdp-zero-pairing``
    ZeRO-3 re-gathers parameters once per round per stage; ZeRO-1/2
    gather exactly once per stage (Section 3.1.3 on the timeline).
``critical-path-makespan``
    The extracted critical path tiles the timeline exactly: it starts at
    t=0, every link is bitwise contiguous (``next.start == prev.end``),
    and it ends at the step makespan — so path durations sum to the
    ``simulate_step`` step time with no float slop (the
    :mod:`repro.analysis.critical_path` exactness guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.parallel.config import ZeroStage
from repro.pp.analysis import degenerates_to_afab, warmup_microbatches
from repro.pp.registry import entry_for_name
from repro.pp.schedule import (
    GRAD_PRODUCING_KINDS,
    OpKind,
    PipelineOp,
    PipelineSchedule,
)
from repro.sim.engine import TraceEvent
from repro.train.executor import PipelineRun
from repro.train.lowering import StepGraph, StepOp, StepOpKind

#: Absolute slack for floating-point time comparisons.
_EPS = 1e-9

#: Schedule names that are all-forward-all-backward by construction.
_AFAB_NAMES = ("afab", "flexible-degenerate-afab")


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to reproduce it.

    Attributes:
        check: Catalog name of the violated invariant (see module doc).
        message: Human-readable description.
        context: JSON-able details (rank, micro-batch, stage, times...).
    """

    check: str
    message: str
    context: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "message": self.message,
            "context": dict(self.context),
        }


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of running a suite of checkers over one configuration."""

    checks_run: Tuple[str, ...]
    violations: Tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "checks_run": list(self.checks_run),
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


def is_afab_schedule(schedule: PipelineSchedule) -> bool:
    """Whether a schedule is all-forward-all-backward, either explicitly
    or through the ``nc < pp`` degeneration (Section 3.1.1).

    Registered schedules answer from their registry entry's ``family``
    (a ``*-degenerate-afab`` name always counts as AFAB regardless of
    family: it marks a 1F1B-family builder that degenerated).  The
    ``nc < pp`` heuristic only applies to *unregistered* names — a
    classic v=1 schedule like ``1f1b-noninterleaved`` ignores ``nc``
    entirely and must not be misjudged by it.
    """
    if (schedule.name in _AFAB_NAMES
            or schedule.name.endswith("-degenerate-afab")):
        return True
    entry = entry_for_name(schedule.name)
    if entry is not None:
        return entry.family == "afab"
    return degenerates_to_afab(schedule.pp, schedule.shape.nc)


# ----------------------------------------------------------------------
# Structure checks (schedule only)
# ----------------------------------------------------------------------

def check_conservation(schedule: PipelineSchedule) -> List[Violation]:
    """Every (global stage, micro-batch) appears exactly once per
    direction, hosted by the right rank, with in-range indices."""
    shape = schedule.shape
    out: List[Violation] = []
    seen: Dict[Tuple[OpKind, int, int], int] = {}
    for ppr in range(shape.pp):
        for op in schedule.program(ppr):
            if op.ppr != ppr:
                out.append(Violation(
                    "conservation",
                    f"rank {ppr} program holds an op for rank {op.ppr}",
                    {"ppr": ppr, "op_ppr": op.ppr}))
                continue
            if not 0 <= op.virtual_stage < shape.v or \
                    not 0 <= op.microbatch < shape.nmb:
                out.append(Violation(
                    "conservation",
                    f"out-of-range op vs={op.virtual_stage} "
                    f"mb={op.microbatch} on rank {ppr}",
                    {"ppr": ppr, "virtual_stage": op.virtual_stage,
                     "microbatch": op.microbatch}))
                continue
            key = (op.kind, op.global_stage(shape.pp), op.microbatch)
            seen[key] = seen.get(key, 0) + 1
    # Split-backward schedules conserve {F, BI, BW}; monolithic ones
    # conserve {F, B}.  Any op outside the schedule's kind set is flagged.
    expected_kinds: Tuple[OpKind, ...] = (
        (OpKind.FORWARD, OpKind.BACKWARD_INPUT, OpKind.BACKWARD_WEIGHT)
        if schedule.uses_split_backward
        else (OpKind.FORWARD, OpKind.BACKWARD)
    )
    for kind in expected_kinds:
        for stage in range(shape.pp * shape.v):
            for mb in range(shape.nmb):
                count = seen.get((kind, stage, mb), 0)
                if count != 1:
                    out.append(Violation(
                        "conservation",
                        f"{kind.value}:mb{mb}:s{stage} executed "
                        f"{count} times (expected once)",
                        {"kind": kind.value, "stage": stage,
                         "microbatch": mb, "count": count}))
    for (kind, stage, mb), count in sorted(
            seen.items(), key=lambda kv: (kv[0][0].value, kv[0][1], kv[0][2])):
        if kind not in expected_kinds:
            out.append(Violation(
                "conservation",
                f"{kind.value}:mb{mb}:s{stage} mixes "
                f"{'split' if schedule.uses_split_backward else 'monolithic'}"
                f"-backward programs with kind {kind.name}",
                {"kind": kind.value, "stage": stage,
                 "microbatch": mb, "count": count}))
    return out


def check_program_order(schedule: PipelineSchedule) -> List[Violation]:
    """Per rank, a micro-batch's backward follows its forward on the same
    virtual stage; under split backward, additionally BW follows BI."""
    out: List[Violation] = []
    for ppr in range(schedule.pp):
        first_fwd: Dict[Tuple[int, int], int] = {}
        first_bi: Dict[Tuple[int, int], int] = {}
        for idx, op in enumerate(schedule.program(ppr)):
            key = (op.virtual_stage, op.microbatch)
            if op.kind is OpKind.FORWARD:
                first_fwd.setdefault(key, idx)
                continue
            if key not in first_fwd:
                out.append(Violation(
                    "program-order",
                    f"rank {ppr}: backward of vs={key[0]} mb={key[1]} "
                    f"at position {idx} precedes its forward",
                    {"ppr": ppr, "virtual_stage": key[0],
                     "microbatch": key[1], "position": idx}))
                continue
            if op.kind is OpKind.BACKWARD_INPUT:
                first_bi.setdefault(key, idx)
            elif op.kind is OpKind.BACKWARD_WEIGHT and key not in first_bi:
                out.append(Violation(
                    "program-order",
                    f"rank {ppr}: weight-grad of vs={key[0]} mb={key[1]} "
                    f"at position {idx} precedes its input-grad",
                    {"ppr": ppr, "virtual_stage": key[0],
                     "microbatch": key[1], "position": idx}))
    return out


def check_warmup_depth(schedule: PipelineSchedule) -> List[Violation]:
    """Warm-up forwards before each rank's first backward match Section
    3.1.1.

    Expected depth is re-derived here from the raw
    :func:`~repro.pp.analysis.warmup_microbatches` formula — deliberately
    not shared with the generator's
    :func:`~repro.pp.analysis.warmup_forward_ops` call site, so an
    off-by-one introduced in the builder is caught rather than mirrored.
    """
    shape = schedule.shape
    out: List[Violation] = []
    afab = is_afab_schedule(schedule)
    entry = entry_for_name(schedule.name)
    for ppr in range(shape.pp):
        prog = schedule.program(ppr)
        actual = 0
        for op in prog:
            if op.kind is not OpKind.FORWARD:
                break
            actual += 1
        if afab:
            expected = shape.tmb
        elif entry is not None and entry.expected_warmup is not None:
            # Registered non-flexible kinds (classic 1F1B, zero-bubble)
            # declare their own analytic warm-up depth in the registry.
            expected = entry.expected_warmup(shape, ppr)
        else:
            expected = min(
                warmup_microbatches(shape.pp, ppr, shape.v, shape.nc) + 1,
                shape.tmb)
        if actual != expected:
            out.append(Violation(
                "warmup-depth",
                f"rank {ppr} runs {actual} warm-up forwards; Section "
                f"3.1.1 requires {expected} "
                f"(pp={shape.pp}, v={shape.v}, nc={shape.nc}, "
                f"nmb={shape.nmb}, afab={afab})",
                {"ppr": ppr, "actual": actual, "expected": expected,
                 "afab": afab}))
    return out


def check_zero_schedule(
    zero: ZeroStage, schedule_kind: str, bs: int, pp: int
) -> List[Violation]:
    """Section 3.1.3 pairing rule: ``bs >= 2 * pp`` selects ZeRO-1 with a
    1F1B-family schedule; below the boundary, ZeRO-2 with AFAB.

    ``schedule_kind`` is a registered schedule kind (or emitted schedule
    name); its family comes from the registry — ``"1f1b"``-family kinds
    (flexible, interleaved/classic 1F1B, zero-bubble, DIP) count as
    1F1B, ``"afab"``-family kinds (AFAB, GPipe) as
    all-forward-all-backward.
    """
    if bs < 1 or pp < 1:
        raise ValueError("bs and pp must be >= 1")
    if schedule_kind.endswith("-degenerate-afab"):
        one_f1b = False
    else:
        entry = entry_for_name(schedule_kind)
        if entry is None:
            raise ValueError(f"unknown schedule family {schedule_kind!r}")
        one_f1b = entry.family == "1f1b"
    expected_zero, expected_kind = (
        (ZeroStage.ZERO_1, "1f1b") if bs >= 2 * pp
        else (ZeroStage.ZERO_2, "afab"))
    out: List[Violation] = []
    context = {"bs": bs, "pp": pp, "boundary": 2 * pp,
               "zero": zero.name, "schedule": schedule_kind}
    if zero is not expected_zero:
        out.append(Violation(
            "zero-schedule",
            f"bs={bs} vs 2*pp={2 * pp} selects {expected_zero.name}, "
            f"got {zero.name} (Section 3.1.3)",
            context))
    if (expected_kind == "1f1b") != one_f1b:
        out.append(Violation(
            "zero-schedule",
            f"bs={bs} vs 2*pp={2 * pp} selects the "
            f"{'1F1B' if expected_kind == '1f1b' else 'AFAB'} family, "
            f"got {schedule_kind!r} (Section 3.1.3)",
            context))
    return out


# ----------------------------------------------------------------------
# Timeline checks (schedule + executed run)
# ----------------------------------------------------------------------

def check_stream_overlap(run: PipelineRun) -> List[Violation]:
    """No two events overlap on one (rank, stream)."""
    return [
        Violation(
            "stream-overlap",
            f"events {a.name!r} and {b.name!r} overlap on rank {a.rank} "
            f"stream {a.stream!r} ([{a.start}, {a.end}) vs "
            f"[{b.start}, {b.end}))",
            {"rank": a.rank, "stream": a.stream,
             "first": a.name, "second": b.name})
        for a, b in run.sim.overlapping_events()
    ]


def check_send_before_recv(run: PipelineRun) -> List[Violation]:
    """Executed dependency timing: an op's compute starts no earlier than
    its cross-rank producer's compute ended plus the P2P latency.

    Checks both directions of the Figure 3 dependency structure —
    forward activations flowing down the stages and gradients flowing
    back up — and that every scheduled op actually has a recorded event
    of non-negative duration.
    """
    schedule = run.schedule
    shape = schedule.shape
    if run.op_events is None:
        return [Violation(
            "send-before-recv",
            "run has no op_events; re-execute with "
            "repro.train.executor.execute_pipeline",
            {})]
    p2p = run.p2p_seconds or 0.0
    last_stage = shape.pp * shape.v - 1
    out: List[Violation] = []
    for op in schedule.ops():
        event = run.op_events.get(op)
        if event is None:
            out.append(Violation(
                "send-before-recv",
                f"op {op.label(shape.pp)} on rank {op.ppr} has no "
                f"recorded event",
                {"ppr": op.ppr, "op": op.label(shape.pp)}))
            continue
        if event.duration < 0:
            out.append(Violation(
                "send-before-recv",
                f"op {op.label(shape.pp)} has negative duration "
                f"{event.duration}",
                {"ppr": op.ppr, "op": op.label(shape.pp)}))
        stage = op.global_stage(shape.pp)
        if op.kind is OpKind.FORWARD:
            if stage == 0:
                continue
            producer = PipelineOp(OpKind.FORWARD, (stage - 1) % shape.pp,
                                  (stage - 1) // shape.pp, op.microbatch)
        elif op.kind is OpKind.BACKWARD_WEIGHT:
            # Weight-grad halves are rank-local: no cross-rank producer.
            continue
        else:
            # Monolithic B — or the input-grad half BI under split
            # backward — consumes the same kind from the next stage.
            if stage == last_stage:
                continue
            producer = PipelineOp(op.kind, (stage + 1) % shape.pp,
                                  (stage + 1) // shape.pp, op.microbatch)
        produced = run.op_events.get(producer)
        if produced is None:
            out.append(Violation(
                "send-before-recv",
                f"op {op.label(shape.pp)} consumed "
                f"{producer.label(shape.pp)} which never executed",
                {"op": op.label(shape.pp),
                 "producer": producer.label(shape.pp)}))
            continue
        if event.start + _EPS < produced.end + p2p:
            out.append(Violation(
                "send-before-recv",
                f"op {op.label(shape.pp)} on rank {op.ppr} started at "
                f"{event.start} before its input from "
                f"{producer.label(shape.pp)} arrived at "
                f"{produced.end + p2p}",
                {"op": op.label(shape.pp),
                 "producer": producer.label(shape.pp),
                 "start": event.start,
                 "arrival": produced.end + p2p}))
    return out


# ----------------------------------------------------------------------
# Step-graph timeline checks (lowered graph + executed events)
# ----------------------------------------------------------------------

def _fsdp_stage_round(op: StepOp) -> Tuple[int, Optional[int]]:
    """Parse (stage, round) out of an FSDP op name —
    ``fsdp:ag:s{stage}[:r{round}]`` / ``fsdp:rs:s{stage}``."""
    parts = op.name.split(":")
    stage = int(parts[2][1:])
    rnd = int(parts[3][1:]) if len(parts) > 3 else None
    return stage, rnd


def check_step_dep_ordering(
    graph: StepGraph, events: Dict[int, TraceEvent]
) -> List[Violation]:
    """Every executed op starts no earlier than each dependency's end."""
    out: List[Violation] = []
    for op in graph.ops():
        event = events.get(op.uid)
        if event is None:
            out.append(Violation(
                "step-dep-ordering",
                f"op {op.name!r} on rank {op.rank} was never executed",
                {"rank": op.rank, "op": op.name}))
            continue
        for dep_uid in op.deps:
            dep = events.get(dep_uid)
            if dep is not None and event.start + _EPS < dep.end:
                out.append(Violation(
                    "step-dep-ordering",
                    f"op {op.name!r} on rank {op.rank} started at "
                    f"{event.start} before dependency {dep.name!r} "
                    f"finished at {dep.end}",
                    {"rank": op.rank, "op": op.name, "dep": dep.name,
                     "start": event.start, "dep_end": dep.end}))
    return out


def check_fsdp_allgather_before_use(
    graph: StepGraph,
    events: Dict[int, TraceEvent],
    nc: Optional[int] = None,
) -> List[Violation]:
    """A stage's param all-gather ends before the stage's first compute
    of the matching round starts (round matching needs ``nc``)."""
    out: List[Violation] = []
    pp = graph.pp
    for program in graph.programs:
        gathers: Dict[Tuple[int, Optional[int]], StepOp] = {}
        for op in program:
            if op.kind is StepOpKind.FSDP_ALLGATHER:
                gathers[_fsdp_stage_round(op)] = op
        for op in program:
            if op.kind is not StepOpKind.COMPUTE or op.pipeline_op is None:
                continue
            stage = op.pipeline_op.global_stage(pp)
            rnd = (op.pipeline_op.microbatch // nc
                   if nc is not None and (stage, None) not in gathers
                   else None)
            ag = gathers.get((stage, rnd)) or gathers.get((stage, None))
            if ag is None:
                if nc is None and any(s == stage for s, _ in gathers):
                    continue  # per-round gathers but no nc to match rounds
                out.append(Violation(
                    "fsdp-allgather-before-use",
                    f"stage {stage} compute {op.name!r} on rank {op.rank} "
                    "has no parameter all-gather",
                    {"rank": op.rank, "stage": stage, "op": op.name}))
                continue
            ag_event, use = events.get(ag.uid), events.get(op.uid)
            if ag_event is None or use is None:
                continue  # reported by step-dep-ordering
            if use.start + _EPS < ag_event.end:
                out.append(Violation(
                    "fsdp-allgather-before-use",
                    f"compute {op.name!r} on rank {op.rank} started at "
                    f"{use.start} before {ag.name!r} finished at "
                    f"{ag_event.end}",
                    {"rank": op.rank, "stage": stage, "op": op.name,
                     "allgather": ag.name, "start": use.start,
                     "allgather_end": ag_event.end}))
    return out


def check_fsdp_reduce_after_backward(
    graph: StepGraph, events: Dict[int, TraceEvent]
) -> List[Violation]:
    """A stage's grad reduce-scatter starts only after the stage's last
    backward compute finished."""
    out: List[Violation] = []
    pp = graph.pp
    for program in graph.programs:
        last_backward: Dict[int, TraceEvent] = {}
        for op in program:
            if (op.kind is StepOpKind.COMPUTE and op.pipeline_op is not None
                    and op.pipeline_op.kind in GRAD_PRODUCING_KINDS):
                event = events.get(op.uid)
                stage = op.pipeline_op.global_stage(pp)
                if event is not None and (
                        stage not in last_backward
                        or event.end > last_backward[stage].end):
                    last_backward[stage] = event
        for op in program:
            if op.kind is not StepOpKind.FSDP_REDUCESCATTER:
                continue
            stage, _ = _fsdp_stage_round(op)
            event = events.get(op.uid)
            last = last_backward.get(stage)
            if event is None or last is None:
                continue
            if event.start + _EPS < last.end:
                out.append(Violation(
                    "fsdp-reduce-after-backward",
                    f"{op.name!r} on rank {op.rank} started at "
                    f"{event.start} before stage {stage}'s last backward "
                    f"{last.name!r} finished at {last.end}",
                    {"rank": op.rank, "stage": stage,
                     "start": event.start, "backward_end": last.end}))
    return out


def check_optimizer_after_reduce(
    graph: StepGraph, events: Dict[int, TraceEvent]
) -> List[Violation]:
    """Each rank runs exactly one optimizer op, starting after every
    reduce-scatter on the rank."""
    out: List[Violation] = []
    for rank, program in enumerate(graph.programs):
        optimizers = [op for op in program
                      if op.kind is StepOpKind.OPTIMIZER]
        if len(optimizers) != 1:
            out.append(Violation(
                "optimizer-after-reduce",
                f"rank {rank} runs {len(optimizers)} optimizer ops "
                "(expected exactly one)",
                {"rank": rank, "count": len(optimizers)}))
            continue
        opt = events.get(optimizers[0].uid)
        if opt is None:
            continue
        for op in program:
            if op.kind is not StepOpKind.FSDP_REDUCESCATTER:
                continue
            rs = events.get(op.uid)
            if rs is not None and opt.start + _EPS < rs.end:
                out.append(Violation(
                    "optimizer-after-reduce",
                    f"rank {rank} optimizer started at {opt.start} before "
                    f"{op.name!r} finished at {rs.end}",
                    {"rank": rank, "start": opt.start,
                     "reduce": op.name, "reduce_end": rs.end}))
    return out


def check_fsdp_zero_pairing(
    graph: StepGraph, zero: ZeroStage, nc: int
) -> List[Violation]:
    """ZeRO-3 gathers once per round per stage; ZeRO-1/2 once per stage.
    Every stage reduce-scatters exactly once."""
    out: List[Violation] = []
    pp = graph.pp
    for rank, program in enumerate(graph.programs):
        ag_count: Dict[int, int] = {}
        rs_count: Dict[int, int] = {}
        rounds_used: Dict[int, set] = {}
        for op in program:
            if op.kind is StepOpKind.FSDP_ALLGATHER:
                stage, _ = _fsdp_stage_round(op)
                ag_count[stage] = ag_count.get(stage, 0) + 1
            elif op.kind is StepOpKind.FSDP_REDUCESCATTER:
                stage, _ = _fsdp_stage_round(op)
                rs_count[stage] = rs_count.get(stage, 0) + 1
            elif (op.kind is StepOpKind.COMPUTE
                    and op.pipeline_op is not None):
                stage = op.pipeline_op.global_stage(pp)
                rounds_used.setdefault(stage, set()).add(
                    op.pipeline_op.microbatch // nc)
        for stage, rounds in sorted(rounds_used.items()):
            expected = len(rounds) if zero is ZeroStage.ZERO_3 else 1
            if ag_count.get(stage, 0) != expected:
                out.append(Violation(
                    "fsdp-zero-pairing",
                    f"rank {rank} stage {stage}: {ag_count.get(stage, 0)} "
                    f"param all-gathers, {zero.name} expects {expected}",
                    {"rank": rank, "stage": stage, "zero": zero.name,
                     "actual": ag_count.get(stage, 0),
                     "expected": expected}))
            if rs_count.get(stage, 0) != 1:
                out.append(Violation(
                    "fsdp-zero-pairing",
                    f"rank {rank} stage {stage}: "
                    f"{rs_count.get(stage, 0)} grad reduce-scatters "
                    "(expected exactly one)",
                    {"rank": rank, "stage": stage,
                     "actual": rs_count.get(stage, 0)}))
    return out


def check_critical_path_makespan(
    graph: StepGraph, events: Dict[int, TraceEvent]
) -> List[Violation]:
    """The critical path tiles [0, makespan] with bitwise-contiguous
    links — the exact (not approximate) decomposition of the step time.

    Assumes the step was released at t=0 (true for every
    ``simulate_step`` output; external release floors make the chain
    legitimately inexact and are reported as violations here).
    """
    # Imported lazily: repro.analysis sits above repro.verify in the
    # layering and this is the one place verify reaches up.
    from repro.analysis.critical_path import extract_critical_path

    out: List[Violation] = []
    report = extract_critical_path(graph, events)
    executed = [events[op.uid] for op in graph.ops() if op.uid in events]
    if not executed:
        return out
    makespan = max(e.end for e in executed)
    entries = report.entries
    if not entries:
        return [Violation(
            "critical-path-makespan",
            "no critical path extracted from a non-empty timeline",
            {"makespan": makespan})]
    if entries[0].start != 0.0:
        out.append(Violation(
            "critical-path-makespan",
            f"critical path starts at {entries[0].start}, not 0.0 "
            f"(origin op {entries[0].name!r}, via {entries[0].via!r})",
            {"start": entries[0].start, "op": entries[0].name,
             "via": entries[0].via}))
    for prev, cur in zip(entries, entries[1:]):
        if cur.start != prev.end:
            out.append(Violation(
                "critical-path-makespan",
                f"critical path breaks between {prev.name!r} (end "
                f"{prev.end}) and {cur.name!r} (start {cur.start}) — "
                "links must be bitwise contiguous",
                {"prev": prev.name, "prev_end": prev.end,
                 "next": cur.name, "next_start": cur.start}))
    if entries[-1].end != makespan:
        out.append(Violation(
            "critical-path-makespan",
            f"critical path ends at {entries[-1].end}, but the step "
            f"makespan is {makespan}",
            {"end": entries[-1].end, "makespan": makespan}))
    if not report.exact and not out:
        out.append(Violation(
            "critical-path-makespan",
            "extractor flagged the chain inexact",
            {"makespan": makespan}))
    return out


def run_step_invariants(
    graph: StepGraph,
    events: Dict[int, TraceEvent],
    zero: Optional[ZeroStage] = None,
    nc: Optional[int] = None,
) -> InvariantReport:
    """Run the step-graph timeline checkers over one executed step.

    ``events`` maps op uid to its recorded event — i.e.
    ``StepReport.execution.events``.  The ZeRO pairing check needs
    ``zero`` and ``nc``; all-gather round matching also uses ``nc`` when
    available.
    """
    checks: List[Tuple[str, List[Violation]]] = [
        ("step-dep-ordering", check_step_dep_ordering(graph, events)),
        ("fsdp-allgather-before-use",
         check_fsdp_allgather_before_use(graph, events, nc)),
        ("fsdp-reduce-after-backward",
         check_fsdp_reduce_after_backward(graph, events)),
        ("optimizer-after-reduce",
         check_optimizer_after_reduce(graph, events)),
        ("critical-path-makespan",
         check_critical_path_makespan(graph, events)),
    ]
    if zero is not None and nc is not None:
        checks.append(("fsdp-zero-pairing",
                       check_fsdp_zero_pairing(graph, zero, nc)))
    return InvariantReport(
        checks_run=tuple(name for name, _ in checks),
        violations=tuple(v for _, vs in checks for v in vs),
    )


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------

def run_invariants(
    schedule: PipelineSchedule,
    run: Optional[PipelineRun] = None,
    zero: Optional[ZeroStage] = None,
    bs: Optional[int] = None,
) -> InvariantReport:
    """Run every applicable checker over one configuration.

    Timeline checks need ``run``; the ZeRO pairing rule needs ``zero``
    and ``bs``.  Both are optional so the suite degrades to pure
    structure checking when only a schedule is available.
    """
    checks: List[Tuple[str, List[Violation]]] = [
        ("conservation", check_conservation(schedule)),
        ("program-order", check_program_order(schedule)),
        ("warmup-depth", check_warmup_depth(schedule)),
    ]
    if run is not None:
        checks.append(("stream-overlap", check_stream_overlap(run)))
        checks.append(("send-before-recv", check_send_before_recv(run)))
    if zero is not None and bs is not None:
        kind = "afab" if is_afab_schedule(schedule) else "1f1b"
        checks.append(
            ("zero-schedule",
             check_zero_schedule(zero, kind, bs, schedule.pp)))
    return InvariantReport(
        checks_run=tuple(name for name, _ in checks),
        violations=tuple(v for _, vs in checks for v in vs),
    )
