"""Taxonomy-sampling fuzz for the resilient-run simulator.

The Section 6.2 methodology applied to :mod:`repro.resilience`: sample
random failure taxonomies (correlated-domain fractions, gray shapes,
corruption), checkpoint policies (single-tier and tiered), mitigation
strategies, and seeds; run :func:`repro.resilience.run.simulate_run` on
a small fixed workload; and check the invariants that must hold for
*every* configuration:

* **accounting** — ``sum(buckets) == elapsed`` to float tolerance, all
  buckets non-negative, and goodput non-negative;
* **progress** — ``steps_completed <= steps``, with equality exactly
  when ``completed``;
* **determinism** — the same scenario re-run produces bit-identical
  elapsed/buckets/failure-count (the seeded-simulation contract);
* **fixed draws** — under one seed, a ``none``-policy run sees the
  same absolute failure arrival times as the scenario's own policy (the
  contract that makes cross-policy comparisons exact), compared over
  the shared prefix.

Failures shrink toward a minimal scenario (fewer steps, taxonomy
fractions zeroed, simpler policy) exactly like the schedule and fault
fuzzers, so a seed plus the shrunk scenario is a complete reproduction
recipe for ``repro verify --resilience``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

import numpy as np

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.parallel.config import JobConfig
from repro.resilience.failures import FailureTaxonomy
from repro.resilience.policy import parse_policy
from repro.resilience.run import RunConfig, simulate_run

#: Small fixed workload: 2 nodes of the paper's 8B shape keeps a full
#: multi-step run (and its replans) to a handful of step pricings.
RESILIENCE_FUZZ_MODEL = LLAMA3_8B
RESILIENCE_FUZZ_JOB = JobConfig(seq=8192, gbs=16, ngpu=16)
RESILIENCE_FUZZ_CLUSTER = grand_teton(16)

#: Policy specs the sampler draws from.
POLICY_POOL = ("none", "young-daly", "fixed:3",
               "tiered:auto", "tiered:peer=2,remote=8")


@dataclass(frozen=True)
class ResilienceScenario:
    """One sampled resilient-run configuration."""

    steps: int
    mtbf_seconds: float
    seed: int
    taxonomy: FailureTaxonomy
    policy_spec: str
    mitigation: str
    elastic: bool

    @property
    def cost(self) -> float:
        """Size measure the shrinker minimises."""
        tax = self.taxonomy
        knobs = sum(1 for v in (
            tax.rack_loss_fraction, tax.pod_loss_fraction,
            tax.gray_fraction, tax.corruption_fraction) if v > 0)
        return (self.steps + 10 * knobs
                + (5 if self.policy_spec != "young-daly" else 0)
                + (3 if self.mitigation != "tolerate" else 0))

    def run_config(self) -> RunConfig:
        return RunConfig(
            steps=self.steps,
            mtbf_seconds=self.mtbf_seconds,
            policy=parse_policy(self.policy_spec),
            seed=self.seed,
            elastic=self.elastic,
            taxonomy=self.taxonomy,
            mitigation=self.mitigation,
        )

    def describe(self) -> str:
        tax = self.taxonomy
        return (f"steps={self.steps} mtbf={self.mtbf_seconds:.0f}s "
                f"seed={self.seed} policy={self.policy_spec} "
                f"mitigation={self.mitigation} "
                f"elastic={self.elastic} "
                f"tax=(node={tax.node_loss_fraction:.2f} "
                f"retry={tax.retry_fraction:.2f} "
                f"rack={tax.rack_loss_fraction:.2f} "
                f"pod={tax.pod_loss_fraction:.2f} "
                f"gray={tax.gray_fraction:.2f} "
                f"corr={tax.corruption_fraction:.2f})")

    def to_dict(self) -> dict:
        return {
            "steps": self.steps,
            "mtbf_seconds": self.mtbf_seconds,
            "seed": self.seed,
            "taxonomy": self.taxonomy.to_dict(),
            "policy_spec": self.policy_spec,
            "mitigation": self.mitigation,
            "elastic": self.elastic,
        }


def sample_resilience_scenario(
    rng: np.random.Generator,
) -> ResilienceScenario:
    """Draw one scenario: short run, harsh-ish MTBF, random taxonomy
    (fraction mass split across all six bands, leaving straggler
    remainder), random policy/mitigation/elasticity."""
    raw = rng.random(6)
    mass = 0.2 + 0.7 * float(rng.random())  # total classified fraction
    fractions = raw / raw.sum() * mass
    taxonomy = FailureTaxonomy(
        node_loss_fraction=float(fractions[0]),
        retry_fraction=float(fractions[1]),
        rack_loss_fraction=float(fractions[2]),
        pod_loss_fraction=float(fractions[3]),
        gray_fraction=float(fractions[4]),
        corruption_fraction=float(fractions[5]),
    )
    return ResilienceScenario(
        steps=int(rng.integers(5, 26)),
        mtbf_seconds=50.0 + 350.0 * float(rng.random()),
        seed=int(rng.integers(0, 2**16)),
        taxonomy=taxonomy,
        policy_spec=POLICY_POOL[int(rng.integers(len(POLICY_POOL)))],
        mitigation="detect" if rng.random() < 0.5 else "tolerate",
        elastic=bool(rng.random() < 0.8),
    )


def check_resilience_scenario(
    scenario: ResilienceScenario,
) -> Tuple[bool, List[dict]]:
    """Run one scenario (three times) and collect invariant violations."""
    violations: List[dict] = []

    def violate(check: str, message: str) -> None:
        violations.append({"check": check, "message": message})

    try:
        config = scenario.run_config()
        result = simulate_run(RESILIENCE_FUZZ_MODEL, RESILIENCE_FUZZ_JOB,
                              RESILIENCE_FUZZ_CLUSTER, config)
    except Exception as err:  # any crash is a finding
        violate("crash", f"simulate_run raised {type(err).__name__}: {err}")
        return False, violations

    total = sum(result.buckets.values())
    if not np.isclose(total, result.elapsed_seconds,
                      rtol=1e-9, atol=1e-6):
        violate("accounting",
                f"sum(buckets)={total!r} != elapsed="
                f"{result.elapsed_seconds!r}")
    for name, value in result.buckets.items():
        if value < 0:
            violate("accounting", f"bucket {name} negative: {value!r}")
    if result.goodput_fraction < 0:
        violate("accounting",
                f"negative goodput {result.goodput_fraction!r}")
    if result.steps_completed > config.steps:
        violate("progress",
                f"steps_completed {result.steps_completed} > "
                f"steps {config.steps}")
    if result.completed != (result.steps_completed == config.steps
                            and result.truncated_reason is None):
        violate("progress",
                f"completed={result.completed} inconsistent with "
                f"steps_completed={result.steps_completed}, "
                f"truncated={result.truncated_reason!r}")

    rerun = simulate_run(RESILIENCE_FUZZ_MODEL, RESILIENCE_FUZZ_JOB,
                         RESILIENCE_FUZZ_CLUSTER, scenario.run_config())
    if (rerun.elapsed_seconds != result.elapsed_seconds
            or rerun.buckets != result.buckets
            or len(rerun.failures) != len(result.failures)):
        violate("determinism",
                "identical scenario diverged on re-run: "
                f"elapsed {result.elapsed_seconds!r} vs "
                f"{rerun.elapsed_seconds!r}")

    baseline = simulate_run(
        RESILIENCE_FUZZ_MODEL, RESILIENCE_FUZZ_JOB,
        RESILIENCE_FUZZ_CLUSTER,
        replace(scenario.run_config(), policy=parse_policy("none")))
    shared = min(len(result.failures), len(baseline.failures))
    for i in range(shared):
        if (result.failures[i]["time_seconds"]
                != baseline.failures[i]["time_seconds"]
                or result.failures[i]["kind"]
                != baseline.failures[i]["kind"]):
            violate("fixed_draws",
                    f"failure #{i} diverged across policies under seed "
                    f"{scenario.seed}: "
                    f"{result.failures[i]} vs {baseline.failures[i]}")
            break
    return not violations, violations


def _shrink_candidates(
    scenario: ResilienceScenario,
) -> List[ResilienceScenario]:
    """Strictly-smaller neighbours: fewer steps, taxonomy bands zeroed,
    simpler policy/mitigation."""
    out: List[ResilienceScenario] = []

    def add(candidate: ResilienceScenario) -> None:
        if candidate.cost < scenario.cost and candidate not in out:
            out.append(candidate)

    if scenario.steps > 5:
        add(replace(scenario, steps=max(5, scenario.steps // 2)))
        add(replace(scenario, steps=scenario.steps - 1))
    tax = scenario.taxonomy
    for field_name in ("rack_loss_fraction", "pod_loss_fraction",
                       "gray_fraction", "corruption_fraction"):
        if getattr(tax, field_name) > 0:
            add(replace(scenario,
                        taxonomy=replace(tax, **{field_name: 0.0})))
    if scenario.policy_spec != "young-daly":
        add(replace(scenario, policy_spec="young-daly"))
    if scenario.mitigation != "tolerate":
        add(replace(scenario, mitigation="tolerate"))
    return sorted(out, key=lambda s: s.cost)


def shrink_resilience_scenario(
    scenario: ResilienceScenario, still_fails,
) -> ResilienceScenario:
    """Greedy descent to a minimal still-failing scenario."""
    current = scenario
    while True:
        for candidate in _shrink_candidates(current):
            if still_fails(candidate):
                current = candidate
                break
        else:
            return current


@dataclass(frozen=True)
class ResilienceFuzzFailure:
    """One invariant violation with its minimal shrunk reproducer."""

    scenario: ResilienceScenario
    violations: Tuple[dict, ...]
    shrunk: ResilienceScenario
    shrunk_violations: Tuple[dict, ...]

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "violations": [dict(v) for v in self.violations],
            "shrunk_scenario": self.shrunk.to_dict(),
            "shrunk_violations": [dict(v) for v in self.shrunk_violations],
        }


@dataclass(frozen=True)
class ResilienceFuzzResult:
    """Outcome of one taxonomy-sampling campaign."""

    seed: int
    cases: int
    failed_cases: int
    failures: Tuple[ResilienceFuzzFailure, ...]

    @property
    def ok(self) -> bool:
        return self.failed_cases == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "failed_cases": self.failed_cases,
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
        }


def run_resilience_fuzz(
    cases: int,
    seed: int = 0,
    max_failures: int = 10,
) -> ResilienceFuzzResult:
    """Fuzz ``cases`` resilient-run scenarios; shrink every violation.

    Deterministic like the other campaigns: the same (cases, seed)
    visits the same scenarios everywhere.
    """
    if cases < 1:
        raise ValueError("cases must be >= 1")
    rng = np.random.default_rng(seed)
    failures: List[ResilienceFuzzFailure] = []
    failed_cases = 0
    for _ in range(cases):
        scenario = sample_resilience_scenario(rng)
        ok, violations = check_resilience_scenario(scenario)
        if ok:
            continue
        failed_cases += 1
        if len(failures) >= max_failures:
            continue
        shrunk = shrink_resilience_scenario(
            scenario, lambda s: not check_resilience_scenario(s)[0])
        failures.append(ResilienceFuzzFailure(
            scenario=scenario,
            violations=tuple(violations),
            shrunk=shrunk,
            shrunk_violations=tuple(
                check_resilience_scenario(shrunk)[1]),
        ))
    return ResilienceFuzzResult(
        seed=seed,
        cases=cases,
        failed_cases=failed_cases,
        failures=tuple(failures),
    )


__all__ = [
    "POLICY_POOL",
    "ResilienceFuzzFailure",
    "ResilienceFuzzResult",
    "ResilienceScenario",
    "check_resilience_scenario",
    "run_resilience_fuzz",
    "sample_resilience_scenario",
    "shrink_resilience_scenario",
]
