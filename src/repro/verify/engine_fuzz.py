"""Differential engine fuzzing: fast simulator vs the frozen reference.

The fast path in :mod:`repro.sim.engine` promises *bitwise* equivalence
with the pre-optimisation engine, which is frozen verbatim in
``tests/harness/reference_engine.py``.  This module samples random
submission sequences — ``run`` tasks with dependency fans, synchronising
collectives with skew/retry ladders, ``advance`` stalls, ``record``
splices, and stateful duration-modifier chains — replays each sequence
through both engines, and diffs every observable: each
:class:`TraceEvent` field, global and per-rank makespans, per-stream
busy/idle accounting, and the ``events_for`` views.

Determinism is the contract, exactly as in :mod:`repro.verify.fuzz`:
``run_engine_fuzz(config)`` visits the same sequences in the same order
everywhere, so a failure's seed plus its shrunk sequence is a complete
reproduction recipe.  Failures are greedily *shrunk* to a minimal
diverging submission sequence by dropping whole submissions (dependency
references onto dropped submissions are patched out) and simplifying the
survivors (deps, skew, retries, tags stripped one at a time).

The ``engine`` hook mirrors ``fuzz.py``'s ``build`` hook: injecting a
deliberately corrupted fast engine must make the harness report and
shrink the divergence — that is how the harness itself is verified.
"""

from __future__ import annotations

import importlib.util
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.engine import Simulator

#: Streams the fuzzer submits onto — the ones real lowerings use.
_STREAMS = ("compute", "tp", "p2p", "fsdp")

#: Cap on divergences reported per case.
_MAX_PROBLEMS = 12


# ----------------------------------------------------------------------
# Loading the frozen reference engine
# ----------------------------------------------------------------------

def load_reference_simulator() -> type:
    """The frozen pre-fast-path ``Simulator`` from ``tests/harness``.

    Tries the package import first (works when the repo root is on
    ``sys.path``, e.g. under pytest or ``python -m repro`` from a
    checkout), then falls back to a file-path import relative to this
    source tree.  Raises ``RuntimeError`` outside a source checkout —
    engine fuzzing is a development/CI verification, not a runtime
    feature.
    """
    try:
        from tests.harness.reference_engine import ReferenceSimulator
        return ReferenceSimulator
    except ImportError:
        pass
    path = (Path(__file__).resolve().parents[3]
            / "tests" / "harness" / "reference_engine.py")
    if not path.exists():
        raise RuntimeError(
            "engine fuzzing needs the frozen reference engine at "
            f"{path}, which only exists in a source checkout")
    spec = importlib.util.spec_from_file_location(
        "_repro_reference_engine", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.ReferenceSimulator


# ----------------------------------------------------------------------
# Submission sequences
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SubmitOp:
    """One replayable engine submission.

    ``deps`` name *producer uids* (stable across shrinking), not list
    positions: dropping a submission simply drops its uid from every
    later ``deps`` tuple instead of renumbering the sequence.
    """

    uid: int
    op: str  # "run" | "collective" | "advance" | "record"
    rank: int = 0
    ranks: Tuple[int, ...] = ()
    stream: str = "compute"
    duration: float = 0.0
    name: str = ""
    kind: str = "compute"
    deps: Tuple[int, ...] = ()
    not_before: float = 0.0
    skew: Tuple[Tuple[int, float], ...] = ()
    tags: Tuple[str, ...] = ()
    failed_attempts: int = 0
    start: float = 0.0  # record only
    end: float = 0.0    # record only

    def describe(self) -> str:
        if self.op == "run":
            return (f"run(uid={self.uid}, rank={self.rank}, "
                    f"stream={self.stream!r}, duration={self.duration!r}, "
                    f"deps={self.deps}, not_before={self.not_before!r}, "
                    f"tags={self.tags})")
        if self.op == "collective":
            return (f"collective(uid={self.uid}, ranks={self.ranks}, "
                    f"stream={self.stream!r}, duration={self.duration!r}, "
                    f"deps={self.deps}, skew={self.skew}, "
                    f"failed_attempts={self.failed_attempts})")
        if self.op == "advance":
            return (f"advance(uid={self.uid}, rank={self.rank}, "
                    f"stream={self.stream!r}, until={self.duration!r})")
        return (f"record(uid={self.uid}, rank={self.rank}, "
                f"stream={self.stream!r}, start={self.start!r}, "
                f"end={self.end!r})")

    def to_dict(self) -> dict:
        out = {"uid": self.uid, "op": self.op}
        for key in ("rank", "ranks", "stream", "duration", "name", "kind",
                    "deps", "not_before", "skew", "tags",
                    "failed_attempts", "start", "end"):
            value = getattr(self, key)
            if value not in ((), 0, 0.0, ""):
                out[key] = list(value) if isinstance(value, tuple) else value
        return out


@dataclass(frozen=True)
class EngineFuzzCase:
    """One sampled submission sequence plus its modifier chain."""

    ops: Tuple[SubmitOp, ...]
    #: Modifier specs, rebuilt as fresh closures per replay so stateful
    #: modifiers (one-shot) behave identically on both engines.
    modifiers: Tuple[Tuple[str, int, float], ...] = ()

    @property
    def cost(self) -> int:
        """Size measure the shrinker minimises."""
        return (len(self.ops) + len(self.modifiers)
                + sum(len(op.deps) + len(op.skew) + op.failed_attempts
                      for op in self.ops))

    def describe(self) -> str:
        lines = [f"modifiers: {list(self.modifiers)}"] if self.modifiers \
            else []
        lines += [op.describe() for op in self.ops]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "modifiers": [list(m) for m in self.modifiers],
            "ops": [op.to_dict() for op in self.ops],
        }


def _build_modifier(spec: Tuple[str, int, float]):
    """A fresh modifier closure from its spec (stateful ones included)."""
    mod_kind, target_rank, value = spec
    if mod_kind == "scale":
        def scale(rank, stream, kind, name, duration):
            return duration * value if rank == target_rank else duration
        return scale
    if mod_kind == "add":
        def add(rank, stream, kind, name, duration):
            return duration + value if rank == target_rank else duration
        return add
    if mod_kind == "one_shot":
        state = {"fired": False}

        def one_shot(rank, stream, kind, name, duration):
            if not state["fired"] and rank == target_rank:
                state["fired"] = True
                return duration + value
            return duration
        return one_shot
    if mod_kind == "restore_double":
        return lambda rank, stream, kind, name, duration: duration * 2.0
    if mod_kind == "restore_halve":
        return lambda rank, stream, kind, name, duration: duration * 0.5
    raise ValueError(f"unknown modifier spec {mod_kind!r}")


def sample_case(
    rng: np.random.Generator,
    max_ops: int = 24,
    world: int = 8,
) -> EngineFuzzCase:
    """Draw one valid submission sequence from a deterministic RNG.

    Durations are full-entropy doubles (not round numbers) so bitwise
    divergence in arithmetic order cannot hide behind representable
    values; zero durations are sampled explicitly.
    """
    n_ops = int(rng.integers(3, max_ops + 1))
    ops: List[SubmitOp] = []
    producers: List[int] = []  # uids that yield events
    for uid in range(n_ops):
        draw = rng.random()
        stream = _STREAMS[int(rng.integers(0, len(_STREAMS)))]
        duration = 0.0 if rng.random() < 0.08 else float(rng.random()) * 2.0
        deps = tuple(
            int(u) for u in sorted(rng.choice(
                producers, size=min(len(producers),
                                    int(rng.integers(0, 3))),
                replace=False))
        ) if producers else ()
        tags = ("fuzz",) if rng.random() < 0.2 else ()
        if draw < 0.55:
            ops.append(SubmitOp(
                uid=uid, op="run", rank=int(rng.integers(0, world)),
                stream=stream, duration=duration, name=f"op{uid}",
                kind="compute" if stream == "compute" else "comm",
                deps=deps,
                not_before=(float(rng.random()) * 3.0
                            if rng.random() < 0.2 else 0.0),
                tags=tags))
            producers.append(uid)
        elif draw < 0.82:
            size = int(rng.integers(1, min(world, 5) + 1))
            ranks = tuple(int(r) for r in rng.choice(
                world, size=size, replace=False))
            skew = tuple(
                (int(r), float(rng.random()) * 0.5)
                for r in ranks if rng.random() < 0.25)
            ops.append(SubmitOp(
                uid=uid, op="collective", ranks=ranks, stream=stream,
                duration=duration, name=f"coll{uid}", kind="comm",
                deps=deps, skew=skew, tags=tags,
                failed_attempts=(int(rng.integers(1, 3))
                                 if rng.random() < 0.15 else 0)))
            producers.append(uid)
        elif draw < 0.92:
            ops.append(SubmitOp(
                uid=uid, op="advance", rank=int(rng.integers(0, world)),
                stream=stream, duration=float(rng.random()) * 4.0))
        else:
            start = float(rng.random()) * 3.0
            ops.append(SubmitOp(
                uid=uid, op="record", rank=int(rng.integers(0, world)),
                stream=stream, name=f"rec{uid}", kind="comm",
                start=start, end=start + duration, tags=tags))
            producers.append(uid)

    modifiers: List[Tuple[str, int, float]] = []
    if rng.random() < 0.45:
        n_mods = int(rng.integers(1, 4))
        kinds = ("scale", "add", "one_shot", "restore")
        for _ in range(n_mods):
            mod_kind = kinds[int(rng.integers(0, len(kinds)))]
            target = int(rng.integers(0, world))
            if mod_kind == "restore":
                # A mutually-cancelling pair: restored durations must
                # NOT be tagged "faulted" (the `out != duration` rule).
                modifiers.append(("restore_double", 0, 0.0))
                modifiers.append(("restore_halve", 0, 0.0))
            elif mod_kind == "scale":
                modifiers.append((mod_kind, target,
                                  float(rng.choice([0.5, 1.0, 1.5, 2.0]))))
            else:
                modifiers.append((mod_kind, target, float(rng.random())))
    return EngineFuzzCase(ops=tuple(ops), modifiers=tuple(modifiers))


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

def _event_class(sim) -> type:
    """The ``TraceEvent`` class of the module defining this engine."""
    import sys

    module = sys.modules.get(type(sim).__module__)
    cls = getattr(module, "TraceEvent", None)
    if cls is None:
        from repro.sim.engine import TraceEvent
        return TraceEvent
    return cls


def replay_case(case: EngineFuzzCase, sim) -> Tuple[str, ...]:
    """Replay a sequence onto one engine; returns the submission log.

    The log records each submission's outcome ("ok" or the raised
    exception) — both engines must produce identical logs, so a fast
    path that stops raising where the reference raised is itself a
    divergence.  Submissions that raised produce no events and are
    skipped as dependency producers.
    """
    for spec in case.modifiers:
        sim.add_duration_modifier(_build_modifier(spec))
    events_by_uid: Dict[int, object] = {}
    log: List[str] = []

    def resolve(handle, rank):
        """A dependency event for ``rank``: collectives resolve to their
        event on that rank when it participated, else any fixed one."""
        if isinstance(handle, dict):
            return handle[rank] if rank in handle \
                else next(iter(handle.values()))
        return handle

    for op in case.ops:
        try:
            if op.op == "run":
                after = [resolve(events_by_uid[u], op.rank)
                         for u in op.deps if u in events_by_uid]
                event = sim.run(
                    rank=op.rank, stream=op.stream, duration=op.duration,
                    name=op.name, kind=op.kind, after=after or None,
                    not_before=op.not_before, tags=op.tags)
                events_by_uid[op.uid] = event
            elif op.op == "collective":
                after = {}
                for rank in op.ranks:
                    deps = [resolve(events_by_uid[u], rank)
                            for u in op.deps if u in events_by_uid]
                    if deps:
                        after[rank] = deps
                result = sim.run_collective(
                    list(op.ranks), op.stream, op.duration, op.name,
                    after=after or None, kind=op.kind,
                    skew=dict(op.skew) or None, tags=op.tags,
                    failed_attempts=op.failed_attempts)
                events_by_uid[op.uid] = result
            elif op.op == "advance":
                sim.advance(op.rank, op.stream, op.duration)
            else:  # record
                # Splice with the engine's own event class (the
                # reference's dataclass vs the fast slotted record).
                cls = _event_class(sim)
                event = cls(op.name, op.kind, op.rank, op.stream,
                            op.start, op.end, (), op.tags)
                sim.record(event)
                events_by_uid[op.uid] = event
            log.append("ok")
        except ValueError as err:
            log.append(f"ValueError: {err}")
    return tuple(log)


# ----------------------------------------------------------------------
# Differential check
# ----------------------------------------------------------------------

def _floats_identical(a: float, b: float) -> bool:
    if a != b:
        return False
    if a == 0.0:
        return math.copysign(1.0, a) == math.copysign(1.0, b)
    return True


_EVENT_FIELDS = ("name", "kind", "rank", "stream", "start", "end",
                 "group", "tags")


def compare_engines(ref, fast) -> List[str]:
    """Diff every observable of two engines fed identical submissions."""
    problems: List[str] = []
    ref_events, fast_events = ref.events, fast.events
    if len(ref_events) != len(fast_events):
        problems.append(f"event count: reference={len(ref_events)} "
                        f"fast={len(fast_events)}")
    for i, (r, f) in enumerate(zip(ref_events, fast_events)):
        for fld in _EVENT_FIELDS:
            rv, fv = getattr(r, fld), getattr(f, fld)
            identical = (_floats_identical(rv, fv)
                         if isinstance(rv, float) else rv == fv)
            if not identical:
                problems.append(
                    f"events[{i}].{fld}: reference={rv!r} fast={fv!r}")
                if len(problems) >= _MAX_PROBLEMS:
                    return problems
    if problems:
        return problems
    if not _floats_identical(ref.makespan(), fast.makespan()):
        problems.append(f"makespan: reference={ref.makespan()!r} "
                        f"fast={fast.makespan()!r}")
    ranks = sorted({e.rank for e in ref_events})
    streams = sorted({e.stream for e in ref_events})
    for rank in ranks:
        if not _floats_identical(ref.makespan([rank]),
                                 fast.makespan([rank])):
            problems.append(
                f"makespan([{rank}]): reference={ref.makespan([rank])!r} "
                f"fast={fast.makespan([rank])!r}")
        if [e.name for e in ref.events_for(rank)] != \
                [e.name for e in fast.events_for(rank)]:
            problems.append(f"events_for({rank}) order differs")
        for stream in streams:
            for label, rv, fv in (
                ("busy", ref.busy_time(rank, stream),
                 fast.busy_time(rank, stream)),
                ("idle", ref.idle_time(rank, stream),
                 fast.idle_time(rank, stream)),
                ("now", ref.now(rank, stream), fast.now(rank, stream)),
            ):
                if not _floats_identical(rv, fv):
                    problems.append(
                        f"{label}({rank}, {stream!r}): reference={rv!r} "
                        f"fast={fv!r}")
            if len(problems) >= _MAX_PROBLEMS:
                return problems[:_MAX_PROBLEMS]
    return problems


def check_case(
    case: EngineFuzzCase,
    reference_cls: type,
    engine: Callable[[], object] = Simulator,
) -> List[str]:
    """Replay one sequence through both engines and diff everything."""
    ref = reference_cls()
    fast = engine()
    ref_log = replay_case(case, ref)
    fast_log = replay_case(case, fast)
    if ref_log != fast_log:
        for i, (r, f) in enumerate(zip(ref_log, fast_log)):
            if r != f:
                return [f"submission {i} outcome: reference={r!r} "
                        f"fast={f!r}"]
        return [f"submission log length: reference={len(ref_log)} "
                f"fast={len(fast_log)}"]
    return compare_engines(ref, fast)


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------

def _drop_uid(ops: Sequence[SubmitOp], uid: int) -> Tuple[SubmitOp, ...]:
    """The sequence without ``uid``, dependency references patched out."""
    out = []
    for op in ops:
        if op.uid == uid:
            continue
        if uid in op.deps:
            op = replace(op, deps=tuple(u for u in op.deps if u != uid))
        out.append(op)
    return tuple(out)


def _shrink_candidates(case: EngineFuzzCase) -> List[EngineFuzzCase]:
    """Strictly-smaller neighbours, biggest reduction first."""
    out: List[EngineFuzzCase] = []
    for op in case.ops:
        out.append(replace(case, ops=_drop_uid(case.ops, op.uid)))
    for i in range(len(case.modifiers)):
        out.append(replace(case, modifiers=(
            case.modifiers[:i] + case.modifiers[i + 1:])))
    for i, op in enumerate(case.ops):
        simplified = None
        if op.deps:
            simplified = replace(op, deps=())
        elif op.skew:
            simplified = replace(op, skew=())
        elif op.failed_attempts:
            simplified = replace(op, failed_attempts=0)
        elif op.tags:
            simplified = replace(op, tags=())
        if simplified is not None:
            out.append(replace(case, ops=(
                case.ops[:i] + (simplified,) + case.ops[i + 1:])))
    return sorted((c for c in out if c.cost < case.cost),
                  key=lambda c: c.cost)


def shrink_case(
    case: EngineFuzzCase,
    failing: Callable[[EngineFuzzCase], bool],
) -> EngineFuzzCase:
    """Greedily minimise a diverging sequence (same loop as
    :func:`repro.verify.fuzz.shrink_config`: every accepted candidate
    strictly reduces ``cost``, so termination is guaranteed)."""
    current = case
    improved = True
    while improved:
        improved = False
        for candidate in _shrink_candidates(current):
            if failing(candidate):
                current = candidate
                improved = True
                break
    return current


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EngineFuzzConfig:
    """One engine-fuzz campaign's knobs."""

    cases: int = 200
    seed: int = 0
    max_ops: int = 24
    world: int = 8


@dataclass(frozen=True)
class EngineFuzzFailure:
    """One diverging sequence with its minimal shrunk reproducer."""

    case: EngineFuzzCase
    problems: Tuple[str, ...]
    shrunk: EngineFuzzCase
    shrunk_problems: Tuple[str, ...]

    def describe(self) -> str:
        return (f"divergence: {self.shrunk_problems[0]}\n"
                f"minimal reproducer ({len(self.shrunk.ops)} submissions):\n"
                f"{self.shrunk.describe()}")

    def to_dict(self) -> dict:
        return {
            "problems": list(self.problems),
            "shrunk_problems": list(self.shrunk_problems),
            "shrunk_case": self.shrunk.to_dict(),
        }


@dataclass(frozen=True)
class EngineFuzzResult:
    """Outcome of one engine-fuzz campaign."""

    seed: int
    cases_run: int
    failed_cases: int
    failures: Tuple[EngineFuzzFailure, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return self.failed_cases == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases_run,
            "failed_cases": self.failed_cases,
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
        }


def run_engine_fuzz(
    config: EngineFuzzConfig = EngineFuzzConfig(),
    engine: Callable[[], object] = Simulator,
    max_failures: int = 5,
) -> EngineFuzzResult:
    """Run one differential fuzz campaign.

    Args:
        config: Campaign size, seed, and sequence shape.
        engine: Fast-engine factory (the hook corrupted-engine
            self-tests inject through).
        max_failures: Stop collecting (and shrinking) after this many
            diverging sequences — the campaign still counts the rest.
    """
    reference_cls = load_reference_simulator()
    rng = np.random.default_rng(config.seed)
    failures: List[EngineFuzzFailure] = []
    failed = 0
    for _ in range(config.cases):
        case = sample_case(rng, max_ops=config.max_ops, world=config.world)
        problems = check_case(case, reference_cls, engine)
        if not problems:
            continue
        failed += 1
        if len(failures) < max_failures:
            shrunk = shrink_case(
                case,
                lambda c: bool(check_case(c, reference_cls, engine)))
            failures.append(EngineFuzzFailure(
                case=case,
                problems=tuple(problems),
                shrunk=shrunk,
                shrunk_problems=tuple(
                    check_case(shrunk, reference_cls, engine))))
    return EngineFuzzResult(
        seed=config.seed,
        cases_run=config.cases,
        failed_cases=failed,
        failures=tuple(failures),
    )


__all__ = [
    "EngineFuzzCase",
    "EngineFuzzConfig",
    "EngineFuzzFailure",
    "EngineFuzzResult",
    "SubmitOp",
    "check_case",
    "compare_engines",
    "load_reference_simulator",
    "replay_case",
    "run_engine_fuzz",
    "sample_case",
    "shrink_case",
]
