"""Seeded property-fuzz harness over pipeline-schedule configurations.

Samples valid ``(pp, v, nc, nmb, zero)`` configurations from a
deterministic RNG, builds and executes each schedule on the simulator,
runs the full invariant suite (:mod:`repro.verify.invariants`), and —
when a configuration fails — greedily *shrinks* it to a minimal
reproducer by re-checking ever-smaller neighbouring configurations.

Determinism is the contract: ``run_fuzz(n, seed)`` visits the same
configurations in the same order on every machine, so a failure report's
``seed`` plus the shrunk config is a complete reproduction recipe (see
``docs/verification.md``).

The ``build`` hook exists for the tests and for CI gates: injecting a
deliberately corrupted schedule builder must make the harness report the
corruption and shrink it — that is how the harness itself is verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro.parallel.config import ZeroStage
from repro.pp.analysis import ScheduleShape
from repro.pp.layout import build_layout
from repro.pp.schedule import PipelineSchedule, build_flexible_schedule
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline
from repro.verify.invariants import (
    InvariantReport,
    Violation,
    run_invariants,
)

ScheduleBuilder = Callable[[ScheduleShape], PipelineSchedule]

#: P2P latency used when executing fuzzed schedules: non-zero so exposed
#: waits and dependency timing are exercised, small so fuzzing stays fast.
_P2P_SECONDS = 0.25


@dataclass(frozen=True)
class FuzzConfig:
    """One sampled configuration.

    ``zero`` is set (to the Section 3.1.3 rule's choice for
    ``bs = nmb``) only when the sampled round size lands on the same
    side of the ``nc < pp`` boundary as the rule's schedule family —
    otherwise the pairing rule does not apply and is skipped.
    """

    pp: int
    v: int
    nc: int
    nmb: int
    zero: Optional[ZeroStage] = None

    @property
    def shape(self) -> ScheduleShape:
        return ScheduleShape(pp=self.pp, v=self.v, nc=self.nc,
                             nmb=self.nmb)

    @property
    def cost(self) -> int:
        """Size measure the shrinker minimises."""
        return self.pp + self.v + self.nc + self.nmb

    def describe(self) -> str:
        zero = self.zero.name if self.zero else "unchecked"
        return (f"pp={self.pp} v={self.v} nc={self.nc} nmb={self.nmb} "
                f"({zero})")

    def to_dict(self) -> dict:
        return {
            "pp": self.pp, "v": self.v, "nc": self.nc, "nmb": self.nmb,
            "zero": self.zero.name if self.zero else None,
        }


def _rule_zero(pp: int, nc: int, nmb: int) -> Optional[ZeroStage]:
    """Section 3.1.3 choice for ``bs = nmb``, when the schedule family
    implied by ``nc`` matches the rule's pick; None otherwise."""
    rule_1f1b = nmb >= 2 * pp
    family_1f1b = nc >= pp
    if family_1f1b != rule_1f1b:
        return None
    return ZeroStage.ZERO_1 if rule_1f1b else ZeroStage.ZERO_2


def sample_config(
    rng: np.random.Generator,
    max_pp: int = 8,
    max_v: int = 3,
    max_nmb: int = 16,
) -> FuzzConfig:
    """Draw one valid configuration: ``nc`` is a uniform divisor of
    ``nmb`` so rounds always come out equal."""
    pp = int(rng.integers(1, max_pp + 1))
    v = int(rng.integers(1, max_v + 1))
    nmb = int(rng.integers(1, max_nmb + 1))
    divisors = [d for d in range(1, nmb + 1) if nmb % d == 0]
    nc = int(rng.choice(divisors))
    return FuzzConfig(pp=pp, v=v, nc=nc, nmb=nmb,
                      zero=_rule_zero(pp, nc, nmb))


def check_config(
    config: FuzzConfig,
    build: ScheduleBuilder = build_flexible_schedule,
) -> InvariantReport:
    """Build, execute, and invariant-check one configuration.

    Exceptions from the builder or the executor are converted into
    violations (``builder-error``, ``deadlock``, ``executor-error``)
    instead of propagating, so the fuzzer can shrink crashing
    configurations the same way it shrinks invariant breaks.
    """
    try:
        schedule = build(config.shape)
    except Exception as err:  # noqa: BLE001 - any builder crash is a finding
        return InvariantReport(
            checks_run=("builder",),
            violations=(Violation(
                "builder-error",
                f"schedule builder raised: {err}",
                {"config": config.to_dict(),
                 "error": type(err).__name__}),))
    layout = build_layout(config.pp * config.v, config.pp, config.v)
    try:
        run = execute_pipeline(
            schedule, layout,
            lambda s: StageCost(1.0 * max(s.n_layers, 1), 0.0, 0.0),
            lambda s: StageCost(2.0 * max(s.n_layers, 1), 0.0, 0.0),
            p2p_seconds=_P2P_SECONDS,
        )
    except RuntimeError as err:
        return InvariantReport(
            checks_run=("executor",),
            violations=(Violation(
                "deadlock",
                f"executing the schedule deadlocked: {err}",
                {"config": config.to_dict()}),))
    except Exception as err:  # noqa: BLE001 - any executor crash is a finding
        return InvariantReport(
            checks_run=("executor",),
            violations=(Violation(
                "executor-error",
                f"executing the schedule raised: {err}",
                {"config": config.to_dict(),
                 "error": type(err).__name__}),))
    return run_invariants(schedule, run, zero=config.zero,
                          bs=config.nmb if config.zero else None)


def _shrink_candidates(config: FuzzConfig) -> List[FuzzConfig]:
    """Strictly-smaller valid neighbours, biggest reduction first."""
    out: List[FuzzConfig] = []

    def add(pp: int, v: int, nc: int, nmb: int) -> None:
        if pp < 1 or v < 1 or not 1 <= nc <= nmb or nmb % nc:
            return
        candidate = FuzzConfig(pp=pp, v=v, nc=nc, nmb=nmb,
                               zero=_rule_zero(pp, nc, nmb))
        if candidate.cost < config.cost and candidate not in out:
            out.append(candidate)

    pp, v, nc, nmb = config.pp, config.v, config.nc, config.nmb
    add(pp, v, nc, nc)                 # one round
    add(pp, v, nc, nmb - nc)           # one round fewer
    if nmb % 2 == 0 and (nmb // 2) % nc == 0:
        add(pp, v, nc, nmb // 2)       # half the rounds
    add(pp, v, 1, nmb)                 # smallest round size
    for divisor in range(nc - 1, 0, -1):
        if nmb % divisor == 0:
            add(pp, v, divisor, nmb)   # next smaller round size
            break
    add(pp, 1, nc, nmb)                # no interleaving
    add(pp, v - 1, nc, nmb)
    add(pp - 1, v, nc, nmb)
    add(1, v, nc, nmb)                 # no pipeline
    return sorted(out, key=lambda c: c.cost)


def shrink_config(
    config: FuzzConfig,
    failing: Callable[[FuzzConfig], bool],
) -> FuzzConfig:
    """Greedily minimise a failing configuration.

    Repeatedly replaces the config with its smallest still-failing
    neighbour; terminates because every candidate strictly reduces
    ``FuzzConfig.cost``.
    """
    if not failing(config):
        raise ValueError(f"config {config.describe()} does not fail")
    current = config
    improved = True
    while improved:
        improved = False
        for candidate in _shrink_candidates(current):
            if failing(candidate):
                current = candidate
                improved = True
                break
    return current


@dataclass(frozen=True)
class FuzzFailure:
    """One failing configuration with its minimal shrunk reproducer."""

    config: FuzzConfig
    report: InvariantReport
    shrunk: FuzzConfig
    shrunk_report: InvariantReport

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "violations": [v.to_dict() for v in self.report.violations],
            "shrunk_config": self.shrunk.to_dict(),
            "shrunk_violations": [
                v.to_dict() for v in self.shrunk_report.violations],
        }


@dataclass(frozen=True)
class FuzzResult:
    """Outcome of one fuzz campaign."""

    seed: int
    cases: int
    failed_cases: int
    checks_run: Tuple[str, ...]
    failures: Tuple[FuzzFailure, ...]

    @property
    def ok(self) -> bool:
        return self.failed_cases == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "failed_cases": self.failed_cases,
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "failures": [f.to_dict() for f in self.failures],
        }


def run_fuzz(
    cases: int,
    seed: int = 0,
    build: ScheduleBuilder = build_flexible_schedule,
    max_pp: int = 8,
    max_v: int = 3,
    max_nmb: int = 16,
    max_failures: int = 10,
) -> FuzzResult:
    """Fuzz ``cases`` sampled configurations and shrink every failure.

    Stops collecting (but keeps counting) after ``max_failures`` distinct
    shrunk reproducers — a systematic bug fails hundreds of configs that
    all shrink to the same handful of minimal cases.
    """
    if cases < 1:
        raise ValueError("cases must be >= 1")
    rng = np.random.default_rng(seed)
    failures: List[FuzzFailure] = []
    seen_shrunk: Set[FuzzConfig] = set()
    checks_run: Tuple[str, ...] = ()
    failed_cases = 0
    for _ in range(cases):
        config = sample_config(rng, max_pp=max_pp, max_v=max_v,
                               max_nmb=max_nmb)
        report = check_config(config, build)
        checks_run = tuple(sorted(set(checks_run) | set(report.checks_run)))
        if report.ok:
            continue
        failed_cases += 1
        if len(failures) >= max_failures:
            continue
        shrunk = shrink_config(
            config, lambda c: not check_config(c, build).ok)
        if shrunk in seen_shrunk:
            continue
        seen_shrunk.add(shrunk)
        failures.append(FuzzFailure(
            config=config,
            report=report,
            shrunk=shrunk,
            shrunk_report=check_config(shrunk, build),
        ))
    return FuzzResult(
        seed=seed,
        cases=cases,
        failed_cases=failed_cases,
        checks_run=checks_run,
        failures=tuple(failures),
    )
