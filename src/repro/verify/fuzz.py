"""Seeded property-fuzz harness over pipeline-schedule configurations.

Samples valid ``(kind, pp, v, nc, nmb, zero)`` configurations from a
deterministic RNG — the schedule ``kind`` is drawn from the
:mod:`repro.pp.registry`, so newly registered schedules are fuzzed
without touching this module — builds and executes each schedule on the
simulator, runs the full invariant suite
(:mod:`repro.verify.invariants`), and — when a configuration fails —
greedily *shrinks* it to a minimal reproducer by re-checking
ever-smaller neighbouring configurations.  Shrinking stays within the
sampled kind and only proposes shapes that kind supports, so a shrunk
reproducer is always directly re-buildable.

Determinism is the contract: ``run_fuzz(n, seed)`` visits the same
configurations in the same order on every machine, so a failure report's
``seed`` plus the shrunk config is a complete reproduction recipe (see
``docs/verification.md``).

The ``build`` hook exists for the tests and for CI gates: injecting a
deliberately corrupted schedule builder must make the harness report the
corruption and shrink it — that is how the harness itself is verified.

A second campaign, :func:`run_fault_fuzz`, fuzzes the *fault-injection
loop* instead of schedule structure: it samples a mesh, a compute
straggler, and benign noise faults, and checks that the Section 6.1
top-down search still localises the straggler exactly.  Failures shrink
to the minimal noise-fault set that breaks localisation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.debug.workload import WorkloadSpec
from repro.faults.detect import DetectionScore, score_detection
from repro.faults.models import (
    CollectiveRetry,
    ComputeStraggler,
    DegradedLink,
    FaultPlan,
    PeriodicJitter,
)
from repro.parallel.config import ParallelConfig, ZeroStage
from repro.parallel.mesh import DeviceMesh
from repro.pp.analysis import ScheduleShape
from repro.pp.layout import build_layout
from repro.pp.registry import ScheduleEntry, schedule_entry, schedule_kinds
from repro.pp.schedule import PipelineSchedule
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline
from repro.verify.invariants import (
    InvariantReport,
    Violation,
    run_invariants,
)

ScheduleBuilder = Callable[[ScheduleShape], PipelineSchedule]

#: P2P latency used when executing fuzzed schedules: non-zero so exposed
#: waits and dependency timing are exercised, small so fuzzing stays fast.
_P2P_SECONDS = 0.25


@dataclass(frozen=True)
class FuzzConfig:
    """One sampled configuration.

    ``kind`` is the registered schedule kind the config builds under.
    ``zero`` is set (to the Section 3.1.3 rule's choice for
    ``bs = nmb``) only when the built schedule's family lands on the
    same side as the rule's pick — otherwise the pairing rule does not
    apply and is skipped.
    """

    pp: int
    v: int
    nc: int
    nmb: int
    zero: Optional[ZeroStage] = None
    kind: str = "flexible"

    @property
    def shape(self) -> ScheduleShape:
        return ScheduleShape(pp=self.pp, v=self.v, nc=self.nc,
                             nmb=self.nmb)

    @property
    def cost(self) -> int:
        """Size measure the shrinker minimises."""
        return self.pp + self.v + self.nc + self.nmb

    def describe(self) -> str:
        zero = self.zero.name if self.zero else "unchecked"
        return (f"kind={self.kind} pp={self.pp} v={self.v} nc={self.nc} "
                f"nmb={self.nmb} ({zero})")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pp": self.pp, "v": self.v, "nc": self.nc, "nmb": self.nmb,
            "zero": self.zero.name if self.zero else None,
        }


def _entry_or_none(kind: str) -> Optional[ScheduleEntry]:
    try:
        return schedule_entry(kind)
    except ValueError:
        return None


def _family_is_1f1b(kind: str, pp: int, nc: int) -> bool:
    """Family of the schedule ``kind`` actually builds at this shape.

    1F1B-family kinds that can degenerate to AFAB advertise a
    ``*-degenerate-afab`` alias in the registry; for those the
    ``nc < pp`` boundary decides (Section 3.1.1).  Fixed kinds answer
    from their registry family alone; unregistered kinds fall back to
    the boundary heuristic.
    """
    entry = _entry_or_none(kind)
    if entry is None:
        return nc >= pp
    if entry.family != "1f1b":
        return False
    degenerates = any(
        name.endswith("-degenerate-afab") for name in entry.names())
    return nc >= pp if degenerates else True


def _rule_zero(pp: int, nc: int, nmb: int,
               kind: str = "flexible") -> Optional[ZeroStage]:
    """Section 3.1.3 choice for ``bs = nmb``, when the schedule family
    ``kind`` builds at this shape matches the rule's pick; None
    otherwise."""
    rule_1f1b = nmb >= 2 * pp
    if _family_is_1f1b(kind, pp, nc) != rule_1f1b:
        return None
    return ZeroStage.ZERO_1 if rule_1f1b else ZeroStage.ZERO_2


def sample_config(
    rng: np.random.Generator,
    max_pp: int = 8,
    max_v: int = 3,
    max_nmb: int = 16,
    kinds: Optional[Sequence[str]] = None,
) -> FuzzConfig:
    """Draw one valid configuration: ``nc`` is a uniform divisor of
    ``nmb`` so rounds always come out equal, and the schedule kind is
    drawn from the registry (or the ``kinds`` pool) with the entry's
    ``constrain`` hook coercing the shape into the kind's support set
    (e.g. v = 1 for the classic schedules, pp | nmb for interleaved
    1F1B)."""
    pp = int(rng.integers(1, max_pp + 1))
    v = int(rng.integers(1, max_v + 1))
    nmb = int(rng.integers(1, max_nmb + 1))
    divisors = [d for d in range(1, nmb + 1) if nmb % d == 0]
    nc = int(rng.choice(divisors))
    pool = tuple(kinds) if kinds is not None else schedule_kinds()
    kind = str(pool[int(rng.integers(len(pool)))])
    entry = _entry_or_none(kind)
    if entry is not None and entry.constrain is not None:
        shape = entry.constrain(
            ScheduleShape(pp=pp, v=v, nc=nc, nmb=nmb))
        pp, v, nc, nmb = shape.pp, shape.v, shape.nc, shape.nmb
    return FuzzConfig(pp=pp, v=v, nc=nc, nmb=nmb,
                      zero=_rule_zero(pp, nc, nmb, kind), kind=kind)


def check_config(
    config: FuzzConfig,
    build: Optional[ScheduleBuilder] = None,
) -> InvariantReport:
    """Build, execute, and invariant-check one configuration.

    The builder comes from the registry entry for ``config.kind``
    unless ``build`` overrides it (the corruption-injection hook the
    harness's own tests and CI gates use).  Exceptions from the builder
    or the executor are converted into violations (``builder-error``,
    ``deadlock``, ``executor-error``) instead of propagating, so the
    fuzzer can shrink crashing configurations the same way it shrinks
    invariant breaks.
    """
    builder: ScheduleBuilder = (
        build if build is not None else schedule_entry(config.kind).builder)
    try:
        schedule = builder(config.shape)
    except Exception as err:  # noqa: BLE001 - any builder crash is a finding
        return InvariantReport(
            checks_run=("builder",),
            violations=(Violation(
                "builder-error",
                f"schedule builder raised: {err}",
                {"config": config.to_dict(),
                 "error": type(err).__name__}),))
    layout = build_layout(config.pp * config.v, config.pp, config.v)
    try:
        run = execute_pipeline(
            schedule, layout,
            lambda s: StageCost(1.0 * max(s.n_layers, 1), 0.0, 0.0),
            lambda s: StageCost(2.0 * max(s.n_layers, 1), 0.0, 0.0),
            p2p_seconds=_P2P_SECONDS,
        )
    except RuntimeError as err:
        return InvariantReport(
            checks_run=("executor",),
            violations=(Violation(
                "deadlock",
                f"executing the schedule deadlocked: {err}",
                {"config": config.to_dict()}),))
    except Exception as err:  # noqa: BLE001 - any executor crash is a finding
        return InvariantReport(
            checks_run=("executor",),
            violations=(Violation(
                "executor-error",
                f"executing the schedule raised: {err}",
                {"config": config.to_dict(),
                 "error": type(err).__name__}),))
    return run_invariants(schedule, run, zero=config.zero,
                          bs=config.nmb if config.zero else None)


def _shrink_candidates(config: FuzzConfig) -> List[FuzzConfig]:
    """Strictly-smaller valid neighbours (same kind, still within the
    kind's support set), biggest reduction first."""
    out: List[FuzzConfig] = []
    entry = _entry_or_none(config.kind)

    def add(pp: int, v: int, nc: int, nmb: int) -> None:
        if pp < 1 or v < 1 or not 1 <= nc <= nmb or nmb % nc:
            return
        candidate = FuzzConfig(pp=pp, v=v, nc=nc, nmb=nmb,
                               zero=_rule_zero(pp, nc, nmb, config.kind),
                               kind=config.kind)
        if entry is not None and entry.unsupported_reason(candidate.shape):
            return
        if candidate.cost < config.cost and candidate not in out:
            out.append(candidate)

    pp, v, nc, nmb = config.pp, config.v, config.nc, config.nmb
    add(pp, v, nc, nc)                 # one round
    add(pp, v, nc, nmb - nc)           # one round fewer
    if nmb % 2 == 0 and (nmb // 2) % nc == 0:
        add(pp, v, nc, nmb // 2)       # half the rounds
    add(pp, v, 1, nmb)                 # smallest round size
    for divisor in range(nc - 1, 0, -1):
        if nmb % divisor == 0:
            add(pp, v, divisor, nmb)   # next smaller round size
            break
    add(pp, 1, nc, nmb)                # no interleaving
    add(pp, v - 1, nc, nmb)
    add(pp - 1, v, nc, nmb)
    add(1, v, nc, nmb)                 # no pipeline
    return sorted(out, key=lambda c: c.cost)


def shrink_config(
    config: FuzzConfig,
    failing: Callable[[FuzzConfig], bool],
) -> FuzzConfig:
    """Greedily minimise a failing configuration.

    Repeatedly replaces the config with its smallest still-failing
    neighbour; terminates because every candidate strictly reduces
    ``FuzzConfig.cost``.
    """
    if not failing(config):
        raise ValueError(f"config {config.describe()} does not fail")
    current = config
    improved = True
    while improved:
        improved = False
        for candidate in _shrink_candidates(current):
            if failing(candidate):
                current = candidate
                improved = True
                break
    return current


@dataclass(frozen=True)
class FuzzFailure:
    """One failing configuration with its minimal shrunk reproducer."""

    config: FuzzConfig
    report: InvariantReport
    shrunk: FuzzConfig
    shrunk_report: InvariantReport

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "violations": [v.to_dict() for v in self.report.violations],
            "shrunk_config": self.shrunk.to_dict(),
            "shrunk_violations": [
                v.to_dict() for v in self.shrunk_report.violations],
        }


@dataclass(frozen=True)
class FuzzResult:
    """Outcome of one fuzz campaign."""

    seed: int
    cases: int
    failed_cases: int
    checks_run: Tuple[str, ...]
    failures: Tuple[FuzzFailure, ...]

    @property
    def ok(self) -> bool:
        return self.failed_cases == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "failed_cases": self.failed_cases,
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "failures": [f.to_dict() for f in self.failures],
        }


def run_fuzz(
    cases: int,
    seed: int = 0,
    build: Optional[ScheduleBuilder] = None,
    max_pp: int = 8,
    max_v: int = 3,
    max_nmb: int = 16,
    max_failures: int = 10,
    kinds: Optional[Sequence[str]] = None,
) -> FuzzResult:
    """Fuzz ``cases`` sampled configurations and shrink every failure.

    Each case draws its schedule kind from the registry (restricted to
    ``kinds`` when given — the CLI's ``--schedule`` pin and CI's
    per-kind matrix use this); ``build`` overrides the registry builder
    for corruption-injection tests.  Stops collecting (but keeps
    counting) after ``max_failures`` distinct shrunk reproducers — a
    systematic bug fails hundreds of configs that all shrink to the
    same handful of minimal cases.
    """
    if cases < 1:
        raise ValueError("cases must be >= 1")
    rng = np.random.default_rng(seed)
    failures: List[FuzzFailure] = []
    seen_shrunk: Set[FuzzConfig] = set()
    checks_run: Tuple[str, ...] = ()
    failed_cases = 0
    for _ in range(cases):
        config = sample_config(rng, max_pp=max_pp, max_v=max_v,
                               max_nmb=max_nmb, kinds=kinds)
        report = check_config(config, build)
        checks_run = tuple(sorted(set(checks_run) | set(report.checks_run)))
        if report.ok:
            continue
        failed_cases += 1
        if len(failures) >= max_failures:
            continue
        shrunk = shrink_config(
            config, lambda c: not check_config(c, build).ok)
        if shrunk in seen_shrunk:
            continue
        seen_shrunk.add(shrunk)
        failures.append(FuzzFailure(
            config=config,
            report=report,
            shrunk=shrunk,
            shrunk_report=check_config(shrunk, build),
        ))
    return FuzzResult(
        seed=seed,
        cases=cases,
        failed_cases=failed_cases,
        checks_run=checks_run,
        failures=tuple(failures),
    )

# ----------------------------------------------------------------------
# Fault-randomizing campaign: fuzz the Section 6.1 localisation loop
# ----------------------------------------------------------------------

#: Mesh pool for fault fuzzing: (tp, cp, ep, pp, dp) shapes spanning
#: every dimension pairing the top-down search descends through —
#: including EP meshes, so the token all-to-all level is fuzzed too.
FAULT_FUZZ_MESHES: Tuple[Tuple[int, int, int, int, int], ...] = (
    (4, 2, 1, 1, 1),
    (2, 2, 1, 2, 1),
    (2, 1, 1, 2, 2),
    (2, 2, 1, 2, 2),
    (1, 2, 1, 2, 2),
    (4, 1, 1, 2, 1),
    (2, 2, 1, 1, 2),
    (1, 4, 1, 2, 1),
    (2, 1, 2, 2, 1),
    (1, 2, 2, 1, 2),
    (2, 1, 4, 1, 1),
)

#: Small workload, but with enough compute ops that a straggler's excess
#: dominates every benign noise fault the sampler can draw (see below).
FAULT_FUZZ_WORKLOAD = WorkloadSpec(steps=2, layers=3)


@dataclass(frozen=True)
class FaultScenario:
    """One sampled fault-localisation case.

    The victim is a :class:`~repro.faults.models.ComputeStraggler` adding
    ``extra_seconds`` per compute op; ``noise`` holds benign faults
    (jitter, mildly degraded links, transient retries) whose combined
    lateness is well under one victim op, so exact localisation must
    survive them.  Hangs are deliberately absent from noise: a multi-second
    stall legitimately out-blames the victim.
    """

    tp: int
    cp: int
    pp: int
    dp: int
    victim: int
    extra_seconds: float
    ep: int = 1
    noise: Tuple[object, ...] = ()

    @property
    def parallel(self) -> ParallelConfig:
        return ParallelConfig(tp=self.tp, cp=self.cp, ep=self.ep,
                              pp=self.pp, dp=self.dp)

    @property
    def plan(self) -> FaultPlan:
        return FaultPlan(
            (ComputeStraggler(rank=self.victim,
                              extra_seconds=self.extra_seconds),)
            + self.noise)

    @property
    def cost(self) -> int:
        """Size measure the shrinker minimises: the noise-fault count."""
        return len(self.noise)

    def describe(self) -> str:
        mesh = f"tp={self.tp} cp={self.cp} pp={self.pp} dp={self.dp}"
        if self.ep > 1:
            mesh += f" ep={self.ep}"
        noise = "; ".join(f.describe() for f in self.noise)
        return (f"{mesh} victim={self.victim} "
                f"extra={self.extra_seconds:g}s noise=[{noise}]")

    def to_dict(self) -> dict:
        return {
            "mesh": {"tp": self.tp, "cp": self.cp, "ep": self.ep,
                     "pp": self.pp, "dp": self.dp},
            "victim": self.victim,
            "extra_seconds": self.extra_seconds,
            "noise": [f.to_dict() for f in self.noise],
        }


def sample_fault_scenario(rng: np.random.Generator) -> FaultScenario:
    """Draw one scenario: a mesh from the pool, a victim rank, a victim
    strength in [0.4, 0.8) s/op, and 0-2 benign noise faults (total
    lateness bounded around 0.2 s — an order of magnitude under the
    victim's first-op excess)."""
    tp, cp, ep, pp, dp = FAULT_FUZZ_MESHES[
        int(rng.integers(len(FAULT_FUZZ_MESHES)))]
    world = tp * cp * ep * pp * dp
    victim = int(rng.integers(world))
    extra = 0.4 + 0.4 * float(rng.random())
    multi_dims = [d for d, size in
                  (("tp", tp), ("cp", cp), ("ep", ep), ("pp", pp),
                   ("dp", dp))
                  if size > 1]
    noise: List[object] = []
    for _ in range(int(rng.integers(0, 3))):
        kind = int(rng.integers(3))
        if kind == 0:
            noise.append(PeriodicJitter(
                rank=int(rng.integers(world)),
                period=int(rng.integers(2, 5)),
                extra_seconds=0.01 + 0.03 * float(rng.random())))
        elif kind == 1:
            dim = multi_dims[int(rng.integers(len(multi_dims)))]
            noise.append(DegradedLink(
                dim=dim, rank=int(rng.integers(world)),
                scale=1.05 + 0.1 * float(rng.random())))
        else:
            dim = multi_dims[int(rng.integers(len(multi_dims)))]
            noise.append(CollectiveRetry(
                dim=dim, retries=int(rng.integers(1, 3)),
                extra_seconds=0.02 + 0.03 * float(rng.random())))
    return FaultScenario(tp=tp, cp=cp, ep=ep, pp=pp, dp=dp, victim=victim,
                         extra_seconds=extra, noise=tuple(noise))


def check_fault_scenario(
    scenario: FaultScenario,
    spec: WorkloadSpec = FAULT_FUZZ_WORKLOAD,
) -> Tuple[bool, DetectionScore]:
    """Run the localisation loop on one scenario.

    ok means the search pinned exactly the victim rank *and* attributed
    it to compute — the property the noise faults must not break.
    """
    mesh = DeviceMesh(scenario.parallel)
    score, _ = score_detection(mesh, scenario.plan, spec=spec)
    ok = (score.detected_rank == scenario.victim
          and score.attribution == "compute")
    return ok, score


def shrink_fault_scenario(
    scenario: FaultScenario,
    failing: Callable[[FaultScenario], bool],
) -> FaultScenario:
    """Greedily drop noise faults while the scenario still fails —
    yields the minimal noise set that breaks localisation."""
    if not failing(scenario):
        raise ValueError(f"scenario {scenario.describe()} does not fail")
    current = scenario
    improved = True
    while improved:
        improved = False
        for i in range(len(current.noise)):
            candidate = dataclasses.replace(
                current,
                noise=current.noise[:i] + current.noise[i + 1:])
            if failing(candidate):
                current = candidate
                improved = True
                break
    return current


@dataclass(frozen=True)
class FaultFuzzFailure:
    """One localisation miss with its minimal shrunk reproducer."""

    scenario: FaultScenario
    score: DetectionScore
    shrunk: FaultScenario
    shrunk_score: DetectionScore

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "score": self.score.to_dict(),
            "shrunk_scenario": self.shrunk.to_dict(),
            "shrunk_score": self.shrunk_score.to_dict(),
        }


@dataclass(frozen=True)
class FaultFuzzResult:
    """Outcome of one fault-randomizing campaign."""

    seed: int
    cases: int
    failed_cases: int
    failures: Tuple[FaultFuzzFailure, ...]

    @property
    def ok(self) -> bool:
        return self.failed_cases == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "failed_cases": self.failed_cases,
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
        }


def run_fault_fuzz(
    cases: int,
    seed: int = 0,
    spec: WorkloadSpec = FAULT_FUZZ_WORKLOAD,
    max_failures: int = 10,
) -> FaultFuzzResult:
    """Fuzz ``cases`` fault scenarios and shrink every localisation miss.

    Deterministic like :func:`run_fuzz`: the same (cases, seed) visits
    the same scenarios everywhere, so a failure's seed plus its shrunk
    scenario is a complete reproduction recipe.
    """
    if cases < 1:
        raise ValueError("cases must be >= 1")
    rng = np.random.default_rng(seed)
    failures: List[FaultFuzzFailure] = []
    failed_cases = 0
    for _ in range(cases):
        scenario = sample_fault_scenario(rng)
        ok, score = check_fault_scenario(scenario, spec)
        if ok:
            continue
        failed_cases += 1
        if len(failures) >= max_failures:
            continue
        shrunk = shrink_fault_scenario(
            scenario, lambda s: not check_fault_scenario(s, spec)[0])
        failures.append(FaultFuzzFailure(
            scenario=scenario,
            score=score,
            shrunk=shrunk,
            shrunk_score=check_fault_scenario(shrunk, spec)[1],
        ))
    return FaultFuzzResult(
        seed=seed,
        cases=cases,
        failed_cases=failed_cases,
        failures=tuple(failures),
    )
