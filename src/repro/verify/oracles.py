"""Differential oracles: two independent computations of the same thing
must agree.

Each oracle runs a "candidate" path (the code that would ship) against a
"reference" path (slower, simpler, or closed-form) and reports any gap as
:class:`~repro.verify.invariants.Violation` rows inside a structured
:class:`OracleResult`.  The three oracles mirror the paper's own
correctness arguments:

* **AFAB degeneration** (Section 3.1.1): the flexible schedule with
  ``nc < pp`` must be *op-for-op identical* to the explicit
  all-forward-all-backward construction.
* **CP sharding** (Section 4): head/tail-sharded all-gather attention
  must be bitwise equal, row by row, to unsharded reference attention,
  for both causal and document (block-causal) masks, after the sharding
  itself passes the partition check.
* **PP numerics** (Section 6.2): the pipeline-order gradient accumulator
  must match the sequential baseline forced into the same accumulation
  order, bitwise, when accumulating in FP32 — parallelism only reorders
  floating-point sums, so any residual gap is an implementation bug.
* **Bubble regression** (Section 3.1.1): on uniform stages the
  zero-bubble split-backward schedule must post a measured bubble ratio
  no worse than classic non-interleaved 1F1B — deferring weight-grad
  work into the drain exists precisely to shrink that bubble, so a
  regression means the split-backward lowering lost its advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attention.masks import causal_mask, document_mask
from repro.attention.reference import attention_reference
from repro.cp.allgather import allgather_cp_attention
from repro.cp.sharding import head_tail_partition_problems, rank_row_indices
from repro.data.documents import DocumentBatch
from repro.numerics.compare import bitwise_equal, max_abs_diff
from repro.numerics.parallel_emul import (
    grads_in_order,
    pp_backward_order,
    pp_microbatch_grads,
)
from repro.numerics.precision import PRODUCTION, PrecisionConfig
from repro.numerics.transformer import (
    TinyConfig,
    TinyTransformer,
    random_token_batch,
)
from repro.pp.analysis import ScheduleShape
from repro.pp.layout import build_layout
from repro.pp.registry import schedule_entry
from repro.pp.schedule import build_afab_schedule, build_flexible_schedule
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline
from repro.verify.invariants import Violation


@dataclass(frozen=True)
class OracleResult:
    """One oracle's verdict over one configuration."""

    name: str
    violations: Tuple[Violation, ...]
    context: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "oracle": self.name,
            "ok": self.ok,
            "context": dict(self.context),
            "violations": [v.to_dict() for v in self.violations],
        }


# ----------------------------------------------------------------------
# Schedule oracle: nc < pp degenerates to AFAB
# ----------------------------------------------------------------------

def oracle_afab_degeneration(shape: ScheduleShape) -> OracleResult:
    """Flexible schedule vs. explicit AFAB when ``nc < pp``.

    For ``nc >= pp`` the oracle instead asserts the flexible schedule is
    *not* AFAB-shaped (unless it trivially is, i.e. the warm-up swallows
    the whole batch on every rank), so the degeneration boundary itself
    is pinned from both sides.
    """
    context = {"pp": shape.pp, "v": shape.v, "nc": shape.nc,
               "nmb": shape.nmb}
    flexible = build_flexible_schedule(shape)
    violations: List[Violation] = []
    if shape.nc < shape.pp:
        afab = build_afab_schedule(shape)
        for ppr in range(shape.pp):
            got, want = flexible.program(ppr), afab.program(ppr)
            if got != want:
                first = next(
                    (i for i, (g, w) in enumerate(zip(got, want)) if g != w),
                    min(len(got), len(want)))
                violations.append(Violation(
                    "afab-degeneration",
                    f"nc={shape.nc} < pp={shape.pp} but rank {ppr}'s "
                    f"flexible program diverges from AFAB at op {first} "
                    f"(Section 3.1.1)",
                    {**context, "ppr": ppr, "first_divergence": first}))
    else:
        if flexible.name in ("afab", "flexible-degenerate-afab"):
            violations.append(Violation(
                "afab-degeneration",
                f"nc={shape.nc} >= pp={shape.pp} must not degenerate, "
                f"got schedule {flexible.name!r}",
                context))
    return OracleResult("afab-degeneration", tuple(violations), context)


# ----------------------------------------------------------------------
# CP oracle: sharded attention vs. unsharded reference
# ----------------------------------------------------------------------

def oracle_cp_attention(
    seq: int,
    cp: int,
    n_heads: int = 4,
    n_kv_heads: int = 2,
    head_dim: int = 8,
    doc_lens: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> OracleResult:
    """Head/tail-sharded all-gather CP attention vs. unsharded attention.

    Validates the sharding structure first (rank *i* owns chunks *i* and
    ``2*cp - 1 - i``, rows partition exactly), then compares the
    reassembled distributed output and log-sum-exp bitwise against a
    single "device" computing all rows at once under the same mask.
    ``doc_lens`` switches from the causal to the document mask.
    """
    context: Dict[str, object] = {
        "seq": seq, "cp": cp, "seed": seed,
        "mask": "document" if doc_lens else "causal",
    }
    violations = [
        Violation("cp-sharding", problem, dict(context))
        for problem in head_tail_partition_problems(seq, cp)
    ]
    # FP64 draws: the bitwise contract of the reference kernel holds in
    # the "FP64-stable" regime its module docstring promises; float32
    # einsum reductions are shape-dependent and would report rounding
    # noise as a sharding bug.
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((seq, n_heads, head_dim))
    k = rng.standard_normal((seq, n_kv_heads, head_dim))
    v = rng.standard_normal((seq, n_kv_heads, head_dim))
    batch = None
    if doc_lens is not None:
        batch = DocumentBatch(seq=seq, doc_lens=tuple(doc_lens))
        mask = document_mask(batch.doc_ids)
    else:
        mask = causal_mask(seq)
    reference = attention_reference(q, k, v, mask)
    sharded = allgather_cp_attention(q, k, v, cp, batch=batch)
    if not np.array_equal(sharded.out, reference.out):
        bad_rows = np.flatnonzero(
            np.any(sharded.out != reference.out, axis=(1, 2)))
        owners = sorted({
            rank for rank in range(cp)
            if np.intersect1d(bad_rows,
                              rank_row_indices(seq, cp, rank)).size
        })
        violations.append(Violation(
            "cp-attention",
            f"sharded output differs from unsharded reference on "
            f"{bad_rows.size} rows (first: {int(bad_rows[0])}, CP ranks "
            f"{owners}); max |diff| = "
            f"{float(np.max(np.abs(sharded.out - reference.out))):.3e}",
            {**context, "bad_rows": int(bad_rows.size),
             "first_bad_row": int(bad_rows[0]),
             "ranks": owners}))
    if not np.array_equal(sharded.lse, reference.lse):
        violations.append(Violation(
            "cp-attention",
            "sharded log-sum-exp differs from unsharded reference",
            dict(context)))
    return OracleResult("cp-attention", tuple(violations), context)


# ----------------------------------------------------------------------
# Bubble oracle: zero-bubble must not regress past classic 1F1B
# ----------------------------------------------------------------------

def oracle_bubble_regression(
    pp: int = 4,
    nmb: int = 8,
    layers_per_stage: int = 2,
    p2p_seconds: float = 0.25,
) -> OracleResult:
    """Executed zero-bubble bubble ratio vs. classic 1F1B, uniform stages.

    Both schedules are lowered and executed through the full simulator
    path on identical uniform per-stage costs (backward = 2x forward,
    the usual dgrad + wgrad proportion) and their measured mean bubble
    ratios compared.  The zero-bubble construction defers weight-grad
    work into the 1F1B drain, so on uniform stages its bubble must be
    no larger; any gap the other way means the split-backward pricing
    or lowering broke the schedule's one reason to exist.
    """
    context: Dict[str, object] = {
        "pp": pp, "nmb": nmb, "layers_per_stage": layers_per_stage,
        "p2p_seconds": p2p_seconds,
    }
    shape = ScheduleShape(pp=pp, v=1, nc=pp, nmb=nmb)
    layout = build_layout(pp * layers_per_stage, pp, 1)

    def fwd(stage) -> StageCost:
        return StageCost(1.0 * max(stage.n_layers, 1), 0.0, 0.0)

    def bwd(stage) -> StageCost:
        return StageCost(2.0 * max(stage.n_layers, 1), 0.0, 0.0)

    ratios: Dict[str, float] = {}
    for kind in ("zero-bubble", "1f1b-noninterleaved"):
        schedule = schedule_entry(kind).builder(shape)
        run = execute_pipeline(schedule, layout, fwd, bwd, p2p_seconds)
        ratios[kind] = run.mean_bubble_ratio
    context["bubble_ratios"] = dict(ratios)
    violations: List[Violation] = []
    if ratios["zero-bubble"] > ratios["1f1b-noninterleaved"]:
        violations.append(Violation(
            "bubble-regression",
            f"zero-bubble bubble ratio "
            f"{ratios['zero-bubble']:.3f} exceeds classic 1F1B's "
            f"{ratios['1f1b-noninterleaved']:.3f} on uniform stages "
            f"(pp={pp}, nmb={nmb}) — split backward no longer fills "
            f"the drain (Section 3.1.1)",
            dict(context)))
    return OracleResult("bubble-regression", tuple(violations), context)


# ----------------------------------------------------------------------
# Numerics oracle: parallel order vs. order-matched sequential baseline
# ----------------------------------------------------------------------

def oracle_pp_numerics(
    shape: ScheduleShape,
    seq: int = 16,
    seed: int = 0,
    precision: PrecisionConfig = PRODUCTION,
) -> OracleResult:
    """Pipeline-order gradient accumulation vs. the order-matched
    sequential baseline, FP32 accumulation, bitwise (Section 6.2).

    For every pipeline rank and virtual stage, walks the schedule's
    BACKWARD ops through :func:`pp_microbatch_grads` and replays the same
    micro-batch order through :func:`grads_in_order`; the two must agree
    bit for bit because they differ only in code path, not in arithmetic
    order.
    """
    context = {"pp": shape.pp, "v": shape.v, "nc": shape.nc,
               "nmb": shape.nmb, "seq": seq, "seed": seed,
               "grad_accum": precision.grad_accum}
    schedule = build_flexible_schedule(shape)
    model = TinyTransformer.create(TinyConfig(), seed=seed)
    tokens, targets = random_token_batch(model.cfg, shape.nmb, seq, seed)
    violations: List[Violation] = []
    for ppr in range(shape.pp):
        for vs in range(shape.v):
            order = pp_backward_order(schedule, ppr, virtual_stage=vs)
            parallel = pp_microbatch_grads(
                model, tokens, targets, schedule, ppr, precision,
                virtual_stage=vs)
            sequential = grads_in_order(
                model, tokens, targets, order, precision)
            if not bitwise_equal(parallel, sequential):
                violations.append(Violation(
                    "pp-numerics",
                    f"rank {ppr} vs={vs}: pipeline-order gradients "
                    f"differ from the order-matched sequential baseline "
                    f"(max |diff| = "
                    f"{max_abs_diff(parallel, sequential):.3e}); "
                    f"implementation bug, not numerics (Section 6.2)",
                    {**context, "ppr": ppr, "virtual_stage": vs,
                     "order": list(order)}))
    return OracleResult("pp-numerics", tuple(violations), context)


# ----------------------------------------------------------------------
# Default battery
# ----------------------------------------------------------------------

def run_default_oracles(seed: int = 0) -> List[OracleResult]:
    """The oracle battery the ``repro verify`` CLI runs before fuzzing.

    Covers both sides of the ``nc < pp`` boundary, causal and document
    CP masks at two CP degrees, PP numerics on a degenerate-AFAB and a
    proper 1F1B shape, and the zero-bubble-vs-1F1B bubble pin at two
    pipeline depths.
    """
    results = [
        oracle_afab_degeneration(ScheduleShape(pp=4, v=2, nc=2, nmb=8)),
        oracle_afab_degeneration(ScheduleShape(pp=4, v=2, nc=4, nmb=8)),
        oracle_afab_degeneration(ScheduleShape(pp=3, v=1, nc=1, nmb=5)),
        oracle_cp_attention(seq=64, cp=4, seed=seed),
        oracle_cp_attention(seq=64, cp=4, doc_lens=(17, 30, 17), seed=seed),
        oracle_cp_attention(seq=48, cp=2, doc_lens=(48,), seed=seed + 1),
        oracle_pp_numerics(ScheduleShape(pp=2, v=2, nc=2, nmb=4), seed=seed),
        oracle_pp_numerics(ScheduleShape(pp=4, v=1, nc=2, nmb=4), seed=seed),
        oracle_bubble_regression(pp=4, nmb=8),
        oracle_bubble_regression(pp=8, nmb=16),
    ]
    return results
