"""The Section 6.1 detect–mitigate loop: notice gray failures, then act.

Gray failures are the fleet problems that never crash anything: a
thermally throttled GPU, a flapping link negotiated down a generation.
The run keeps "working" while every step quietly pays a tax.  Section
6.1's answer is a monitoring loop — detect the slow rank from timing
telemetry, localise it with the top-down search, then decide whether to
evict the host or tolerate the degradation.

This module models that loop for :func:`repro.resilience.run.
simulate_run`:

* :class:`DetectorModel` — detection is neither instant nor perfect.
  A gray fault becomes *eligible* for detection only after
  ``latency_steps`` degraded steps (the telemetry window the detector
  needs), each subsequent check misses with probability
  ``false_negative_rate``, and every healthy step can still trip a
  spurious alarm with probability ``false_positive_rate``.  Detector
  randomness runs on its **own seeded stream** (derived from the run
  seed), so arming the detector never perturbs the failure sequence.
* :func:`localise_gray_fault` — closes the loop against the *real*
  Section 6.1 machinery: for worlds small enough to trace every rank it
  injects the equivalent fault into the synthetic workload and runs
  :func:`repro.faults.detect.score_detection`; eviction only heals the
  fault if the search actually pinned the culprit rank.
* :func:`choose_mitigation` — evict-and-replan vs tolerate as a cost
  projection over the remaining steps: eviction pays a drain checkpoint,
  restart, restore, and a permanently slower fleet; toleration pays the
  gray tax forever.  The decision (with both projections) lands on the
  timeline and in the ``repro.resilience/v2`` report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.faults.models import ComputeStraggler, DegradedLink, FaultPlan
from repro.parallel.config import ParallelConfig

#: Worlds up to this size run the real trace-every-rank localisation;
#: larger worlds assume the search succeeds (it operates on aggregated
#: per-group telemetry and does not degrade with scale the way tracing
#: does — the cap is a simulation-cost bound, not a claim about §6.1).
MAX_TRACED_WORLD = 256

#: Seed-stream tag for the detector RNG: keeps detector draws disjoint
#: from the failure process under the same run seed.
DETECTOR_STREAM = 0xD37EC7


@dataclass(frozen=True)
class DetectorModel:
    """Latency and error model for the slow-rank detector."""

    #: Degraded steps before a gray fault is first checkable.
    latency_steps: int = 2
    #: Per-check probability an eligible fault goes unnoticed.
    false_negative_rate: float = 0.1
    #: Per-step probability of a spurious alarm on a healthy fleet.
    false_positive_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_steps < 0:
            raise ValueError("latency_steps must be >= 0")
        for name in ("false_negative_rate", "false_positive_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1) (got {value})")

    def rng(self, seed: int) -> np.random.Generator:
        """The detector's own stream for a given run seed."""
        return np.random.default_rng((seed, DETECTOR_STREAM))

    def detects(self, age_steps: int, rng: np.random.Generator) -> bool:
        """One detection check on a fault ``age_steps`` degraded steps old.

        Always consumes exactly one draw once the fault is eligible (the
        fixed-draw discipline that keeps mitigation runs deterministic).
        """
        if age_steps < self.latency_steps:
            return False
        return bool(rng.random() >= self.false_negative_rate)

    def false_alarm(self, rng: np.random.Generator) -> bool:
        """One per-step spurious-alarm draw (consumed every armed step)."""
        return bool(rng.random() < self.false_positive_rate)

    def to_dict(self) -> dict:
        return {
            "latency_steps": self.latency_steps,
            "false_negative_rate": self.false_negative_rate,
            "false_positive_rate": self.false_positive_rate,
        }


def parse_detector(spec: str) -> DetectorModel:
    """Parse ``--detector latency=2,fn=0.1,fp=0.02`` CLI specs."""
    fields = {"latency": "latency_steps", "fn": "false_negative_rate",
              "fp": "false_positive_rate"}
    kwargs = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        key, eq, value = part.partition("=")
        field = fields.get(key.strip())
        if not eq or field is None:
            raise ValueError(
                f"bad detector field {part!r}; expected "
                f"{sorted(fields)} as key=value pairs")
        try:
            number = float(value.strip())
        except ValueError:
            raise ValueError(
                f"cannot parse detector value {part!r} as a number"
            ) from None
        kwargs[field] = int(number) if field == "latency_steps" else number
    return DetectorModel(**kwargs)


def gray_fault_plan(gray_kind: str, rank: int, compute_scale: float,
                    link_scale: float) -> FaultPlan:
    """The injected-fault equivalent of one gray failure."""
    if gray_kind == "compute":
        return FaultPlan(faults=(ComputeStraggler(
            rank=rank, extra_seconds=0.0, scale=compute_scale),))
    if gray_kind == "link":
        # The flaky NIC degrades the gradient sync its rank participates
        # in — the dp dimension is the one riding the scale-out network.
        return FaultPlan(faults=(DegradedLink(
            dim="dp", scale=link_scale, rank=rank),))
    raise ValueError(f"unknown gray fault kind {gray_kind!r}")


def localise_gray_fault(
    parallel: ParallelConfig, gray_kind: str, rank: int,
    compute_scale: float, link_scale: float,
) -> bool:
    """Did the Section 6.1 search pin this gray fault's culprit?

    Compute-gray faults in traceable worlds run the real
    inject-then-localise round trip; link-gray faults are group-visible
    rather than rank-exact (``expected_detection`` returns no single
    culprit), so — like large worlds — they score as localised: the
    search names the degraded dp group, which is enough to pick the host
    to evict.
    """
    if parallel.world_size > MAX_TRACED_WORLD or gray_kind != "compute":
        return True
    from repro.faults.detect import score_detection
    from repro.parallel.mesh import DeviceMesh

    plan = gray_fault_plan(gray_kind, rank, compute_scale, link_scale)
    score, _sim = score_detection(DeviceMesh(parallel), plan)
    return score.exact_hit


@dataclass(frozen=True)
class MitigationDecision:
    """One pass through the decide step of the loop, fully costed."""

    step: int
    time_seconds: float
    gray_kind: str
    rank: int
    decision: str  # "evict" | "tolerate" | "false_positive"
    detected_after_steps: int
    localised: bool
    tax_seconds_per_step: float
    projected_tolerate_seconds: float
    projected_evict_seconds: float

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "time_seconds": self.time_seconds,
            "gray_kind": self.gray_kind,
            "rank": self.rank,
            "decision": self.decision,
            "detected_after_steps": self.detected_after_steps,
            "localised": self.localised,
            "tax_seconds_per_step": self.tax_seconds_per_step,
            "projected_tolerate_seconds": self.projected_tolerate_seconds,
            "projected_evict_seconds": self.projected_evict_seconds,
        }


def choose_mitigation(
    tax_seconds_per_step: float,
    remaining_steps: int,
    evict_fixed_seconds: float,
    evict_extra_per_step: float,
) -> tuple:
    """Evict-and-replan vs tolerate, by projected cost to end of run.

    Toleration pays the gray tax on every remaining step; eviction pays
    its fixed cost (drain checkpoint + restart + restore + any
    replacement wait) plus the per-step slowdown of running on a smaller
    fleet.  Returns ``(decision, tolerate_cost, evict_cost)`` — eviction
    must be *strictly* cheaper to win, so a zero-tax false alarm always
    tolerates.
    """
    if remaining_steps < 0:
        raise ValueError("remaining_steps must be >= 0")
    tolerate = tax_seconds_per_step * remaining_steps
    evict = evict_fixed_seconds + evict_extra_per_step * remaining_steps
    return ("evict" if evict < tolerate else "tolerate", tolerate, evict)


__all__ = [
    "DETECTOR_STREAM",
    "MAX_TRACED_WORLD",
    "DetectorModel",
    "MitigationDecision",
    "choose_mitigation",
    "gray_fault_plan",
    "localise_gray_fault",
    "parse_detector",
]
