"""Tiered checkpointing: peer-replica, node-local, and remote stores.

Section 6 production practice is not one checkpoint store but a
hierarchy, because write cost and survivability pull in opposite
directions:

``peer``
    Each node streams its shard to a *peer node in the same rack* (one
    leaf-switch hop), holding the replica in HBM/DRAM.  Writes ride the
    scale-out NIC at full :meth:`~repro.hardware.cluster.ClusterSpec.
    inter_node_bandwidth` — the fastest tier — but a rack-level event
    (PDU, leaf switch) destroys both the primary and its replica, so the
    tier only survives single-node loss.
``local``
    Each node writes its shard to its own NVMe scratch
    (``local_ssd_bandwidth_per_node``).  Cheap, but the checkpoint is
    *sharded*: losing any node loses that node's shard and the global
    checkpoint with it, so the tier survives no hardware-loss domain at
    all — it exists to make software-only rollbacks (collective-retry
    escalations, corruption rollbacks) cheap.
``remote``
    The durable blob store
    (:meth:`~repro.hardware.cluster.ClusterSpec.
    checkpoint_bandwidth_per_node` — the slowest path).  Survives every
    failure domain; it is the only tier that can anchor recovery from a
    rack or pod outage.

Restart selects the newest checkpoint on any tier that *survived* the
failure's domain, breaking step ties toward the cheaper read.  The
survivability matrix (failure domain × tier) is pinned byte-stable by
``tests/golden/resilience_survivability.json``.

:class:`TieredCheckpoint` composes one interval policy per tier — e.g.
Young-Daly at every tier prices each interval against that tier's own
write cost, so the cheap peer tier checkpoints often and the expensive
remote tier rarely, which is exactly the configuration that beats
remote-only Young-Daly under rack-correlated failures (a pinned headline
result in ``tests/test_resilience_run.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig
from repro.resilience.policy import (
    CheckpointPolicy,
    FixedInterval,
    NoCheckpoint,
    YoungDaly,
    checkpoint_bytes,
    shard_transfer_seconds,
)

#: Checkpoint tiers, fastest (and least survivable) first.  Restore
#: tie-breaks between same-step checkpoints follow this order.
TIER_NAMES = ("peer", "local", "remote")

#: Failure domains a restore may have to survive, smallest first.
#: ``none`` is a software-only abort (retry escalation, corruption
#: rollback): no hardware was lost, so every tier survives it.
FAILURE_DOMAINS = ("none", "node_loss", "rack_loss", "pod_loss")

#: domain -> tiers whose checkpoints remain restorable after it.
_SURVIVES: Dict[str, Tuple[str, ...]] = {
    "none": ("peer", "local", "remote"),
    # The replica lives on a peer node: the shard survives its owner.
    "node_loss": ("peer", "remote"),
    # Primary and replica share the rack; NVMe shards die with nodes.
    "rack_loss": ("remote",),
    "pod_loss": ("remote",),
}


def tier_bandwidth_per_node(tier: str, cluster: ClusterSpec) -> float:
    """Bytes/s one node sustains writing to (or reading from) a tier."""
    if tier == "peer":
        return cluster.inter_node_bandwidth()
    if tier == "local":
        return cluster.local_ssd_bandwidth_per_node
    if tier == "remote":
        return cluster.checkpoint_bandwidth_per_node()
    raise ValueError(f"unknown checkpoint tier {tier!r}; "
                     f"choose one of {TIER_NAMES}")


def tier_write_seconds(
    tier: str, model: TextModelConfig, cluster: ClusterSpec, ngpu: int,
    payload_bytes: Optional[float] = None,
) -> float:
    """Seconds to write one checkpoint to ``tier`` from ``ngpu`` GPUs.

    Same sharded-parallel-write shape as the remote pricing in
    :mod:`repro.resilience.policy`, against the tier's bandwidth.
    """
    if payload_bytes is None:
        payload_bytes = checkpoint_bytes(model)
    nodes = max(ngpu // cluster.gpus_per_node, 1) if ngpu >= 1 else 0
    if ngpu < 1:
        raise ValueError("ngpu must be >= 1")
    return shard_transfer_seconds(
        payload_bytes, nodes, tier_bandwidth_per_node(tier, cluster),
        what=f"{tier}-tier checkpoint bandwidth")


def tier_read_seconds(
    tier: str, model: TextModelConfig, cluster: ClusterSpec, ngpu: int,
    payload_bytes: Optional[float] = None,
) -> float:
    """Seconds to restore one checkpoint from ``tier`` onto ``ngpu`` GPUs
    (symmetric to the write: every node pulls its shard in parallel)."""
    return tier_write_seconds(tier, model, cluster, ngpu,
                              payload_bytes=payload_bytes)


def tier_survives(tier: str, domain: str) -> bool:
    """Whether a checkpoint on ``tier`` is restorable after ``domain``."""
    if domain not in _SURVIVES:
        raise ValueError(f"unknown failure domain {domain!r}; "
                         f"choose one of {FAILURE_DOMAINS}")
    if tier not in TIER_NAMES:
        raise ValueError(f"unknown checkpoint tier {tier!r}; "
                         f"choose one of {TIER_NAMES}")
    return tier in _SURVIVES[domain]


def survivability_matrix() -> Dict[str, Dict[str, bool]]:
    """The full failure-domain × tier survivability table."""
    return {
        domain: {tier: tier_survives(tier, domain) for tier in TIER_NAMES}
        for domain in FAILURE_DOMAINS
    }


def cheapest_surviving_tier(
    tiers: Sequence[str], domain: str,
) -> Optional[str]:
    """Fastest-to-read tier among ``tiers`` that survives ``domain``."""
    for tier in TIER_NAMES:
        if tier in tiers and tier_survives(tier, domain):
            return tier
    return None


@dataclass(frozen=True)
class TieredCheckpoint:
    """Compose one interval policy per checkpoint tier.

    ``tiers`` maps tier name → sub-policy; each sub-policy's interval is
    derived from *that tier's* write cost, so ``tiered:auto`` (Young-Daly
    everywhere) naturally checkpoints the peer tier often and the remote
    tier rarely.  At least one tier must actually checkpoint, and the
    composition is only useful when some tier survives hardware loss —
    both are validated here rather than discovered mid-run.
    """

    tiers: Tuple[Tuple[str, CheckpointPolicy], ...]

    kind_label = "tiered"

    def __post_init__(self) -> None:
        seen = set()
        for name, _policy in self.tiers:
            if name not in TIER_NAMES:
                raise ValueError(
                    f"unknown checkpoint tier {name!r}; "
                    f"choose from {TIER_NAMES}")
            if name in seen:
                raise ValueError(f"duplicate checkpoint tier {name!r}")
            seen.add(name)
        if not any(not isinstance(p, NoCheckpoint) for _n, p in self.tiers):
            raise ValueError(
                "tiered policy must checkpoint on at least one tier")

    def policy_for(self, tier: str) -> CheckpointPolicy:
        for name, policy in self.tiers:
            if name == tier:
                return policy
        return NoCheckpoint()

    def tier_intervals(
        self, step_seconds: float, write_seconds: Dict[str, float],
        mtbf_seconds: float,
    ) -> Dict[str, Optional[int]]:
        """Per-tier interval in steps, each from its own write cost."""
        out: Dict[str, Optional[int]] = {}
        for name, policy in self.tiers:
            out[name] = policy.interval_steps(
                step_seconds, write_seconds[name], mtbf_seconds)
        return out

    def interval_steps(
        self, step_seconds: float, checkpoint_seconds: float,
        mtbf_seconds: float,
    ) -> Optional[int]:
        """Protocol compatibility: the durable (remote) tier's interval,
        priced like a single-tier policy would price it."""
        return self.policy_for("remote").interval_steps(
            step_seconds, checkpoint_seconds, mtbf_seconds)

    def describe(self) -> str:
        parts = ", ".join(
            f"{name}: {policy.describe()}" for name, policy in self.tiers)
        return f"tiered checkpoints ({parts})"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind_label,
            "tiers": {name: policy.to_dict()
                      for name, policy in self.tiers},
        }


#: Default tiered composition: Young-Daly at every tier, each priced
#: against its own write cost.
AUTO_TIERED = (("peer", YoungDaly()), ("local", YoungDaly()),
               ("remote", YoungDaly()))


def parse_tiered_policy(spec: str) -> TieredCheckpoint:
    """Parse the ``tiered:`` policy body.

    ``auto`` composes Young-Daly on every tier; otherwise give
    ``tier=interval`` pairs where interval is ``young-daly``, ``none``,
    or an integer step count — e.g. ``tiered:peer=4,remote=young-daly``.
    Unnamed tiers default to ``none``.
    """
    body = spec.partition(":")[2].strip()
    if body == "auto":
        return TieredCheckpoint(tiers=AUTO_TIERED)
    if not body:
        raise ValueError(
            f"empty tiered policy {spec!r}; expected tiered:auto or "
            "tiered:<tier>=<interval>[,...] with tier in "
            f"{TIER_NAMES} and interval one of young-daly | none | <steps>")
    tiers = []
    for part in filter(None, (p.strip() for p in body.split(","))):
        name, eq, value = part.partition("=")
        name, value = name.strip(), value.strip()
        if not eq or name not in TIER_NAMES:
            raise ValueError(
                f"bad tiered policy field {part!r}; expected "
                f"<tier>=<interval> with tier in {TIER_NAMES}")
        if value in ("young-daly", "young_daly"):
            policy: CheckpointPolicy = YoungDaly()
        elif value == "none":
            policy = NoCheckpoint()
        else:
            try:
                policy = FixedInterval(every_steps=int(value))
            except ValueError:
                raise ValueError(
                    f"bad tiered interval {part!r}; expected "
                    "young-daly | none | <steps>") from None
        tiers.append((name, policy))
    return TieredCheckpoint(tiers=tuple(tiers))


__all__ = [
    "TIER_NAMES",
    "FAILURE_DOMAINS",
    "TieredCheckpoint",
    "AUTO_TIERED",
    "cheapest_surviving_tier",
    "parse_tiered_policy",
    "survivability_matrix",
    "tier_bandwidth_per_node",
    "tier_read_seconds",
    "tier_survives",
    "tier_write_seconds",
]
