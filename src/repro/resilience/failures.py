"""Seeded stochastic failure process with a correlated-domain taxonomy.

Failures arrive as a Poisson process at the fleet MTBF (exponential
inter-arrival times), on a simulated clock — nothing here reads the wall
clock.  Each arrival is classified by a :class:`FailureTaxonomy` into one
of the production failure shapes Section 6 lives with at 16K GPUs:

* ``node_loss`` — a host drops out permanently (iid fail-stop);
* ``rack_loss`` / ``pod_loss`` — a *correlated* fail-stop: a leaf switch,
  PDU, or spine event takes out every node in the rack (or every rack in
  the pod) at once — the topology comes from
  :class:`repro.hardware.cluster.ClusterSpec`;
* ``gray`` — a gray failure: nothing crashes, but a persistent degraded
  component (a throttled GPU or a flaky link) taxes every surviving step
  until the Section 6.1 detect–mitigate loop notices and acts
  (:mod:`repro.resilience.mitigation`);
* ``silent_corruption`` — state silently corrupts and is detected only at
  the next validation point, forcing a rollback *past* every checkpoint
  written after the corruption;
* ``transient_straggler`` — one GPU throttles for a step (the
  ``straggler-default`` preset shape) and recovers;
* ``collective_retry`` — a transient network fault fails one or more
  collective attempts; the retry ladder of
  :class:`repro.sim.collectives.RetryPolicy` absorbs it unless the
  attempt count exceeds the budget, which escalates to an abort.

Determinism contract: :meth:`FailureProcess.next_failure` consumes a
fixed number of RNG draws per event (exactly four, in a fixed order) and
takes no state-dependent arguments, so every checkpoint policy evaluated
against the same seed sees the *identical* absolute failure sequence —
the property that makes policy comparisons (and the golden reports)
exact rather than noisy.  The classification bands nest: a taxonomy
whose correlated/gray/corruption fractions are all zero reproduces the
legacy iid fail-stop sequence bitwise (``tests/test_resilience_run.py``
pins this through the v1-numbers golden).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

#: Failure taxonomy kinds, in classification-band order.
FAILURE_KINDS = ("node_loss", "collective_retry", "rack_loss", "pod_loss",
                 "gray", "silent_corruption", "transient_straggler")

#: Fail-stop kinds that destroy hardware (and checkpoint tiers with it),
#: from the smallest failure domain to the largest.
CORRELATED_DOMAINS = ("node_loss", "rack_loss", "pod_loss")


@dataclass(frozen=True)
class FailureTaxonomy:
    """Per-arrival classification probabilities plus gray-fault shapes.

    The bands are laid out on one uniform draw in a fixed order —
    ``node_loss``, ``collective_retry``, ``rack_loss``, ``pod_loss``,
    ``gray``, ``silent_corruption`` — with ``transient_straggler`` taking
    the remainder.  The first two bands match the legacy (PR 5) process
    exactly, so zeroing every new fraction reproduces the legacy draw
    classification bitwise under the same seed.

    Gray faults carry a shape: a fraction ``gray_compute_fraction`` of
    them are persistently throttled GPUs (step tax priced from a
    ``scale=gray_compute_scale`` :class:`repro.faults.models.
    ComputeStraggler`), the rest are degraded gradient-sync links
    (priced from a ``scale=gray_link_scale`` :class:`repro.faults.models.
    DegradedLink` on the dp dimension).  The subtype is derived from the
    kind draw's position *within* the gray band, so it costs no extra
    RNG draw (the fixed-draws contract).
    """

    node_loss_fraction: float = 0.4
    retry_fraction: float = 0.3
    rack_loss_fraction: float = 0.0
    pod_loss_fraction: float = 0.0
    gray_fraction: float = 0.0
    corruption_fraction: float = 0.0
    retry_success_p: float = 0.6
    gray_compute_fraction: float = 0.6
    gray_compute_scale: float = 1.3
    gray_link_scale: float = 2.5

    def __post_init__(self) -> None:
        for name in ("node_loss_fraction", "retry_fraction",
                     "rack_loss_fraction", "pod_loss_fraction",
                     "gray_fraction", "corruption_fraction",
                     "gray_compute_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1] (got {value})")
        total = (self.node_loss_fraction + self.retry_fraction
                 + self.rack_loss_fraction + self.pod_loss_fraction
                 + self.gray_fraction + self.corruption_fraction)
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"classification fractions sum to {total:.3f} > 1 "
                "(the remainder must be left for transient stragglers)")
        if not 0.0 < self.retry_success_p <= 1.0:
            raise ValueError("retry_success_p must be in (0, 1]")
        if self.gray_compute_scale <= 1.0 or self.gray_link_scale <= 1.0:
            raise ValueError("gray scales must be > 1 (1.0 = healthy)")

    @property
    def has_gray(self) -> bool:
        """Whether this taxonomy can produce gray failures at all — the
        gate that arms the detect–mitigate loop (a legacy taxonomy keeps
        ``simulate_run`` on the bitwise v1 path)."""
        return self.gray_fraction > 0.0

    def classify(self, u_kind: float) -> tuple:
        """Map one uniform kind draw to ``(kind, gray_subtype)``."""
        edge = self.node_loss_fraction
        if u_kind < edge:
            return "node_loss", ""
        if u_kind < (edge := edge + self.retry_fraction):
            return "collective_retry", ""
        if u_kind < (edge := edge + self.rack_loss_fraction):
            return "rack_loss", ""
        if u_kind < (edge := edge + self.pod_loss_fraction):
            return "pod_loss", ""
        if u_kind < edge + self.gray_fraction:
            # Position inside the gray band is itself uniform — reuse it
            # for the subtype split instead of spending a fifth draw.
            sub = (u_kind - edge) / self.gray_fraction
            return "gray", ("compute" if sub < self.gray_compute_fraction
                            else "link")
        if u_kind < edge + self.gray_fraction + self.corruption_fraction:
            return "silent_corruption", ""
        return "transient_straggler", ""

    def to_dict(self) -> dict:
        return {
            "node_loss_fraction": self.node_loss_fraction,
            "retry_fraction": self.retry_fraction,
            "rack_loss_fraction": self.rack_loss_fraction,
            "pod_loss_fraction": self.pod_loss_fraction,
            "gray_fraction": self.gray_fraction,
            "corruption_fraction": self.corruption_fraction,
            "retry_success_p": self.retry_success_p,
            "gray_compute_fraction": self.gray_compute_fraction,
            "gray_compute_scale": self.gray_compute_scale,
            "gray_link_scale": self.gray_link_scale,
        }


#: Named taxonomies for the CLI (`repro run --taxonomy NAME`) and tests.
TAXONOMY_PRESETS: Dict[str, FailureTaxonomy] = {
    # The PR 5 process: iid fail-stop node losses, retries, stragglers.
    "iid": FailureTaxonomy(),
    # Rack/switch-correlated outages alongside node losses: the shape
    # that makes peer-replica checkpoints insufficient on their own.
    "rack-correlated": FailureTaxonomy(
        node_loss_fraction=0.25, retry_fraction=0.25,
        rack_loss_fraction=0.2),
    # Mostly gray degradation: nothing crashes, goodput silently rots —
    # the detect–mitigate loop's home turf.
    "gray-heavy": FailureTaxonomy(
        node_loss_fraction=0.1, retry_fraction=0.15, gray_fraction=0.5),
    # Everything at once: the fleet behaviour Section 6 describes.
    "production": FailureTaxonomy(
        node_loss_fraction=0.2, retry_fraction=0.2,
        rack_loss_fraction=0.1, pod_loss_fraction=0.02,
        gray_fraction=0.2, corruption_fraction=0.05),
}

#: ``--taxonomy`` spec keys -> (FailureTaxonomy field, parser).
_TAXONOMY_KEYS = {
    "node": "node_loss_fraction",
    "retry": "retry_fraction",
    "rack": "rack_loss_fraction",
    "pod": "pod_loss_fraction",
    "gray": "gray_fraction",
    "corruption": "corruption_fraction",
    "retry-p": "retry_success_p",
    "gray-compute": "gray_compute_fraction",
    "gray-compute-scale": "gray_compute_scale",
    "gray-link-scale": "gray_link_scale",
}


def parse_taxonomy(spec: str) -> FailureTaxonomy:
    """Parse a CLI taxonomy: a preset name or ``key=value[,key=value...]``.

    Presets: ``iid`` (the legacy fail-stop process), ``rack-correlated``,
    ``gray-heavy``, ``production``.  Spec keys: ``node``, ``retry``,
    ``rack``, ``pod``, ``gray``, ``corruption`` (classification
    fractions), ``retry-p``, ``gray-compute``, ``gray-compute-scale``,
    ``gray-link-scale``.  A spec starts from the ``iid`` defaults and
    overrides the named fields.  Raises ``ValueError`` with a usage hint
    on any malformed spec.
    """
    spec = spec.strip()
    if spec in TAXONOMY_PRESETS:
        return TAXONOMY_PRESETS[spec]
    if "=" not in spec:
        raise ValueError(
            f"unknown taxonomy {spec!r}; choose a preset from "
            f"{sorted(TAXONOMY_PRESETS)} or give key=value pairs "
            f"({sorted(_TAXONOMY_KEYS)})")
    overrides = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        key, eq, value = part.partition("=")
        field = _TAXONOMY_KEYS.get(key.strip())
        if not eq or field is None:
            raise ValueError(
                f"bad taxonomy field {part!r}; expected one of "
                f"{sorted(_TAXONOMY_KEYS)}")
        try:
            overrides[field] = float(value.strip())
        except ValueError:
            raise ValueError(
                f"cannot parse taxonomy value {part!r} as a number"
            ) from None
    try:
        return replace(FailureTaxonomy(), **overrides)
    except ValueError as err:
        raise ValueError(f"invalid taxonomy {spec!r}: {err}") from None


@dataclass(frozen=True)
class FailureEvent:
    """One failure arrival, location-free until applied to a fleet.

    ``where_fraction`` is a uniform draw in [0, 1) the consumer scales
    onto whatever is being hit (a node index for ``node_loss``, a rack
    for ``rack_loss``, a rank for ``transient_straggler`` or ``gray``) —
    keeping the event valid across replans that change the fleet size.
    """

    time_seconds: float
    kind: str
    where_fraction: float
    #: ``collective_retry`` only: how many attempts the fault eats.
    failed_attempts: int
    #: ``gray`` only: which degraded component — ``"compute"`` (a
    #: persistently throttled GPU) or ``"link"`` (a degraded link).
    gray_kind: str = ""

    def node_index(self, num_nodes: int) -> int:
        """The node this failure lands on, for a fleet of ``num_nodes``."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        return min(int(self.where_fraction * num_nodes), num_nodes - 1)

    def rack_index(self, num_racks: int) -> int:
        """The rack this failure lands on, for a fleet of ``num_racks``."""
        if num_racks < 1:
            raise ValueError("num_racks must be >= 1")
        return min(int(self.where_fraction * num_racks), num_racks - 1)

    def rank_index(self, world_size: int) -> int:
        """The rank this failure lands on, for a given world size."""
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        return min(int(self.where_fraction * world_size), world_size - 1)


class FailureProcess:
    """Poisson failure arrivals with a fixed per-event draw budget.

    Args:
        mtbf_seconds: Fleet-level mean time between failures (of any
            kind).  The paper's operational premise: at 16K GPUs this is
            hours, not days.
        seed: RNG seed; same seed → same absolute failure sequence.
        node_loss_fraction / retry_fraction / retry_success_p: Legacy
            (PR 5) classification knobs, kept for compatibility; they
            build an iid fail-stop taxonomy when ``taxonomy`` is None.
        taxonomy: Full classification taxonomy (overrides the legacy
            knobs when given).
    """

    def __init__(
        self,
        mtbf_seconds: float,
        seed: int = 0,
        node_loss_fraction: float = 0.4,
        retry_fraction: float = 0.3,
        retry_success_p: float = 0.6,
        taxonomy: Optional[FailureTaxonomy] = None,
    ) -> None:
        if mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be > 0")
        if taxonomy is None:
            taxonomy = FailureTaxonomy(
                node_loss_fraction=node_loss_fraction,
                retry_fraction=retry_fraction,
                retry_success_p=retry_success_p,
            )
        self.mtbf_seconds = mtbf_seconds
        self.seed = seed
        self.taxonomy = taxonomy
        self.node_loss_fraction = taxonomy.node_loss_fraction
        self.retry_fraction = taxonomy.retry_fraction
        self.retry_success_p = taxonomy.retry_success_p
        self._rng = np.random.default_rng(seed)
        self._clock = 0.0

    def next_failure(self) -> FailureEvent:
        """Draw the next arrival on the absolute failure clock.

        Exactly four draws per event, in a fixed order (gap, kind,
        location, retry attempts) regardless of the classification
        outcome — the contract that keeps the sequence identical across
        policies and taxonomy-irrelevant config changes.
        """
        gap = float(self._rng.exponential(self.mtbf_seconds))
        u_kind = float(self._rng.random())
        where = float(self._rng.random())
        attempts = int(self._rng.geometric(self.retry_success_p))
        self._clock += gap
        kind, gray_kind = self.taxonomy.classify(u_kind)
        return FailureEvent(
            time_seconds=self._clock,
            kind=kind,
            where_fraction=where,
            failed_attempts=attempts,
            gray_kind=gray_kind,
        )

    def to_dict(self) -> dict:
        return {
            "mtbf_seconds": self.mtbf_seconds,
            "seed": self.seed,
            "node_loss_fraction": self.node_loss_fraction,
            "retry_fraction": self.retry_fraction,
            "retry_success_p": self.retry_success_p,
            "taxonomy": self.taxonomy.to_dict(),
        }
