"""Seeded stochastic failure process for multi-step runs.

Failures arrive as a Poisson process at the fleet MTBF (exponential
inter-arrival times), on a simulated clock — nothing here reads the wall
clock.  Each arrival is classified into one of three production failure
shapes (Section 6.1's operational reality at 16K GPUs):

* ``node_loss`` — a host drops out permanently: the run aborts, restarts
  from its last checkpoint, and either replans on the shrunken fleet or
  waits for a replacement (:mod:`repro.resilience.run`);
* ``transient_straggler`` — one GPU throttles for a step (the
  ``straggler-default`` preset shape) and recovers;
* ``collective_retry`` — a transient network fault fails one or more
  collective attempts; the retry ladder of
  :class:`repro.sim.collectives.RetryPolicy` absorbs it unless the
  attempt count exceeds the budget, which escalates to an abort.

Determinism contract: :meth:`FailureProcess.next_failure` consumes a
fixed number of RNG draws per event and takes no state-dependent
arguments, so every checkpoint policy evaluated against the same seed
sees the *identical* absolute failure sequence — the property that makes
policy comparisons (and the golden report) exact rather than noisy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Failure taxonomy, in classification order.
FAILURE_KINDS = ("node_loss", "transient_straggler", "collective_retry")


@dataclass(frozen=True)
class FailureEvent:
    """One failure arrival, location-free until applied to a fleet.

    ``where_fraction`` is a uniform draw in [0, 1) the consumer scales
    onto whatever is being hit (a node index for ``node_loss``, a rank
    for ``transient_straggler``) — keeping the event valid across
    replans that change the fleet size.
    """

    time_seconds: float
    kind: str
    where_fraction: float
    #: ``collective_retry`` only: how many attempts the fault eats.
    failed_attempts: int

    def node_index(self, num_nodes: int) -> int:
        """The node this failure lands on, for a fleet of ``num_nodes``."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        return min(int(self.where_fraction * num_nodes), num_nodes - 1)

    def rank_index(self, world_size: int) -> int:
        """The rank this failure lands on, for a given world size."""
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        return min(int(self.where_fraction * world_size), world_size - 1)


class FailureProcess:
    """Poisson failure arrivals with a fixed per-event draw budget.

    Args:
        mtbf_seconds: Fleet-level mean time between failures (of any
            kind).  The paper's operational premise: at 16K GPUs this is
            hours, not days.
        seed: RNG seed; same seed → same absolute failure sequence.
        node_loss_fraction: Probability an arrival is a permanent node
            loss.
        retry_fraction: Probability an arrival is a transient network
            fault (collective retries).  The remainder are transient
            stragglers.
        retry_success_p: Geometric parameter for how many attempts a
            network fault eats; small values make retry-budget
            exhaustion (escalation to abort) more likely.
    """

    def __init__(
        self,
        mtbf_seconds: float,
        seed: int = 0,
        node_loss_fraction: float = 0.4,
        retry_fraction: float = 0.3,
        retry_success_p: float = 0.6,
    ) -> None:
        if mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be > 0")
        if not 0.0 <= node_loss_fraction <= 1.0:
            raise ValueError("node_loss_fraction must be in [0, 1]")
        if not 0.0 <= retry_fraction <= 1.0 - node_loss_fraction:
            raise ValueError(
                "retry_fraction must fit in [0, 1 - node_loss_fraction]")
        if not 0.0 < retry_success_p <= 1.0:
            raise ValueError("retry_success_p must be in (0, 1]")
        self.mtbf_seconds = mtbf_seconds
        self.seed = seed
        self.node_loss_fraction = node_loss_fraction
        self.retry_fraction = retry_fraction
        self.retry_success_p = retry_success_p
        self._rng = np.random.default_rng(seed)
        self._clock = 0.0

    def next_failure(self) -> FailureEvent:
        """Draw the next arrival on the absolute failure clock."""
        gap = float(self._rng.exponential(self.mtbf_seconds))
        u_kind = float(self._rng.random())
        where = float(self._rng.random())
        attempts = int(self._rng.geometric(self.retry_success_p))
        self._clock += gap
        if u_kind < self.node_loss_fraction:
            kind = "node_loss"
        elif u_kind < self.node_loss_fraction + self.retry_fraction:
            kind = "collective_retry"
        else:
            kind = "transient_straggler"
        return FailureEvent(
            time_seconds=self._clock,
            kind=kind,
            where_fraction=where,
            failed_attempts=attempts,
        )

    def to_dict(self) -> dict:
        return {
            "mtbf_seconds": self.mtbf_seconds,
            "seed": self.seed,
            "node_loss_fraction": self.node_loss_fraction,
            "retry_fraction": self.retry_fraction,
            "retry_success_p": self.retry_success_p,
        }
