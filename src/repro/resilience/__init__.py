"""Run-level resilience: checkpoint/restart policy, retries, replanning.

The paper trains on 16K H100s, where failures are routine; this package
adds the first time axis above the single optimizer step.  A seeded
failure process (:mod:`repro.resilience.failures`) drives a multi-step
run simulator (:mod:`repro.resilience.run`) whose recovery behaviour is
a policy object (:mod:`repro.resilience.policy`): when to checkpoint
(never / fixed / Young-Daly-optimal), how collectives retry
(:class:`repro.sim.collectives.RetryPolicy`), and whether permanent node
loss triggers an elastic replan or a wait for replacement.  Reports are
goodput-over-wallclock (``repro run``); see ``docs/resilience.md``.
"""

from repro.resilience.failures import (
    FAILURE_KINDS,
    FailureEvent,
    FailureProcess,
)
from repro.resilience.policy import (
    CheckpointPolicy,
    FixedInterval,
    NoCheckpoint,
    YoungDaly,
    checkpoint_bytes,
    checkpoint_read_seconds,
    checkpoint_write_seconds,
    parse_policy,
)
from repro.resilience.run import (
    BUCKETS,
    FleetSegment,
    RunConfig,
    RunResult,
    simulate_run,
)

__all__ = [
    "FAILURE_KINDS",
    "FailureEvent",
    "FailureProcess",
    "CheckpointPolicy",
    "FixedInterval",
    "NoCheckpoint",
    "YoungDaly",
    "checkpoint_bytes",
    "checkpoint_read_seconds",
    "checkpoint_write_seconds",
    "parse_policy",
    "BUCKETS",
    "FleetSegment",
    "RunConfig",
    "RunResult",
    "simulate_run",
]
