"""Run-level resilience: checkpoint/restart policy, retries, replanning.

The paper trains on 16K H100s, where failures are routine; this package
adds the first time axis above the single optimizer step.  A seeded
failure process with a correlated-domain taxonomy
(:mod:`repro.resilience.failures` — node/rack/pod fail-stop, gray
degradation, silent corruption) drives a multi-step run simulator
(:mod:`repro.resilience.run`) whose recovery behaviour is a policy
object (:mod:`repro.resilience.policy`): when to checkpoint (never /
fixed / Young-Daly-optimal, optionally composed across peer/local/remote
tiers via :mod:`repro.resilience.tiers`), how collectives retry
(:class:`repro.sim.collectives.RetryPolicy`), whether permanent capacity
loss triggers an elastic replan or a wait for replacement, and whether
the Section 6.1 detect–mitigate loop
(:mod:`repro.resilience.mitigation`) hunts gray failures.  Reports are
goodput-over-wallclock (``repro run``); see ``docs/resilience.md``.
"""

from repro.resilience.failures import (
    CORRELATED_DOMAINS,
    FAILURE_KINDS,
    TAXONOMY_PRESETS,
    FailureEvent,
    FailureProcess,
    FailureTaxonomy,
    parse_taxonomy,
)
from repro.resilience.mitigation import (
    DetectorModel,
    MitigationDecision,
    choose_mitigation,
    parse_detector,
)
from repro.resilience.policy import (
    CheckpointPolicy,
    FixedInterval,
    NoCheckpoint,
    YoungDaly,
    checkpoint_bytes,
    checkpoint_read_seconds,
    checkpoint_write_seconds,
    parse_policy,
    shard_transfer_seconds,
)
from repro.resilience.run import (
    BUCKETS,
    MITIGATIONS,
    FleetSegment,
    RunConfig,
    RunResult,
    simulate_run,
)
from repro.resilience.tiers import (
    FAILURE_DOMAINS,
    TIER_NAMES,
    TieredCheckpoint,
    cheapest_surviving_tier,
    parse_tiered_policy,
    survivability_matrix,
    tier_read_seconds,
    tier_survives,
    tier_write_seconds,
)

__all__ = [
    "CORRELATED_DOMAINS",
    "FAILURE_KINDS",
    "TAXONOMY_PRESETS",
    "FailureEvent",
    "FailureProcess",
    "FailureTaxonomy",
    "parse_taxonomy",
    "DetectorModel",
    "MitigationDecision",
    "choose_mitigation",
    "parse_detector",
    "CheckpointPolicy",
    "FixedInterval",
    "NoCheckpoint",
    "YoungDaly",
    "checkpoint_bytes",
    "checkpoint_read_seconds",
    "checkpoint_write_seconds",
    "parse_policy",
    "shard_transfer_seconds",
    "BUCKETS",
    "MITIGATIONS",
    "FleetSegment",
    "RunConfig",
    "RunResult",
    "simulate_run",
    "FAILURE_DOMAINS",
    "TIER_NAMES",
    "TieredCheckpoint",
    "cheapest_surviving_tier",
    "parse_tiered_policy",
    "survivability_matrix",
    "tier_read_seconds",
    "tier_survives",
    "tier_write_seconds",
]
