"""Multi-step run simulator: the first time axis above the step.

Composes the single-step simulator (:func:`repro.train.step.simulate_step`
prices what a step costs on a given fleet) with a seeded failure process
(:mod:`repro.resilience.failures` — fail-stop at node/rack/pod
granularity, gray degradation, silent corruption), a checkpoint policy
(:mod:`repro.resilience.policy`, optionally tiered across peer/local/
remote stores per :mod:`repro.resilience.tiers`), the Section 6.1
detect–mitigate loop for gray failures
(:mod:`repro.resilience.mitigation`), and two recovery strategies for
permanent capacity loss — elastic replanning
(:func:`repro.parallel.planner.replan_for_gpu_count`: continue degraded
on the shrunken fleet) or wait-for-replacement.

The output answers the operators' question from Section 6.1 at 16K GPUs:
*what fraction of GPU wall-clock turned into tokens?*  Every second of
the run lands in exactly one accounting bucket:

========================  ==============================================
``productive``            committed steps, at the healthy full-fleet rate
``degraded``              extra step time paid on a shrunken fleet
``fault``                 transient-straggler inflation of committed steps
``gray``                  persistent gray-failure tax on committed steps
``retry``                 collective timeout/backoff ladders
``rework``                uncommitted work lost to a failure or rollback
``checkpoint``            checkpoint writes, on every tier
``restart``               restart overhead + checkpoint restores
``waiting``               idle fleet waiting for a node replacement
========================  ==============================================

so ``sum(buckets) == elapsed`` exactly (a pinned test invariant).

Work is *durably* committed only by remote-tier checkpoint writes (and
by finishing the run): peer and local checkpoints advance the restart
point cheaply, but a failure domain that destroys them (rack loss kills
peer replicas; any node loss invalidates the sharded local tier) can
force recovery to roll back past them, so the accounting keeps per-step
attempt records in flight until a durable commit and reworks exactly the
attempts beyond whatever restore point recovery actually achieved.

Silent corruption is modelled as ground truth the simulated system
cannot see: checkpoints written after the (unknown) onset are tainted,
validation happens only at durable commits and at run end, and a crash
restore that happens to pick a tainted record silently re-enters the
corrupted state.  Detection forces a rollback past every tainted record
to the newest clean one.

The run timeline is recorded into a :class:`repro.sim.engine.Simulator`
on rank 0 — steps on the ``compute`` stream, checkpoint/restart I/O on
``io``, retry ladders on ``dp`` (it is the gradient sync that rides the
scale-out network), and zero-duration markers for failures, replans,
detector verdicts, and mitigation decisions — so ``repro run --trace``
exports the whole run as a Perfetto timeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.faults.models import fault_preset
from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig
from repro.obs.metrics import MetricsRegistry
from repro.parallel.config import JobConfig
from repro.parallel.planner import Plan, plan_parallelism, replan_for_gpu_count
from repro.pp.registry import schedule_entry
from repro.resilience.failures import FailureProcess, FailureTaxonomy
from repro.resilience.mitigation import (
    DetectorModel,
    MitigationDecision,
    choose_mitigation,
    gray_fault_plan,
    localise_gray_fault,
)
from repro.resilience.policy import (
    CheckpointPolicy,
    YoungDaly,
    checkpoint_read_seconds,
    checkpoint_write_seconds,
)
from repro.resilience.tiers import (
    TIER_NAMES,
    TieredCheckpoint,
    tier_read_seconds,
    tier_survives,
    tier_write_seconds,
)
from repro.sim.collectives import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.sim.engine import Simulator
from repro.train.step import simulate_step

#: Wall-clock bucket names, in report order.
BUCKETS = ("productive", "degraded", "fault", "gray", "retry",
           "rework", "checkpoint", "restart", "waiting")

#: Mitigation strategies for detected gray failures.
MITIGATIONS = ("tolerate", "detect")

#: Tie-break order for restores: cheaper-to-read tiers first.
_TIER_ORDER = {name: i for i, name in enumerate(TIER_NAMES)}


@dataclass(frozen=True)
class RunConfig:
    """Everything a multi-step run needs beyond (model, job, cluster)."""

    steps: int
    mtbf_seconds: float
    policy: CheckpointPolicy = field(default_factory=YoungDaly)
    seed: int = 0
    #: On permanent node loss: replan on the shrunken fleet (True) or
    #: keep the plan and wait ``replacement_seconds`` for a spare (False).
    elastic: bool = True
    replacement_seconds: float = 1800.0
    #: Fixed restart cost per abort: scheduler round-trip, process
    #: launch, NCCL (re)initialisation — paid before any restore I/O.
    restart_overhead_seconds: float = 120.0
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
    node_loss_fraction: float = 0.4
    retry_fraction: float = 0.3
    retry_success_p: float = 0.6
    #: Safety valve: a no-checkpoint run under a harsh MTBF may never
    #: finish; stop (``completed=False``) after this many step attempts.
    max_step_attempts: Optional[int] = None
    #: Full failure taxonomy; ``None`` builds the legacy iid fail-stop
    #: taxonomy from the three fraction knobs above.
    taxonomy: Optional[FailureTaxonomy] = None
    #: What to do about gray failures: ``tolerate`` runs degraded
    #: forever; ``detect`` arms the Section 6.1 detect–mitigate loop.
    mitigation: str = "tolerate"
    detector: DetectorModel = field(default_factory=DetectorModel)

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be > 0")
        if self.replacement_seconds < 0 or self.restart_overhead_seconds < 0:
            raise ValueError("recovery costs must be >= 0")
        if self.mitigation not in MITIGATIONS:
            raise ValueError(
                f"mitigation must be one of {MITIGATIONS} "
                f"(got {self.mitigation!r})")

    @property
    def attempt_limit(self) -> int:
        if self.max_step_attempts is not None:
            return self.max_step_attempts
        return max(50 * self.steps, 1000)

    @property
    def effective_taxonomy(self) -> FailureTaxonomy:
        """The taxonomy actually driving the failure process."""
        if self.taxonomy is not None:
            return self.taxonomy
        return FailureTaxonomy(
            node_loss_fraction=self.node_loss_fraction,
            retry_fraction=self.retry_fraction,
            retry_success_p=self.retry_success_p,
        )


@dataclass(frozen=True)
class FleetSegment:
    """Pricing of one fleet capacity, reused across its lifetime."""

    capacity_ngpu: int
    plan: Plan
    step_seconds: float
    straggler_extra_seconds: float
    checkpoint_write_seconds: float
    checkpoint_read_seconds: float
    tier_write_seconds: Dict[str, float] = field(default_factory=dict)
    tier_read_seconds: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        par = self.plan.parallel
        return {
            "capacity_ngpu": self.capacity_ngpu,
            "plan_ngpu": par.world_size,
            "parallel": {"tp": par.tp, "cp": par.cp, "pp": par.pp,
                         "dp": par.dp, "zero": par.zero.value},
            "schedule": self.plan.schedule,
            "step_seconds": self.step_seconds,
            "straggler_extra_seconds": self.straggler_extra_seconds,
            "checkpoint_write_seconds": self.checkpoint_write_seconds,
            "checkpoint_read_seconds": self.checkpoint_read_seconds,
            "tier_write_seconds": dict(sorted(
                self.tier_write_seconds.items())),
            "tier_read_seconds": dict(sorted(
                self.tier_read_seconds.items())),
        }


@dataclass
class RunResult:
    """Outcome of one simulated multi-step run."""

    config: RunConfig
    initial_plan: Plan
    tokens_per_step: int
    ideal_step_seconds: float
    interval_steps: Optional[int]
    steps_completed: int
    completed: bool
    truncated_reason: Optional[str]
    elapsed_seconds: float
    buckets: Dict[str, float]
    counters: Dict[str, int]
    failures: List[dict]
    segments: List[dict]
    sim: Simulator
    #: Per-tier interval in steps (single-tier policies report ``remote``).
    tier_intervals: Dict[str, Optional[int]] = field(default_factory=dict)
    #: Checkpoint writes per tier.
    tier_writes: Dict[str, int] = field(default_factory=dict)
    #: Every restore: which tier recovery picked after which domain.
    restores: List[dict] = field(default_factory=list)
    #: Detect–mitigate decisions, fully costed.
    mitigations: List[dict] = field(default_factory=list)

    @property
    def ideal_seconds(self) -> float:
        """Wall-clock of a failure-free full-fleet run."""
        return self.config.steps * self.ideal_step_seconds

    @property
    def goodput_fraction(self) -> float:
        """Committed work at the ideal rate, over elapsed wall-clock."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return (self.steps_completed * self.ideal_step_seconds
                / self.elapsed_seconds)

    @property
    def achieved_tokens(self) -> int:
        return self.steps_completed * self.tokens_per_step

    @property
    def ideal_tokens(self) -> float:
        """Tokens an ideal run would have produced in the same elapsed."""
        if self.ideal_step_seconds <= 0:
            return 0.0
        return (self.elapsed_seconds / self.ideal_step_seconds
                * self.tokens_per_step)

    @property
    def tokens_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.achieved_tokens / self.elapsed_seconds


def _price_segment(
    model: TextModelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    capacity_ngpu: int,
    plan: Plan,
) -> FleetSegment:
    """Price a fleet capacity: healthy step, straggler step, checkpoint."""
    seg_job = plan.job
    healthy = simulate_step(model, plan.parallel, seg_job, cluster,
                            schedule_kind=plan.schedule)
    straggled = simulate_step(
        model, plan.parallel, seg_job, cluster, schedule_kind=plan.schedule,
        fault_plan=fault_preset("straggler-default",
                                plan.parallel.world_size))
    ngpu = plan.parallel.world_size
    return FleetSegment(
        capacity_ngpu=capacity_ngpu,
        plan=plan,
        step_seconds=healthy.step_seconds,
        straggler_extra_seconds=max(
            straggled.step_seconds - healthy.step_seconds, 0.0),
        checkpoint_write_seconds=checkpoint_write_seconds(
            model, cluster, ngpu),
        checkpoint_read_seconds=checkpoint_read_seconds(
            model, cluster, ngpu),
        tier_write_seconds={
            tier: tier_write_seconds(tier, model, cluster, ngpu)
            for tier in TIER_NAMES},
        tier_read_seconds={
            tier: tier_read_seconds(tier, model, cluster, ngpu)
            for tier in TIER_NAMES},
    )


def simulate_run(
    model: TextModelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    config: RunConfig,
    sim: Optional[Simulator] = None,
    metrics: Optional[MetricsRegistry] = None,
    schedule_kind: Optional[str] = None,
) -> RunResult:
    """Simulate ``config.steps`` optimizer steps under failures.

    ``schedule_kind`` pins every fleet segment (initial plan and elastic
    replans alike) to a registered pipeline schedule instead of the
    planner's Section 3.1.3 family pick; ``None`` keeps the pick.

    The checkpoint interval(s) are derived once, from the *initial*
    fleet's step and per-tier checkpoint prices — matching practice,
    where the interval is an operator setting, not something retuned
    mid-incident.

    Failure semantics per arrival kind:

    * ``transient_straggler`` inflates the in-flight step by the priced
      ``straggler-default`` delta, then the fleet runs healthy again;
    * ``collective_retry`` plays the retry ladder of
      ``config.retry_policy`` on the timeline (timeout attempts tagged
      ``retry``, gaps tagged ``retry``+``backoff``); an arrival whose
      attempt count exceeds the budget escalates to an abort;
    * ``node_loss`` / ``rack_loss`` / ``pod_loss`` abort the step and
      permanently remove the failure domain (one node, one rack's worth
      of nodes, one pod's worth), destroying every checkpoint on tiers
      that do not survive that domain; the fleet either replans
      (``elastic=True``) or waits for replacement;
    * ``gray`` attaches a persistent degraded-component tax to every
      subsequent step until the detect–mitigate loop (when armed via
      ``mitigation="detect"``) evicts the culprit host;
    * ``silent_corruption`` taints all later checkpoints and is caught
      only at the next durable commit or at run end, forcing a rollback
      to the newest clean checkpoint.

    Every abort pays ``restart_overhead_seconds``, restores the newest
    checkpoint that *survived* the failure's domain (priced at that
    tier's read cost on the current segment), and resumes from its step —
    from step 0 when nothing survives (or under :class:`NoCheckpoint`).
    """
    sim = sim if sim is not None else Simulator()
    taxonomy = config.effective_taxonomy
    proc = FailureProcess(
        config.mtbf_seconds, seed=config.seed, taxonomy=taxonomy)
    if schedule_kind is not None:
        schedule_entry(schedule_kind)  # raises on unknown kinds
    initial_plan = plan_parallelism(model, job, cluster)
    if schedule_kind is not None:
        initial_plan = replace(initial_plan, schedule=schedule_kind)
    segments: Dict[int, FleetSegment] = {}

    def segment_for(capacity: int) -> FleetSegment:
        if capacity not in segments:
            if capacity == job.ngpu:
                plan = initial_plan
            else:
                plan = replan_for_gpu_count(
                    model, replace(job, ngpu=capacity), cluster, capacity)
                if schedule_kind is not None:
                    plan = replace(plan, schedule=schedule_kind)
            segments[capacity] = _price_segment(
                model, job, cluster, capacity, plan)
        return segments[capacity]

    seg = segment_for(job.ngpu)
    ideal_step = seg.step_seconds
    tiered_mode = isinstance(config.policy, TieredCheckpoint)
    if tiered_mode:
        tier_intervals = config.policy.tier_intervals(
            seg.step_seconds, seg.tier_write_seconds, config.mtbf_seconds)
    else:
        tier_intervals = {"remote": config.policy.interval_steps(
            seg.step_seconds, seg.checkpoint_write_seconds,
            config.mtbf_seconds)}
    interval = tier_intervals.get("remote")

    buckets = {name: 0.0 for name in BUCKETS}
    counters = {
        "steps_attempted": 0, "checkpoints": 0, "restarts": 0,
        "replans": 0, "retry_ladders": 0, "retry_attempts": 0,
        "node_losses": 0, "transient_stragglers": 0, "retry_exhaustions": 0,
        "rack_losses": 0, "pod_losses": 0, "gray_failures": 0,
        "silent_corruptions": 0, "corruption_rollbacks": 0,
        "gray_detected": 0, "gray_tolerated": 0, "false_positives": 0,
        "evictions": 0,
    }
    tier_writes = {tier: 0 for tier in TIER_NAMES}
    failures: List[dict] = []
    segment_log: List[dict] = [dict(seg.to_dict(), from_seconds=0.0)]
    restores: List[dict] = []
    mitigation_log: List[dict] = []

    t = 0.0
    prev = None  # last timeline event, for `after=` chaining
    done = 0        # steps finished since the run began (incl. uncommitted)
    capacity = job.ngpu
    # (step_no, duration, productive, degraded, fault, retry, gray) per
    # step attempt not yet flushed by a durable (remote) commit.
    pending: List[tuple] = []
    pending_events = proc.next_failure()
    truncated_reason: Optional[str] = None
    # Checkpoint records: {"step", "tier", "time", "tainted"}.  Taint is
    # simulation ground truth, invisible to restore selection.
    records: List[dict] = []
    last_ckpt = {tier: 0 for tier in tier_intervals}
    # Ground truth for silent corruption: None while state is clean.
    corruption_onset: Optional[float] = None
    # Active gray faults: {"kind", "rank", "age", "tolerated", "given_up"}.
    active_gray: List[dict] = []
    gray_tax_cache: Dict[tuple, float] = {}
    armed = config.mitigation == "detect" and taxonomy.has_gray
    det_rng = config.detector.rng(config.seed) if armed else None

    def emit(stream: str, duration: float, name: str, kind: str,
             tags: tuple) -> None:
        nonlocal prev
        prev = sim.run(0, stream, duration, name, kind=kind,
                       after=[prev] if prev is not None else None, tags=tags)

    def flush_pending() -> None:
        """Durable commit: attempts become final bucket accounting."""
        for _step, _dur, prod, degr, fault, retry, gray in pending:
            buckets["productive"] += prod
            buckets["degraded"] += degr
            buckets["fault"] += fault
            buckets["retry"] += retry
            buckets["gray"] += gray
        pending.clear()

    def rollback_pending(restore_step: int) -> None:
        """Rework every attempt beyond the restore point; keep the rest
        in flight (a deeper rollback may still rework them)."""
        kept = []
        for p in pending:
            if p[0] > restore_step:
                buckets["rework"] += p[1]
            else:
                kept.append(p)
        pending[:] = kept

    def newest_record(domain: str) -> Optional[dict]:
        """Newest checkpoint restorable after ``domain`` (ties toward the
        cheaper read).  Taint is *not* consulted: the system cannot see
        it."""
        best = None
        for rec in records:
            if not tier_survives(rec["tier"], domain):
                continue
            if (best is None or rec["step"] > best["step"]
                    or (rec["step"] == best["step"]
                        and _TIER_ORDER[rec["tier"]]
                        < _TIER_ORDER[best["tier"]])):
                best = rec
        return best

    def ckpt_name(tier: str, step: int) -> str:
        # Legacy single-tier runs keep the v1 event names byte-for-byte.
        return (f"checkpoint:{tier}:{step}" if tiered_mode
                else f"checkpoint:{step}")

    def restore_name(tier: str, step: int) -> str:
        return (f"restore:{tier}:step{step}" if tiered_mode
                else f"restore:step{step}")

    def write_checkpoint(tier: str, extra_tags: tuple = ()) -> None:
        nonlocal t, corruption_onset
        cost = (seg.checkpoint_write_seconds if not tiered_mode
                else seg.tier_write_seconds[tier])
        emit("io", cost, ckpt_name(tier, done), "io",
             ("checkpoint",) + ((tier,) if tiered_mode else ())
             + extra_tags)
        buckets["checkpoint"] += cost
        counters["checkpoints"] += 1
        tier_writes[tier] += 1
        t += cost
        records.append({"step": done, "tier": tier, "time": t,
                        "tainted": corruption_onset is not None})
        last_ckpt[tier] = done
        if tier == "remote":
            flush_pending()

    def do_restore(domain: str, reason: str) -> Optional[dict]:
        """Pay restart + restore; roll state back to what survived."""
        nonlocal t, done, corruption_onset
        rec = newest_record(domain)
        restore_step = rec["step"] if rec is not None else 0
        rollback_pending(restore_step)
        done = restore_step
        for tier in last_ckpt:
            last_ckpt[tier] = min(last_ckpt[tier], restore_step)
        emit("io", config.restart_overhead_seconds,
             f"restart:{counters['restarts']}", "io", ("restart",))
        buckets["restart"] += config.restart_overhead_seconds
        t += config.restart_overhead_seconds
        if rec is not None:
            cost = (seg.checkpoint_read_seconds if not tiered_mode
                    else seg.tier_read_seconds[rec["tier"]])
            emit("io", cost, restore_name(rec["tier"], restore_step),
                 "io", ("restart", "restore"))
            buckets["restart"] += cost
            t += cost
            restores.append({
                "time_seconds": t, "reason": reason, "domain": domain,
                "tier": rec["tier"], "step": restore_step,
            })
        counters["restarts"] += 1
        # A tainted restore silently re-enters the corrupted state; a
        # clean one (or a from-scratch restart) discards it.
        if rec is not None and rec["tainted"]:
            if corruption_onset is None:
                corruption_onset = rec["time"]
        else:
            corruption_onset = None
        return rec

    def lost_gpus_for(ev_kind: str, where_fraction: float) -> int:
        """GPUs removed by one fail-stop event on the current fleet."""
        cur_nodes = max(capacity // cluster.gpus_per_node, 1)
        if ev_kind == "node_loss":
            return cluster.gpus_per_node
        per_rack = cluster.nodes_per_rack
        per_pod = per_rack * cluster.racks_per_pod
        size = per_rack if ev_kind == "rack_loss" else per_pod
        groups = math.ceil(cur_nodes / size)
        index = min(int(where_fraction * groups), groups - 1)
        lost = min(size, cur_nodes - index * size)
        return lost * cluster.gpus_per_node

    def shrink_fleet(lost_gpus: int) -> bool:
        """Elastic replan after losing ``lost_gpus``; False = infeasible."""
        nonlocal seg, capacity, truncated_reason
        new_capacity = capacity - lost_gpus
        try:
            new_seg = segment_for(new_capacity)
        except ValueError:
            truncated_reason = f"no feasible plan at {new_capacity} GPUs"
            return False
        seg = new_seg
        capacity = new_capacity
        counters["replans"] += 1
        emit("io", 0.0, f"replan:{seg.plan.parallel.world_size}gpu",
             "marker", ("replan",))
        segment_log.append(dict(seg.to_dict(), from_seconds=t))
        return True

    def coalesce_outage() -> None:
        """Failures arriving while the fleet was already down coalesce
        into this outage: nothing was training (no work to lose) and
        repairs proceed in parallel.  Hardware losses still shrink an
        elastic fleet; gray faults attach (the flaky component is still
        there when training resumes); everything else is a no-op."""
        nonlocal pending_events, truncated_reason
        while (truncated_reason is None
               and pending_events.time_seconds < t):
            ev = pending_events
            pending_events = proc.next_failure()
            failures.append({
                "time_seconds": ev.time_seconds, "kind": ev.kind,
                "failed_attempts": (ev.failed_attempts
                                    if ev.kind == "collective_retry" else 0),
                "gray_kind": ev.gray_kind,
                "during_outage": True,
            })
            if ev.kind == "gray":
                counters["gray_failures"] += 1
                active_gray.append({
                    "kind": ev.gray_kind,
                    "rank": ev.rank_index(seg.plan.parallel.world_size),
                    "age": 0, "tolerated": False, "given_up": False,
                })
                continue
            if ev.kind not in ("node_loss", "rack_loss", "pod_loss"):
                continue
            counters[ev.kind.replace("loss", "losses")] += 1
            for rec in list(records):
                if not tier_survives(rec["tier"], ev.kind):
                    records.remove(rec)
            if not config.elastic:
                continue
            if not shrink_fleet(lost_gpus_for(ev.kind, ev.where_fraction)):
                break

    def gray_tax(gray: dict) -> float:
        """Per-step tax of one gray fault on the current segment."""
        world = seg.plan.parallel.world_size
        key = (capacity, gray["kind"], min(gray["rank"], world - 1))
        if key not in gray_tax_cache:
            plan = gray_fault_plan(
                gray["kind"], key[2], taxonomy.gray_compute_scale,
                taxonomy.gray_link_scale)
            faulted = simulate_step(
                model, seg.plan.parallel, seg.plan.job, cluster,
                schedule_kind=seg.plan.schedule, fault_plan=plan)
            gray_tax_cache[key] = max(
                faulted.step_seconds - seg.step_seconds, 0.0)
        return gray_tax_cache[key]

    def handle_corruption() -> None:
        """A validation point caught silent corruption: identify and
        purge the tainted records, then roll back past them."""
        nonlocal corruption_onset
        emit("io", 0.0, "failure:silent_corruption", "marker",
             ("failure", "silent_corruption"))
        counters["corruption_rollbacks"] += 1
        records[:] = [rec for rec in records if not rec["tainted"]]
        corruption_onset = None
        do_restore("none", "silent_corruption")
        coalesce_outage()

    def run_detector() -> bool:
        """One armed pass of the detect–mitigate loop.  True = the fleet
        went through an eviction outage (the caller restarts its step)."""
        if det_rng is None:
            return False
        if config.detector.false_alarm(det_rng):
            counters["false_positives"] += 1
            emit("io", 0.0, "detect:false_positive", "marker",
                 ("detect", "false_positive"))
            mitigation_log.append(MitigationDecision(
                step=done, time_seconds=t, gray_kind="", rank=-1,
                decision="false_positive", detected_after_steps=0,
                localised=False, tax_seconds_per_step=0.0,
                projected_tolerate_seconds=0.0,
                projected_evict_seconds=0.0).to_dict())
        for gray in active_gray:
            if gray["tolerated"] or gray["given_up"]:
                continue
            if not config.detector.detects(gray["age"], det_rng):
                continue
            counters["gray_detected"] += 1
            emit("io", 0.0, f"detect:gray_{gray['kind']}", "marker",
                 ("detect", "gray"))
            if mitigate_gray(gray):
                return True
        return False

    def mitigate_gray(gray: dict) -> bool:
        """Cost out evict-vs-tolerate for a detected gray fault and act.
        True = eviction happened (an outage the caller must absorb)."""
        nonlocal t
        tax = gray_tax(gray)
        remaining = config.steps - done
        world = seg.plan.parallel.world_size
        localised = localise_gray_fault(
            seg.plan.parallel, gray["kind"], min(gray["rank"], world - 1),
            taxonomy.gray_compute_scale, taxonomy.gray_link_scale)
        # Drain to the fastest tier that actually checkpoints; with no
        # checkpointing at all, eviction loses everything since the
        # newest surviving record (priced into the projection).
        drain_tier = next(
            (tier for tier in TIER_NAMES
             if tier_intervals.get(tier) is not None), None)
        rec = newest_record("none")
        floor = rec["step"] if rec is not None else 0
        fixed = config.restart_overhead_seconds
        extra_per_step = 0.0
        evictable = True
        if drain_tier is not None:
            write = (seg.checkpoint_write_seconds if not tiered_mode
                     else seg.tier_write_seconds[drain_tier])
            fixed += write
        else:
            fixed += (done - floor) * seg.step_seconds
        if config.elastic:
            try:
                new_seg = segment_for(capacity - cluster.gpus_per_node)
            except ValueError:
                evictable = False
                new_seg = seg
            else:
                extra_per_step = max(
                    new_seg.step_seconds - seg.step_seconds, 0.0)
        else:
            new_seg = seg
            fixed += config.replacement_seconds
        read_tier = drain_tier if drain_tier is not None else (
            rec["tier"] if rec is not None else None)
        if read_tier is not None:
            fixed += (new_seg.checkpoint_read_seconds if not tiered_mode
                      else new_seg.tier_read_seconds[read_tier])
        decision, tolerate_cost, evict_cost = choose_mitigation(
            tax, remaining, fixed, extra_per_step)
        if not evictable:
            decision = "tolerate"
        emit("io", 0.0, f"mitigate:{decision}", "marker",
             ("mitigate", decision))
        mitigation_log.append(MitigationDecision(
            step=done, time_seconds=t, gray_kind=gray["kind"],
            rank=gray["rank"], decision=decision,
            detected_after_steps=gray["age"], localised=localised,
            tax_seconds_per_step=tax,
            projected_tolerate_seconds=tolerate_cost,
            projected_evict_seconds=evict_cost).to_dict())
        if decision == "tolerate":
            counters["gray_tolerated"] += 1
            gray["tolerated"] = True
            return False
        # ---- evict-and-replan ------------------------------------------
        counters["evictions"] += 1
        if drain_tier is not None:
            write_checkpoint(drain_tier, extra_tags=("drain",))
        if config.elastic:
            shrink_fleet(cluster.gpus_per_node)
        else:
            emit("io", config.replacement_seconds, "wait:replacement",
                 "io", ("waiting",))
            buckets["waiting"] += config.replacement_seconds
            t += config.replacement_seconds
        do_restore("none", "eviction")
        if localised:
            active_gray.remove(gray)
        else:
            # The search blamed the wrong host: the eviction bought
            # nothing, and re-detecting the same fault would evict
            # forever — give up and run degraded.
            gray["given_up"] = True
        coalesce_outage()
        return True

    while True:
        if done >= config.steps:
            if corruption_onset is not None:
                # Final validation before declaring the run done.
                handle_corruption()
                if truncated_reason is not None:
                    break
                continue
            break
        if counters["steps_attempted"] >= config.attempt_limit:
            truncated_reason = (
                f"gave up after {counters['steps_attempted']} step attempts "
                f"({done}/{config.steps} steps committed)")
            break
        counters["steps_attempted"] += 1
        base = seg.step_seconds
        transient_extra = 0.0
        # Gray faults attach to steps *after* their arrival: tax what is
        # active as this step starts.
        taxed = [g for g in active_gray]
        gray_extra = sum(gray_tax(g) for g in taxed)
        ladders: List[int] = []
        abort = None  # (reason, FailureEvent)

        def completion_time() -> float:
            overhead = sum(
                config.retry_policy.retry_overhead_seconds(k)
                for k in ladders)
            return t + base + transient_extra + gray_extra + overhead

        # Absorb every failure landing before this step would complete;
        # transient ones stretch the step (which can pull in more).
        while abort is None and pending_events.time_seconds < completion_time():
            ev = pending_events
            pending_events = proc.next_failure()
            failures.append({
                "time_seconds": ev.time_seconds, "kind": ev.kind,
                "failed_attempts": (ev.failed_attempts
                                    if ev.kind == "collective_retry" else 0),
                "gray_kind": ev.gray_kind,
                "during_outage": False,
            })
            if ev.kind == "transient_straggler":
                counters["transient_stragglers"] += 1
                transient_extra += seg.straggler_extra_seconds
            elif ev.kind == "collective_retry":
                if config.retry_policy.exhausted_by(ev.failed_attempts):
                    counters["retry_exhaustions"] += 1
                    abort = ("retry_exhausted", ev)
                else:
                    counters["retry_ladders"] += 1
                    counters["retry_attempts"] += ev.failed_attempts
                    ladders.append(ev.failed_attempts)
            elif ev.kind == "gray":
                counters["gray_failures"] += 1
                active_gray.append({
                    "kind": ev.gray_kind,
                    "rank": ev.rank_index(seg.plan.parallel.world_size),
                    "age": 0, "tolerated": False, "given_up": False,
                })
            elif ev.kind == "silent_corruption":
                counters["silent_corruptions"] += 1
                if corruption_onset is None:
                    corruption_onset = ev.time_seconds
            else:
                counters[ev.kind.replace("loss", "losses")] += 1
                abort = (ev.kind, ev)

        if abort is None:
            # Retry ladders first (the gradient sync that stalled), then
            # the step's compute span; both chained on the timeline.
            retry_overhead = 0.0
            for i, attempts in enumerate(ladders):
                events = sim.run_collective(
                    [0], "dp", 0.0, f"retry:step{done}.{i}",
                    after={0: [prev]} if prev is not None else None,
                    failed_attempts=attempts,
                    retry_policy=config.retry_policy)
                prev = events[0]
                retry_overhead += (
                    config.retry_policy.retry_overhead_seconds(attempts))
            tags = ("step",)
            # A replanned fleet is normally slower than the ideal one,
            # but never let a surprisingly fast replan make the split
            # negative: productive is capped at the ideal rate.
            degraded_extra = max(base - ideal_step, 0.0)
            productive = base - degraded_extra
            if capacity < job.ngpu:
                tags += ("degraded",)
            if transient_extra > 0:
                tags += ("transient_fault",)
            if gray_extra > 0:
                tags += ("gray",)
            emit("compute", base + transient_extra + gray_extra,
                 f"step:{done}", "compute", tags)
            t = completion_time()
            done += 1
            pending.append((
                done, base + transient_extra + gray_extra + retry_overhead,
                productive, degraded_extra, transient_extra, retry_overhead,
                gray_extra))
            for g in taxed:
                g["age"] += 1
            corruption_caught = False
            for tier in TIER_NAMES:
                tier_interval = tier_intervals.get(tier)
                if tier_interval is None or done >= config.steps:
                    continue
                if done - last_ckpt[tier] < tier_interval:
                    continue
                if tier == "remote" and corruption_onset is not None:
                    # The durable commit validates state and catches the
                    # corruption instead of persisting it.
                    handle_corruption()
                    corruption_caught = True
                    break
                write_checkpoint(tier)
            if corruption_caught:
                continue
            if armed:
                # One pass of the detect–mitigate loop per completed
                # step; an eviction outage is absorbed inside.
                run_detector()
            continue

        # ---- abort path -------------------------------------------------
        reason, ev = abort
        lost_partial = min(max(ev.time_seconds - t, 0.0),
                           completion_time() - t)
        if lost_partial > 0:
            emit("compute", lost_partial, f"step:{done}", "compute",
                 ("step", "rework"))
            t += lost_partial
        buckets["rework"] += lost_partial
        domain = reason if reason != "retry_exhausted" else "none"
        for rec in list(records):
            if not tier_survives(rec["tier"], domain):
                records.remove(rec)
        emit("io", 0.0, f"failure:{reason}", "marker", ("failure", reason))

        if domain != "none":
            if config.elastic:
                if not shrink_fleet(
                        lost_gpus_for(reason, ev.where_fraction)):
                    # Nothing restorable will run: rework what's in
                    # flight beyond the best surviving checkpoint.
                    rec = newest_record(domain)
                    rollback_pending(rec["step"] if rec else 0)
                    break
            else:
                emit("io", config.replacement_seconds, "wait:replacement",
                     "io", ("waiting",))
                buckets["waiting"] += config.replacement_seconds
                t += config.replacement_seconds

        do_restore(domain, reason)
        coalesce_outage()
        if truncated_reason is not None:
            break

    completed = done >= config.steps
    if completed:
        # Run end materialises the final state: commit the tail steps.
        flush_pending()
        steps_completed = done
    else:
        # Truncated: progress is whatever the newest checkpoint (on any
        # tier) can restore; attempts beyond it are rework.
        rec = newest_record("none")
        steps_completed = rec["step"] if rec is not None else 0
        rollback_pending(steps_completed)
        flush_pending()

    result = RunResult(
        config=config,
        initial_plan=initial_plan,
        tokens_per_step=job.tokens_per_step,
        ideal_step_seconds=ideal_step,
        interval_steps=interval,
        steps_completed=steps_completed,
        completed=completed,
        truncated_reason=truncated_reason,
        elapsed_seconds=t,
        buckets=buckets,
        counters=counters,
        failures=failures,
        segments=segment_log,
        sim=sim,
        tier_intervals=dict(tier_intervals),
        tier_writes=tier_writes,
        restores=restores,
        mitigations=mitigation_log,
    )
    if metrics is not None:
        gauges = metrics.gauge(
            "run.seconds", unit="s",
            description="run wall-clock, by accounting bucket")
        for name, value in buckets.items():
            gauges.set(value, bucket=name)
        gauges.set(t, bucket="elapsed")
        metrics.gauge(
            "run.goodput_fraction", unit="ratio",
            description="committed work at the ideal rate over elapsed",
        ).set(result.goodput_fraction)
        fail_counter = metrics.counter(
            "run.failures", description="failure arrivals applied, by kind")
        for row in failures:
            fail_counter.inc(kind=row["kind"])
    return result
