"""Multi-step run simulator: the first time axis above the step.

Composes the single-step simulator (:func:`repro.train.step.simulate_step`
prices what a step costs on a given fleet) with a seeded failure process
(:mod:`repro.resilience.failures`), a checkpoint policy
(:mod:`repro.resilience.policy`), and two recovery strategies for
permanent node loss — elastic replanning
(:func:`repro.parallel.planner.replan_for_gpu_count`: continue degraded
on the shrunken fleet) or wait-for-replacement.

The output answers the operators' question from Section 6.1 at 16K GPUs:
*what fraction of GPU wall-clock turned into tokens?*  Every second of
the run lands in exactly one accounting bucket:

========================  ==============================================
``productive``            committed steps, at the healthy full-fleet rate
``degraded``              extra step time paid on a shrunken fleet
``fault``                 transient-straggler inflation of committed steps
``retry``                 collective timeout/backoff ladders
``rework``                uncommitted work lost to a failure
``checkpoint``            checkpoint writes
``restart``               restart overhead + checkpoint restores
``waiting``               idle fleet waiting for a node replacement
========================  ==============================================

so ``sum(buckets) == elapsed`` exactly (a pinned test invariant).

The run timeline is recorded into a :class:`repro.sim.engine.Simulator`
on rank 0 — steps on the ``compute`` stream, checkpoint/restart I/O on
``io``, retry ladders on ``dp`` (it is the gradient sync that rides the
scale-out network) — so ``repro run --trace`` exports the whole run as a
Perfetto timeline with ``retry``/``checkpoint``/``restart`` tags.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.faults.models import fault_preset
from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig
from repro.obs.metrics import MetricsRegistry
from repro.parallel.config import JobConfig
from repro.parallel.planner import Plan, plan_parallelism, replan_for_gpu_count
from repro.pp.registry import schedule_entry
from repro.resilience.failures import FailureProcess
from repro.resilience.policy import (
    CheckpointPolicy,
    YoungDaly,
    checkpoint_read_seconds,
    checkpoint_write_seconds,
)
from repro.sim.collectives import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.sim.engine import Simulator
from repro.train.step import simulate_step

#: Wall-clock bucket names, in report order.
BUCKETS = ("productive", "degraded", "fault", "retry",
           "rework", "checkpoint", "restart", "waiting")


@dataclass(frozen=True)
class RunConfig:
    """Everything a multi-step run needs beyond (model, job, cluster)."""

    steps: int
    mtbf_seconds: float
    policy: CheckpointPolicy = field(default_factory=YoungDaly)
    seed: int = 0
    #: On permanent node loss: replan on the shrunken fleet (True) or
    #: keep the plan and wait ``replacement_seconds`` for a spare (False).
    elastic: bool = True
    replacement_seconds: float = 1800.0
    #: Fixed restart cost per abort: scheduler round-trip, process
    #: launch, NCCL (re)initialisation — paid before any restore I/O.
    restart_overhead_seconds: float = 120.0
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
    node_loss_fraction: float = 0.4
    retry_fraction: float = 0.3
    retry_success_p: float = 0.6
    #: Safety valve: a no-checkpoint run under a harsh MTBF may never
    #: finish; stop (``completed=False``) after this many step attempts.
    max_step_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be > 0")
        if self.replacement_seconds < 0 or self.restart_overhead_seconds < 0:
            raise ValueError("recovery costs must be >= 0")

    @property
    def attempt_limit(self) -> int:
        if self.max_step_attempts is not None:
            return self.max_step_attempts
        return max(50 * self.steps, 1000)


@dataclass(frozen=True)
class FleetSegment:
    """Pricing of one fleet capacity, reused across its lifetime."""

    capacity_ngpu: int
    plan: Plan
    step_seconds: float
    straggler_extra_seconds: float
    checkpoint_write_seconds: float
    checkpoint_read_seconds: float

    def to_dict(self) -> dict:
        par = self.plan.parallel
        return {
            "capacity_ngpu": self.capacity_ngpu,
            "plan_ngpu": par.world_size,
            "parallel": {"tp": par.tp, "cp": par.cp, "pp": par.pp,
                         "dp": par.dp, "zero": par.zero.value},
            "schedule": self.plan.schedule,
            "step_seconds": self.step_seconds,
            "straggler_extra_seconds": self.straggler_extra_seconds,
            "checkpoint_write_seconds": self.checkpoint_write_seconds,
            "checkpoint_read_seconds": self.checkpoint_read_seconds,
        }


@dataclass
class RunResult:
    """Outcome of one simulated multi-step run."""

    config: RunConfig
    initial_plan: Plan
    tokens_per_step: int
    ideal_step_seconds: float
    interval_steps: Optional[int]
    steps_completed: int
    completed: bool
    truncated_reason: Optional[str]
    elapsed_seconds: float
    buckets: Dict[str, float]
    counters: Dict[str, int]
    failures: List[dict]
    segments: List[dict]
    sim: Simulator

    @property
    def ideal_seconds(self) -> float:
        """Wall-clock of a failure-free full-fleet run."""
        return self.config.steps * self.ideal_step_seconds

    @property
    def goodput_fraction(self) -> float:
        """Committed work at the ideal rate, over elapsed wall-clock."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return (self.steps_completed * self.ideal_step_seconds
                / self.elapsed_seconds)

    @property
    def achieved_tokens(self) -> int:
        return self.steps_completed * self.tokens_per_step

    @property
    def ideal_tokens(self) -> float:
        """Tokens an ideal run would have produced in the same elapsed."""
        if self.ideal_step_seconds <= 0:
            return 0.0
        return (self.elapsed_seconds / self.ideal_step_seconds
                * self.tokens_per_step)

    @property
    def tokens_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.achieved_tokens / self.elapsed_seconds


def _price_segment(
    model: TextModelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    capacity_ngpu: int,
    plan: Plan,
) -> FleetSegment:
    """Price a fleet capacity: healthy step, straggler step, checkpoint."""
    seg_job = plan.job
    healthy = simulate_step(model, plan.parallel, seg_job, cluster,
                            schedule_kind=plan.schedule)
    straggled = simulate_step(
        model, plan.parallel, seg_job, cluster, schedule_kind=plan.schedule,
        fault_plan=fault_preset("straggler-default",
                                plan.parallel.world_size))
    ngpu = plan.parallel.world_size
    return FleetSegment(
        capacity_ngpu=capacity_ngpu,
        plan=plan,
        step_seconds=healthy.step_seconds,
        straggler_extra_seconds=max(
            straggled.step_seconds - healthy.step_seconds, 0.0),
        checkpoint_write_seconds=checkpoint_write_seconds(
            model, cluster, ngpu),
        checkpoint_read_seconds=checkpoint_read_seconds(
            model, cluster, ngpu),
    )


def simulate_run(
    model: TextModelConfig,
    job: JobConfig,
    cluster: ClusterSpec,
    config: RunConfig,
    sim: Optional[Simulator] = None,
    metrics: Optional[MetricsRegistry] = None,
    schedule_kind: Optional[str] = None,
) -> RunResult:
    """Simulate ``config.steps`` optimizer steps under failures.

    ``schedule_kind`` pins every fleet segment (initial plan and elastic
    replans alike) to a registered pipeline schedule instead of the
    planner's Section 3.1.3 family pick; ``None`` keeps the pick.

    The checkpoint interval is derived once, from the *initial* fleet's
    step and checkpoint prices — matching practice, where the interval is
    an operator setting, not something retuned mid-incident.

    Failure semantics per arrival kind:

    * ``transient_straggler`` inflates the in-flight step by the priced
      ``straggler-default`` delta, then the fleet runs healthy again;
    * ``collective_retry`` plays the retry ladder of
      ``config.retry_policy`` on the timeline (timeout attempts tagged
      ``retry``, gaps tagged ``retry``+``backoff``); an arrival whose
      attempt count exceeds the budget escalates to an abort;
    * ``node_loss`` aborts the step, permanently removes one node, and
      either replans (``elastic=True``) or waits for a replacement.

    Every abort pays ``restart_overhead_seconds``, restores the last
    checkpoint (priced per segment) if one exists, and resumes from the
    last committed step — from step 0 under :class:`NoCheckpoint`.
    """
    sim = sim if sim is not None else Simulator()
    proc = FailureProcess(
        config.mtbf_seconds, seed=config.seed,
        node_loss_fraction=config.node_loss_fraction,
        retry_fraction=config.retry_fraction,
        retry_success_p=config.retry_success_p,
    )
    if schedule_kind is not None:
        schedule_entry(schedule_kind)  # raises on unknown kinds
    initial_plan = plan_parallelism(model, job, cluster)
    if schedule_kind is not None:
        initial_plan = replace(initial_plan, schedule=schedule_kind)
    segments: Dict[int, FleetSegment] = {}

    def segment_for(capacity: int) -> FleetSegment:
        if capacity not in segments:
            if capacity == job.ngpu:
                plan = initial_plan
            else:
                plan = replan_for_gpu_count(
                    model, replace(job, ngpu=capacity), cluster, capacity)
                if schedule_kind is not None:
                    plan = replace(plan, schedule=schedule_kind)
            segments[capacity] = _price_segment(
                model, job, cluster, capacity, plan)
        return segments[capacity]

    seg = segment_for(job.ngpu)
    ideal_step = seg.step_seconds
    interval = config.policy.interval_steps(
        seg.step_seconds, seg.checkpoint_write_seconds, config.mtbf_seconds)

    buckets = {name: 0.0 for name in BUCKETS}
    counters = {
        "steps_attempted": 0, "checkpoints": 0, "restarts": 0,
        "replans": 0, "retry_ladders": 0, "retry_attempts": 0,
        "node_losses": 0, "transient_stragglers": 0, "retry_exhaustions": 0,
    }
    failures: List[dict] = []
    segment_log: List[dict] = [dict(seg.to_dict(), from_seconds=0.0)]

    t = 0.0
    prev = None  # last timeline event, for `after=` chaining
    done = 0        # steps finished since the run began (incl. uncommitted)
    committed = 0   # steps safe in the last checkpoint
    capacity = job.ngpu
    # (duration, productive, degraded, fault, retry) per uncommitted step.
    pending: List[tuple] = []
    pending_events = proc.next_failure()
    truncated_reason: Optional[str] = None

    def emit(stream: str, duration: float, name: str, kind: str,
             tags: tuple) -> None:
        nonlocal prev
        prev = sim.run(0, stream, duration, name, kind=kind,
                       after=[prev] if prev is not None else None, tags=tags)

    def commit_pending() -> None:
        nonlocal committed
        for dur, prod, degr, fault, retry in pending:
            buckets["productive"] += prod
            buckets["degraded"] += degr
            buckets["fault"] += fault
            buckets["retry"] += retry
        pending.clear()
        committed = done

    while done < config.steps:
        if counters["steps_attempted"] >= config.attempt_limit:
            truncated_reason = (
                f"gave up after {counters['steps_attempted']} step attempts "
                f"({done}/{config.steps} steps committed)")
            break
        counters["steps_attempted"] += 1
        base = seg.step_seconds
        transient_extra = 0.0
        ladders: List[int] = []
        abort = None  # (reason, FailureEvent)

        def completion_time() -> float:
            overhead = sum(
                config.retry_policy.retry_overhead_seconds(k)
                for k in ladders)
            return t + base + transient_extra + overhead

        # Absorb every failure landing before this step would complete;
        # transient ones stretch the step (which can pull in more).
        while abort is None and pending_events.time_seconds < completion_time():
            ev = pending_events
            pending_events = proc.next_failure()
            failures.append({
                "time_seconds": ev.time_seconds, "kind": ev.kind,
                "failed_attempts": (ev.failed_attempts
                                    if ev.kind == "collective_retry" else 0),
                "during_outage": False,
            })
            if ev.kind == "transient_straggler":
                counters["transient_stragglers"] += 1
                transient_extra += seg.straggler_extra_seconds
            elif ev.kind == "collective_retry":
                if config.retry_policy.exhausted_by(ev.failed_attempts):
                    counters["retry_exhaustions"] += 1
                    abort = ("retry_exhausted", ev)
                else:
                    counters["retry_ladders"] += 1
                    counters["retry_attempts"] += ev.failed_attempts
                    ladders.append(ev.failed_attempts)
            else:
                counters["node_losses"] += 1
                abort = ("node_loss", ev)

        if abort is None:
            # Retry ladders first (the gradient sync that stalled), then
            # the step's compute span; both chained on the timeline.
            retry_overhead = 0.0
            for i, attempts in enumerate(ladders):
                events = sim.run_collective(
                    [0], "dp", 0.0, f"retry:step{done}.{i}",
                    after={0: [prev]} if prev is not None else None,
                    failed_attempts=attempts,
                    retry_policy=config.retry_policy)
                prev = events[0]
                retry_overhead += (
                    config.retry_policy.retry_overhead_seconds(attempts))
            tags = ("step",)
            # A replanned fleet is normally slower than the ideal one,
            # but never let a surprisingly fast replan make the split
            # negative: productive is capped at the ideal rate.
            degraded_extra = max(base - ideal_step, 0.0)
            productive = base - degraded_extra
            if capacity < job.ngpu:
                tags += ("degraded",)
            if transient_extra > 0:
                tags += ("transient_fault",)
            emit("compute", base + transient_extra, f"step:{done}",
                 "compute", tags)
            t = completion_time()
            pending.append((base + transient_extra + retry_overhead,
                            productive, degraded_extra, transient_extra,
                            retry_overhead))
            done += 1
            if (interval is not None and done < config.steps
                    and done - committed >= interval):
                emit("io", seg.checkpoint_write_seconds,
                     f"checkpoint:{done}", "io", ("checkpoint",))
                buckets["checkpoint"] += seg.checkpoint_write_seconds
                counters["checkpoints"] += 1
                t += seg.checkpoint_write_seconds
                commit_pending()
            continue

        # ---- abort path -------------------------------------------------
        reason, ev = abort
        lost_partial = min(max(ev.time_seconds - t, 0.0),
                           completion_time() - t)
        if lost_partial > 0:
            emit("compute", lost_partial, f"step:{done}", "compute",
                 ("step", "rework"))
            t += lost_partial
        buckets["rework"] += lost_partial + sum(p[0] for p in pending)
        pending.clear()
        done = committed
        emit("io", 0.0, f"failure:{reason}", "marker", ("failure", reason))

        if reason == "node_loss":
            if config.elastic:
                new_capacity = capacity - cluster.gpus_per_node
                try:
                    seg = segment_for(new_capacity)
                except ValueError:
                    truncated_reason = (
                        f"no feasible plan at {new_capacity} GPUs")
                    break
                capacity = new_capacity
                counters["replans"] += 1
                emit("io", 0.0, f"replan:{seg.plan.parallel.world_size}gpu",
                     "marker", ("replan",))
                segment_log.append(dict(seg.to_dict(), from_seconds=t))
            else:
                emit("io", config.replacement_seconds, "wait:replacement",
                     "io", ("waiting",))
                buckets["waiting"] += config.replacement_seconds
                t += config.replacement_seconds

        emit("io", config.restart_overhead_seconds,
             f"restart:{counters['restarts']}", "io", ("restart",))
        buckets["restart"] += config.restart_overhead_seconds
        t += config.restart_overhead_seconds
        if committed > 0:
            emit("io", seg.checkpoint_read_seconds,
                 f"restore:step{committed}", "io", ("restart", "restore"))
            buckets["restart"] += seg.checkpoint_read_seconds
            t += seg.checkpoint_read_seconds
        counters["restarts"] += 1

        # Failures that arrived while the fleet was already down coalesce
        # into this outage: nothing was training (no work to lose) and
        # repairs proceed in parallel.  Node losses still shrink an
        # elastic fleet; transient faults during downtime are no-ops.
        while (truncated_reason is None
               and pending_events.time_seconds < t):
            ev = pending_events
            pending_events = proc.next_failure()
            failures.append({
                "time_seconds": ev.time_seconds, "kind": ev.kind,
                "failed_attempts": (ev.failed_attempts
                                    if ev.kind == "collective_retry" else 0),
                "during_outage": True,
            })
            if ev.kind != "node_loss":
                continue
            counters["node_losses"] += 1
            if not config.elastic:
                continue
            new_capacity = capacity - cluster.gpus_per_node
            try:
                seg = segment_for(new_capacity)
            except ValueError:
                truncated_reason = (
                    f"no feasible plan at {new_capacity} GPUs")
                break
            capacity = new_capacity
            counters["replans"] += 1
            emit("io", 0.0, f"replan:{seg.plan.parallel.world_size}gpu",
                 "marker", ("replan",))
            segment_log.append(dict(seg.to_dict(), from_seconds=t))
        if truncated_reason is not None:
            break

    completed = done >= config.steps
    if completed:
        # Run end materialises the final state: commit the tail steps.
        commit_pending()
    else:
        # Truncated with work in flight: account it as rework.
        buckets["rework"] += sum(p[0] for p in pending)
        pending.clear()

    result = RunResult(
        config=config,
        initial_plan=initial_plan,
        tokens_per_step=job.tokens_per_step,
        ideal_step_seconds=ideal_step,
        interval_steps=interval,
        steps_completed=committed,
        completed=completed,
        truncated_reason=truncated_reason,
        elapsed_seconds=t,
        buckets=buckets,
        counters=counters,
        failures=failures,
        segments=segment_log,
        sim=sim,
    )
    if metrics is not None:
        gauges = metrics.gauge(
            "run.seconds", unit="s",
            description="run wall-clock, by accounting bucket")
        for name, value in buckets.items():
            gauges.set(value, bucket=name)
        gauges.set(t, bucket="elapsed")
        metrics.gauge(
            "run.goodput_fraction", unit="ratio",
            description="committed work at the ideal rate over elapsed",
        ).set(result.goodput_fraction)
        fail_counter = metrics.counter(
            "run.failures", description="failure arrivals applied, by kind")
        for row in failures:
            fail_counter.inc(kind=row["kind"])
    return result
