"""Checkpoint/restart policies and checkpoint cost pricing.

A policy answers one question: *after how many steps should the run pay
for a checkpoint?*  Its inputs are the three quantities the classical
analysis needs — healthy step time, checkpoint write time, and fleet
MTBF — and its output is an interval in whole steps (or ``None`` for the
no-checkpoint baseline).

The checkpoint write itself is priced from first principles rather than
assumed: the payload is the training state the run must persist to
resume exactly (:func:`repro.model.memory.training_state_bytes` — BF16
weights plus full Adam state), sharded evenly across the nodes doing the
writing, against the per-node checkpoint bandwidth of the cluster
(:meth:`repro.hardware.cluster.ClusterSpec.checkpoint_bandwidth_per_node`).

:class:`YoungDaly` implements the classical optimum
``W_opt = sqrt(2 * C * MTBF)`` (Young 1974, Daly 2006): checkpoint when
the expected rework saved equals the checkpoint cost paid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

from repro.hardware.cluster import ClusterSpec
from repro.model.config import TextModelConfig
from repro.model.memory import training_state_bytes


def checkpoint_bytes(model: TextModelConfig) -> float:
    """Global checkpoint payload in bytes (weights + optimizer state)."""
    return training_state_bytes(model)


def shard_transfer_seconds(
    payload_bytes: float, nodes: int, bandwidth_per_node: float,
    what: str = "checkpoint bandwidth",
) -> float:
    """Wall seconds to move ``payload_bytes`` sharded over ``nodes``
    writers/readers at ``bandwidth_per_node`` each.

    Degenerate inputs are handled explicitly: an empty payload costs
    exactly ``0.0`` seconds (and never touches the bandwidth), while a
    zero or negative bandwidth is a configuration error reported as a
    ``ValueError`` naming the offending quantity — not a bare
    ``ZeroDivisionError`` from deep inside the pricing.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if payload_bytes == 0:
        return 0.0
    if bandwidth_per_node <= 0:
        raise ValueError(
            f"{what} must be > 0 bytes/s (got {bandwidth_per_node!r}); "
            "check the cluster's link and storage bandwidths")
    return payload_bytes / nodes / bandwidth_per_node


def checkpoint_write_seconds(
    model: TextModelConfig, cluster: ClusterSpec, ngpu: int,
    payload_bytes: Optional[float] = None,
) -> float:
    """Seconds to persist one checkpoint from an ``ngpu``-GPU fleet.

    The state is sharded across the fleet (every rank owns a disjoint
    optimizer shard under ZeRO), so all nodes write their share in
    parallel and the wall time is the per-node share over the per-node
    checkpoint bandwidth.  ``payload_bytes`` overrides the model-derived
    payload (used by tests and by incremental-checkpoint what-ifs).
    """
    if ngpu < 1:
        raise ValueError("ngpu must be >= 1")
    if payload_bytes is None:
        payload_bytes = checkpoint_bytes(model)
    nodes = max(ngpu // cluster.gpus_per_node, 1)
    return shard_transfer_seconds(
        payload_bytes, nodes, cluster.checkpoint_bandwidth_per_node())


def checkpoint_read_seconds(
    model: TextModelConfig, cluster: ClusterSpec, ngpu: int,
    payload_bytes: Optional[float] = None,
) -> float:
    """Seconds to restore a checkpoint onto an ``ngpu``-GPU fleet.

    Symmetric to the write: every node pulls its shard in parallel.  A
    shrunken fleet reads the same global payload over fewer nodes, so
    restores get slower as capacity is lost — which the elastic-replan
    path in :mod:`repro.resilience.run` prices per segment.
    """
    return checkpoint_write_seconds(model, cluster, ngpu,
                                    payload_bytes=payload_bytes)


@dataclass(frozen=True)
class NoCheckpoint:
    """Baseline: never checkpoint; any failure restarts from step 0."""

    kind_label = "none"

    def interval_steps(
        self, step_seconds: float, checkpoint_seconds: float,
        mtbf_seconds: float,
    ) -> Optional[int]:
        return None

    def describe(self) -> str:
        return "no checkpoints (restart from scratch on failure)"

    def to_dict(self) -> dict:
        return {"kind": self.kind_label}


@dataclass(frozen=True)
class FixedInterval:
    """Checkpoint every ``every_steps`` steps, MTBF-blind."""

    every_steps: int

    kind_label = "fixed"

    def __post_init__(self) -> None:
        if self.every_steps < 1:
            raise ValueError("every_steps must be >= 1")

    def interval_steps(
        self, step_seconds: float, checkpoint_seconds: float,
        mtbf_seconds: float,
    ) -> Optional[int]:
        return self.every_steps

    def describe(self) -> str:
        return f"fixed interval: every {self.every_steps} steps"

    def to_dict(self) -> dict:
        return {"kind": self.kind_label, "every_steps": self.every_steps}


@dataclass(frozen=True)
class YoungDaly:
    """Young/Daly-optimal interval: ``W_opt = sqrt(2 * C * MTBF)``.

    ``W_opt`` is the optimal amount of *work* between checkpoints; the
    policy rounds it to whole steps (at least one).  Checkpointing more
    often wastes write time; less often wastes expected rework — the
    optimum balances the two, which is exactly what the acceptance test
    in ``tests/test_resilience_run.py`` pins against both extremes.
    """

    kind_label = "young_daly"

    def interval_steps(
        self, step_seconds: float, checkpoint_seconds: float,
        mtbf_seconds: float,
    ) -> Optional[int]:
        if step_seconds <= 0:
            raise ValueError("step_seconds must be > 0")
        if checkpoint_seconds < 0 or mtbf_seconds <= 0:
            raise ValueError(
                "need checkpoint_seconds >= 0 and mtbf_seconds > 0")
        w_opt = math.sqrt(2.0 * checkpoint_seconds * mtbf_seconds)
        return max(1, round(w_opt / step_seconds))

    def describe(self) -> str:
        return "Young/Daly-optimal interval: sqrt(2 * C * MTBF)"

    def to_dict(self) -> dict:
        return {"kind": self.kind_label}


CheckpointPolicy = Union[NoCheckpoint, FixedInterval, YoungDaly]


def parse_policy(spec: str) -> CheckpointPolicy:
    """Parse a CLI policy spec: ``none``, ``young-daly``, ``fixed:N``, or
    ``tiered:...`` (see :func:`repro.resilience.tiers.parse_tiered_policy`
    for the tiered grammar).

    Raises ``ValueError`` with a usage hint on any malformed spec.
    """
    head, _, rest = spec.partition(":")
    head = head.strip()
    if head == "none":
        return NoCheckpoint()
    if head in ("young-daly", "young_daly"):
        return YoungDaly()
    if head == "fixed":
        try:
            return FixedInterval(every_steps=int(rest.strip()))
        except ValueError:
            raise ValueError(
                f"bad fixed-interval policy {spec!r}; expected fixed:<steps>"
            ) from None
    if head == "tiered":
        # Local import: tiers builds on this module's pricing helpers.
        from repro.resilience.tiers import parse_tiered_policy
        return parse_tiered_policy(spec)
    raise ValueError(
        f"unknown policy {spec!r}; choose none | young-daly | "
        "fixed:<steps> | tiered:...")
