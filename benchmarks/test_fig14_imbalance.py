"""Figure 14 / Section 7.3.2: fleet-wide compute-time distribution under
the document mask, long-context 4D training.

Paper measurements on 8K GPUs: slowest/fastest total compute 1.44x, the
gap entirely in attention kernels; CP exposed latency 7.64% of elapsed, of
which 65.75% waits for the slowest CP rank; overlap-based CP algorithms
could recover at most 2.62%.
"""

import numpy as np

from repro.cp.imbalance import simulate_fleet_imbalance
from repro.hardware.cluster import grand_teton

CLUSTER = grand_teton(8192)


def _simulate():
    return simulate_fleet_imbalance(
        CLUSTER, seq=131072, cp=16, n_dp_groups=64, steps=8,
        mean_doc_len=32768.0, rng=np.random.default_rng(0),
    )


def test_fig14_fleet_imbalance(report, benchmark):
    rep = _simulate()

    sorted_compute = np.sort(rep.compute_seconds)
    sorted_attn = np.sort(rep.attention_seconds)
    n = len(sorted_compute)
    pct = lambda arr, q: arr[int(q * (n - 1))]

    report.line("Figure 14: per-GPU time distributions "
                "(1024 GPUs, cp=16, seq 131K, heavy-tailed documents)")
    report.table(
        ["metric", "p0", "p25", "p50", "p75", "p100"],
        [
            ("total compute (norm)",) + tuple(
                f"{pct(sorted_compute, q) / sorted_compute[-1]:.3f}"
                for q in (0, 0.25, 0.5, 0.75, 1.0)),
            ("attention kernels (norm)",) + tuple(
                f"{pct(sorted_attn, q) / sorted_attn[-1]:.3f}"
                for q in (0, 0.25, 0.5, 0.75, 1.0)),
        ],
    )
    report.line()
    rows = [
        ("slowest/fastest total compute",
         f"{rep.slowest_over_fastest_compute:.2f}x", "1.44x"),
        ("CP exposed latency share",
         f"{rep.cp_exposed_fraction * 100:.2f}%", "7.64%"),
        ("waiting share of exposed",
         f"{rep.waiting_fraction_of_exposed * 100:.1f}%", "65.75%"),
        ("overlap-CP headroom",
         f"{rep.overlap_headroom * 100:.2f}%", "<= 2.62%"),
    ]
    report.table(["statistic", "ours", "paper"], rows)

    # Shape claims.
    assert rep.slowest_over_fastest_compute > 1.15
    assert 0.04 < rep.cp_exposed_fraction < 0.12
    assert rep.waiting_fraction_of_exposed > 0.4
    assert rep.overlap_headroom < 0.05
    # The compute gap is attention-driven: attention spread exceeds the
    # total-compute spread (Figure 14b vs 14a).
    assert rep.slowest_over_fastest_attention > \
        rep.slowest_over_fastest_compute

    benchmark.pedantic(_simulate, rounds=1, iterations=1)
