"""Expert-parallelism smoke benchmarks: the MoE all-to-all at scale.

Two measurements back the EP path (see docs/moe.md):

1. **131K-rank all-to-all rounds** — the full world partitioned into
   EP groups of 8, every group running its dispatch/combine pair on the
   dedicated ``ep`` stream, at a pinned events/sec floor.  Exercises
   the batched per-rank collective accounting across many small groups
   (the EP shape) rather than one world-spanning group.
2. **Folded-replica EP step** — a full MoE ``simulate_step`` at the
   paper's headline scale (131,072 ranks): the DP replicas fold, the
   EP all-to-alls land on their own stream, and the wall-clock stays
   interactive.

Writes ``benchmarks/results/BENCH_ep.json`` (events/sec, elapsed,
step numbers) for the CI ``ep-smoke`` job to upload; the pinned floors
fail the job on a regression.
"""

import json
import pathlib
import time

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.parallel.config import JobConfig, ParallelConfig
from repro.sim.engine import Simulator
from repro.train.step import simulate_step

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_ep.json"
_BENCH: dict = {}

WORLD = 131_072
EP = 8

#: Pinned floors/ceilings (generous vs observed local rates so cold CI
#: runners pass, tight enough that losing the batched collective path
#: or replica folding fails).
FLOOR_A2A_EPS = 100_000.0
CEIL_STEP_SECONDS = 20.0


def test_131k_rank_all_to_all(report):
    """Dispatch + combine for every EP group in a 131K-rank world."""
    rounds = 2  # one dispatch + one combine
    sim = Simulator()
    t0 = time.perf_counter()
    for tag in ("dispatch", "combine"):
        for g0 in range(0, WORLD, EP):
            sim.run_collective(list(range(g0, g0 + EP)), "ep", 0.002,
                               f"ep:{tag}:{g0}")
    elapsed = time.perf_counter() - t0
    n_events = WORLD * rounds
    eps = n_events / elapsed

    _BENCH["all_to_all_131k"] = {
        "world": WORLD, "ep": EP, "groups": WORLD // EP,
        "rounds": rounds, "n_events": n_events,
        "events_per_second": round(eps),
        "elapsed_seconds": round(elapsed, 3),
        "floor_events_per_second": FLOOR_A2A_EPS,
    }
    report.line(f"131K-rank EP all-to-all: {WORLD // EP:,} groups of "
                f"{EP}, dispatch + combine")
    report.table(
        ["world", "groups", "events", "elapsed s", "events/sec"],
        [(f"{WORLD:,}", f"{WORLD // EP:,}", f"{n_events:,}",
          f"{elapsed:.2f}", f"{eps:,.0f}")],
    )
    report.line()

    assert len(sim.events) == n_events
    assert eps >= FLOOR_A2A_EPS, (
        f"{eps:,.0f} EP-collective events/sec at 131K ranks "
        f"(floor {FLOOR_A2A_EPS:,.0f})")


def test_folded_ep_step_131k(report):
    """End-to-end MoE step at 131,072 ranks via replica folding."""
    model = LLAMA3_8B.moe_variant(EP)
    par = ParallelConfig(tp=2, cp=1, ep=EP, pp=16,
                         dp=WORLD // (2 * EP * 16))
    job = JobConfig(seq=4096, gbs=par.dp * EP * 8, ngpu=WORLD)

    t0 = time.perf_counter()
    rep = simulate_step(model, par, job, grand_teton(WORLD))
    elapsed = time.perf_counter() - t0
    ep_events = [e for e in rep.execution.sim.events if e.stream == "ep"]

    _BENCH["folded_ep_step_131k"] = {
        "world": WORLD, "parallel": par.describe(),
        "n_events": len(rep.execution.sim.events),
        "n_ep_events": len(ep_events),
        "elapsed_seconds": round(elapsed, 3),
        "step_seconds": round(rep.step_seconds, 4),
        "tflops_per_gpu": round(rep.tflops_per_gpu, 1),
        "dropped_token_fraction": rep.dropped_token_fraction,
        "ceil_elapsed_seconds": CEIL_STEP_SECONDS,
    }
    report.line(f"Folded EP step: {model.name} on {WORLD:,} ranks "
                f"({par.describe()})")
    report.table(
        ["events", "ep events", "elapsed s", "step s", "TFLOPs/GPU"],
        [(f"{len(rep.execution.sim.events):,}", f"{len(ep_events):,}",
          f"{elapsed:.2f}", f"{rep.step_seconds:.3f}",
          f"{rep.tflops_per_gpu:.0f}")],
    )
    report.line()

    assert ep_events, "no events landed on the ep stream"
    assert any(e.name.startswith("ep:dispatch:") for e in ep_events)
    assert any(e.name.startswith("ep:combine:") for e in ep_events)
    assert rep.step_seconds > 0 and rep.tflops_per_gpu > 0
    assert elapsed <= CEIL_STEP_SECONDS, (
        f"131K-rank MoE step took {elapsed:.1f}s to simulate "
        f"(ceiling {CEIL_STEP_SECONDS:.0f}s)")


def test_write_bench_json(report):
    """Persist machine-readable results for the CI artifact upload.

    Runs last (file order) so earlier tests have populated _BENCH."""
    assert _BENCH, "benchmark sections did not run"
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(_BENCH, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    report.line(f"machine-readable results -> {BENCH_JSON.name}")
