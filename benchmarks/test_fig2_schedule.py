"""Figure 2: the interleaved 1F1B schedule — 6 layers on 3 PP ranks with
v=2 virtual stages and 6 micro-batches in 2 rounds of nc=3.

Renders the per-rank op sequence (the paper draws the same structure as a
timeline) and checks the interleaved layer placement and warm-up depths.
"""

from repro.pp.analysis import ScheduleShape, warmup_microbatches
from repro.pp.schedule import OpKind, build_flexible_schedule

SHAPE = ScheduleShape(pp=3, v=2, nc=3, nmb=6)


def test_fig2_schedule(report, benchmark):
    sched = benchmark(build_flexible_schedule, SHAPE)

    report.line("Figure 2: interleaved 1F1B, pp=3, v=2, nc=3, nmb=6")
    report.line()
    for ppr in range(SHAPE.pp):
        ops = " ".join(
            f"{op.kind.value}{op.microbatch}@s{op.global_stage(SHAPE.pp)}"
            for op in sched.program(ppr)
        )
        report.line(f"rank {ppr}: {ops}")
    report.line()
    rows = []
    for ppr in range(SHAPE.pp):
        w = warmup_microbatches(SHAPE.pp, ppr, SHAPE.v, SHAPE.nc)
        first_bwd = next(
            i for i, op in enumerate(sched.program(ppr))
            if op.kind is OpKind.BACKWARD
        )
        rows.append((ppr, w, first_bwd))
        assert first_bwd == min(w + 1, SHAPE.tmb)
    report.table(["rank", "warmup (paper formula)", "first backward at op"],
                 rows)

    # Interleaved placement: rank 0 hosts layers/stages 0 and 3, etc.
    for ppr in range(SHAPE.pp):
        stages = {op.global_stage(SHAPE.pp) for op in sched.program(ppr)}
        assert stages == {ppr, ppr + SHAPE.pp}
