"""Section 7.3: end-to-end 405B training throughput on 16K GPUs.

Paper: 400 TFLOPs/GPU at 8K sequence length (3D parallelism) and 380
TFLOPs/GPU at 131K (4D with cp=16); PP bubble ratio 5% at bs = 2*pp and
12% at bs = pp; each GPU rank in the long-context phase still sees an
8K-token slice.
"""

import json
import pathlib

from repro.hardware.cluster import GRAND_TETON_16K
from repro.model.config import LLAMA3_405B
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.train.step import simulate_step

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

PAR_8K = ParallelConfig(tp=8, cp=1, pp=16, dp=128, zero=ZeroStage.ZERO_2)
JOB_8K = JobConfig(seq=8192, gbs=2048, ngpu=16384)
PAR_131K = ParallelConfig(tp=8, cp=16, pp=16, dp=8, zero=ZeroStage.ZERO_2)
JOB_131K = JobConfig(seq=131072, gbs=128, ngpu=16384)

#: Section 7.3.2's measured slowest/mean attention ratio at 131K.
STRAGGLER_131K = 1.44


def _bench_row(rep) -> dict:
    """One phase's machine-readable perf numbers for BENCH_step.json."""
    comm = rep.run.per_rank_comm or ()
    exposed_p2p = max(
        (d.get("exposed_p2p", 0.0) for d in comm), default=0.0)
    return {
        "tflops_per_gpu": rep.tflops_per_gpu,
        "mfu": rep.mfu,
        "bubble_ratio": rep.mean_bubble_ratio,
        "exposed_comm_fraction":
            (exposed_p2p + rep.exposed_fsdp_seconds) / rep.step_seconds,
        "step_seconds": rep.step_seconds,
    }


def test_e2e_throughput(report, benchmark):
    r8 = simulate_step(LLAMA3_405B, PAR_8K, JOB_8K, GRAND_TETON_16K)
    r131 = simulate_step(LLAMA3_405B, PAR_131K, JOB_131K, GRAND_TETON_16K,
                         attention_straggler=STRAGGLER_131K)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_step.json").write_text(json.dumps(
        {"phase_8k": _bench_row(r8), "phase_131k": _bench_row(r131)},
        indent=2, sort_keys=True) + "\n")

    report.line("Section 7.3: end-to-end 405B throughput on 16,384 GPUs")
    report.table(
        ["phase", "TFLOPs/GPU (paper)", "TFLOPs/GPU (ours)",
         "bubble", "max mem GiB", "step s"],
        [
            ("8K, 3D (tp8/pp16/dp128)", 400, f"{r8.tflops_per_gpu:.0f}",
             f"{r8.mean_bubble_ratio:.3f}",
             f"{r8.max_peak_memory_gb:.1f}", f"{r8.step_seconds:.2f}"),
            ("131K, 4D (tp8/cp16/pp16/dp8)", 380,
             f"{r131.tflops_per_gpu:.0f}",
             f"{r131.mean_bubble_ratio:.3f}",
             f"{r131.max_peak_memory_gb:.1f}", f"{r131.step_seconds:.2f}"),
        ],
    )

    assert 360 < r8.tflops_per_gpu < 460
    assert 340 < r131.tflops_per_gpu < 440
    assert r131.tflops_per_gpu < r8.tflops_per_gpu
    assert r8.max_peak_memory_gb < 80 and r131.max_peak_memory_gb < 80

    # Per-rank token slice at 131K with cp=16 is 8K, like the base phase.
    assert JOB_131K.seq // PAR_131K.cp == JOB_8K.seq

    benchmark.pedantic(
        simulate_step, args=(LLAMA3_405B, PAR_8K, JOB_8K, GRAND_TETON_16K),
        rounds=1, iterations=1,
    )


def test_bubble_ratio_vs_batch(report):
    """Section 7.3.1: 5% bubble at bs = 2*pp, 12% at bs = pp."""
    r_bs_pp = simulate_step(LLAMA3_405B, PAR_8K, JOB_8K, GRAND_TETON_16K)
    par2 = ParallelConfig(tp=8, cp=1, pp=16, dp=64, zero=ZeroStage.ZERO_1)
    job2 = JobConfig(seq=8192, gbs=2048, ngpu=8192)
    r_bs_2pp = simulate_step(LLAMA3_405B, par2, job2, GRAND_TETON_16K)

    report.line()
    report.line("Section 7.3.1: bubble ratio vs batch size")
    report.table(
        ["config", "bubble (ours)", "paper"],
        [
            ("bs = pp = 16", f"{r_bs_pp.mean_bubble_ratio:.3f}", "0.12"),
            ("bs = 2*pp = 32", f"{r_bs_2pp.mean_bubble_ratio:.3f}", "0.05"),
        ],
    )
    assert 0.08 < r_bs_pp.mean_bubble_ratio < 0.20
    assert 0.03 < r_bs_2pp.mean_bubble_ratio < 0.11
    assert r_bs_2pp.mean_bubble_ratio < r_bs_pp.mean_bubble_ratio
