"""Table 2: parallelism dimensions for Llama 3 405B on 16K GPUs.

Paper values:

    seq      gbs  | TP  CP  PP   DP
    8,192   2048  |  8   1  16  128
    131,072  128  |  8  16  16    8
"""

from repro.hardware.cluster import GRAND_TETON_16K
from repro.model.config import LLAMA3_405B
from repro.parallel.config import (
    LLAMA3_405B_LONG_CONTEXT,
    LLAMA3_405B_SHORT_CONTEXT,
)
from repro.parallel.planner import plan_parallelism

PAPER_ROWS = {
    8192: (8, 1, 16, 128),
    131072: (8, 16, 16, 8),
}


def test_table2(report, benchmark):
    plans = {}
    for job in (LLAMA3_405B_SHORT_CONTEXT, LLAMA3_405B_LONG_CONTEXT):
        plans[job.seq] = plan_parallelism(LLAMA3_405B, job, GRAND_TETON_16K)

    rows = []
    for seq, plan in plans.items():
        p = plan.parallel
        ours = (p.tp, p.cp, p.pp, p.dp)
        rows.append((seq, plan.job.gbs, *ours,
                     "OK" if ours == PAPER_ROWS[seq] else "MISMATCH"))
        assert ours == PAPER_ROWS[seq]

    report.line("Table 2: 4D parallelism sizes for 405B @ 16K GPUs")
    report.table(
        ["seq", "gbs", "TP", "CP", "PP", "DP", "vs-paper"], rows
    )
    report.line()
    for seq, plan in plans.items():
        report.line(f"--- rationale (seq={seq}) ---")
        for r in plan.rationale:
            report.line(f"  {r}")

    benchmark(
        plan_parallelism, LLAMA3_405B, LLAMA3_405B_SHORT_CONTEXT,
        GRAND_TETON_16K,
    )
