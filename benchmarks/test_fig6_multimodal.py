"""Figure 6 / Section 3.2.1: the three image-encoder sharding options.

Paper narrative: Option 2 (encoder as a serial pre-processing stage)
worked at 448 px; after the resolution moved to 672 px the encoder became
33% of combined step latency.  Option 3 (replicate the encoder on every PP
rank, shard the batch) cut it to 8%.
"""

from repro.hardware.cluster import grand_teton
from repro.model.config import (
    LLAMA3_MULTIMODAL_448,
    LLAMA3_MULTIMODAL_672,
)
from repro.pp.multimodal import (
    EncoderSharding,
    compare_layer_grouping,
    evaluate_encoder_sharding,
)

CLUSTER = grand_teton(64)
BS, PP = 16, 8


def test_fig6_encoder_sharding(report, benchmark):
    rows = []
    ratios = {}
    for mm, res in ((LLAMA3_MULTIMODAL_448, 448),
                    (LLAMA3_MULTIMODAL_672, 672)):
        for option in EncoderSharding:
            r = evaluate_encoder_sharding(mm, option, bs=BS, pp=PP,
                                          cluster=CLUSTER)
            ratios[(res, option)] = r.encoder_ratio
            rows.append((
                res, option.name,
                f"{r.encoder_seconds * 1e3:.0f}",
                f"{r.text_seconds * 1e3:.0f}",
                f"{r.comm_seconds * 1e3:.1f}",
                f"{r.encoder_ratio * 100:.1f}%",
            ))

    report.line("Figure 6: encoder sharding options "
                f"(bs={BS}, pp={PP}, 405B text stack)")
    report.table(
        ["res", "option", "encoder ms", "text ms", "comm ms",
         "encoder share"], rows,
    )
    report.line()
    report.line("paper: option 2 @672px -> ~33% encoder share; "
                "option 3 -> ~8%")

    # The paper's numbers: 33% serial at 672 px, 8% replicated.
    serial_672 = ratios[(672, EncoderSharding.ENCODER_AS_PREPROCESS)]
    replicated_672 = ratios[(672, EncoderSharding.ENCODER_REPLICATED)]
    assert 0.25 < serial_672 < 0.45
    assert 0.04 < replicated_672 < 0.12
    # The resolution change is what broke the serial options.
    assert serial_672 > ratios[(448, EncoderSharding.ENCODER_AS_PREPROCESS)]

    benchmark(
        evaluate_encoder_sharding, LLAMA3_MULTIMODAL_672,
        EncoderSharding.ENCODER_REPLICATED, BS, PP, CLUSTER,
    )


def test_layer_grouping_event_level(report):
    """The same comparison re-derived by executing both groupings'
    pipelines on the event simulator (heterogeneous stage costs, frozen
    self-attention backwards)."""
    from repro.pp.multimodal_schedule import compare_groupings_event_level

    wrapped, separate = compare_groupings_event_level(
        LLAMA3_MULTIMODAL_672, PP, BS, CLUSTER)
    report.line()
    report.line("Section 3.2.2, event-level execution:")
    report.table(
        ["grouping", "stages", "makespan s", "measured bubble",
         "rel throughput"],
        [
            (r.grouping.name, r.num_stages, f"{r.makespan:.3f}",
             f"{r.bubble_ratio:.3f}", f"{r.relative_throughput:.3f}")
            for r in (wrapped, separate)
        ],
    )
    assert wrapped.makespan < separate.makespan


def test_layer_grouping_section_322(report):
    """Section 3.2.2: wrapping n self + 1 cross per virtual stage
    (Option 1) beats separate stages despite the larger ideal bubble."""
    wrapped, separate = compare_layer_grouping(
        LLAMA3_MULTIMODAL_672, pp=PP, nmb=BS
    )
    report.line()
    report.line("Section 3.2.2: text-layer grouping")
    report.table(
        ["grouping", "stages", "v", "imbalance", "ideal bubble",
         "effective cost"],
        [
            (g.grouping.name, g.num_stages, g.v, f"{g.imbalance:.2f}",
             f"{g.ideal_bubble:.3f}", f"{g.effective_step_cost:.3f}")
            for g in (wrapped, separate)
        ],
    )
    assert wrapped.effective_step_cost < separate.effective_step_cost
