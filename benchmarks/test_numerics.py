"""Section 6.2: numerical issues in 4D parallelism.

Three results, all on real computations (numpy transformer with emulated
BF16):

1. parallel execution orders (DP sharding, TP partial sums, PP
   micro-batching) do NOT match a naive sequential run bitwise in BF16;
2. a sequential baseline forced into the parallel accumulation order
   matches the parallel code path **bitwise** — the paper's
   bug-vs-numerics discriminator;
3. FP32 gradient accumulation (the production setting) shrinks the
   order-dependence by orders of magnitude.
"""

import numpy as np

from repro.numerics.compare import bitwise_equal, relative_grad_gap
from repro.numerics.parallel_emul import (
    dp_sharded_grads,
    grads_in_order,
    pp_backward_order,
    pp_microbatch_grads,
    tp_emulated_sequential_matmul,
    tp_row_parallel_matmul,
)
from repro.numerics.precision import ALL_BF16, PRODUCTION, matmul
from repro.numerics.transformer import TinyConfig, TinyTransformer
from repro.pp.analysis import ScheduleShape
from repro.pp.schedule import build_flexible_schedule

CFG = TinyConfig()
MODEL = TinyTransformer.create(CFG, seed=1)
RNG = np.random.default_rng(2)
TOKENS = RNG.integers(0, CFG.vocab, (8, 16))
TARGETS = RNG.integers(0, CFG.vocab, (8, 16))
SCHED = build_flexible_schedule(ScheduleShape(pp=4, v=2, nc=4, nmb=8))


def test_numerics_section62(report, benchmark):
    naive16 = grads_in_order(MODEL, TOKENS, TARGETS, range(8), ALL_BF16)
    dp16 = dp_sharded_grads(MODEL, TOKENS, TARGETS, dp=4,
                            precision=ALL_BF16)
    pp16 = pp_microbatch_grads(MODEL, TOKENS, TARGETS, SCHED, ppr=1,
                               precision=ALL_BF16)
    order = pp_backward_order(SCHED, ppr=1)
    emul16 = grads_in_order(MODEL, TOKENS, TARGETS, order, ALL_BF16)

    x = RNG.standard_normal((16, 32)).astype(np.float32)
    w = RNG.standard_normal((32, 24)).astype(np.float32)
    fused = matmul(x, w, ALL_BF16)
    tp = tp_row_parallel_matmul(x, w, 4, ALL_BF16)
    tp_emul = tp_emulated_sequential_matmul(x, w, 4, ALL_BF16)

    naive32 = grads_in_order(MODEL, TOKENS, TARGETS, range(8), PRODUCTION)
    dp32 = dp_sharded_grads(MODEL, TOKENS, TARGETS, dp=4,
                            precision=PRODUCTION)

    gap16 = relative_grad_gap(naive16, dp16)
    gap32 = relative_grad_gap(naive32, dp32)

    rows = [
        ("DP(4) vs naive order, BF16 accum",
         "bitwise" if bitwise_equal(naive16, dp16) else "DIFFERS",
         f"rel gap {gap16:.2e}"),
        ("PP schedule order vs emulated-order baseline, BF16",
         "bitwise" if bitwise_equal(pp16, emul16) else "DIFFERS", ""),
        ("TP(4) partial sums vs fused GEMM, BF16",
         "bitwise" if np.array_equal(fused, tp) else "DIFFERS",
         f"max {np.abs(fused - tp).max():.2e}"),
        ("TP(4) vs emulated-order baseline, BF16",
         "bitwise" if np.array_equal(tp, tp_emul) else "DIFFERS", ""),
        ("DP(4) vs naive order, FP32 accum (production)",
         "bitwise" if bitwise_equal(naive32, dp32) else "DIFFERS",
         f"rel gap {gap32:.2e}"),
    ]
    report.line("Section 6.2: accumulation-order experiments "
                "(real numpy transformer, emulated BF16)")
    report.table(["experiment", "bitwise?", "magnitude"], rows)
    report.line()
    report.line(f"FP32 accumulation shrinks the DP order gap by "
                f"{gap16 / max(gap32, 1e-30):.0f}x")

    # Claim 1: parallel orders differ from naive sequential in BF16.
    assert not bitwise_equal(naive16, dp16)
    assert not np.array_equal(fused, tp)
    # Claim 2: emulated-order baselines match parallel bitwise.
    assert bitwise_equal(pp16, emul16)
    assert np.array_equal(tp, tp_emul)
    # Claim 3: FP32 accumulation closes the gap by >= 100x.
    assert gap32 < gap16 / 100

    benchmark(grads_in_order, MODEL, TOKENS, TARGETS, list(range(8)),
              ALL_BF16)
