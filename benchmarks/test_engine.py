"""Fast-path engine benchmarks: the scaling claim behind the simulator.

Three measurements back the fast-path rewrite of :mod:`repro.sim.engine`
(frozen pre-rewrite engine kept in ``tests/harness/reference_engine.py``):

1. **Differential throughput** on the acceptance workload — a 16-stage x
   64-microbatch pipeline replicated over 8 data-parallel replicas.  The
   reference engine replays every replica explicitly; the fast engine
   replays one replica under ``RankFold(replicas=8)`` and fans out
   lazily.  Same fanned-out timeline (asserted bitwise on the
   aggregates), >= 10x the events/sec.
2. **131K-rank collectives** — full-world synchronizing collectives at
   the paper's headline scale (128 * 1024 ranks) at a pinned events/sec
   floor, exercising the batched per-rank cost evaluation.
3. **131K-rank folded step** — the same pipeline folded 8192-ways to the
   131K-rank world: effective (fanned) event throughput with O(1)
   makespan/busy inspection.

Besides the human-readable results file, writes
``benchmarks/results/BENCH_engine.json`` (events/sec, speedup, peak RSS)
for the CI ``engine-bench`` job to upload; the pinned floors below fail
the job on a regression.
"""

import json
import pathlib
import resource
import time

from repro.sim.engine import RankFold, Simulator
from tests.harness.reference_engine import ReferenceSimulator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_engine.json"
_BENCH: dict = {}

#: The acceptance workload shape: 16 pipeline stages x 64 microbatches.
PP, NMB = 16, 64
#: Data-parallel replicas the differential benchmark fans out over.
REPLICAS = 8

#: Pinned floors (events/sec; generous vs observed local rates so cold
#: CI runners pass, tight enough that losing an optimisation layer —
#: incremental accounting, folding, batched collectives — fails).
FLOOR_SPEEDUP = 10.0
FLOOR_FANNED_EPS = 300_000.0
FLOOR_COLLECTIVE_EPS = 150_000.0
FLOOR_FOLDED_EPS = 10_000_000.0


def submit_pipeline(sim, offset: int = 0) -> int:
    """One replica's 16-stage x 64-microbatch step at rank ``offset``.

    Forward/backward chains over the stages via dependencies, a grad
    collective every 8 microbatches — the event mix the train lowering
    produces, without the lowering overhead masking engine time.
    Returns the number of events submitted.
    """
    ranks = list(range(offset, offset + PP))
    fwd = {}
    for mb in range(NMB):
        dep = None
        for s in range(PP):
            dep = sim.run(offset + s, "compute", 0.004, f"F{mb}.{s}",
                          after=[dep] if dep is not None else None)
            fwd[(mb, s)] = dep
    n_coll = 0
    for mb in range(NMB):
        dep = None
        for s in reversed(range(PP)):
            after = [fwd[(mb, s)]]
            if dep is not None:
                after.append(dep)
            dep = sim.run(offset + s, "compute", 0.008, f"B{mb}.{s}",
                          after=after)
        if (mb + 1) % 8 == 0:
            sim.run_collective(ranks, "fsdp", 0.002, f"gs{mb}")
            n_coll += 1
    sim.run_collective(ranks, "fsdp", 0.003, "final")
    n_coll += 1
    return PP * NMB * 2 + n_coll * PP


def _inspection_battery(sim, world: int) -> float:
    """Every per-rank aggregate a dashboard would pull — O(1) on the
    fast engine, O(events) scans on the reference."""
    total = sim.makespan()
    for rank in range(world):
        total += sim.makespan([rank])
        total += sim.busy_time(rank, "compute")
        total += sim.idle_time(rank, "compute")
        total += sim.now(rank, "fsdp")
    return total


def test_differential_throughput(report):
    world = REPLICAS * PP

    t0 = time.perf_counter()
    ref = ReferenceSimulator()
    for k in range(REPLICAS):
        submit_pipeline(ref, k * PP)
    ref_probe = _inspection_battery(ref, world)
    ref_elapsed = time.perf_counter() - t0
    n_events = len(ref.events)

    t0 = time.perf_counter()
    fast = Simulator(fold=RankFold(replicas=REPLICAS, stride=PP))
    submit_pipeline(fast, 0)
    fast_probe = _inspection_battery(fast, world)
    fast_elapsed = time.perf_counter() - t0

    # Same fanned-out timeline: aggregate parity is asserted here; the
    # per-field bitwise diff lives in tests/harness/test_differential.py.
    assert len(fast.events) == n_events
    assert fast.makespan() == ref.makespan()
    assert fast_probe == ref_probe

    ref_eps = n_events / ref_elapsed
    fast_eps = n_events / fast_elapsed
    speedup = fast_eps / ref_eps
    _BENCH["differential_16x64_dp8"] = {
        "pp": PP, "microbatches": NMB, "replicas": REPLICAS,
        "n_events": n_events,
        "reference_events_per_second": round(ref_eps),
        "fast_events_per_second": round(fast_eps),
        "speedup": round(speedup, 2),
        "floor_speedup": FLOOR_SPEEDUP,
        "floor_fast_events_per_second": FLOOR_FANNED_EPS,
    }
    report.line("Differential throughput: 16-stage x 64-microbatch "
                f"pipeline, {REPLICAS} DP replicas ({world} ranks)")
    report.table(
        ["engine", "events", "elapsed s", "events/sec"],
        [("reference (explicit)", f"{n_events:,}", f"{ref_elapsed:.3f}",
          f"{ref_eps:,.0f}"),
         (f"fast (fold={REPLICAS})", f"{n_events:,}",
          f"{fast_elapsed:.3f}", f"{fast_eps:,.0f}")],
    )
    report.line(f"speedup: {speedup:.1f}x (floor {FLOOR_SPEEDUP:.0f}x)")
    report.line()

    assert speedup >= FLOOR_SPEEDUP, (
        f"fast engine is only {speedup:.1f}x the reference on the "
        f"acceptance workload (floor {FLOOR_SPEEDUP:.0f}x)")
    assert fast_eps >= FLOOR_FANNED_EPS


def test_131k_rank_collectives(report):
    world = 131_072
    rounds = 4
    ranks = list(range(world))
    sim = Simulator()
    t0 = time.perf_counter()
    for i in range(rounds):
        sim.run_collective(ranks, "dp", 0.01, f"ar{i}",
                           skew={7: 1e-4} if i == 0 else None)
    elapsed = time.perf_counter() - t0
    n_events = world * rounds
    eps = n_events / elapsed

    _BENCH["collectives_131k"] = {
        "world": world, "rounds": rounds,
        "n_events": n_events,
        "events_per_second": round(eps),
        "elapsed_seconds": round(elapsed, 3),
        "floor_events_per_second": FLOOR_COLLECTIVE_EPS,
    }
    report.line(f"131K-rank collectives: {rounds} full-world rounds")
    report.table(
        ["world", "events", "elapsed s", "events/sec"],
        [(f"{world:,}", f"{n_events:,}", f"{elapsed:.2f}",
          f"{eps:,.0f}")],
    )
    report.line()

    assert len(sim.events) == n_events
    assert sim.makespan() > 0.04  # four chained 0.01 s rounds
    assert eps >= FLOOR_COLLECTIVE_EPS, (
        f"{eps:,.0f} events/sec at 131K ranks "
        f"(floor {FLOOR_COLLECTIVE_EPS:,.0f})")


def test_131k_rank_folded_step(report):
    replicas = 131_072 // PP  # 8192 DP replicas of the 16-stage pipeline
    sim = Simulator(fold=RankFold(replicas=replicas, stride=PP))
    t0 = time.perf_counter()
    base_events = submit_pipeline(sim, 0)
    makespan = sim.makespan()
    # Stage-0 ranks of four replicas: the fold symmetry is across
    # replicas (same stage), so these must answer identically.
    probes = [(r, sim.busy_time(r, "compute"), len(sim.events_for(r)))
              for r in (0, PP, 65_536, 131_056)]
    elapsed = time.perf_counter() - t0
    effective = base_events * replicas
    eps = effective / elapsed

    _BENCH["folded_step_131k"] = {
        "world": replicas * PP, "replicas": replicas,
        "base_events": base_events,
        "effective_events": effective,
        "effective_events_per_second": round(eps),
        "elapsed_seconds": round(elapsed, 3),
        "floor_effective_events_per_second": FLOOR_FOLDED_EPS,
        "ru_maxrss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1),
    }
    report.line(f"131K-rank folded step: {replicas:,} replicas x "
                f"{base_events:,} events, submitted once")
    report.table(
        ["world", "effective events", "elapsed s", "events/sec"],
        [(f"{replicas * PP:,}", f"{effective:,}", f"{elapsed:.3f}",
          f"{eps:,.0f}")],
    )
    report.line()

    assert makespan > 0
    # Every replica answers identically (symmetry is the fold contract).
    assert probes[0][1:] == probes[1][1:] == probes[2][1:] == probes[3][1:]
    assert probes[0][2] == base_events // PP
    assert eps >= FLOOR_FOLDED_EPS


def test_zero_bubble_16x64(report):
    """Build + execute the split-backward zero-bubble schedule at the
    acceptance shape (16 stages x 64 microbatches): schedule-registry
    builders and the BI/BW lowering must not erode engine throughput."""
    from repro.pp.layout import build_layout
    from repro.pp.registry import schedule_entry
    from repro.pp.schedule import ScheduleShape
    from repro.train.cost import StageCost
    from repro.train.executor import execute_pipeline

    shape = ScheduleShape(pp=PP, v=1, nc=PP, nmb=NMB)
    t0 = time.perf_counter()
    schedule = schedule_entry("zero-bubble").builder(shape)
    build_elapsed = time.perf_counter() - t0

    layout = build_layout(n_layers=PP, pp=PP, v=1)
    t0 = time.perf_counter()
    run = execute_pipeline(
        schedule, layout,
        forward_cost=lambda s: StageCost(0.004 * s.n_layers, 0.0, 0.0),
        backward_cost=lambda s: StageCost(0.008 * s.n_layers, 0.0, 0.0),
        p2p_seconds=0.0003,
    )
    exec_elapsed = time.perf_counter() - t0
    n_events = len(run.sim.events)
    n_ops = sum(len(p) for p in schedule.programs)
    eps = n_events / exec_elapsed

    _BENCH["zero_bubble_16x64"] = {
        "pp": PP, "microbatches": NMB,
        "n_ops": n_ops, "n_events": n_events,
        "build_seconds": round(build_elapsed, 4),
        "execute_seconds": round(exec_elapsed, 4),
        "events_per_second": round(eps),
        "mean_bubble_ratio": round(run.mean_bubble_ratio, 4),
    }
    report.line("Zero-bubble build+execute: 16-stage x 64-microbatch "
                "split-backward schedule")
    report.table(
        ["ops", "events", "build s", "execute s", "events/sec", "bubble"],
        [(f"{n_ops:,}", f"{n_events:,}", f"{build_elapsed:.4f}",
          f"{exec_elapsed:.4f}", f"{eps:,.0f}",
          f"{run.mean_bubble_ratio:.3f}")],
    )
    report.line()

    # F + BI + BW per (stage, microbatch): the split must be explicit.
    assert n_ops == PP * NMB * 3
    assert run.mean_bubble_ratio < 0.2  # fills the 1F1B drain at nmb=4*pp


def test_write_bench_json(report):
    """Persist machine-readable results for the CI artifact upload.

    Runs last (file order) so earlier tests have populated _BENCH."""
    assert _BENCH, "benchmark sections did not run"
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(_BENCH, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    report.line(f"machine-readable results -> {BENCH_JSON.name}")
