"""Figure 9: throughput and memory of all-forward-all-backward, 1F1B, and
flexible PP on the scaled-down 405B (26 layers, pp=4, bs=12, seq 8K).

Paper setup (Section 7.1.1): AFAB processes all 12 micro-batches at once;
1F1B processes pp=4 per round (3 rounds); flexible processes 6 per round
(2 rounds).  Expected ordering:

* TFLOPs:  AFAB >= flexible > 1F1B   (exposed P2P hurts 1F1B)
* memory:  AFAB > flexible > 1F1B    (in-flight micro-batches)
"""

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_405B_SCALED_26L
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.train.step import simulate_step

CLUSTER = grand_teton(1536)
PP, BS = 4, 12
#: 26 layers over pp=4 with v=7 stages/rank -> 28 stages, ends get 0.
V = 7
PAR = ParallelConfig(tp=8, cp=1, pp=PP, dp=48, zero=ZeroStage.ZERO_1)
JOB = JobConfig(seq=8192, gbs=48 * BS, ngpu=1536)

SCHEDULES = {
    "afab": dict(schedule_kind="afab", nc=BS),
    "1f1b": dict(schedule_kind="flexible", nc=PP),
    "flexible": dict(schedule_kind="flexible", nc=6),
}

#: P2P bandwidth-division factor modelling FSDP reduce-scatter traffic
#: congesting the pipeline's point-to-point links (Section 3.1.3) — the
#: regime where exposed P2P separates the schedules.
CONGESTION = 2.0


def _run(name):
    return simulate_step(LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER,
                         v=V, congestion=CONGESTION, **SCHEDULES[name])


def test_fig9_schedule_comparison(report, benchmark):
    results = {name: _run(name) for name in SCHEDULES}

    report.line("Figure 9: PP schedule comparison "
                "(26-layer 405B, pp=4, bs=12, seq 8K)")
    report.table(
        ["schedule", "TFLOPs/GPU", "max memory GiB", "bubble"],
        [
            (name, f"{r.tflops_per_gpu:.0f}",
             f"{r.max_peak_memory_gb:.1f}",
             f"{r.mean_bubble_ratio:.3f}")
            for name, r in results.items()
        ],
    )
    report.line()
    report.line("paper: 1F1B lowest memory AND lowest TFLOPs; AFAB highest"
                " of both; flexible in between")

    afab, f1b, flex = (results[k] for k in ("afab", "1f1b", "flexible"))
    # Throughput: 1F1B loses to both (exposed P2P); AFAB and flexible hide
    # P2P and land within a whisker of each other (the paper has AFAB
    # marginally ahead; our simulator puts flexible marginally ahead —
    # recorded as a deviation in EXPERIMENTS.md).
    assert f1b.tflops_per_gpu < flex.tflops_per_gpu
    assert f1b.tflops_per_gpu < afab.tflops_per_gpu
    assert abs(flex.tflops_per_gpu / afab.tflops_per_gpu - 1) < 0.02
    # Memory ordering: 1F1B < flexible < AFAB — Figure 9b exactly.
    assert f1b.max_peak_memory_gb < flex.max_peak_memory_gb
    assert flex.max_peak_memory_gb < afab.max_peak_memory_gb

    benchmark(_run, "flexible")
