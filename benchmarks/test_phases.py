"""Section 2.2: the multi-phase pre-training progression.

Plans and simulates the production phase sequence — short-context ramp-up,
short-context main, long-context — showing the flexibility story: only
hyperparameters change between phases; tp/pp stay fixed while dp/cp absorb
the batch and sequence changes.
"""

from repro.hardware.cluster import GRAND_TETON_16K
from repro.model.config import LLAMA3_405B
from repro.train.phases import describe_pretraining, plan_pretraining


def test_pretraining_phases(report, benchmark):
    reports = plan_pretraining(LLAMA3_405B, GRAND_TETON_16K)

    report.line("Section 2.2: Llama 3 405B pre-training phases")
    report.table(
        ["phase", "seq", "gbs", "ngpu", "tp/cp/pp/dp", "schedule",
         "TFLOPs/GPU", "mem GiB"],
        [
            (r.phase.name, r.phase.job.seq, r.phase.job.gbs,
             r.phase.job.ngpu,
             f"{r.plan.parallel.tp}/{r.plan.parallel.cp}/"
             f"{r.plan.parallel.pp}/{r.plan.parallel.dp}",
             r.plan.schedule, f"{r.tflops_per_gpu:.0f}",
             f"{r.max_memory_gb:.1f}")
            for r in reports
        ],
    )
    report.line()
    report.line(describe_pretraining(reports))

    # Model sharding (tp, pp) is invariant; dp and cp absorb the changes.
    assert len({(r.plan.parallel.tp, r.plan.parallel.pp)
                for r in reports}) == 1
    assert reports[-1].plan.parallel.cp == 16
    assert all(r.max_memory_gb < 80 for r in reports)
    assert all(r.tflops_per_gpu > 350 for r in reports)

    benchmark.pedantic(plan_pretraining, args=(LLAMA3_405B,
                                               GRAND_TETON_16K),
                       rounds=1, iterations=1)
