"""Figure 7: CP sharding under causal and document masks.

Reproduces the paper's 16-token worked example (documents [3, 3, 8, 2],
cp = 2) and quantifies the balance of the head/tail chunk pairing: exact
under a causal mask, broken by document masks.
"""

import numpy as np

from repro.cp.sharding import (
    chunk_bounds,
    naive_contiguous_workloads,
    rank_workloads,
    workload_imbalance,
)
from repro.data.documents import DocumentBatch, make_batch


def test_fig7_paper_example(report):
    """The 16-token example with document lengths [3, 3, 8, 2]."""
    batch = DocumentBatch(seq=16, doc_lens=(3, 3, 8, 2))
    report.line("Figure 7: 16 tokens, documents [3, 3, 8, 2], cp=2")
    report.line(f"chunks: {chunk_bounds(16, 2)}")
    report.line(f"attended keys per row: "
                f"{batch.attended_per_row().tolist()}")
    causal = rank_workloads(16, 2)
    doc = rank_workloads(16, 2, batch)
    report.table(
        ["rank", "causal area", "doc-mask area"],
        [(r, causal[r], doc[r]) for r in range(2)],
    )
    # The doc mask computes strictly less work than causal...
    assert sum(doc) < sum(causal)
    # ...and the causal-optimal sharding is no longer exactly balanced.
    assert causal[0] == causal[1]


def test_head_tail_balance_vs_naive(report, benchmark):
    seq, cp = 131072, 16
    paired = rank_workloads(seq, cp)
    naive = naive_contiguous_workloads(seq, cp)
    report.line()
    report.line(f"causal balance at seq={seq}, cp={cp}:")
    report.line(f"  head/tail pairing imbalance: "
                f"{workload_imbalance(paired):.4f}")
    report.line(f"  naive contiguous imbalance:  "
                f"{workload_imbalance(naive):.4f}")
    assert workload_imbalance(paired) < 1.001
    assert workload_imbalance(naive) > 1.8

    benchmark(rank_workloads, seq, cp)


def test_document_mask_imbalance_grows_with_cp(report):
    """Section 7.2's observation: static sharding vs input-dependent
    boundaries — imbalance worsens with larger cp."""
    seq = 65536
    rng = np.random.default_rng(0)
    batches = [make_batch(seq, mean_doc_len=1024.0, rng=rng)
               for _ in range(20)]
    rows = []
    means = {}
    for cp in (2, 4, 8, 16):
        imb = [workload_imbalance(rank_workloads(seq, cp, b))
               for b in batches]
        means[cp] = float(np.mean(imb))
        rows.append((cp, f"{means[cp]:.3f}", f"{max(imb):.3f}"))
    report.line()
    report.line("document-mask workload imbalance vs cp "
                f"(seq={seq}, mean doc 1K, 20 batches):")
    report.table(["cp", "mean imbalance", "max imbalance"], rows)
    assert means[16] > means[2]
