"""Section 8: hardware recommendations, quantified.

Four experiments, one per recommendation:

* HBM capacity sweep (8.1, "higher HBM capacity can improve performance")
* DVFS determinism (8.1, "minimize performance variations")
* network oversubscription (8.2, "optimize network hierarchy")
* perf/Watt (8.2, "prioritize power efficiency")
"""

import numpy as np

from repro.hardware.cluster import grand_teton
from repro.hardware.whatif import (
    dvfs_jitter_inflation,
    hbm_capacity_sweep,
    oversubscription_sweep,
    perf_per_watt,
)
from repro.model.config import LLAMA3_405B_SCALED_26L
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage

CLUSTER = grand_teton(2048)
JOB = JobConfig(seq=8192, gbs=512, ngpu=2048)


def test_hbm_capacity(report, benchmark):
    points = hbm_capacity_sweep(
        LLAMA3_405B_SCALED_26L, JOB, CLUSTER,
        capacities_gb=(24, 40, 60, 80, 120), v=7,
    )
    report.line("Section 8.1: HBM capacity sweep (2K GPUs, scaled 405B)")
    report.table(
        ["HBM GiB", "best tp", "best pp", "TFLOPs/GPU", "peak mem"],
        [
            (p.capacity_gb, p.best_tp or "-", p.best_pp or "-",
             f"{p.tflops_per_gpu:.0f}" if p.best_tp else "infeasible",
             f"{p.peak_memory_gb:.1f}" if p.best_tp else "-")
            for p in points
        ],
    )
    tflops = [p.tflops_per_gpu for p in points]
    assert all(b >= a for a, b in zip(tflops, tflops[1:]))
    # Larger HBM unlocks smaller TP (less exposed TP comm).
    feasible = [p for p in points if p.best_tp]
    assert feasible[-1].best_tp <= feasible[0].best_tp

    benchmark.pedantic(
        hbm_capacity_sweep,
        args=(LLAMA3_405B_SCALED_26L, JOB, CLUSTER, (80,)),
        kwargs={"v": 7}, rounds=1, iterations=1,
    )


def test_dvfs_determinism(report):
    report.line()
    report.line("Section 8.1: DVFS variation — elapsed-time inflation for "
                "a 2% average slowdown")
    rows = []
    prev = None
    for world in (8, 128, 2048, 16384):
        rep = dvfs_jitter_inflation(world_size=world,
                                    rng=np.random.default_rng(world))
        rows.append((world, f"{rep.deterministic_inflation * 100:.1f}%",
                     f"{rep.jitter_inflation * 100:.1f}%"))
        assert rep.jitter_inflation > rep.deterministic_inflation
        if prev is not None:
            assert rep.jitter_inflation > prev
        prev = rep.jitter_inflation
    report.table(["GPUs", "deterministic slowdown", "transient jitter"],
                 rows)
    report.line("-> the same average slowdown costs ~2% when "
                "deterministic but multiplies with fleet size when "
                "transient (fine-grain sync pays the tail)")


def test_oversubscription(report):
    par = ParallelConfig(tp=8, cp=1, pp=4, dp=64, zero=ZeroStage.ZERO_1)
    out = oversubscription_sweep(
        LLAMA3_405B_SCALED_26L, par, JOB, CLUSTER,
        factors=(1.0, 2.0, 4.0, 8.0), v=7,
    )
    report.line()
    report.line("Section 8.2: spine oversubscription (inter-node bandwidth"
                " divided; NVLink untouched)")
    report.table(
        ["oversubscription", "TFLOPs/GPU", "vs full bisection"],
        [
            (f"{f:g}x", f"{v:.0f}", f"{v / out[1.0] * 100:.1f}%")
            for f, v in out.items()
        ],
    )
    assert out[2.0] > 0.93 * out[1.0]   # mild oversubscription is cheap
    assert out[8.0] < out[2.0]          # but it is not free forever
    report.line("-> 2x oversubscription costs a few percent under the "
                "[TP,CP,PP,DP] placement; co-design the tiers with the "
                "parallelism (the paper's recommendation)")


def test_perf_per_watt(report):
    from repro.train.step import simulate_step
    par = ParallelConfig(tp=8, cp=1, pp=4, dp=64, zero=ZeroStage.ZERO_1)
    rep = simulate_step(LLAMA3_405B_SCALED_26L, par, JOB, CLUSTER, v=7)
    ppw = perf_per_watt(rep.tflops_per_gpu, CLUSTER)
    report.line()
    report.line(f"Section 8.2: achieved efficiency "
                f"{rep.tflops_per_gpu:.0f} TFLOPs at 700 W TDP = "
                f"{ppw:.2f} TFLOPs/W "
                "(the binding metric for power-capped 100K-GPU regions)")
    assert 0.3 < ppw < 1.2


def test_next_generation_parts(report):
    """Project the same workload onto H200/B200: more HBM unlocks lower
    TP (Section 8.1), but a network that stays at 50 GB/s per rank makes
    the Section 5.1 hardware ratio — and therefore 2D parallelism — even
    less attainable on B200."""
    from repro.hardware.gpu import B200, H200, H100_HBM3
    from repro.parallel.planner import (
        arithmetic_intensity_2d,
        hardware_flops_per_byte,
    )
    from repro.train.step import simulate_step

    rows = []
    results = {}
    for gpu in (H100_HBM3, H200, B200):
        cluster = grand_teton(2048, gpu)
        par = ParallelConfig(tp=4, cp=1, pp=4, dp=128,
                             zero=ZeroStage.ZERO_1)
        rep = simulate_step(LLAMA3_405B_SCALED_26L, par, JOB, cluster, v=7)
        feasible = rep.max_peak_memory_gb < gpu.hbm_capacity_gb * 0.9
        results[gpu.name] = (rep, feasible)
        rows.append((
            gpu.name, f"{gpu.hbm_capacity_gb:.0f}",
            f"{rep.tflops_per_gpu:.0f}" if feasible else "OOM",
            f"{rep.max_peak_memory_gb:.0f}",
            f"{hardware_flops_per_byte(cluster):,.0f}",
        ))
    report.line()
    report.line("Section 8 projection: tp=4 configuration across GPU "
                "generations (same 50 GB/s per-rank fabric)")
    report.table(
        ["part", "HBM GiB", "TFLOPs/GPU @tp4", "peak mem",
         "HW FLOPs/byte ratio"], rows,
    )
    # Bigger HBM gives more headroom for the tp=4 setting; B200's compute
    # shows up directly in achieved TFLOPs.
    assert results["H200"][1] and results["B200"][1]
    h100 = results["H100-HBM3"][0].tflops_per_gpu
    assert results["B200"][0].tflops_per_gpu > 1.5 * h100
    # The compute-to-network ratio worsens generation over generation,
    # strengthening the paper's 3D-over-2D argument: the 8K-token
    # arithmetic intensity stays far below the B200 hardware ratio.
    assert hardware_flops_per_byte(grand_teton(8, B200)) > \
        hardware_flops_per_byte(grand_teton(8, H100_HBM3))
    assert arithmetic_intensity_2d(8192) < \
        hardware_flops_per_byte(grand_teton(8, B200))
