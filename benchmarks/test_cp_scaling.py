"""Section 1's scalability claim: 3.89x attention latency reduction on
four GPUs compared to one, plus the O(seq) vs O(seq^2) argument of
Section 4 (communication share shrinks as sequences grow)."""

from repro.cp.perf import AttentionShape, allgather_cp_perf
from repro.hardware.cluster import grand_teton
from repro.hardware.gpu import H100_HBM3

CLUSTER = grand_teton(8, H100_HBM3)
SHAPE = AttentionShape()


def test_cp_scaling_389x(report, benchmark):
    rows = []
    speedups = {}
    for cp in (1, 2, 4, 8):
        r = allgather_cp_perf(CLUSTER, 131072, cp, SHAPE)
        speedups[cp] = r.speedup
        rows.append((cp, f"{r.total_seconds * 1e3:.2f}",
                     f"{r.speedup:.2f}x",
                     f"{r.comm_seconds * 1e6:.0f}"))
    report.line("CP attention scaling at seq 131K (causal):")
    report.table(["cp", "latency ms", "speedup vs 1 GPU", "exposed AG us"],
                 rows)
    report.line()
    report.line(f"cp=4 speedup: {speedups[4]:.2f}x (paper: 3.89x)")

    assert 3.6 < speedups[4] < 4.0
    assert speedups[2] > 1.8 and speedups[8] > 6.5

    benchmark(allgather_cp_perf, CLUSTER, 131072, 4, SHAPE)


def test_comm_share_shrinks_quadratically(report):
    """Section 4: all-gather is O(seq), attention O(seq^2), so the
    exposed-communication share of CP attention falls with seq."""
    rows = []
    shares = []
    for seq in (8192, 32768, 131072):
        r = allgather_cp_perf(CLUSTER, seq, 4, SHAPE)
        share = r.comm_seconds / r.total_seconds
        shares.append(share)
        rows.append((seq, f"{share * 100:.2f}%"))
    report.line()
    report.line("exposed AG share of CP attention time:")
    report.table(["seq", "comm share"], rows)
    assert shares[0] > shares[1] > shares[2]
