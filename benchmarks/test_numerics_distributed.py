"""Distributed-training numerics on real arrays: FSDP, TP, and staged
pipeline execution all honour the Section 6.2 bitwise contracts.

One consolidated report: which parallelisation mechanisms are
reduction-free (bitwise-exact by construction) and which reorder sums
(bitwise only against order-matched baselines).
"""

import numpy as np

from repro.numerics.compare import bitwise_equal
from repro.numerics.fsdp_emul import FsdpEmulator
from repro.numerics.hybrid import HybridDpPpTrainer
from repro.numerics.parallel_emul import grads_in_order
from repro.numerics.pipeline_emul import make_pipeline
from repro.numerics.precision import ALL_BF16, matmul
from repro.numerics.tp_emul import (
    column_parallel_linear,
    row_parallel_linear,
)
from repro.numerics.transformer import TinyConfig, TinyTransformer
from repro.parallel.config import ZeroStage
from repro.pp.analysis import ScheduleShape
from repro.pp.schedule import build_flexible_schedule

CFG = TinyConfig(n_layers=4)
RNG = np.random.default_rng(1)


def test_distributed_numerics_matrix(report, benchmark):
    tokens = RNG.integers(0, CFG.vocab, (8, 12))
    targets = RNG.integers(0, CFG.vocab, (8, 12))
    x = RNG.standard_normal((16, CFG.dim)).astype(np.float32)
    w = RNG.standard_normal((CFG.dim, CFG.dim)).astype(np.float32)

    rows = []

    # Column-parallel TP: reduction-free, bitwise.
    col_ok = np.array_equal(
        matmul(x, w, ALL_BF16), column_parallel_linear(x, w, 4, ALL_BF16))
    rows.append(("TP column-parallel GEMM", "none",
                 "bitwise" if col_ok else "DIFFERS"))

    # Row-parallel TP: cross-rank sum, not bitwise vs fused.
    row_ok = np.array_equal(
        matmul(x, w, ALL_BF16), row_parallel_linear(x, w, 4, ALL_BF16))
    rows.append(("TP row-parallel GEMM", "all-reduce",
                 "bitwise" if row_ok else "DIFFERS (expected)"))

    # Staged pipeline: exact hand-offs, bitwise vs monolithic.
    shape = ScheduleShape(pp=2, v=2, nc=2, nmb=4)
    model = TinyTransformer.create(CFG, seed=1)
    pipe = make_pipeline(model, build_flexible_schedule(shape), ALL_BF16)
    _, staged = pipe.run_step(tokens[:4], targets[:4])
    mono = grads_in_order(model, tokens[:4], targets[:4], range(4),
                          ALL_BF16)
    pipe_ok = bitwise_equal(staged, mono)
    rows.append(("pipeline staged execution", "P2P hand-off",
                 "bitwise" if pipe_ok else "DIFFERS"))

    # FSDP ZeRO stages: sharding moves bytes, never changes arithmetic.
    curves = {}
    for zero in ZeroStage:
        trainer = FsdpEmulator(model=TinyTransformer.create(CFG, seed=2),
                               dp=4, zero=zero, precision=ALL_BF16)
        curves[zero] = trainer.train(tokens, targets, steps=3)
    fsdp_ok = (curves[ZeroStage.ZERO_1] == curves[ZeroStage.ZERO_2]
               == curves[ZeroStage.ZERO_3])
    rows.append(("FSDP ZeRO-1 vs -2 vs -3 trajectories", "sharding only",
                 "bitwise" if fsdp_ok else "DIFFERS"))

    # Hybrid DP x PP trains.
    hybrid = HybridDpPpTrainer(
        model=TinyTransformer.create(CFG, seed=3),
        schedule=build_flexible_schedule(shape), dp=2,
        precision=ALL_BF16)
    losses = hybrid.train(tokens, targets, steps=4, lr=0.3)
    rows.append(("hybrid DP(2) x PP(2) training", "both",
                 f"loss {losses[0]:.2f} -> {losses[-1]:.2f}"))

    report.line("Distributed-training numerics on real arrays (BF16):")
    report.table(["mechanism", "communication", "result"], rows)

    assert col_ok and pipe_ok and fsdp_ok
    assert not row_ok  # reordered sums legitimately differ
    assert losses[-1] < losses[0]

    benchmark.pedantic(
        pipe.run_step, args=(tokens[:4], targets[:4]),
        rounds=1, iterations=1,
    )
