"""Figure 3: exposed P2P creates bubbles in 1F1B; running extra warm-up
micro-batches (nc > pp) hides them at the cost of peak memory.

We execute the same workload with nc = pp (original interleaved 1F1B) and
nc = 2*pp (flexible PP with extra warm-up micro-batches) under a
significant P2P latency, and show the flexible schedule's makespan
improves while its peak in-flight micro-batch count grows — exactly the
Figure 3 trade-off.
"""

import pytest

from repro.pp.analysis import ScheduleShape, extra_warmup_vs_interleaved
from repro.pp.grad_memory import peak_in_flight_from_schedule
from repro.pp.layout import build_layout
from repro.pp.schedule import build_flexible_schedule
from repro.train.cost import StageCost
from repro.train.executor import execute_pipeline

PP, V, NMB = 4, 3, 16
FWD, BWD, P2P = 1.0, 2.0, 0.45


def _run(nc):
    shape = ScheduleShape(pp=PP, v=V, nc=nc, nmb=NMB)
    sched = build_flexible_schedule(shape)
    layout = build_layout(PP * V, PP, V)
    run = execute_pipeline(
        sched, layout,
        lambda s: StageCost(FWD * s.n_layers, 0, 0),
        lambda s: StageCost(BWD * s.n_layers, 0, 0),
        p2p_seconds=P2P,
    )
    return sched, run


def test_fig3_extra_microbatches_hide_p2p(report, benchmark):
    rows = []
    runs = {}
    for nc in (PP, 2 * PP, 4 * PP):
        sched, run = _run(nc)
        peak = max(peak_in_flight_from_schedule(sched, r) for r in range(PP))
        rows.append((
            nc, f"{run.makespan:.1f}", f"{run.mean_bubble_ratio:.3f}",
            peak, extra_warmup_vs_interleaved(PP, V, nc),
        ))
        runs[nc] = (run, peak)

    report.line("Figure 3: exposed P2P vs extra warm-up micro-batches")
    report.line(f"(pp={PP}, v={V}, nmb={NMB}, fwd={FWD}, bwd={BWD}, "
                f"p2p={P2P})")
    report.table(
        ["nc", "makespan", "bubble", "peak in-flight", "extra warmup"],
        rows,
    )

    # The paper's claim: nc > pp reduces the exposed-P2P bubble...
    assert runs[2 * PP][0].makespan < runs[PP][0].makespan
    # ...at the cost of more in-flight warm-up micro-batches.
    assert runs[2 * PP][1] > runs[PP][1]

    benchmark(_run, 2 * PP)


def test_p2p_free_baseline_equal(report):
    """Sanity: with free P2P the schedules tie — the gap in the main
    benchmark is entirely exposed communication."""
    def makespan(nc, p2p):
        shape = ScheduleShape(pp=PP, v=V, nc=nc, nmb=NMB)
        sched = build_flexible_schedule(shape)
        layout = build_layout(PP * V, PP, V)
        return execute_pipeline(
            sched, layout,
            lambda s: StageCost(FWD * s.n_layers, 0, 0),
            lambda s: StageCost(BWD * s.n_layers, 0, 0),
            p2p_seconds=p2p,
        ).makespan

    assert makespan(PP, 0.0) == pytest.approx(makespan(2 * PP, 0.0))
    report.line("with p2p=0 the nc=pp and nc=2pp makespans tie: "
                f"{makespan(PP, 0.0):.1f}")
