"""Figure 13: all-gather CP attention vs TransformerEngine's ring-style
attention, H100 with HBM3, full causal mask.

Paper observations: (1) both exceed 95% relative HFU beyond 64K; (2) our
CP attention consistently beats TE at cp=4, by up to 13.53% at 4K-8K,
because ring attention fragments into O(cp) small kernels and pays
partial-result merges.  (TE is slightly ahead at cp=2 in the paper; our
model has CP slightly ahead there too — a recorded deviation.)
"""

from repro.cp.perf import AttentionShape, allgather_cp_perf, ring_cp_perf
from repro.hardware.cluster import grand_teton
from repro.hardware.gpu import H100_HBM3

CLUSTER = grand_teton(8, H100_HBM3)
SHAPE = AttentionShape()
SEQS = (4096, 8192, 16384, 32768, 65536, 131072)


def test_fig13_cp_vs_te(report, benchmark):
    rows = []
    hfu = {}
    for seq in SEQS:
        row = [seq]
        for cp in (2, 4):
            cp_r = allgather_cp_perf(CLUSTER, seq, cp, SHAPE)
            te_r = ring_cp_perf(CLUSTER, seq, cp, SHAPE)
            hfu[("cp", cp, seq)] = cp_r.relative_hfu
            hfu[("te", cp, seq)] = te_r.relative_hfu
            row += [f"{cp_r.relative_hfu * 100:.1f}",
                    f"{te_r.relative_hfu * 100:.1f}"]
        rows.append(tuple(row))

    report.line("Figure 13: relative HFU (%) — all-gather CP vs ring (TE)")
    report.table(
        ["seq", "cp2 CP", "cp2 TE", "cp4 CP", "cp4 TE"], rows
    )

    report.line()
    for impl, cp in (("cp", 2), ("te", 2), ("cp", 4), ("te", 4)):
        report.series(f"cp{cp} {impl.upper()}",
                      [hfu[(impl, cp, s)] * 100 for s in SEQS])

    gap_4k = hfu[("cp", 4, 4096)] - hfu[("te", 4, 4096)]
    gap_8k = hfu[("cp", 4, 8192)] - hfu[("te", 4, 8192)]
    report.line()
    report.line(f"CP advantage at cp=4: {gap_4k * 100:.1f} pts @4K, "
                f"{gap_8k * 100:.1f} pts @8K (paper: up to 13.53 pts)")

    # (1) Both >95% relative HFU beyond 64K (cp=4 TE allowed a whisker).
    for seq in (65536, 131072):
        assert hfu[("cp", 2, seq)] > 0.95
        assert hfu[("te", 2, seq)] > 0.95
        assert hfu[("cp", 4, seq)] > 0.95
        assert hfu[("te", 4, seq)] > 0.94

    # (2) CP consistently beats TE at cp=4, by ~10-20 pts at short seq.
    for seq in SEQS:
        assert hfu[("cp", 4, seq)] > hfu[("te", 4, seq)]
    assert 0.08 < max(gap_4k, gap_8k) < 0.25

    # The gap closes as sequences grow (ring becomes compute-bound).
    gap_128k = hfu[("cp", 4, 131072)] - hfu[("te", 4, 131072)]
    assert gap_128k < max(gap_4k, gap_8k) / 3

    benchmark(ring_cp_perf, CLUSTER, 8192, 4, SHAPE)
