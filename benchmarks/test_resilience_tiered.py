"""Tiered-checkpointing resilience at the paper's headline scale.

Simulates the full detect/restore machinery — correlated failure
domains, three checkpoint tiers, elastic accounting — on a 131K-rank
(128 * 1024) Llama 3 405B run.  The run simulator prices segments with
the folded fast-path engine, so a 100-step fleet simulation at 131K
ranks is sub-second; the pinned events/sec floor fails the CI job if
the tiered bookkeeping ever turns per-step work into per-rank work.

Writes ``benchmarks/results/BENCH_resilience_tiered.json`` for the CI
``resilience-smoke`` job to upload.
"""

import json
import pathlib
import time

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_405B
from repro.parallel.config import JobConfig
from repro.resilience import (
    TAXONOMY_PRESETS,
    RunConfig,
    YoungDaly,
    parse_policy,
    simulate_run,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_resilience_tiered.json"
_BENCH: dict = {}

MODEL = LLAMA3_405B
WORLD = 131_072
JOB = JobConfig(seq=8192, gbs=2048, ngpu=WORLD)
CLUSTER = grand_teton(WORLD)
STEPS = 100

#: Conservative floor (observed locally ~1,000 timeline events/sec,
#: dominated by the two folded 131K-rank step pricings).
FLOOR_EVENTS_PER_SECOND = 100.0


def _config(policy, **overrides):
    base = dict(steps=STEPS, mtbf_seconds=600.0, seed=3, elastic=False,
                replacement_seconds=300.0,
                taxonomy=TAXONOMY_PRESETS["rack-correlated"])
    base.update(overrides)
    return RunConfig(policy=policy, **base)


def test_131k_tiered_run(report):
    t0 = time.perf_counter()
    r = simulate_run(MODEL, JOB, CLUSTER,
                     _config(parse_policy("tiered:auto")))
    elapsed = time.perf_counter() - t0
    n_events = len(r.sim.events)
    eps = n_events / elapsed
    steps_per_second = r.counters["steps_attempted"] / elapsed

    _BENCH["tiered_131k"] = {
        "world": WORLD, "steps": STEPS,
        "step_seconds": round(r.segments[0]["step_seconds"], 4),
        "n_timeline_events": n_events,
        "wall_seconds": round(elapsed, 3),
        "events_per_second": round(eps),
        "steps_per_second": round(steps_per_second, 1),
        "tier_writes": dict(r.tier_writes),
        "tier_intervals": dict(r.tier_intervals),
        "goodput_fraction": round(r.goodput_fraction, 6),
        "floor_events_per_second": FLOOR_EVENTS_PER_SECOND,
    }
    report.line(f"131K-rank tiered resilient run: {STEPS} steps of 405B "
                f"on {WORLD:,} GPUs, rack-correlated taxonomy")
    report.table(
        ["world", "steps", "timeline events", "wall s", "events/sec"],
        [(f"{WORLD:,}", STEPS, n_events, f"{elapsed:.3f}",
          f"{eps:,.0f}")],
    )
    report.line(f"tier writes: {r.tier_writes}  "
                f"intervals: {r.tier_intervals}")
    report.line()

    assert r.completed
    assert r.counters["restarts"] >= 1
    assert r.tier_writes["peer"] >= r.tier_writes["remote"] >= 1
    assert eps >= FLOOR_EVENTS_PER_SECOND, (
        f"{eps:,.0f} timeline events/sec at 131K ranks "
        f"(floor {FLOOR_EVENTS_PER_SECOND:,.0f})")


def test_131k_tiered_vs_remote_only(report):
    tiered = simulate_run(MODEL, JOB, CLUSTER,
                          _config(parse_policy("tiered:auto")))
    remote = simulate_run(MODEL, JOB, CLUSTER, _config(YoungDaly()))

    # Same seed, same failure arrivals (the fixed-draw contract), so
    # the goodput delta is attributable to the checkpoint hierarchy.
    shared = min(len(tiered.failures), len(remote.failures))
    assert shared >= 1
    assert [f["time_seconds"] for f in tiered.failures[:shared]] \
        == [f["time_seconds"] for f in remote.failures[:shared]]

    _BENCH["tiered_vs_remote_131k"] = {
        "tiered_goodput": round(tiered.goodput_fraction, 6),
        "remote_only_goodput": round(remote.goodput_fraction, 6),
        "tiered_checkpoint_seconds": round(
            tiered.buckets["checkpoint"], 3),
        "remote_checkpoint_seconds": round(
            remote.buckets["checkpoint"], 3),
    }
    report.line("Tiered vs remote-only Young/Daly at 131K ranks "
                "(same seed, same failures)")
    report.table(
        ["policy", "goodput", "checkpoint s", "restart s"],
        [("tiered:auto", f"{tiered.goodput_fraction:.4f}",
          f"{tiered.buckets['checkpoint']:.1f}",
          f"{tiered.buckets['restart']:.1f}"),
         ("young-daly (remote)", f"{remote.goodput_fraction:.4f}",
          f"{remote.buckets['checkpoint']:.1f}",
          f"{remote.buckets['restart']:.1f}")],
    )
    report.line()

    assert tiered.completed and remote.completed


def test_write_bench_json(report):
    """Persist machine-readable results for the CI artifact upload.

    Runs last (file order) so earlier tests have populated _BENCH."""
    assert _BENCH, "benchmark sections did not run"
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(_BENCH, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    report.line(f"machine-readable results -> {BENCH_JSON.name}")
