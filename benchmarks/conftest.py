"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
writes the reproduced rows/series to ``benchmarks/results/<name>.txt`` (as
well as asserting the paper's qualitative claims).  pytest-benchmark's own
timing table covers the "how long does the harness take" dimension; the
scientific output lives in the results files.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class ResultWriter:
    """Accumulates lines for one experiment and writes them on close."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[str] = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers, rows) -> None:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in rows))
            for i, h in enumerate(headers)
        ]
        fmt = "  ".join(f"{{:>{w}}}" for w in widths)
        self.line(fmt.format(*headers))
        self.line(fmt.format(*("-" * w for w in widths)))
        for row in rows:
            self.line(fmt.format(*row))

    def series(self, label, values, lo=0.0, hi=100.0, width=None) -> None:
        """One named data series as a bar-per-point sparkline."""
        blocks = " ▁▂▃▄▅▆▇█"
        span = max(hi - lo, 1e-12)
        chars = "".join(
            blocks[min(int((v - lo) / span * (len(blocks) - 1)),
                       len(blocks) - 1)]
            for v in values
        )
        self.line(f"{label:>12s} |{chars}| "
                  f"{values[0]:.1f} -> {values[-1]:.1f}")

    def close(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self.lines) + "\n")


@pytest.fixture(scope="module")
def report(request):
    """Module-scoped result writer: all tests in one benchmark module
    append to the same results file, written once at module teardown."""
    name = request.module.__name__.replace("test_", "", 1)
    writer = ResultWriter(name)
    yield writer
    writer.close()


def pytest_sessionfinish(session, exitstatus):
    """Write an index of all result files at the end of a benchmark run."""
    if not RESULTS_DIR.exists():
        return
    lines = ["Benchmark results index (one file per reproduced table/figure)",
             ""]
    for path in sorted(RESULTS_DIR.glob("*.txt")):
        if path.name == "INDEX.txt":
            continue
        first = path.read_text().splitlines()[0] if path.stat().st_size \
            else ""
        lines.append(f"{path.name:32s} {first}")
    (RESULTS_DIR / "INDEX.txt").write_text("\n".join(lines) + "\n")
