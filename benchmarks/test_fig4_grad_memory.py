"""Figure 4: gradient-memory lifetime under PP schedule x FSDP ZeRO mode.

Three panels in the paper:
  (a) 1F1B + ZeRO-1 — reduce-scatter only on the last micro-batch,
      gradient memory ramps up and stays;
  (b) all-forward-all-backward — same behaviour for ZeRO-1/2, one
      reduce-scatter per virtual stage;
  (c) 1F1B + ZeRO-2 — reduce-scatter on the last consecutive micro-batch
      of every round, gradient memory saw-tooths lower.
"""

from repro.parallel.config import ZeroStage
from repro.pp.analysis import ScheduleShape
from repro.pp.grad_memory import track_memory
from repro.pp.schedule import build_afab_schedule, build_flexible_schedule

SHAPE = ScheduleShape(pp=4, v=4, nc=4, nmb=8)
SHARD = 8


def _curve(timeline, width=60):
    """Downsample the gradient-memory curve to an ASCII sparkline."""
    vals = [s.grad_bytes for s in timeline.samples]
    peak = max(vals) or 1.0
    blocks = " .:-=+*#%@"
    step = max(len(vals) // width, 1)
    return "".join(
        blocks[min(int(vals[i] / peak * (len(blocks) - 1)), len(blocks) - 1)]
        for i in range(0, len(vals), step)
    )


def test_fig4_gradient_memory(report, benchmark):
    f1b = build_flexible_schedule(SHAPE)
    # Figure 4b's AFAB runs the whole batch as one round, so each stage's
    # backwards are consecutive.
    afab = build_afab_schedule(ScheduleShape(pp=4, v=4, nc=8, nmb=8))

    panels = {
        "(a) 1F1B + ZeRO-1": track_memory(f1b, 0, ZeroStage.ZERO_1,
                                          shard_degree=SHARD),
        "(b) AFAB + ZeRO-2": track_memory(afab, 0, ZeroStage.ZERO_2,
                                          shard_degree=SHARD),
        "(c) 1F1B + ZeRO-2": track_memory(f1b, 0, ZeroStage.ZERO_2,
                                          shard_degree=SHARD),
    }

    report.line("Figure 4: gradient memory lifetime "
                f"(pp=4, v=4, nc=4, nmb=8, shard_degree={SHARD})")
    rows = []
    for name, tl in panels.items():
        rows.append((
            name, f"{tl.peak_grad_bytes:.2f}", tl.reduce_scatter_count,
        ))
        report.line()
        report.line(f"{name}  grad-memory curve:")
        report.line(f"  [{_curve(tl)}]")
    report.line()
    report.table(["panel", "peak grad (stage-units)", "reduce-scatters"],
                 rows)

    a, b, c = panels.values()
    # (a) holds every stage's unsharded gradients; one RS per stage.
    assert a.peak_grad_bytes == SHAPE.v
    assert a.reduce_scatter_count == SHAPE.v
    # (c) reshards between rounds: lower peak, rounds-times the RS count.
    assert c.peak_grad_bytes < a.peak_grad_bytes
    assert c.reduce_scatter_count == SHAPE.v * SHAPE.rounds
    # (b) AFAB backwards are consecutive per stage: one RS per stage, and
    # ZeRO-2 resharding keeps the peak below ZeRO-1's.
    assert b.reduce_scatter_count == SHAPE.v
    assert b.peak_grad_bytes < a.peak_grad_bytes

    benchmark(track_memory, f1b, 0, ZeroStage.ZERO_2)


def test_zero1_vs_zero2_communication_tradeoff(report):
    """Section 3.1.3's rule exists because ZeRO-2's memory saving costs
    reduce-scatter traffic that congests P2P at scale."""
    f1b = build_flexible_schedule(SHAPE)
    z1 = track_memory(f1b, 0, ZeroStage.ZERO_1, shard_degree=SHARD)
    z2 = track_memory(f1b, 0, ZeroStage.ZERO_2, shard_degree=SHARD)
    report.line()
    report.line(
        f"ZeRO-2 saves {z1.peak_grad_bytes - z2.peak_grad_bytes:.2f} "
        f"stage-units of gradient memory but issues "
        f"{z2.reduce_scatter_count - z1.reduce_scatter_count} extra "
        "reduce-scatters per rank per step"
    )
    assert z2.reduce_scatter_count > z1.reduce_scatter_count
