"""Figure 11: relative HFU of all-gather CP attention over single-GPU
Flash-Attention, on H100 with HBM2e.

Paper observations: (1) relative HFU rises with sequence length, reaching
~95% at 128K; (2) block-causal (document) masks sit below full causal due
to workload imbalance.
"""

import numpy as np

from repro.cp.perf import AttentionShape, allgather_cp_perf
from repro.data.documents import make_batch
from repro.hardware.cluster import grand_teton
from repro.hardware.gpu import H100_HBM2E

CLUSTER = grand_teton(8, H100_HBM2E)
SHAPE = AttentionShape()
SEQS = (4096, 8192, 16384, 32768, 65536, 131072)


def _doc(seq, seed):
    return make_batch(seq, mean_doc_len=1024.0,
                      rng=np.random.default_rng(seed))


def test_fig11_relative_hfu(report, benchmark):
    rows = []
    hfu = {}
    for seq in SEQS:
        row = [seq]
        for cp in (2, 4):
            r = allgather_cp_perf(CLUSTER, seq, cp, SHAPE)
            hfu[("causal", cp, seq)] = r.relative_hfu
            row.append(f"{r.relative_hfu * 100:.1f}")
        for cp in (2, 4):
            r = allgather_cp_perf(CLUSTER, seq, cp, SHAPE,
                                  batch=_doc(seq, seq))
            hfu[("doc", cp, seq)] = r.relative_hfu
            row.append(f"{r.relative_hfu * 100:.1f}")
        rows.append(tuple(row))

    report.line("Figure 11: relative HFU (%) of all-gather CP attention "
                "vs single-GPU flash (H100 HBM2e)")
    report.table(
        ["seq", "cp2 causal", "cp4 causal", "cp2 doc", "cp4 doc"], rows
    )
    report.line()
    for key, label in ((("causal", 2), "cp2 causal"),
                       (("causal", 4), "cp4 causal"),
                       (("doc", 2), "cp2 doc"),
                       (("doc", 4), "cp4 doc")):
        report.series(label, [hfu[(key[0], key[1], s)] * 100 for s in SEQS])
    report.line()
    report.line("paper: rises with seq to ~95% at 128K; block-causal "
                "below causal")

    # Observation 1: rising with seq, ~95% at 128K.
    causal4 = [hfu[("causal", 4, s)] for s in SEQS]
    assert all(b > a for a, b in zip(causal4, causal4[1:]))
    assert hfu[("causal", 4, 131072)] > 0.95

    # Observation 2: block-causal below causal everywhere.
    for seq in SEQS:
        for cp in (2, 4):
            assert hfu[("doc", cp, seq)] < hfu[("causal", cp, seq)]

    benchmark(allgather_cp_perf, CLUSTER, 131072, 4, SHAPE)
