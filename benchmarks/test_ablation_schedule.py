"""Ablation: the schedule design space around the paper's choices.

Uses the autotuner to sweep (schedule kind, nc, v) on the Figure 9 setup
and shows (a) the memory/throughput Pareto the paper navigates by hand,
(b) the Section 3.1.3 rule emerging from search: with ample memory the
winner hides P2P with large nc; under a tight budget the winner drops to
1F1B-like small nc.
"""

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_405B_SCALED_26L
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.pp.autotune import autotune_schedule, best_schedule

CLUSTER = grand_teton(1536)
PAR = ParallelConfig(tp=8, cp=1, pp=4, dp=48, zero=ZeroStage.ZERO_1)
JOB = JobConfig(seq=8192, gbs=576, ngpu=1536)


def test_schedule_design_space(report, benchmark):
    candidates = autotune_schedule(
        LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER, memory_budget_gb=40.0,
        congestion=2.0,
    )
    report.line("Schedule design space (scaled-down 405B, pp=4, bs=12, "
                "P2P-congested):")
    for c in candidates[:10]:
        report.line("  " + c.describe())
    report.line(f"  ... {len(candidates)} candidates total")

    # The Pareto front: more memory buys more throughput up to AFAB.
    feasible = [c for c in candidates if c.fits]
    assert feasible[0].tflops_per_gpu >= max(
        c.tflops_per_gpu for c in feasible
    )

    # Budget-dependent winners (the Section 3.1.3 trade-off, automated).
    roomy = best_schedule(LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER,
                          memory_budget_gb=40.0, congestion=2.0)
    tight = best_schedule(LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER,
                          memory_budget_gb=27.0, congestion=2.0)
    report.line()
    report.line(f"winner @40 GiB budget: {roomy.describe()}")
    report.line(f"winner @27 GiB budget: {tight.describe()}")
    assert roomy.nc >= tight.nc
    assert tight.max_memory_gb <= 27.0
    assert roomy.tflops_per_gpu >= tight.tflops_per_gpu

    benchmark.pedantic(
        best_schedule,
        args=(LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER),
        kwargs={"memory_budget_gb": 40.0},
        rounds=1, iterations=1,
    )


def test_virtual_stage_ablation(report):
    """More virtual stages shrink the ideal bubble (Section 3.1.1's
    preference for more v) but add P2P hand-offs."""
    rows = []
    results = {}
    for v in (1, 7):
        cands = autotune_schedule(
            LLAMA3_405B_SCALED_26L, PAR, JOB, CLUSTER,
            memory_budget_gb=60.0, v_candidates=(v,), congestion=2.0,
        )
        best = next(c for c in cands if c.fits)
        results[v] = best
        rows.append((v, best.schedule_kind, best.nc,
                     f"{best.tflops_per_gpu:.0f}",
                     f"{best.bubble_ratio:.3f}"))
    report.line()
    report.line("virtual-stage ablation (best schedule at each v):")
    report.table(["v", "kind", "nc", "TFLOPs/GPU", "bubble"], rows)
    assert results[7].bubble_ratio < results[1].bubble_ratio
