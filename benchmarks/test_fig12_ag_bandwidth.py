"""Figure 12: achieved inter-GPU bandwidth of the CP KV all-gather.

Paper observation: achieved bandwidth is comparable between causal and
block-causal masks (the payload is mask-independent), which pins the lower
block-causal HFU of Figure 11 on *compute imbalance*, not communication.
"""

from repro.cp.perf import AttentionShape, cp_allgather_bandwidth_gbps
from repro.hardware.cluster import grand_teton
from repro.hardware.gpu import H100_HBM2E

CLUSTER = grand_teton(8, H100_HBM2E)
SHAPE = AttentionShape()
SEQS = (4096, 8192, 16384, 32768, 65536, 131072)


def test_fig12_achieved_bandwidth(report, benchmark):
    rows = []
    bw = {}
    for seq in SEQS:
        row = [seq]
        for cp in (2, 4):
            b = cp_allgather_bandwidth_gbps(CLUSTER, seq, cp, SHAPE)
            bw[(cp, seq)] = b
            row.append(f"{b:.0f}")
        rows.append(tuple(row))

    report.line("Figure 12: achieved CP all-gather bandwidth (GB/s), "
                "identical for causal and block-causal masks")
    report.table(["seq", "cp=2", "cp=4"], rows)

    # Bandwidth ramps with message size toward (but below) NVLink rate.
    for cp in (2, 4):
        series = [bw[(cp, s)] for s in SEQS]
        assert all(b > a for a, b in zip(series, series[1:]))
        assert series[-1] < CLUSTER.intra_node_link.bandwidth_gbps
        assert series[-1] > 0.7 * CLUSTER.intra_node_link.bandwidth_gbps

    benchmark(cp_allgather_bandwidth_gbps, CLUSTER, 131072, 4, SHAPE)
