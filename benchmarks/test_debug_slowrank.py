"""Section 6.1 / Figure 8: top-down slow-rank localisation.

Reproduces the paper's worked example — 8 GPUs with (cp=2, tp=4), where
the rank that *looks* slowest inside its TP group is actually waiting on
its CP peer — and scales the search to a 512-GPU 4D mesh.
"""

import numpy as np

from repro.debug.trace_analysis import identify_slow_rank
from repro.debug.workload import WorkloadSpec, run_synthetic_workload
from repro.parallel.config import ParallelConfig
from repro.parallel.mesh import DeviceMesh


def test_figure8_example(report, benchmark):
    mesh = DeviceMesh(ParallelConfig(tp=4, cp=2))
    sim = run_synthetic_workload(mesh, slowdown={6: 0.5})
    rep = identify_slow_rank(sim, mesh)

    report.line("Figure 8 scenario: 8 GPUs, (cp=2, tp=4), rank 6 injected "
                "with +0.5s per compute op")
    report.line()
    # Show the Figure 8 signature: within rank 2's TP group, rank 2 has
    # the shortest collective spans (it joins last, blocked by its CP peer
    # rank 6) — yet the verdict is rank 6.
    tp_group = mesh.group_of(2, "tp")
    rows = []
    for r in tp_group:
        spans = [e.duration for e in sim.events_for(r, kind="comm")
                 if e.name.startswith("tp:")]
        rows.append((r, f"{sum(spans):.2f}"))
    report.line("total TP-collective span per rank of TP group "
                f"{tp_group} (shortest = joins last = looks slow):")
    report.table(["rank", "tp span (s)"], rows)
    report.line()
    report.line(rep.describe())

    assert rep.slow_rank == 6
    assert rep.attribution == "compute"
    # Rank 2 has the shortest TP spans (the decoy) ...
    decoy = min(rows, key=lambda r: float(r[1]))[0]
    assert decoy == 2
    # ... but is exonerated by the top-down search.
    assert rep.slow_rank != decoy

    benchmark(identify_slow_rank, sim, mesh)


def test_onset_detection(report):
    """Section 6.1's inflection-point framing: find *when* a rank's
    behaviour changed, not just which rank is slow now."""
    from repro.debug.inflection import (
        detect_fleet_regressions,
        synth_step_durations,
    )

    rng = np.random.default_rng(0)
    series = {r: synth_step_durations(400, noise=0.01, rng=rng)
              for r in range(16)}
    series[11] = synth_step_durations(400, noise=0.01, fault_step=250,
                                      fault_slowdown=0.12, rng=rng)
    found = detect_fleet_regressions(series)
    report.line()
    report.line("onset detection over 16 ranks x 400 steps "
                "(rank 11 throttles +12% at step 250):")
    for c in found:
        report.line(f"  rank {c.rank}: regime change at step {c.step}, "
                    f"{c.slowdown * 100:+.1f}% (score {c.score:.1f})")
    assert found and found[0].rank == 11
    assert abs(found[0].step - 250) <= 3


def test_512_gpu_localisation(report):
    mesh = DeviceMesh(ParallelConfig(tp=8, cp=2, pp=4, dp=8))
    rng = np.random.default_rng(0)
    victims = rng.choice(mesh.world_size, size=5, replace=False)
    hits = 0
    for victim in victims:
        sim = run_synthetic_workload(
            mesh, WorkloadSpec(steps=2, layers=2),
            slowdown={int(victim): 0.8},
        )
        rep = identify_slow_rank(sim, mesh)
        hits += rep.slow_rank == victim
    report.line()
    report.line(f"512-GPU 4D mesh: {hits}/5 injected faults localised "
                "exactly")
    assert hits == 5
