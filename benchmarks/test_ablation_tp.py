"""Section 8.1 ablation: TP=4 vs TP=8 on ~2K GPUs.

Paper: "In Llama 3 small scale experiments on 2K GPUs, we observed
approximately 10% end-to-end performance improvement by reducing TP size
from 8 to 4" — less TP means less fully exposed TP communication, at the
cost of higher per-rank memory (the HBM-capacity argument).
"""

from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_405B_SCALED_26L
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.train.step import simulate_step

CLUSTER = grand_teton(2048)
JOB = JobConfig(seq=8192, gbs=512, ngpu=2048)


def _run(tp):
    dp = 2048 // (tp * 4)
    par = ParallelConfig(tp=tp, cp=1, pp=4, dp=dp, zero=ZeroStage.ZERO_1)
    return simulate_step(LLAMA3_405B_SCALED_26L, par, JOB, CLUSTER, v=7)


def test_tp_ablation(report, benchmark):
    results = {tp: _run(tp) for tp in (8, 4, 2)}

    report.line("Section 8.1: TP-size ablation on 2K GPUs "
                "(scaled-down 405B, pp=4)")
    report.table(
        ["tp", "TFLOPs/GPU", "max mem GiB", "bubble"],
        [
            (tp, f"{r.tflops_per_gpu:.0f}",
             f"{r.max_peak_memory_gb:.1f}",
             f"{r.mean_bubble_ratio:.3f}")
            for tp, r in results.items()
        ],
    )

    gain = results[4].tflops_per_gpu / results[8].tflops_per_gpu - 1
    report.line()
    report.line(f"tp=4 over tp=8: {gain * 100:+.1f}% (paper: ~10%)")

    # ~10% gain, memory trade-off visible.
    assert 0.03 < gain < 0.25
    assert results[4].max_peak_memory_gb > results[8].max_peak_memory_gb
    # Only feasible if it still fits in HBM — the paper's point about
    # higher HBM capacity enlarging the search space.
    assert results[4].max_peak_memory_gb < 80

    benchmark(_run, 4)
