"""Ablation: why all-gather CP is cheap — GQA shrinks the K/V payload.

Section 4's first efficiency argument: "due to GQA, the number of KV heads
is smaller than the number of heads, resulting in smaller K and V tensors
compared to the Q tensor".  We sweep the GQA ratio at fixed model width
and measure the exposed all-gather share and relative HFU of CP attention:
with MHA-sized K/V the all-gather would cost ``gqa_ratio`` times more.
"""

from repro.cp.perf import AttentionShape, allgather_cp_perf
from repro.hardware.cluster import grand_teton
from repro.hardware.gpu import H100_HBM3

CLUSTER = grand_teton(8, H100_HBM3)
SEQ, CP = 16384, 4
HEADS, HEAD_DIM = 16, 128  # per-TP-rank shard of the 405B attention


def test_gqa_ablation(report, benchmark):
    rows = []
    results = {}
    for kv_heads in (1, 2, 4, 8, 16):
        shape = AttentionShape(heads=HEADS, kv_heads=kv_heads,
                               head_dim=HEAD_DIM)
        r = allgather_cp_perf(CLUSTER, SEQ, CP, shape)
        results[kv_heads] = r
        rows.append((
            f"{HEADS // kv_heads}:1",
            kv_heads,
            f"{r.comm_seconds * 1e6:.0f}",
            f"{r.comm_seconds / r.total_seconds * 100:.1f}%",
            f"{r.relative_hfu * 100:.1f}",
        ))

    report.line("GQA-ratio ablation for all-gather CP attention "
                f"(seq {SEQ}, cp {CP}, {HEADS} query heads per rank)")
    report.table(
        ["GQA ratio", "KV heads", "AG time us", "exposed comm share",
         "rel HFU %"], rows,
    )
    report.line()
    report.line("paper (Section 4): GQA makes K/V gqa-ratio-times smaller"
                " than Q, keeping the exposed all-gather cheap")

    # More KV heads -> linearly more all-gather time, lower relative HFU.
    ag = [results[kv].comm_seconds for kv in (1, 2, 4, 8, 16)]
    assert all(b > a for a, b in zip(ag, ag[1:]))
    # Payload grows 16x; achieved time grows somewhat less because the
    # larger message uses the link more efficiently.
    assert results[16].comm_seconds > 5 * results[1].comm_seconds
    assert results[1].relative_hfu > results[16].relative_hfu
    # At the production 16:1 ratio the exposed comm share stays small.
    share = results[1].comm_seconds / results[1].total_seconds
    assert share < 0.10

    benchmark(
        allgather_cp_perf, CLUSTER, SEQ, CP,
        AttentionShape(heads=HEADS, kv_heads=1, head_dim=HEAD_DIM),
    )
