"""Figure 10: balanced vs unbalanced pipeline parallelism.

Paper results on the scaled-down 405B (Section 7.1.2):

* removing one layer from the first and last PP stages flattens per-rank
  peak memory (max drops by ~5 GB) and improves TFLOPs by ~6.5%;
* the freed memory allows turning activation recomputation off, worth a
  further 17.5% TFLOPs.

We run the 28-layer (uniform) vs 26-layer (balanced) scaled-down models
under the same job, with and without recomputation.
"""

from repro.hardware.cluster import grand_teton
from repro.model.config import (
    LLAMA3_405B_SCALED_26L,
    LLAMA3_405B_SCALED_28L,
)
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage

from repro.train.step import simulate_step

CLUSTER = grand_teton(1536)
PAR = ParallelConfig(tp=8, cp=1, pp=4, dp=48, zero=ZeroStage.ZERO_1)
JOB = JobConfig(seq=8192, gbs=48 * 12, ngpu=1536)
V = 7  # 28 stages of <=1 layer


def _run(model, recompute):
    return simulate_step(model, PAR, JOB, CLUSTER, v=V, nc=6,
                         recompute=recompute)


def test_fig10_balanced_pp(report, benchmark):
    unbalanced_rec = _run(LLAMA3_405B_SCALED_28L, recompute=True)
    unbalanced_sel = _run(LLAMA3_405B_SCALED_28L, recompute="selective")
    unbalanced = _run(LLAMA3_405B_SCALED_28L, recompute=False)
    balanced = _run(LLAMA3_405B_SCALED_26L, recompute=False)

    report.line("Figure 10: balanced vs unbalanced PP (scaled-down 405B, "
                "pp=4, v=7, bs=12)")
    report.line()
    report.line("(a) per-rank peak memory, GiB:")
    report.table(
        ["rank"] + [f"r{r}" for r in range(PAR.pp)],
        [
            ("28L uniform",) + tuple(
                f"{m:.1f}" for m in unbalanced.per_rank_peak_memory_gb),
            ("26L balanced",) + tuple(
                f"{m:.1f}" for m in balanced.per_rank_peak_memory_gb),
        ],
    )
    report.line()
    report.line("(b) training throughput:")
    report.table(
        ["config", "TFLOPs/GPU", "max mem GiB"],
        [
            ("28L + full recompute", f"{unbalanced_rec.tflops_per_gpu:.0f}",
             f"{unbalanced_rec.max_peak_memory_gb:.1f}"),
            ("28L + selective recompute",
             f"{unbalanced_sel.tflops_per_gpu:.0f}",
             f"{unbalanced_sel.max_peak_memory_gb:.1f}"),
            ("28L, no recompute", f"{unbalanced.tflops_per_gpu:.0f}",
             f"{unbalanced.max_peak_memory_gb:.1f}"),
            ("26L balanced, no recompute", f"{balanced.tflops_per_gpu:.0f}",
             f"{balanced.max_peak_memory_gb:.1f}"),
        ],
    )
    # Selective recompute sits between full recompute and none on both
    # axes — the trade-off the production system navigates.
    assert (unbalanced_rec.tflops_per_gpu < unbalanced_sel.tflops_per_gpu
            < unbalanced.tflops_per_gpu)
    assert (unbalanced_rec.max_peak_memory_gb
            < unbalanced_sel.max_peak_memory_gb
            < unbalanced.max_peak_memory_gb)

    # Balanced placement cuts the peak across ranks by several GB.
    saving = unbalanced.max_peak_memory_gb - balanced.max_peak_memory_gb
    report.line()
    report.line(f"peak-memory saving from balance: {saving:.1f} GiB "
                "(paper: ~5 GB)")
    assert 2.0 < saving < 10.0

    # Balanced computation improves TFLOPs (paper: 6.5%).
    gain_balance = balanced.tflops_per_gpu / unbalanced.tflops_per_gpu - 1
    report.line(f"TFLOPs gain from balance: {gain_balance * 100:.1f}% "
                "(paper: 6.5%)")
    assert 0.02 < gain_balance < 0.15

    # Turning recomputation off is the larger win (paper: 17.5% with
    # selective recomputation; our model recomputes the full layer, so the
    # measured gain is larger — recorded in EXPERIMENTS.md).
    gain_recompute = (balanced.tflops_per_gpu
                      / unbalanced_rec.tflops_per_gpu - 1)
    report.line(f"TFLOPs gain of balanced/no-recompute over "
                f"uniform/recompute: {gain_recompute * 100:.1f}% "
                "(paper: 17.5%)")
    assert 0.10 < gain_recompute < 0.45

    benchmark(_run, LLAMA3_405B_SCALED_26L, False)
