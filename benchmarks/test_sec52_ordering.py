"""Section 5.2: the [TP, CP, PP, DP] parallelism ordering, quantified.

Scores every permutation of the four dimensions by total exposed
communication per step on the production long-context configuration and
confirms the paper's ordering minimises it.
"""

from repro.hardware.cluster import GRAND_TETON_16K
from repro.model.config import LLAMA3_405B
from repro.parallel.config import JobConfig, ParallelConfig, ZeroStage
from repro.parallel.ordering import (
    PAPER_ORDER,
    dimension_traffic,
    rank_orderings,
)

PAR = ParallelConfig(tp=8, cp=16, pp=16, dp=8, zero=ZeroStage.ZERO_2)
JOB = JobConfig(seq=131072, gbs=128, ngpu=16384)


def test_ordering_analysis(report, benchmark):
    traffic = dimension_traffic(LLAMA3_405B, PAR, JOB)
    report.line("Section 5.2: per-dimension communication demand "
                "(405B long-context step)")
    report.table(
        ["dim", "events/step", "MB/event", "hideable", "type"],
        [
            (d.dim, f"{d.events_per_step:.0f}",
             f"{d.bytes_per_event / 1e6:.1f}",
             "yes" if d.hideable else "no",
             "collective" if d.collective else "p2p")
            for d in traffic.values()
        ],
    )

    scores = rank_orderings(LLAMA3_405B, PAR, JOB, GRAND_TETON_16K)
    report.line()
    report.line("exposed communication per step by ordering "
                "(innermost dimension first):")
    rows = [
        ("-".join(s.order).upper(), f"{s.exposed_seconds:.2f}",
         "<- paper" if s.order == PAPER_ORDER else "")
        for s in scores[:3] + scores[-3:]
    ]
    report.table(["order", "exposed s", ""], rows)

    best = scores[0].exposed_seconds
    paper = next(s for s in scores if s.order == PAPER_ORDER)
    worst = scores[-1].exposed_seconds
    report.line()
    report.line(f"paper ordering exposed: {paper.exposed_seconds:.2f} s "
                f"(optimum {best:.2f} s, worst permutation {worst:.2f} s)")

    assert paper.exposed_seconds <= best * 1.0001
    assert worst > 2 * best
    # TP is the most communication-hungry dimension.
    assert traffic["tp"].events_per_step == max(
        t.events_per_step for t in traffic.values()
    )

    benchmark(rank_orderings, LLAMA3_405B, PAR, JOB, GRAND_TETON_16K)
