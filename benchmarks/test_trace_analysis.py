"""Streaming-ingestion and critical-path-extraction benchmarks (PR 6).

Two scaling claims behind the trace analytics subsystem:

1. The streaming aggregator ingests a **million-event** trace without
   materializing it: peak incremental heap stays under a fixed budget
   (O(streams + K), not O(events)) while sustaining a healthy event
   rate.
2. Critical-path extraction stays tractable on a deep pipeline — a
   16-stage x 64-microbatch step graph resolves in bounded wall time
   with the exact-tiling invariant intact.

Besides the human-readable results file, this module writes
``benchmarks/results/BENCH_analysis.json`` (events/sec, peak RSS) for
the CI ``analysis-smoke`` job to upload as an artifact.
"""

import json
import pathlib
import resource
import time
import tracemalloc

from repro.analysis import StreamingTraceAggregator, extract_critical_path
from repro.analysis.streaming import LightEvent, iter_trace_events
from repro.hardware.cluster import grand_teton
from repro.model.config import LLAMA3_8B
from repro.parallel.config import JobConfig, ParallelConfig
from repro.train.step import simulate_step

N_EVENTS = 1_000_000
#: Peak *incremental* heap budget for the 1M-event ingest.  The
#: aggregator keeps ~dozens of per-(stream, kind) stat cells and a
#: top-K heap; 64 MiB is two orders of magnitude above that steady
#: state but two orders below materializing 1M event objects.
PEAK_BUDGET_BYTES = 64 * 1024 * 1024

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_analysis.json"
_BENCH: dict = {}


def _synthetic_events(n):
    """A generator of n events over a realistic stream/kind mix."""
    streams = (("compute", "compute"), ("tp", "comm"), ("fsdp", "comm"),
               ("p2p", "comm"), ("compute", "exposed_comm"))
    for i in range(n):
        stream, kind = streams[i % len(streams)]
        start = (i // 16) * 1e-3
        yield LightEvent(name=f"op:{i % 97}", kind=kind, rank=i % 64,
                         stream=stream, start=start,
                         end=start + 1e-4 + (i % 13) * 1e-5)


def test_million_event_ingest_bounded_memory(report):
    agg = StreamingTraceAggregator(top_k=10)
    tracemalloc.start()
    t0 = time.perf_counter()
    agg.consume(_synthetic_events(N_EVENTS))
    elapsed = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    rate = N_EVENTS / elapsed
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    _BENCH["streaming_ingest"] = {
        "n_events": N_EVENTS,
        "events_per_second": round(rate),
        "elapsed_seconds": round(elapsed, 3),
        "tracemalloc_peak_bytes": peak,
        "peak_budget_bytes": PEAK_BUDGET_BYTES,
        "ru_maxrss_mb": round(rss_mb, 1),
    }

    report.line("Streaming ingestion: 1M-event synthetic trace")
    report.table(
        ["events", "events/sec", "elapsed s", "peak heap MiB",
         "budget MiB"],
        [(f"{N_EVENTS:,}", f"{rate:,.0f}", f"{elapsed:.2f}",
          f"{peak / 2**20:.1f}", f"{PEAK_BUDGET_BYTES / 2**20:.0f}")],
    )
    report.line()

    assert agg.n_events == N_EVENTS
    assert agg.n_ranks == 64
    assert len(agg.top_slowest()) == 10
    assert peak < PEAK_BUDGET_BYTES, (
        f"ingest peaked at {peak / 2**20:.1f} MiB, "
        f"budget {PEAK_BUDGET_BYTES / 2**20:.0f} MiB — the aggregator "
        "is no longer O(streams + K)")


def test_file_ingest_does_not_materialize(report, tmp_path):
    """File-based ingestion parses incrementally: a trace much larger
    than the heap budget streams through it."""
    par = ParallelConfig(tp=2, cp=1, pp=2, dp=2)
    job = JobConfig(seq=8192, gbs=8, ngpu=8)
    rep = simulate_step(LLAMA3_8B, par, job, grand_teton(8))

    # Tile one step's rows into a single large traceEvents array.
    from repro.obs.trace import trace_event_dicts

    rows = trace_event_dicts(rep.run.sim)
    reps = max(1, 100_000 // len(rows))
    path = tmp_path / "big.json"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"traceEvents": [')
        first = True
        for r in range(reps):
            for row in rows:
                if row["ph"] != "X":
                    continue
                if not first:
                    fh.write(",")
                first = False
                fh.write(json.dumps(row))
        fh.write("]}")
    size_mb = path.stat().st_size / 2**20

    agg = StreamingTraceAggregator(top_k=5)
    tracemalloc.start()
    agg.consume(iter_trace_events(str(path)))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    n_x = sum(1 for row in rows if row["ph"] == "X") * reps
    _BENCH["file_ingest"] = {
        "file_mb": round(size_mb, 1),
        "n_events": n_x,
        "tracemalloc_peak_bytes": peak,
    }
    report.line(f"File ingest: {size_mb:.1f} MiB / {n_x:,} events, "
                f"peak heap {peak / 2**20:.1f} MiB")
    report.line()
    assert agg.n_events == n_x
    # Peak heap must stay far below the file size: streaming, not slurping.
    assert peak < max(8 * 2**20, path.stat().st_size / 4)


def test_critical_path_deep_pipeline_bounded_time(report):
    """16-stage x 64-microbatch step: extraction in bounded wall time."""
    par = ParallelConfig(tp=1, cp=1, pp=16, dp=1)
    job = JobConfig(seq=8192, gbs=64, ngpu=16)
    rep = simulate_step(LLAMA3_8B, par, job, grand_teton(16))

    t0 = time.perf_counter()
    cp = extract_critical_path(rep.execution.graph, rep.execution.events,
                               makespan=rep.step_seconds)
    elapsed = time.perf_counter() - t0

    n_events = len(rep.execution.events)
    _BENCH["critical_path"] = {
        "pp": 16, "microbatches": 64,
        "n_events": n_events,
        "path_ops": cp.n_ops,
        "exact": cp.exact,
        "elapsed_seconds": round(elapsed, 3),
    }
    report.line("Critical-path extraction: 16-stage x 64-microbatch step")
    report.table(
        ["graph events", "path ops", "exact", "elapsed s"],
        [(f"{n_events:,}", cp.n_ops, cp.exact, f"{elapsed:.3f}")],
    )
    report.line()

    assert cp.exact
    assert cp.entries[-1].end == rep.step_seconds
    # Extraction is near-linear in events; 10 s is an order of magnitude
    # above observed time on a cold CI runner.
    assert elapsed < 10.0, (
        f"critical-path extraction took {elapsed:.1f}s on "
        f"{n_events} events")


def test_write_bench_json(report):
    """Persist machine-readable results for the CI artifact upload.

    Runs last (file order) so earlier tests have populated _BENCH."""
    assert _BENCH, "benchmark sections did not run"
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(_BENCH, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    report.line(f"machine-readable results -> {BENCH_JSON.name}")
